/root/repo/target/release/deps/exp_balance-a61622f213b1d23c.d: crates/bench/src/bin/exp_balance.rs

/root/repo/target/release/deps/exp_balance-a61622f213b1d23c: crates/bench/src/bin/exp_balance.rs

crates/bench/src/bin/exp_balance.rs:
