/root/repo/target/release/deps/valpipe_ir-143c14164d5d2b59.d: crates/ir/src/lib.rs crates/ir/src/ctl.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/opcode.rs crates/ir/src/pretty.rs crates/ir/src/serialize.rs crates/ir/src/validate.rs crates/ir/src/value.rs

/root/repo/target/release/deps/libvalpipe_ir-143c14164d5d2b59.rlib: crates/ir/src/lib.rs crates/ir/src/ctl.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/opcode.rs crates/ir/src/pretty.rs crates/ir/src/serialize.rs crates/ir/src/validate.rs crates/ir/src/value.rs

/root/repo/target/release/deps/libvalpipe_ir-143c14164d5d2b59.rmeta: crates/ir/src/lib.rs crates/ir/src/ctl.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/opcode.rs crates/ir/src/pretty.rs crates/ir/src/serialize.rs crates/ir/src/validate.rs crates/ir/src/value.rs

crates/ir/src/lib.rs:
crates/ir/src/ctl.rs:
crates/ir/src/dot.rs:
crates/ir/src/graph.rs:
crates/ir/src/opcode.rs:
crates/ir/src/pretty.rs:
crates/ir/src/serialize.rs:
crates/ir/src/validate.rs:
crates/ir/src/value.rs:
