/root/repo/target/release/deps/exp_fig4-0b6f8259934562e2.d: crates/bench/src/bin/exp_fig4.rs

/root/repo/target/release/deps/exp_fig4-0b6f8259934562e2: crates/bench/src/bin/exp_fig4.rs

crates/bench/src/bin/exp_fig4.rs:
