/root/repo/target/release/deps/exp_predict-4f52f9a275c8651c.d: crates/bench/src/bin/exp_predict.rs

/root/repo/target/release/deps/exp_predict-4f52f9a275c8651c: crates/bench/src/bin/exp_predict.rs

crates/bench/src/bin/exp_predict.rs:
