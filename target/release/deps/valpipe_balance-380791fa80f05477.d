/root/repo/target/release/deps/valpipe_balance-380791fa80f05477.d: crates/balance/src/lib.rs crates/balance/src/problem.rs crates/balance/src/solve.rs

/root/repo/target/release/deps/libvalpipe_balance-380791fa80f05477.rlib: crates/balance/src/lib.rs crates/balance/src/problem.rs crates/balance/src/solve.rs

/root/repo/target/release/deps/libvalpipe_balance-380791fa80f05477.rmeta: crates/balance/src/lib.rs crates/balance/src/problem.rs crates/balance/src/solve.rs

crates/balance/src/lib.rs:
crates/balance/src/problem.rs:
crates/balance/src/solve.rs:
