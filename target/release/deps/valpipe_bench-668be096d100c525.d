/root/repo/target/release/deps/valpipe_bench-668be096d100c525.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/timing.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libvalpipe_bench-668be096d100c525.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/timing.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libvalpipe_bench-668be096d100c525.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/timing.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/timing.rs:
crates/bench/src/workloads.rs:
