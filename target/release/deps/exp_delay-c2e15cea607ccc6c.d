/root/repo/target/release/deps/exp_delay-c2e15cea607ccc6c.d: crates/bench/src/bin/exp_delay.rs

/root/repo/target/release/deps/exp_delay-c2e15cea607ccc6c: crates/bench/src/bin/exp_delay.rs

crates/bench/src/bin/exp_delay.rs:
