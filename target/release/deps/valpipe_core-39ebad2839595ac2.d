/root/repo/target/release/deps/valpipe_core-39ebad2839595ac2.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/forall.rs crates/core/src/fuse.rs crates/core/src/foriter.rs crates/core/src/loops.rs crates/core/src/options.rs crates/core/src/predict.rs crates/core/src/program.rs crates/core/src/synth.rs crates/core/src/timestep.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libvalpipe_core-39ebad2839595ac2.rlib: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/forall.rs crates/core/src/fuse.rs crates/core/src/foriter.rs crates/core/src/loops.rs crates/core/src/options.rs crates/core/src/predict.rs crates/core/src/program.rs crates/core/src/synth.rs crates/core/src/timestep.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libvalpipe_core-39ebad2839595ac2.rmeta: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/forall.rs crates/core/src/fuse.rs crates/core/src/foriter.rs crates/core/src/loops.rs crates/core/src/options.rs crates/core/src/predict.rs crates/core/src/program.rs crates/core/src/synth.rs crates/core/src/timestep.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/error.rs:
crates/core/src/forall.rs:
crates/core/src/fuse.rs:
crates/core/src/foriter.rs:
crates/core/src/loops.rs:
crates/core/src/options.rs:
crates/core/src/predict.rs:
crates/core/src/program.rs:
crates/core/src/synth.rs:
crates/core/src/timestep.rs:
crates/core/src/verify.rs:
