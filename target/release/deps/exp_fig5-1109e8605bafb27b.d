/root/repo/target/release/deps/exp_fig5-1109e8605bafb27b.d: crates/bench/src/bin/exp_fig5.rs

/root/repo/target/release/deps/exp_fig5-1109e8605bafb27b: crates/bench/src/bin/exp_fig5.rs

crates/bench/src/bin/exp_fig5.rs:
