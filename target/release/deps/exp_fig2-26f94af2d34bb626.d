/root/repo/target/release/deps/exp_fig2-26f94af2d34bb626.d: crates/bench/src/bin/exp_fig2.rs

/root/repo/target/release/deps/exp_fig2-26f94af2d34bb626: crates/bench/src/bin/exp_fig2.rs

crates/bench/src/bin/exp_fig2.rs:
