/root/repo/target/release/deps/valpipe-00cbe3ce83637e0d.d: src/lib.rs

/root/repo/target/release/deps/libvalpipe-00cbe3ce83637e0d.rlib: src/lib.rs

/root/repo/target/release/deps/libvalpipe-00cbe3ce83637e0d.rmeta: src/lib.rs

src/lib.rs:
