/root/repo/target/release/deps/exp_am_traffic-be2fff16259c4217.d: crates/bench/src/bin/exp_am_traffic.rs

/root/repo/target/release/deps/exp_am_traffic-be2fff16259c4217: crates/bench/src/bin/exp_am_traffic.rs

crates/bench/src/bin/exp_am_traffic.rs:
