/root/repo/target/release/deps/exp_closedloop-ce0e435fda79c78a.d: crates/bench/src/bin/exp_closedloop.rs

/root/repo/target/release/deps/exp_closedloop-ce0e435fda79c78a: crates/bench/src/bin/exp_closedloop.rs

crates/bench/src/bin/exp_closedloop.rs:
