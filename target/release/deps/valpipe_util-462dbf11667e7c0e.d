/root/repo/target/release/deps/valpipe_util-462dbf11667e7c0e.d: crates/util/src/lib.rs crates/util/src/json.rs crates/util/src/rng.rs

/root/repo/target/release/deps/libvalpipe_util-462dbf11667e7c0e.rlib: crates/util/src/lib.rs crates/util/src/json.rs crates/util/src/rng.rs

/root/repo/target/release/deps/libvalpipe_util-462dbf11667e7c0e.rmeta: crates/util/src/lib.rs crates/util/src/json.rs crates/util/src/rng.rs

crates/util/src/lib.rs:
crates/util/src/json.rs:
crates/util/src/rng.rs:
