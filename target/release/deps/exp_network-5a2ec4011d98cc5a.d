/root/repo/target/release/deps/exp_network-5a2ec4011d98cc5a.d: crates/bench/src/bin/exp_network.rs

/root/repo/target/release/deps/exp_network-5a2ec4011d98cc5a: crates/bench/src/bin/exp_network.rs

crates/bench/src/bin/exp_network.rs:
