/root/repo/target/release/deps/valpipe_machine-dcfcdcf1541d907f.d: crates/machine/src/lib.rs crates/machine/src/arch.rs crates/machine/src/closedloop.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/network.rs crates/machine/src/sim.rs crates/machine/src/trace.rs crates/machine/src/watchdog.rs

/root/repo/target/release/deps/libvalpipe_machine-dcfcdcf1541d907f.rlib: crates/machine/src/lib.rs crates/machine/src/arch.rs crates/machine/src/closedloop.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/network.rs crates/machine/src/sim.rs crates/machine/src/trace.rs crates/machine/src/watchdog.rs

/root/repo/target/release/deps/libvalpipe_machine-dcfcdcf1541d907f.rmeta: crates/machine/src/lib.rs crates/machine/src/arch.rs crates/machine/src/closedloop.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/network.rs crates/machine/src/sim.rs crates/machine/src/trace.rs crates/machine/src/watchdog.rs

crates/machine/src/lib.rs:
crates/machine/src/arch.rs:
crates/machine/src/closedloop.rs:
crates/machine/src/error.rs:
crates/machine/src/fault.rs:
crates/machine/src/network.rs:
crates/machine/src/sim.rs:
crates/machine/src/trace.rs:
crates/machine/src/watchdog.rs:
