/root/repo/target/release/deps/exp_faults-78eb1ce2e2c76144.d: crates/bench/src/bin/exp_faults.rs

/root/repo/target/release/deps/exp_faults-78eb1ce2e2c76144: crates/bench/src/bin/exp_faults.rs

crates/bench/src/bin/exp_faults.rs:
