/root/repo/target/release/deps/exp_synth-a25c405594ea8d31.d: crates/bench/src/bin/exp_synth.rs

/root/repo/target/release/deps/exp_synth-a25c405594ea8d31: crates/bench/src/bin/exp_synth.rs

crates/bench/src/bin/exp_synth.rs:
