/root/repo/target/release/deps/exp_scale-57caf5a41bfa0300.d: crates/bench/src/bin/exp_scale.rs

/root/repo/target/release/deps/exp_scale-57caf5a41bfa0300: crates/bench/src/bin/exp_scale.rs

crates/bench/src/bin/exp_scale.rs:
