/root/repo/target/release/deps/exp_fig3-616cee4117823c65.d: crates/bench/src/bin/exp_fig3.rs

/root/repo/target/release/deps/exp_fig3-616cee4117823c65: crates/bench/src/bin/exp_fig3.rs

crates/bench/src/bin/exp_fig3.rs:
