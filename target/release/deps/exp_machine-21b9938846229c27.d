/root/repo/target/release/deps/exp_machine-21b9938846229c27.d: crates/bench/src/bin/exp_machine.rs

/root/repo/target/release/deps/exp_machine-21b9938846229c27: crates/bench/src/bin/exp_machine.rs

crates/bench/src/bin/exp_machine.rs:
