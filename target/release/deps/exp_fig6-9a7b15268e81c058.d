/root/repo/target/release/deps/exp_fig6-9a7b15268e81c058.d: crates/bench/src/bin/exp_fig6.rs

/root/repo/target/release/deps/exp_fig6-9a7b15268e81c058: crates/bench/src/bin/exp_fig6.rs

crates/bench/src/bin/exp_fig6.rs:
