/root/repo/target/release/deps/exp_fig7_fig8-2b8e7379bfdd1845.d: crates/bench/src/bin/exp_fig7_fig8.rs

/root/repo/target/release/deps/exp_fig7_fig8-2b8e7379bfdd1845: crates/bench/src/bin/exp_fig7_fig8.rs

crates/bench/src/bin/exp_fig7_fig8.rs:
