/root/repo/target/release/deps/valpipe-357b5fef45539772.d: src/bin/valpipe.rs

/root/repo/target/release/deps/valpipe-357b5fef45539772: src/bin/valpipe.rs

src/bin/valpipe.rs:
