/root/repo/target/debug/deps/anchoring-5443f69f7b185955.d: crates/balance/tests/anchoring.rs

/root/repo/target/debug/deps/anchoring-5443f69f7b185955: crates/balance/tests/anchoring.rs

crates/balance/tests/anchoring.rs:
