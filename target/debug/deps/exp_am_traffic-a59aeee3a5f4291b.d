/root/repo/target/debug/deps/exp_am_traffic-a59aeee3a5f4291b.d: crates/bench/src/bin/exp_am_traffic.rs Cargo.toml

/root/repo/target/debug/deps/libexp_am_traffic-a59aeee3a5f4291b.rmeta: crates/bench/src/bin/exp_am_traffic.rs Cargo.toml

crates/bench/src/bin/exp_am_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
