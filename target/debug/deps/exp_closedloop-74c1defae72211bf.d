/root/repo/target/debug/deps/exp_closedloop-74c1defae72211bf.d: crates/bench/src/bin/exp_closedloop.rs

/root/repo/target/debug/deps/exp_closedloop-74c1defae72211bf: crates/bench/src/bin/exp_closedloop.rs

crates/bench/src/bin/exp_closedloop.rs:
