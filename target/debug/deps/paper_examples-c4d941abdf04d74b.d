/root/repo/target/debug/deps/paper_examples-c4d941abdf04d74b.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-c4d941abdf04d74b: tests/paper_examples.rs

tests/paper_examples.rs:
