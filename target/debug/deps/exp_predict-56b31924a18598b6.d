/root/repo/target/debug/deps/exp_predict-56b31924a18598b6.d: crates/bench/src/bin/exp_predict.rs Cargo.toml

/root/repo/target/debug/deps/libexp_predict-56b31924a18598b6.rmeta: crates/bench/src/bin/exp_predict.rs Cargo.toml

crates/bench/src/bin/exp_predict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
