/root/repo/target/debug/deps/property_balance-ae2ccd29924a2cf7.d: tests/property_balance.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_balance-ae2ccd29924a2cf7.rmeta: tests/property_balance.rs Cargo.toml

tests/property_balance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
