/root/repo/target/debug/deps/simulate-8a98e0f506b0a2aa.d: crates/bench/benches/simulate.rs

/root/repo/target/debug/deps/simulate-8a98e0f506b0a2aa: crates/bench/benches/simulate.rs

crates/bench/benches/simulate.rs:
