/root/repo/target/debug/deps/valpipe_util-35acdd1833809d3f.d: crates/util/src/lib.rs crates/util/src/json.rs crates/util/src/rng.rs

/root/repo/target/debug/deps/valpipe_util-35acdd1833809d3f: crates/util/src/lib.rs crates/util/src/json.rs crates/util/src/rng.rs

crates/util/src/lib.rs:
crates/util/src/json.rs:
crates/util/src/rng.rs:
