/root/repo/target/debug/deps/valpipe_balance-cc3185d6a8fcbd5d.d: crates/balance/src/lib.rs crates/balance/src/problem.rs crates/balance/src/solve.rs

/root/repo/target/debug/deps/libvalpipe_balance-cc3185d6a8fcbd5d.rlib: crates/balance/src/lib.rs crates/balance/src/problem.rs crates/balance/src/solve.rs

/root/repo/target/debug/deps/libvalpipe_balance-cc3185d6a8fcbd5d.rmeta: crates/balance/src/lib.rs crates/balance/src/problem.rs crates/balance/src/solve.rs

crates/balance/src/lib.rs:
crates/balance/src/problem.rs:
crates/balance/src/solve.rs:
