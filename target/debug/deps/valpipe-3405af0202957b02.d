/root/repo/target/debug/deps/valpipe-3405af0202957b02.d: src/bin/valpipe.rs

/root/repo/target/debug/deps/valpipe-3405af0202957b02: src/bin/valpipe.rs

src/bin/valpipe.rs:
