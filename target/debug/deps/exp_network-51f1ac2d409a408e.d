/root/repo/target/debug/deps/exp_network-51f1ac2d409a408e.d: crates/bench/src/bin/exp_network.rs

/root/repo/target/debug/deps/exp_network-51f1ac2d409a408e: crates/bench/src/bin/exp_network.rs

crates/bench/src/bin/exp_network.rs:
