/root/repo/target/debug/deps/exp_fig5-c73eb35801499963.d: crates/bench/src/bin/exp_fig5.rs

/root/repo/target/debug/deps/exp_fig5-c73eb35801499963: crates/bench/src/bin/exp_fig5.rs

crates/bench/src/bin/exp_fig5.rs:
