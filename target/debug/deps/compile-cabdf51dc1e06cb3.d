/root/repo/target/debug/deps/compile-cabdf51dc1e06cb3.d: crates/bench/benches/compile.rs

/root/repo/target/debug/deps/compile-cabdf51dc1e06cb3: crates/bench/benches/compile.rs

crates/bench/benches/compile.rs:
