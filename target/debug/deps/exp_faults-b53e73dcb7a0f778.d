/root/repo/target/debug/deps/exp_faults-b53e73dcb7a0f778.d: crates/bench/src/bin/exp_faults.rs Cargo.toml

/root/repo/target/debug/deps/libexp_faults-b53e73dcb7a0f778.rmeta: crates/bench/src/bin/exp_faults.rs Cargo.toml

crates/bench/src/bin/exp_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
