/root/repo/target/debug/deps/valpipe_bench-3220a9f33af9871d.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/timing.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libvalpipe_bench-3220a9f33af9871d.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/timing.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/timing.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
