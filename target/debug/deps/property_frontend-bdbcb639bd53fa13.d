/root/repo/target/debug/deps/property_frontend-bdbcb639bd53fa13.d: tests/property_frontend.rs

/root/repo/target/debug/deps/property_frontend-bdbcb639bd53fa13: tests/property_frontend.rs

tests/property_frontend.rs:
