/root/repo/target/debug/deps/exp_machine-c92749bc0e769ac9.d: crates/bench/src/bin/exp_machine.rs Cargo.toml

/root/repo/target/debug/deps/libexp_machine-c92749bc0e769ac9.rmeta: crates/bench/src/bin/exp_machine.rs Cargo.toml

crates/bench/src/bin/exp_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
