/root/repo/target/debug/deps/exp_fig7_fig8-a53dae8cb48ee0d7.d: crates/bench/src/bin/exp_fig7_fig8.rs

/root/repo/target/debug/deps/exp_fig7_fig8-a53dae8cb48ee0d7: crates/bench/src/bin/exp_fig7_fig8.rs

crates/bench/src/bin/exp_fig7_fig8.rs:
