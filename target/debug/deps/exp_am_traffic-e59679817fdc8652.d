/root/repo/target/debug/deps/exp_am_traffic-e59679817fdc8652.d: crates/bench/src/bin/exp_am_traffic.rs Cargo.toml

/root/repo/target/debug/deps/libexp_am_traffic-e59679817fdc8652.rmeta: crates/bench/src/bin/exp_am_traffic.rs Cargo.toml

crates/bench/src/bin/exp_am_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
