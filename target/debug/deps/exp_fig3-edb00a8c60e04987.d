/root/repo/target/debug/deps/exp_fig3-edb00a8c60e04987.d: crates/bench/src/bin/exp_fig3.rs

/root/repo/target/debug/deps/exp_fig3-edb00a8c60e04987: crates/bench/src/bin/exp_fig3.rs

crates/bench/src/bin/exp_fig3.rs:
