/root/repo/target/debug/deps/property_pipeline-27687429e49f376c.d: tests/property_pipeline.rs

/root/repo/target/debug/deps/property_pipeline-27687429e49f376c: tests/property_pipeline.rs

tests/property_pipeline.rs:
