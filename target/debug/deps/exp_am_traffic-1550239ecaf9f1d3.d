/root/repo/target/debug/deps/exp_am_traffic-1550239ecaf9f1d3.d: crates/bench/src/bin/exp_am_traffic.rs

/root/repo/target/debug/deps/exp_am_traffic-1550239ecaf9f1d3: crates/bench/src/bin/exp_am_traffic.rs

crates/bench/src/bin/exp_am_traffic.rs:
