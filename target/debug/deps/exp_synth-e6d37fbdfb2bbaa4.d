/root/repo/target/debug/deps/exp_synth-e6d37fbdfb2bbaa4.d: crates/bench/src/bin/exp_synth.rs Cargo.toml

/root/repo/target/debug/deps/libexp_synth-e6d37fbdfb2bbaa4.rmeta: crates/bench/src/bin/exp_synth.rs Cargo.toml

crates/bench/src/bin/exp_synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
