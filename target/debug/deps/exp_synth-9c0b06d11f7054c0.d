/root/repo/target/debug/deps/exp_synth-9c0b06d11f7054c0.d: crates/bench/src/bin/exp_synth.rs

/root/repo/target/debug/deps/exp_synth-9c0b06d11f7054c0: crates/bench/src/bin/exp_synth.rs

crates/bench/src/bin/exp_synth.rs:
