/root/repo/target/debug/deps/sim_semantics-5035ccfe46667127.d: crates/machine/tests/sim_semantics.rs

/root/repo/target/debug/deps/sim_semantics-5035ccfe46667127: crates/machine/tests/sim_semantics.rs

crates/machine/tests/sim_semantics.rs:
