/root/repo/target/debug/deps/ctl_props-f8d2471af0e8f379.d: crates/ir/tests/ctl_props.rs Cargo.toml

/root/repo/target/debug/deps/libctl_props-f8d2471af0e8f379.rmeta: crates/ir/tests/ctl_props.rs Cargo.toml

crates/ir/tests/ctl_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
