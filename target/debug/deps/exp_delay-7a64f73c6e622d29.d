/root/repo/target/debug/deps/exp_delay-7a64f73c6e622d29.d: crates/bench/src/bin/exp_delay.rs

/root/repo/target/debug/deps/exp_delay-7a64f73c6e622d29: crates/bench/src/bin/exp_delay.rs

crates/bench/src/bin/exp_delay.rs:
