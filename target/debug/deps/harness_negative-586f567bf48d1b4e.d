/root/repo/target/debug/deps/harness_negative-586f567bf48d1b4e.d: tests/harness_negative.rs

/root/repo/target/debug/deps/harness_negative-586f567bf48d1b4e: tests/harness_negative.rs

tests/harness_negative.rs:
