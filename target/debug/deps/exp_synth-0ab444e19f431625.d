/root/repo/target/debug/deps/exp_synth-0ab444e19f431625.d: crates/bench/src/bin/exp_synth.rs

/root/repo/target/debug/deps/exp_synth-0ab444e19f431625: crates/bench/src/bin/exp_synth.rs

crates/bench/src/bin/exp_synth.rs:
