/root/repo/target/debug/deps/exp_delay-10a274ed91e60861.d: crates/bench/src/bin/exp_delay.rs

/root/repo/target/debug/deps/exp_delay-10a274ed91e60861: crates/bench/src/bin/exp_delay.rs

crates/bench/src/bin/exp_delay.rs:
