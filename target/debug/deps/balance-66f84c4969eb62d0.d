/root/repo/target/debug/deps/balance-66f84c4969eb62d0.d: crates/bench/benches/balance.rs Cargo.toml

/root/repo/target/debug/deps/libbalance-66f84c4969eb62d0.rmeta: crates/bench/benches/balance.rs Cargo.toml

crates/bench/benches/balance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
