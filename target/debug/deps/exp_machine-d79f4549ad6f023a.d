/root/repo/target/debug/deps/exp_machine-d79f4549ad6f023a.d: crates/bench/src/bin/exp_machine.rs Cargo.toml

/root/repo/target/debug/deps/libexp_machine-d79f4549ad6f023a.rmeta: crates/bench/src/bin/exp_machine.rs Cargo.toml

crates/bench/src/bin/exp_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
