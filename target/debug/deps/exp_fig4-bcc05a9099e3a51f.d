/root/repo/target/debug/deps/exp_fig4-bcc05a9099e3a51f.d: crates/bench/src/bin/exp_fig4.rs

/root/repo/target/debug/deps/exp_fig4-bcc05a9099e3a51f: crates/bench/src/bin/exp_fig4.rs

crates/bench/src/bin/exp_fig4.rs:
