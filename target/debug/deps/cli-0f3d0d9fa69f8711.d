/root/repo/target/debug/deps/cli-0f3d0d9fa69f8711.d: tests/cli.rs

/root/repo/target/debug/deps/cli-0f3d0d9fa69f8711: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_valpipe=/root/repo/target/debug/valpipe
