/root/repo/target/debug/deps/valpipe_bench-8f926d58a73d519e.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/timing.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libvalpipe_bench-8f926d58a73d519e.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/timing.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libvalpipe_bench-8f926d58a73d519e.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/timing.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/timing.rs:
crates/bench/src/workloads.rs:
