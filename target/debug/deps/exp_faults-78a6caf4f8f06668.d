/root/repo/target/debug/deps/exp_faults-78a6caf4f8f06668.d: crates/bench/src/bin/exp_faults.rs Cargo.toml

/root/repo/target/debug/deps/libexp_faults-78a6caf4f8f06668.rmeta: crates/bench/src/bin/exp_faults.rs Cargo.toml

crates/bench/src/bin/exp_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
