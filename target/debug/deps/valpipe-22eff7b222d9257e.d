/root/repo/target/debug/deps/valpipe-22eff7b222d9257e.d: src/bin/valpipe.rs Cargo.toml

/root/repo/target/debug/deps/libvalpipe-22eff7b222d9257e.rmeta: src/bin/valpipe.rs Cargo.toml

src/bin/valpipe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
