/root/repo/target/debug/deps/valpipe_ir-c77b14a3cffbd1b7.d: crates/ir/src/lib.rs crates/ir/src/ctl.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/opcode.rs crates/ir/src/pretty.rs crates/ir/src/serialize.rs crates/ir/src/validate.rs crates/ir/src/value.rs

/root/repo/target/debug/deps/valpipe_ir-c77b14a3cffbd1b7: crates/ir/src/lib.rs crates/ir/src/ctl.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/opcode.rs crates/ir/src/pretty.rs crates/ir/src/serialize.rs crates/ir/src/validate.rs crates/ir/src/value.rs

crates/ir/src/lib.rs:
crates/ir/src/ctl.rs:
crates/ir/src/dot.rs:
crates/ir/src/graph.rs:
crates/ir/src/opcode.rs:
crates/ir/src/pretty.rs:
crates/ir/src/serialize.rs:
crates/ir/src/validate.rs:
crates/ir/src/value.rs:
