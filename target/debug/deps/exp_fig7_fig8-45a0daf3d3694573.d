/root/repo/target/debug/deps/exp_fig7_fig8-45a0daf3d3694573.d: crates/bench/src/bin/exp_fig7_fig8.rs

/root/repo/target/debug/deps/exp_fig7_fig8-45a0daf3d3694573: crates/bench/src/bin/exp_fig7_fig8.rs

crates/bench/src/bin/exp_fig7_fig8.rs:
