/root/repo/target/debug/deps/property_frontend-dced3f342ccfb333.d: tests/property_frontend.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_frontend-dced3f342ccfb333.rmeta: tests/property_frontend.rs Cargo.toml

tests/property_frontend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
