/root/repo/target/debug/deps/property_balance-4fe8842a17b20ec9.d: tests/property_balance.rs

/root/repo/target/debug/deps/property_balance-4fe8842a17b20ec9: tests/property_balance.rs

tests/property_balance.rs:
