/root/repo/target/debug/deps/valpipe-ef896a7602ee7221.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvalpipe-ef896a7602ee7221.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
