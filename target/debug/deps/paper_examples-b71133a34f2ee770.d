/root/repo/target/debug/deps/paper_examples-b71133a34f2ee770.d: tests/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-b71133a34f2ee770.rmeta: tests/paper_examples.rs Cargo.toml

tests/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
