/root/repo/target/debug/deps/exp_machine-756b68fa818cf808.d: crates/bench/src/bin/exp_machine.rs

/root/repo/target/debug/deps/exp_machine-756b68fa818cf808: crates/bench/src/bin/exp_machine.rs

crates/bench/src/bin/exp_machine.rs:
