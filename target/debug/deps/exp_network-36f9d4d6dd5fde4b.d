/root/repo/target/debug/deps/exp_network-36f9d4d6dd5fde4b.d: crates/bench/src/bin/exp_network.rs

/root/repo/target/debug/deps/exp_network-36f9d4d6dd5fde4b: crates/bench/src/bin/exp_network.rs

crates/bench/src/bin/exp_network.rs:
