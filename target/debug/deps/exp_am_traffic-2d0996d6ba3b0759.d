/root/repo/target/debug/deps/exp_am_traffic-2d0996d6ba3b0759.d: crates/bench/src/bin/exp_am_traffic.rs

/root/repo/target/debug/deps/exp_am_traffic-2d0996d6ba3b0759: crates/bench/src/bin/exp_am_traffic.rs

crates/bench/src/bin/exp_am_traffic.rs:
