/root/repo/target/debug/deps/valpipe_util-6025379416651fe0.d: crates/util/src/lib.rs crates/util/src/json.rs crates/util/src/rng.rs

/root/repo/target/debug/deps/libvalpipe_util-6025379416651fe0.rlib: crates/util/src/lib.rs crates/util/src/json.rs crates/util/src/rng.rs

/root/repo/target/debug/deps/libvalpipe_util-6025379416651fe0.rmeta: crates/util/src/lib.rs crates/util/src/json.rs crates/util/src/rng.rs

crates/util/src/lib.rs:
crates/util/src/json.rs:
crates/util/src/rng.rs:
