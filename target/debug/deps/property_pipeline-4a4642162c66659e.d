/root/repo/target/debug/deps/property_pipeline-4a4642162c66659e.d: tests/property_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_pipeline-4a4642162c66659e.rmeta: tests/property_pipeline.rs Cargo.toml

tests/property_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
