/root/repo/target/debug/deps/property_synth-73c875ab99ca4059.d: tests/property_synth.rs

/root/repo/target/debug/deps/property_synth-73c875ab99ca4059: tests/property_synth.rs

tests/property_synth.rs:
