/root/repo/target/debug/deps/valpipe_core-0223a5b0bd87fd40.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/forall.rs crates/core/src/fuse.rs crates/core/src/foriter.rs crates/core/src/loops.rs crates/core/src/options.rs crates/core/src/predict.rs crates/core/src/program.rs crates/core/src/synth.rs crates/core/src/tests.rs crates/core/src/timestep.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/valpipe_core-0223a5b0bd87fd40: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/forall.rs crates/core/src/fuse.rs crates/core/src/foriter.rs crates/core/src/loops.rs crates/core/src/options.rs crates/core/src/predict.rs crates/core/src/program.rs crates/core/src/synth.rs crates/core/src/tests.rs crates/core/src/timestep.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/error.rs:
crates/core/src/forall.rs:
crates/core/src/fuse.rs:
crates/core/src/foriter.rs:
crates/core/src/loops.rs:
crates/core/src/options.rs:
crates/core/src/predict.rs:
crates/core/src/program.rs:
crates/core/src/synth.rs:
crates/core/src/tests.rs:
crates/core/src/timestep.rs:
crates/core/src/verify.rs:
