/root/repo/target/debug/deps/exp_scale-0565d6ffd1cdb44a.d: crates/bench/src/bin/exp_scale.rs

/root/repo/target/debug/deps/exp_scale-0565d6ffd1cdb44a: crates/bench/src/bin/exp_scale.rs

crates/bench/src/bin/exp_scale.rs:
