/root/repo/target/debug/deps/exp_fig5-57574fc8a4782c93.d: crates/bench/src/bin/exp_fig5.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig5-57574fc8a4782c93.rmeta: crates/bench/src/bin/exp_fig5.rs Cargo.toml

crates/bench/src/bin/exp_fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
