/root/repo/target/debug/deps/exp_closedloop-8cdda808c4429712.d: crates/bench/src/bin/exp_closedloop.rs Cargo.toml

/root/repo/target/debug/deps/libexp_closedloop-8cdda808c4429712.rmeta: crates/bench/src/bin/exp_closedloop.rs Cargo.toml

crates/bench/src/bin/exp_closedloop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
