/root/repo/target/debug/deps/exp_network-0d69685686512048.d: crates/bench/src/bin/exp_network.rs Cargo.toml

/root/repo/target/debug/deps/libexp_network-0d69685686512048.rmeta: crates/bench/src/bin/exp_network.rs Cargo.toml

crates/bench/src/bin/exp_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
