/root/repo/target/debug/deps/valpipe-8fcd7dc172e0c1cf.d: src/lib.rs

/root/repo/target/debug/deps/libvalpipe-8fcd7dc172e0c1cf.rlib: src/lib.rs

/root/repo/target/debug/deps/libvalpipe-8fcd7dc172e0c1cf.rmeta: src/lib.rs

src/lib.rs:
