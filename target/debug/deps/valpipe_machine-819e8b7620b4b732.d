/root/repo/target/debug/deps/valpipe_machine-819e8b7620b4b732.d: crates/machine/src/lib.rs crates/machine/src/arch.rs crates/machine/src/closedloop.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/network.rs crates/machine/src/sim.rs crates/machine/src/trace.rs crates/machine/src/watchdog.rs Cargo.toml

/root/repo/target/debug/deps/libvalpipe_machine-819e8b7620b4b732.rmeta: crates/machine/src/lib.rs crates/machine/src/arch.rs crates/machine/src/closedloop.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/network.rs crates/machine/src/sim.rs crates/machine/src/trace.rs crates/machine/src/watchdog.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/arch.rs:
crates/machine/src/closedloop.rs:
crates/machine/src/error.rs:
crates/machine/src/fault.rs:
crates/machine/src/network.rs:
crates/machine/src/sim.rs:
crates/machine/src/trace.rs:
crates/machine/src/watchdog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
