/root/repo/target/debug/deps/exp_fig3-dafff435f7db5620.d: crates/bench/src/bin/exp_fig3.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig3-dafff435f7db5620.rmeta: crates/bench/src/bin/exp_fig3.rs Cargo.toml

crates/bench/src/bin/exp_fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
