/root/repo/target/debug/deps/exp_fig2-b9ac2b0c61104684.d: crates/bench/src/bin/exp_fig2.rs

/root/repo/target/debug/deps/exp_fig2-b9ac2b0c61104684: crates/bench/src/bin/exp_fig2.rs

crates/bench/src/bin/exp_fig2.rs:
