/root/repo/target/debug/deps/exp_fig3-bc7c6c2ddd266b93.d: crates/bench/src/bin/exp_fig3.rs

/root/repo/target/debug/deps/exp_fig3-bc7c6c2ddd266b93: crates/bench/src/bin/exp_fig3.rs

crates/bench/src/bin/exp_fig3.rs:
