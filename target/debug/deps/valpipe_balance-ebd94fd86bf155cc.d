/root/repo/target/debug/deps/valpipe_balance-ebd94fd86bf155cc.d: crates/balance/src/lib.rs crates/balance/src/problem.rs crates/balance/src/solve.rs Cargo.toml

/root/repo/target/debug/deps/libvalpipe_balance-ebd94fd86bf155cc.rmeta: crates/balance/src/lib.rs crates/balance/src/problem.rs crates/balance/src/solve.rs Cargo.toml

crates/balance/src/lib.rs:
crates/balance/src/problem.rs:
crates/balance/src/solve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
