/root/repo/target/debug/deps/exp_predict-066fd5107469837b.d: crates/bench/src/bin/exp_predict.rs Cargo.toml

/root/repo/target/debug/deps/libexp_predict-066fd5107469837b.rmeta: crates/bench/src/bin/exp_predict.rs Cargo.toml

crates/bench/src/bin/exp_predict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
