/root/repo/target/debug/deps/sim_semantics-f0321b3ae07ee620.d: crates/machine/tests/sim_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsim_semantics-f0321b3ae07ee620.rmeta: crates/machine/tests/sim_semantics.rs Cargo.toml

crates/machine/tests/sim_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
