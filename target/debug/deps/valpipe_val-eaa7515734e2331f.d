/root/repo/target/debug/deps/valpipe_val-eaa7515734e2331f.d: crates/val/src/lib.rs crates/val/src/ast.rs crates/val/src/classify.rs crates/val/src/deps.rs crates/val/src/dims.rs crates/val/src/fold.rs crates/val/src/interp.rs crates/val/src/lexer.rs crates/val/src/linear.rs crates/val/src/parser.rs crates/val/src/pretty.rs crates/val/src/typeck.rs

/root/repo/target/debug/deps/libvalpipe_val-eaa7515734e2331f.rlib: crates/val/src/lib.rs crates/val/src/ast.rs crates/val/src/classify.rs crates/val/src/deps.rs crates/val/src/dims.rs crates/val/src/fold.rs crates/val/src/interp.rs crates/val/src/lexer.rs crates/val/src/linear.rs crates/val/src/parser.rs crates/val/src/pretty.rs crates/val/src/typeck.rs

/root/repo/target/debug/deps/libvalpipe_val-eaa7515734e2331f.rmeta: crates/val/src/lib.rs crates/val/src/ast.rs crates/val/src/classify.rs crates/val/src/deps.rs crates/val/src/dims.rs crates/val/src/fold.rs crates/val/src/interp.rs crates/val/src/lexer.rs crates/val/src/linear.rs crates/val/src/parser.rs crates/val/src/pretty.rs crates/val/src/typeck.rs

crates/val/src/lib.rs:
crates/val/src/ast.rs:
crates/val/src/classify.rs:
crates/val/src/deps.rs:
crates/val/src/dims.rs:
crates/val/src/fold.rs:
crates/val/src/interp.rs:
crates/val/src/lexer.rs:
crates/val/src/linear.rs:
crates/val/src/parser.rs:
crates/val/src/pretty.rs:
crates/val/src/typeck.rs:
