/root/repo/target/debug/deps/exp_fig2-027a90a68c0594e0.d: crates/bench/src/bin/exp_fig2.rs

/root/repo/target/debug/deps/exp_fig2-027a90a68c0594e0: crates/bench/src/bin/exp_fig2.rs

crates/bench/src/bin/exp_fig2.rs:
