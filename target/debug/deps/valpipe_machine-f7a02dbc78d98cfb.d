/root/repo/target/debug/deps/valpipe_machine-f7a02dbc78d98cfb.d: crates/machine/src/lib.rs crates/machine/src/arch.rs crates/machine/src/closedloop.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/network.rs crates/machine/src/sim.rs crates/machine/src/trace.rs crates/machine/src/watchdog.rs Cargo.toml

/root/repo/target/debug/deps/libvalpipe_machine-f7a02dbc78d98cfb.rmeta: crates/machine/src/lib.rs crates/machine/src/arch.rs crates/machine/src/closedloop.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/network.rs crates/machine/src/sim.rs crates/machine/src/trace.rs crates/machine/src/watchdog.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/arch.rs:
crates/machine/src/closedloop.rs:
crates/machine/src/error.rs:
crates/machine/src/fault.rs:
crates/machine/src/network.rs:
crates/machine/src/sim.rs:
crates/machine/src/trace.rs:
crates/machine/src/watchdog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
