/root/repo/target/debug/deps/ctl_props-adaa31d9468f2626.d: crates/ir/tests/ctl_props.rs

/root/repo/target/debug/deps/ctl_props-adaa31d9468f2626: crates/ir/tests/ctl_props.rs

crates/ir/tests/ctl_props.rs:
