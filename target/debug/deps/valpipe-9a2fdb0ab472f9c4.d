/root/repo/target/debug/deps/valpipe-9a2fdb0ab472f9c4.d: src/bin/valpipe.rs

/root/repo/target/debug/deps/valpipe-9a2fdb0ab472f9c4: src/bin/valpipe.rs

src/bin/valpipe.rs:
