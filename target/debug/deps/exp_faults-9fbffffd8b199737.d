/root/repo/target/debug/deps/exp_faults-9fbffffd8b199737.d: crates/bench/src/bin/exp_faults.rs

/root/repo/target/debug/deps/exp_faults-9fbffffd8b199737: crates/bench/src/bin/exp_faults.rs

crates/bench/src/bin/exp_faults.rs:
