/root/repo/target/debug/deps/exp_scale-fd4e8a16aa2d6f0e.d: crates/bench/src/bin/exp_scale.rs Cargo.toml

/root/repo/target/debug/deps/libexp_scale-fd4e8a16aa2d6f0e.rmeta: crates/bench/src/bin/exp_scale.rs Cargo.toml

crates/bench/src/bin/exp_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
