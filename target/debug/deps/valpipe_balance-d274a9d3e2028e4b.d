/root/repo/target/debug/deps/valpipe_balance-d274a9d3e2028e4b.d: crates/balance/src/lib.rs crates/balance/src/problem.rs crates/balance/src/solve.rs Cargo.toml

/root/repo/target/debug/deps/libvalpipe_balance-d274a9d3e2028e4b.rmeta: crates/balance/src/lib.rs crates/balance/src/problem.rs crates/balance/src/solve.rs Cargo.toml

crates/balance/src/lib.rs:
crates/balance/src/problem.rs:
crates/balance/src/solve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
