/root/repo/target/debug/deps/property_models-205aec3574b87420.d: tests/property_models.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_models-205aec3574b87420.rmeta: tests/property_models.rs Cargo.toml

tests/property_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
