/root/repo/target/debug/deps/valpipe_core-1f526adcc123e6f3.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/forall.rs crates/core/src/fuse.rs crates/core/src/foriter.rs crates/core/src/loops.rs crates/core/src/options.rs crates/core/src/predict.rs crates/core/src/program.rs crates/core/src/synth.rs crates/core/src/tests.rs crates/core/src/timestep.rs crates/core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libvalpipe_core-1f526adcc123e6f3.rmeta: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/forall.rs crates/core/src/fuse.rs crates/core/src/foriter.rs crates/core/src/loops.rs crates/core/src/options.rs crates/core/src/predict.rs crates/core/src/program.rs crates/core/src/synth.rs crates/core/src/tests.rs crates/core/src/timestep.rs crates/core/src/verify.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/error.rs:
crates/core/src/forall.rs:
crates/core/src/fuse.rs:
crates/core/src/foriter.rs:
crates/core/src/loops.rs:
crates/core/src/options.rs:
crates/core/src/predict.rs:
crates/core/src/program.rs:
crates/core/src/synth.rs:
crates/core/src/tests.rs:
crates/core/src/timestep.rs:
crates/core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
