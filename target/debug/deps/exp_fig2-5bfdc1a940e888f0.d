/root/repo/target/debug/deps/exp_fig2-5bfdc1a940e888f0.d: crates/bench/src/bin/exp_fig2.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig2-5bfdc1a940e888f0.rmeta: crates/bench/src/bin/exp_fig2.rs Cargo.toml

crates/bench/src/bin/exp_fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
