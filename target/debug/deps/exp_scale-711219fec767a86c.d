/root/repo/target/debug/deps/exp_scale-711219fec767a86c.d: crates/bench/src/bin/exp_scale.rs

/root/repo/target/debug/deps/exp_scale-711219fec767a86c: crates/bench/src/bin/exp_scale.rs

crates/bench/src/bin/exp_scale.rs:
