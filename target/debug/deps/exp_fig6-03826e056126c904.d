/root/repo/target/debug/deps/exp_fig6-03826e056126c904.d: crates/bench/src/bin/exp_fig6.rs

/root/repo/target/debug/deps/exp_fig6-03826e056126c904: crates/bench/src/bin/exp_fig6.rs

crates/bench/src/bin/exp_fig6.rs:
