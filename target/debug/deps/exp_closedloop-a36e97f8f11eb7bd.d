/root/repo/target/debug/deps/exp_closedloop-a36e97f8f11eb7bd.d: crates/bench/src/bin/exp_closedloop.rs Cargo.toml

/root/repo/target/debug/deps/libexp_closedloop-a36e97f8f11eb7bd.rmeta: crates/bench/src/bin/exp_closedloop.rs Cargo.toml

crates/bench/src/bin/exp_closedloop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
