/root/repo/target/debug/deps/valpipe_ir-b7671d4001fec88a.d: crates/ir/src/lib.rs crates/ir/src/ctl.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/opcode.rs crates/ir/src/pretty.rs crates/ir/src/serialize.rs crates/ir/src/validate.rs crates/ir/src/value.rs

/root/repo/target/debug/deps/libvalpipe_ir-b7671d4001fec88a.rlib: crates/ir/src/lib.rs crates/ir/src/ctl.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/opcode.rs crates/ir/src/pretty.rs crates/ir/src/serialize.rs crates/ir/src/validate.rs crates/ir/src/value.rs

/root/repo/target/debug/deps/libvalpipe_ir-b7671d4001fec88a.rmeta: crates/ir/src/lib.rs crates/ir/src/ctl.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/opcode.rs crates/ir/src/pretty.rs crates/ir/src/serialize.rs crates/ir/src/validate.rs crates/ir/src/value.rs

crates/ir/src/lib.rs:
crates/ir/src/ctl.rs:
crates/ir/src/dot.rs:
crates/ir/src/graph.rs:
crates/ir/src/opcode.rs:
crates/ir/src/pretty.rs:
crates/ir/src/serialize.rs:
crates/ir/src/validate.rs:
crates/ir/src/value.rs:
