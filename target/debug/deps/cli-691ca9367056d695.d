/root/repo/target/debug/deps/cli-691ca9367056d695.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-691ca9367056d695.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_valpipe=placeholder:valpipe
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
