/root/repo/target/debug/deps/exp_faults-e130c9f0481b039d.d: crates/bench/src/bin/exp_faults.rs

/root/repo/target/debug/deps/exp_faults-e130c9f0481b039d: crates/bench/src/bin/exp_faults.rs

crates/bench/src/bin/exp_faults.rs:
