/root/repo/target/debug/deps/balance-04e9d324788c4144.d: crates/bench/benches/balance.rs

/root/repo/target/debug/deps/balance-04e9d324788c4144: crates/bench/benches/balance.rs

crates/bench/benches/balance.rs:
