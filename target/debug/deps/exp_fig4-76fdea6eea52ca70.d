/root/repo/target/debug/deps/exp_fig4-76fdea6eea52ca70.d: crates/bench/src/bin/exp_fig4.rs

/root/repo/target/debug/deps/exp_fig4-76fdea6eea52ca70: crates/bench/src/bin/exp_fig4.rs

crates/bench/src/bin/exp_fig4.rs:
