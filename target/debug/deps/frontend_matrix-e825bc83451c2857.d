/root/repo/target/debug/deps/frontend_matrix-e825bc83451c2857.d: crates/val/tests/frontend_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libfrontend_matrix-e825bc83451c2857.rmeta: crates/val/tests/frontend_matrix.rs Cargo.toml

crates/val/tests/frontend_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
