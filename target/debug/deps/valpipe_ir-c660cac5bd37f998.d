/root/repo/target/debug/deps/valpipe_ir-c660cac5bd37f998.d: crates/ir/src/lib.rs crates/ir/src/ctl.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/opcode.rs crates/ir/src/pretty.rs crates/ir/src/serialize.rs crates/ir/src/validate.rs crates/ir/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libvalpipe_ir-c660cac5bd37f998.rmeta: crates/ir/src/lib.rs crates/ir/src/ctl.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/opcode.rs crates/ir/src/pretty.rs crates/ir/src/serialize.rs crates/ir/src/validate.rs crates/ir/src/value.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/ctl.rs:
crates/ir/src/dot.rs:
crates/ir/src/graph.rs:
crates/ir/src/opcode.rs:
crates/ir/src/pretty.rs:
crates/ir/src/serialize.rs:
crates/ir/src/validate.rs:
crates/ir/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
