/root/repo/target/debug/deps/valpipe_core-a9a083e63d487870.d: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/forall.rs crates/core/src/fuse.rs crates/core/src/foriter.rs crates/core/src/loops.rs crates/core/src/options.rs crates/core/src/predict.rs crates/core/src/program.rs crates/core/src/synth.rs crates/core/src/timestep.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libvalpipe_core-a9a083e63d487870.rlib: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/forall.rs crates/core/src/fuse.rs crates/core/src/foriter.rs crates/core/src/loops.rs crates/core/src/options.rs crates/core/src/predict.rs crates/core/src/program.rs crates/core/src/synth.rs crates/core/src/timestep.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libvalpipe_core-a9a083e63d487870.rmeta: crates/core/src/lib.rs crates/core/src/builder.rs crates/core/src/error.rs crates/core/src/forall.rs crates/core/src/fuse.rs crates/core/src/foriter.rs crates/core/src/loops.rs crates/core/src/options.rs crates/core/src/predict.rs crates/core/src/program.rs crates/core/src/synth.rs crates/core/src/timestep.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/builder.rs:
crates/core/src/error.rs:
crates/core/src/forall.rs:
crates/core/src/fuse.rs:
crates/core/src/foriter.rs:
crates/core/src/loops.rs:
crates/core/src/options.rs:
crates/core/src/predict.rs:
crates/core/src/program.rs:
crates/core/src/synth.rs:
crates/core/src/timestep.rs:
crates/core/src/verify.rs:
