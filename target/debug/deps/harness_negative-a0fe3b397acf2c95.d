/root/repo/target/debug/deps/harness_negative-a0fe3b397acf2c95.d: tests/harness_negative.rs Cargo.toml

/root/repo/target/debug/deps/libharness_negative-a0fe3b397acf2c95.rmeta: tests/harness_negative.rs Cargo.toml

tests/harness_negative.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
