/root/repo/target/debug/deps/exp_balance-ea96b41077742077.d: crates/bench/src/bin/exp_balance.rs

/root/repo/target/debug/deps/exp_balance-ea96b41077742077: crates/bench/src/bin/exp_balance.rs

crates/bench/src/bin/exp_balance.rs:
