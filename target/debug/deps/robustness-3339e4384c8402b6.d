/root/repo/target/debug/deps/robustness-3339e4384c8402b6.d: crates/machine/tests/robustness.rs

/root/repo/target/debug/deps/robustness-3339e4384c8402b6: crates/machine/tests/robustness.rs

crates/machine/tests/robustness.rs:
