/root/repo/target/debug/deps/exp_fig3-d32b7369dce87ddb.d: crates/bench/src/bin/exp_fig3.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig3-d32b7369dce87ddb.rmeta: crates/bench/src/bin/exp_fig3.rs Cargo.toml

crates/bench/src/bin/exp_fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
