/root/repo/target/debug/deps/property_models-2ed372d921dba697.d: tests/property_models.rs

/root/repo/target/debug/deps/property_models-2ed372d921dba697: tests/property_models.rs

tests/property_models.rs:
