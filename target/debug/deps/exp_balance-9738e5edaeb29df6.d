/root/repo/target/debug/deps/exp_balance-9738e5edaeb29df6.d: crates/bench/src/bin/exp_balance.rs Cargo.toml

/root/repo/target/debug/deps/libexp_balance-9738e5edaeb29df6.rmeta: crates/bench/src/bin/exp_balance.rs Cargo.toml

crates/bench/src/bin/exp_balance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
