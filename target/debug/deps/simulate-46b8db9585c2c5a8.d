/root/repo/target/debug/deps/simulate-46b8db9585c2c5a8.d: crates/bench/benches/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libsimulate-46b8db9585c2c5a8.rmeta: crates/bench/benches/simulate.rs Cargo.toml

crates/bench/benches/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
