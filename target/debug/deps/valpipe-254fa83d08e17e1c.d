/root/repo/target/debug/deps/valpipe-254fa83d08e17e1c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvalpipe-254fa83d08e17e1c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
