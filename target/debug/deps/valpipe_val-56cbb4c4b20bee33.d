/root/repo/target/debug/deps/valpipe_val-56cbb4c4b20bee33.d: crates/val/src/lib.rs crates/val/src/ast.rs crates/val/src/classify.rs crates/val/src/deps.rs crates/val/src/dims.rs crates/val/src/fold.rs crates/val/src/interp.rs crates/val/src/lexer.rs crates/val/src/linear.rs crates/val/src/parser.rs crates/val/src/pretty.rs crates/val/src/typeck.rs Cargo.toml

/root/repo/target/debug/deps/libvalpipe_val-56cbb4c4b20bee33.rmeta: crates/val/src/lib.rs crates/val/src/ast.rs crates/val/src/classify.rs crates/val/src/deps.rs crates/val/src/dims.rs crates/val/src/fold.rs crates/val/src/interp.rs crates/val/src/lexer.rs crates/val/src/linear.rs crates/val/src/parser.rs crates/val/src/pretty.rs crates/val/src/typeck.rs Cargo.toml

crates/val/src/lib.rs:
crates/val/src/ast.rs:
crates/val/src/classify.rs:
crates/val/src/deps.rs:
crates/val/src/dims.rs:
crates/val/src/fold.rs:
crates/val/src/interp.rs:
crates/val/src/lexer.rs:
crates/val/src/linear.rs:
crates/val/src/parser.rs:
crates/val/src/pretty.rs:
crates/val/src/typeck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
