/root/repo/target/debug/deps/exp_fig6-a4e450b8455f7888.d: crates/bench/src/bin/exp_fig6.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig6-a4e450b8455f7888.rmeta: crates/bench/src/bin/exp_fig6.rs Cargo.toml

crates/bench/src/bin/exp_fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
