/root/repo/target/debug/deps/exp_fig6-8da3cbb9abd61fde.d: crates/bench/src/bin/exp_fig6.rs

/root/repo/target/debug/deps/exp_fig6-8da3cbb9abd61fde: crates/bench/src/bin/exp_fig6.rs

crates/bench/src/bin/exp_fig6.rs:
