/root/repo/target/debug/deps/compile-e311fcc1ae5ec6d5.d: crates/bench/benches/compile.rs Cargo.toml

/root/repo/target/debug/deps/libcompile-e311fcc1ae5ec6d5.rmeta: crates/bench/benches/compile.rs Cargo.toml

crates/bench/benches/compile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
