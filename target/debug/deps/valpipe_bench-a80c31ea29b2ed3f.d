/root/repo/target/debug/deps/valpipe_bench-a80c31ea29b2ed3f.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/timing.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/valpipe_bench-a80c31ea29b2ed3f: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/timing.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/timing.rs:
crates/bench/src/workloads.rs:
