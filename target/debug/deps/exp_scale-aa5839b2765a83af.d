/root/repo/target/debug/deps/exp_scale-aa5839b2765a83af.d: crates/bench/src/bin/exp_scale.rs Cargo.toml

/root/repo/target/debug/deps/libexp_scale-aa5839b2765a83af.rmeta: crates/bench/src/bin/exp_scale.rs Cargo.toml

crates/bench/src/bin/exp_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
