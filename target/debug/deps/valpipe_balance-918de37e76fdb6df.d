/root/repo/target/debug/deps/valpipe_balance-918de37e76fdb6df.d: crates/balance/src/lib.rs crates/balance/src/problem.rs crates/balance/src/solve.rs

/root/repo/target/debug/deps/valpipe_balance-918de37e76fdb6df: crates/balance/src/lib.rs crates/balance/src/problem.rs crates/balance/src/solve.rs

crates/balance/src/lib.rs:
crates/balance/src/problem.rs:
crates/balance/src/solve.rs:
