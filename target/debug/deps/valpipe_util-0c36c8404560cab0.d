/root/repo/target/debug/deps/valpipe_util-0c36c8404560cab0.d: crates/util/src/lib.rs crates/util/src/json.rs crates/util/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libvalpipe_util-0c36c8404560cab0.rmeta: crates/util/src/lib.rs crates/util/src/json.rs crates/util/src/rng.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/json.rs:
crates/util/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
