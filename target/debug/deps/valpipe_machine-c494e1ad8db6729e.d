/root/repo/target/debug/deps/valpipe_machine-c494e1ad8db6729e.d: crates/machine/src/lib.rs crates/machine/src/arch.rs crates/machine/src/closedloop.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/network.rs crates/machine/src/sim.rs crates/machine/src/trace.rs crates/machine/src/watchdog.rs

/root/repo/target/debug/deps/valpipe_machine-c494e1ad8db6729e: crates/machine/src/lib.rs crates/machine/src/arch.rs crates/machine/src/closedloop.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/network.rs crates/machine/src/sim.rs crates/machine/src/trace.rs crates/machine/src/watchdog.rs

crates/machine/src/lib.rs:
crates/machine/src/arch.rs:
crates/machine/src/closedloop.rs:
crates/machine/src/error.rs:
crates/machine/src/fault.rs:
crates/machine/src/network.rs:
crates/machine/src/sim.rs:
crates/machine/src/trace.rs:
crates/machine/src/watchdog.rs:
