/root/repo/target/debug/deps/property_synth-48a388e31de77a70.d: tests/property_synth.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_synth-48a388e31de77a70.rmeta: tests/property_synth.rs Cargo.toml

tests/property_synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
