/root/repo/target/debug/deps/exp_balance-b9a6e3bb141200ee.d: crates/bench/src/bin/exp_balance.rs

/root/repo/target/debug/deps/exp_balance-b9a6e3bb141200ee: crates/bench/src/bin/exp_balance.rs

crates/bench/src/bin/exp_balance.rs:
