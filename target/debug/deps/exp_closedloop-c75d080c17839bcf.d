/root/repo/target/debug/deps/exp_closedloop-c75d080c17839bcf.d: crates/bench/src/bin/exp_closedloop.rs

/root/repo/target/debug/deps/exp_closedloop-c75d080c17839bcf: crates/bench/src/bin/exp_closedloop.rs

crates/bench/src/bin/exp_closedloop.rs:
