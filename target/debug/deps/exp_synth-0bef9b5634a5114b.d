/root/repo/target/debug/deps/exp_synth-0bef9b5634a5114b.d: crates/bench/src/bin/exp_synth.rs Cargo.toml

/root/repo/target/debug/deps/libexp_synth-0bef9b5634a5114b.rmeta: crates/bench/src/bin/exp_synth.rs Cargo.toml

crates/bench/src/bin/exp_synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
