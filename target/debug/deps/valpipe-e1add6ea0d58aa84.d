/root/repo/target/debug/deps/valpipe-e1add6ea0d58aa84.d: src/bin/valpipe.rs Cargo.toml

/root/repo/target/debug/deps/libvalpipe-e1add6ea0d58aa84.rmeta: src/bin/valpipe.rs Cargo.toml

src/bin/valpipe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
