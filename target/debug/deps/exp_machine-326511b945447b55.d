/root/repo/target/debug/deps/exp_machine-326511b945447b55.d: crates/bench/src/bin/exp_machine.rs

/root/repo/target/debug/deps/exp_machine-326511b945447b55: crates/bench/src/bin/exp_machine.rs

crates/bench/src/bin/exp_machine.rs:
