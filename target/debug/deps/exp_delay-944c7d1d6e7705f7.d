/root/repo/target/debug/deps/exp_delay-944c7d1d6e7705f7.d: crates/bench/src/bin/exp_delay.rs Cargo.toml

/root/repo/target/debug/deps/libexp_delay-944c7d1d6e7705f7.rmeta: crates/bench/src/bin/exp_delay.rs Cargo.toml

crates/bench/src/bin/exp_delay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
