/root/repo/target/debug/deps/exp_predict-a7b9cd4b45e0d7ed.d: crates/bench/src/bin/exp_predict.rs

/root/repo/target/debug/deps/exp_predict-a7b9cd4b45e0d7ed: crates/bench/src/bin/exp_predict.rs

crates/bench/src/bin/exp_predict.rs:
