/root/repo/target/debug/deps/robustness-5dba0c19273174ad.d: crates/machine/tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-5dba0c19273174ad.rmeta: crates/machine/tests/robustness.rs Cargo.toml

crates/machine/tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
