/root/repo/target/debug/deps/exp_fig7_fig8-68840cacbd57ee09.d: crates/bench/src/bin/exp_fig7_fig8.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig7_fig8-68840cacbd57ee09.rmeta: crates/bench/src/bin/exp_fig7_fig8.rs Cargo.toml

crates/bench/src/bin/exp_fig7_fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
