/root/repo/target/debug/deps/exp_fig5-b010744b93775ea9.d: crates/bench/src/bin/exp_fig5.rs

/root/repo/target/debug/deps/exp_fig5-b010744b93775ea9: crates/bench/src/bin/exp_fig5.rs

crates/bench/src/bin/exp_fig5.rs:
