/root/repo/target/debug/deps/valpipe-428a552bd483758d.d: src/lib.rs

/root/repo/target/debug/deps/valpipe-428a552bd483758d: src/lib.rs

src/lib.rs:
