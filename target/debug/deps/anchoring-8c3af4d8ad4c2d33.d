/root/repo/target/debug/deps/anchoring-8c3af4d8ad4c2d33.d: crates/balance/tests/anchoring.rs Cargo.toml

/root/repo/target/debug/deps/libanchoring-8c3af4d8ad4c2d33.rmeta: crates/balance/tests/anchoring.rs Cargo.toml

crates/balance/tests/anchoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
