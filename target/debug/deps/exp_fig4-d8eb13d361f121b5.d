/root/repo/target/debug/deps/exp_fig4-d8eb13d361f121b5.d: crates/bench/src/bin/exp_fig4.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig4-d8eb13d361f121b5.rmeta: crates/bench/src/bin/exp_fig4.rs Cargo.toml

crates/bench/src/bin/exp_fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
