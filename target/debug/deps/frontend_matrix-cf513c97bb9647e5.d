/root/repo/target/debug/deps/frontend_matrix-cf513c97bb9647e5.d: crates/val/tests/frontend_matrix.rs

/root/repo/target/debug/deps/frontend_matrix-cf513c97bb9647e5: crates/val/tests/frontend_matrix.rs

crates/val/tests/frontend_matrix.rs:
