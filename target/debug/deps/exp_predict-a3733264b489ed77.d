/root/repo/target/debug/deps/exp_predict-a3733264b489ed77.d: crates/bench/src/bin/exp_predict.rs

/root/repo/target/debug/deps/exp_predict-a3733264b489ed77: crates/bench/src/bin/exp_predict.rs

crates/bench/src/bin/exp_predict.rs:
