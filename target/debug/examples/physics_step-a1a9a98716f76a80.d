/root/repo/target/debug/examples/physics_step-a1a9a98716f76a80.d: examples/physics_step.rs Cargo.toml

/root/repo/target/debug/examples/libphysics_step-a1a9a98716f76a80.rmeta: examples/physics_step.rs Cargo.toml

examples/physics_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
