/root/repo/target/debug/examples/iir_filter_bank-751fcaabbee84ebf.d: examples/iir_filter_bank.rs Cargo.toml

/root/repo/target/debug/examples/libiir_filter_bank-751fcaabbee84ebf.rmeta: examples/iir_filter_bank.rs Cargo.toml

examples/iir_filter_bank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
