/root/repo/target/debug/examples/jacobi2d-bd3bf0ea4c94db02.d: examples/jacobi2d.rs

/root/repo/target/debug/examples/jacobi2d-bd3bf0ea4c94db02: examples/jacobi2d.rs

examples/jacobi2d.rs:
