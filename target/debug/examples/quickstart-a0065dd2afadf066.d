/root/repo/target/debug/examples/quickstart-a0065dd2afadf066.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a0065dd2afadf066.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
