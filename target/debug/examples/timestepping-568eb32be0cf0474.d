/root/repo/target/debug/examples/timestepping-568eb32be0cf0474.d: examples/timestepping.rs Cargo.toml

/root/repo/target/debug/examples/libtimestepping-568eb32be0cf0474.rmeta: examples/timestepping.rs Cargo.toml

examples/timestepping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
