/root/repo/target/debug/examples/physics_step-91b71bb8eb5d873d.d: examples/physics_step.rs

/root/repo/target/debug/examples/physics_step-91b71bb8eb5d873d: examples/physics_step.rs

examples/physics_step.rs:
