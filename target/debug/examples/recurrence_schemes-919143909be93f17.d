/root/repo/target/debug/examples/recurrence_schemes-919143909be93f17.d: examples/recurrence_schemes.rs

/root/repo/target/debug/examples/recurrence_schemes-919143909be93f17: examples/recurrence_schemes.rs

examples/recurrence_schemes.rs:
