/root/repo/target/debug/examples/iir_filter_bank-dc2b028ffc15b676.d: examples/iir_filter_bank.rs

/root/repo/target/debug/examples/iir_filter_bank-dc2b028ffc15b676: examples/iir_filter_bank.rs

examples/iir_filter_bank.rs:
