/root/repo/target/debug/examples/smoothing_pipeline-7bff4089810f93db.d: examples/smoothing_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libsmoothing_pipeline-7bff4089810f93db.rmeta: examples/smoothing_pipeline.rs Cargo.toml

examples/smoothing_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
