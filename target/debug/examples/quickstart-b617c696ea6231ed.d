/root/repo/target/debug/examples/quickstart-b617c696ea6231ed.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b617c696ea6231ed: examples/quickstart.rs

examples/quickstart.rs:
