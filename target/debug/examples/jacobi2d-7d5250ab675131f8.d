/root/repo/target/debug/examples/jacobi2d-7d5250ab675131f8.d: examples/jacobi2d.rs Cargo.toml

/root/repo/target/debug/examples/libjacobi2d-7d5250ab675131f8.rmeta: examples/jacobi2d.rs Cargo.toml

examples/jacobi2d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
