/root/repo/target/debug/examples/timestepping-1e2293764cef414a.d: examples/timestepping.rs

/root/repo/target/debug/examples/timestepping-1e2293764cef414a: examples/timestepping.rs

examples/timestepping.rs:
