/root/repo/target/debug/examples/smoothing_pipeline-5be493631aa20750.d: examples/smoothing_pipeline.rs

/root/repo/target/debug/examples/smoothing_pipeline-5be493631aa20750: examples/smoothing_pipeline.rs

examples/smoothing_pipeline.rs:
