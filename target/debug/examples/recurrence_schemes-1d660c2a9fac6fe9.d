/root/repo/target/debug/examples/recurrence_schemes-1d660c2a9fac6fe9.d: examples/recurrence_schemes.rs Cargo.toml

/root/repo/target/debug/examples/librecurrence_schemes-1d660c2a9fac6fe9.rmeta: examples/recurrence_schemes.rs Cargo.toml

examples/recurrence_schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
