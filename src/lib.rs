//! # valpipe — Maximum Pipelining of Array Operations on a Static Data Flow Machine
//!
//! A full reproduction of Dennis & Gao (ICPP 1983): a compiler from
//! pipe-structured **Val** programs (`forall` / `for-iter` blocks over
//! arrays) to machine-level **static data flow** code that runs *fully
//! pipelined* — one result per two instruction times — together with the
//! machine simulator, balancing algorithms, and reference interpreter
//! needed to demonstrate it.
//!
//! The facade re-exports the per-crate APIs:
//!
//! * [`val`] — language frontend (parser, type checker, classifiers,
//!   companion-function derivation, interpreter oracle);
//! * [`ir`] — the dataflow instruction-graph IR;
//! * [`machine`] — token/acknowledge simulator + detailed PE/FU/AM model;
//! * [`balance`] — ASAP / heuristic / optimal (min-cost-flow dual)
//!   pipeline balancing;
//! * [`compiler`] — the paper's contribution: Theorems 1–4 as code.
//!
//! See `examples/quickstart.rs` for a three-minute tour.

#![warn(missing_docs)]

pub use valpipe_balance as balance;
pub use valpipe_core as compiler;
pub use valpipe_ir as ir;
pub use valpipe_machine as machine;
pub use valpipe_val as val;

pub use valpipe_core::{
    compile_source, compile_source_limited, compile_source_named, CompileError, CompileLimits,
    CompileOptions, Compiled, ForIterScheme, LimitBreach, PassManager, QueryEngine, QueryStats,
    Stage,
};
pub use valpipe_machine::{
    render_error, render_stall, Driven, ExecMode, FastForwardStats, Kernel, ProgramInputs,
    RunResult, RunSpec, Session, SessionBuilder, SimConfig, Simulator, Snapshot, SnapshotError,
    Timing,
};
pub use valpipe_val::interp::ArrayVal;
