//! `valpipe` — command-line driver.
//!
//! ```text
//! valpipe compile <file.val> [--todd|--companion] [--synth] [--asap|--no-balance] [--json]
//! valpipe run     <file.val> [options] [--waves N] [--input NAME=v1,v2,…]
//! valpipe dot     <file.val> [options]
//! valpipe check   <file.val>
//! ```
//!
//! `compile` prints the machine-code listing; `run` simulates the program
//! (random inputs unless `--input` is given) and reports per-output rates;
//! `dot` emits Graphviz; `check` parses/classifies only.
//!
//! Every subcommand accepts `--emit=ast,typed,ir,balanced,machine` (stage
//! dumps on stdout, deterministic) and `--pass-stats` (per-pass wall time
//! and growth table on stderr).

use std::collections::HashMap;
use std::process::ExitCode;
use valpipe::compiler::render_pass_stats;
use valpipe::compiler::verify::check_against_oracle;
use valpipe::{
    ArrayVal, CompileError, CompileLimits, CompileOptions, ForIterScheme, PassManager, QueryEngine,
    Stage,
};
use valpipe_balance::BalanceMode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: valpipe <compile|run|dot|check> <file.val> \
         [--todd|--companion] [--synth] [--asap|--no-balance] \
         [--waves N] [--am] [--input NAME=v1,v2,...] \
         [--emit=ast,typed,ir,balanced,machine] [--pass-stats] \
         [--incremental] \
         [--limits k=v,... (source-bytes,depth,cells,arcs,fifo,millis; 'none' lifts)]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return usage();
    }
    let cmd = args[0].as_str();
    let path = &args[1];
    let mut opts = CompileOptions::paper();
    let mut waves = 20usize;
    let mut emit_json = false;
    let mut emit_stages: Vec<Stage> = Vec::new();
    let mut pass_stats = false;
    let mut incremental = false;
    let mut user_inputs: HashMap<String, Vec<f64>> = HashMap::new();
    let mut limits = CompileLimits::default();
    let mut k = 2;
    while k < args.len() {
        match args[k].as_str() {
            "--todd" => opts.scheme = ForIterScheme::Todd,
            "--companion" => opts.scheme = ForIterScheme::Companion,
            "--synth" => opts.synthesize_generators = true,
            "--asap" => opts.balance = BalanceMode::Asap,
            "--no-balance" => opts.balance = BalanceMode::None,
            "--am" => opts.am_boundary = true,
            "--json" => emit_json = true,
            "--pass-stats" => pass_stats = true,
            "--incremental" => incremental = true,
            s if s.starts_with("--emit=") => match Stage::parse_list(&s["--emit=".len()..]) {
                Ok(v) => emit_stages = v,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            },
            "--limits" => {
                k += 1;
                let Some(spec) = args.get(k) else {
                    return usage();
                };
                match limits.apply_spec(spec) {
                    Ok(l) => limits = l,
                    Err(e) => {
                        eprintln!("bad --limits: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--waves" => {
                k += 1;
                waves = args.get(k).and_then(|s| s.parse().ok()).unwrap_or(20);
            }
            "--input" => {
                k += 1;
                let Some(spec) = args.get(k) else {
                    return usage();
                };
                let Some((name, vals)) = spec.split_once('=') else {
                    return usage();
                };
                let vals: Result<Vec<f64>, _> = vals.split(',').map(str::parse).collect();
                match vals {
                    Ok(v) => {
                        user_inputs.insert(name.to_string(), v);
                    }
                    Err(e) => {
                        eprintln!("bad --input values: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown option '{other}'");
                return usage();
            }
        }
        k += 1;
    }

    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // `--incremental` compiles through a disk-backed query engine: per-block
    // artifacts persist in `.valpipe-cache/` between invocations, so a
    // recompile after a small edit re-executes only the touched queries.
    // The output is bit-identical to a cold compile either way.
    let result = if incremental {
        let mut engine = QueryEngine::with_disk_cache(".valpipe-cache");
        let r = engine.run_source(&opts, &limits, &emit_stages, &src, path);
        eprintln!("{}", engine.stats().render());
        r
    } else {
        PassManager::new(&opts)
            .limits(limits)
            .emit_all(&emit_stages)
            .run_source(&src, path)
    };
    let out = match result {
        Ok(o) => o,
        // Limit breaches get a distinct, machine-grepable line and exit
        // code so scripts can tell "program too big" from "won't compile".
        Err(CompileError::Limit(b)) => {
            eprintln!("resource_limit: {b}");
            return ExitCode::from(3);
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if pass_stats {
        eprint!("{}", render_pass_stats(&out.pass_stats));
    }
    for (stage, dump) in &out.dumps {
        println!("==== {stage} ====");
        print!("{dump}");
        if !dump.ends_with('\n') {
            println!();
        }
    }
    let compiled = out.compiled;

    match cmd {
        "check" => {
            println!(
                "ok: {} blocks, {} cells",
                compiled.flow.blocks.len(),
                compiled.graph.node_count()
            );
            for b in &compiled.flow.blocks {
                println!("  block {} over [{}, {}]", b.name, b.range.0, b.range.1);
            }
            ExitCode::SUCCESS
        }
        "compile" => {
            if emit_json {
                print!("{}", compiled.graph.to_json());
            } else {
                println!("{}", valpipe::ir::pretty::summary(&compiled.graph));
                print!("{}", valpipe::ir::pretty::listing(&compiled.graph));
            }
            ExitCode::SUCCESS
        }
        "dot" => {
            print!("{}", valpipe::ir::dot::to_dot(&compiled.graph, path));
            ExitCode::SUCCESS
        }
        "run" => {
            // Build inputs: user-specified or deterministic pseudo-random.
            let mut arrays = HashMap::new();
            for (name, (lo, hi)) in &compiled.flow.inputs {
                let len = (hi - lo + 1) as usize;
                let vals = if let Some(v) = user_inputs.get(name) {
                    if v.len() != len {
                        eprintln!("input '{name}' needs {len} values, got {}", v.len());
                        return ExitCode::FAILURE;
                    }
                    v.clone()
                } else {
                    (0..len)
                        .map(|i| (i as f64 * 0.37).sin() * 0.5 + 0.5)
                        .collect()
                };
                arrays.insert(name.clone(), ArrayVal::from_reals(*lo, &vals));
            }
            match check_against_oracle(&compiled, &arrays, waves, 1e-8) {
                Ok(report) => {
                    println!(
                        "verified {} packets against the interpreter (max rel err {:.2e})",
                        report.packets_checked, report.max_rel_err
                    );
                    for out in &compiled.program.outputs {
                        match report.run.timing(out).interval() {
                            Some(iv) => {
                                let fill = report.run.fill_latency(out).unwrap_or(0);
                                println!(
                                    "output {out}: interval {iv:.3} instruction times \
                                     (rate {:.4}, fill latency {fill})",
                                    1.0 / iv
                                )
                            }
                            None => println!("output {out}: too few packets for a rate"),
                        }
                    }
                    if opts.am_boundary {
                        println!(
                            "array-memory traffic: {:.2}% of {} operation packets",
                            report.run.am_traffic_fraction() * 100.0,
                            report.run.total_fires
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("run failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
