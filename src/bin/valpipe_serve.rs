//! `valpipe-serve` — the fault-tolerant multi-tenant simulation service.
//!
//! ```text
//! valpipe-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!               [--max-live N] [--dir PATH] [--seed N] [--chunk N]
//! ```
//!
//! Accepts line-delimited JSON requests over TCP (see DESIGN.md §13 and
//! the README's "Running the service" walkthrough). On startup it scans
//! the hibernation directory, discards torn temporary files, and
//! re-registers every valid session container, then prints
//! `listening on <addr>` and serves until a `shutdown` request drains
//! the queue and hibernates all live sessions.

use std::path::PathBuf;
use std::process::ExitCode;
use valpipe_serve::{ServeConfig, Server};

fn usage() -> ExitCode {
    eprintln!(
        "usage: valpipe-serve [--addr HOST:PORT] [--workers N] [--queue N] \
         [--max-live N] [--dir PATH] [--seed N] [--chunk N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::default();
    let mut k = 0;
    while k < args.len() {
        let take = |k: &mut usize| -> Option<String> {
            *k += 1;
            args.get(*k).cloned()
        };
        match args[k].as_str() {
            "--addr" => match take(&mut k) {
                Some(a) => cfg.addr = a,
                None => return usage(),
            },
            "--workers" => match take(&mut k).and_then(|s| s.parse().ok()) {
                Some(n) => cfg.workers = n,
                None => return usage(),
            },
            "--queue" => match take(&mut k).and_then(|s| s.parse().ok()) {
                Some(n) => cfg.queue_cap = n,
                None => return usage(),
            },
            "--max-live" => match take(&mut k).and_then(|s| s.parse().ok()) {
                Some(n) => cfg.max_live = n,
                None => return usage(),
            },
            "--dir" => match take(&mut k) {
                Some(d) => cfg.hibernate_dir = PathBuf::from(d),
                None => return usage(),
            },
            "--seed" => match take(&mut k).and_then(|s| s.parse().ok()) {
                Some(n) => cfg.seed = n,
                None => return usage(),
            },
            "--chunk" => match take(&mut k).and_then(|s| s.parse().ok()) {
                Some(n) => cfg.step_chunk = n,
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            other => {
                eprintln!("unknown option '{other}'");
                return usage();
            }
        }
        k += 1;
    }

    let (server, recovery) = match Server::bind(cfg) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("valpipe-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    for name in &recovery.recovered {
        eprintln!("recovered session '{name}' from hibernation");
    }
    for f in &recovery.swept_tmp {
        eprintln!("swept stale temporary '{f}'");
    }
    for (f, why) in &recovery.skipped {
        eprintln!("skipped invalid container '{f}': {why}");
    }
    match server.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("valpipe-serve: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("valpipe-serve: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
