//! Property tests for the balancing algorithms (paper §8): on random
//! layered DAGs, all three solvers produce feasible potentials, the
//! optimum never uses more buffers than the heuristic, which never uses
//! more than ASAP — and applying any of them yields a machine program that
//! actually runs at the maximum rate.

use proptest::prelude::*;
use valpipe::balance::{problem, solve};
use valpipe::ir::{Graph, Opcode, Value};
use valpipe::machine::{ProgramInputs, SimOptions, Simulator};

/// A random layered DAG of arithmetic cells: layer 0 is `srcs` sources;
/// every later node reads 1–2 earlier nodes; terminal nodes each get a
/// sink. `picks` drives the random wiring (proptest-shrinkable).
fn build_dag(srcs: usize, layers: &[Vec<(usize, usize)>]) -> Graph {
    let mut g = Graph::new();
    let mut pool: Vec<valpipe::ir::NodeId> = (0..srcs)
        .map(|k| g.add_node(Opcode::Source(format!("s{k}")), format!("s{k}")))
        .collect();
    for (li, layer) in layers.iter().enumerate() {
        let mut next = Vec::new();
        for (ni, &(p1, p2)) in layer.iter().enumerate() {
            let a = pool[p1 % pool.len()];
            let b = pool[p2 % pool.len()];
            let node = if p1 % 3 == 0 || a == b {
                g.cell(Opcode::Id, format!("n{li}_{ni}"), &[a.into()])
            } else {
                g.cell(
                    Opcode::Bin(valpipe::ir::BinOp::Add),
                    format!("n{li}_{ni}"),
                    &[a.into(), b.into()],
                )
            };
            next.push(node);
        }
        // Keep earlier nodes reachable as inputs for later layers.
        pool.extend(next);
    }
    // Terminal nodes (no consumers) each drain into a sink.
    for id in g.node_ids().collect::<Vec<_>>() {
        if g.nodes[id.idx()].op.produces_output() && g.nodes[id.idx()].outputs.is_empty() {
            let name = format!("out{}", id.idx());
            let s = g.add_node(Opcode::Sink(name.clone()), name);
            g.connect(id, s, 0);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn solver_hierarchy_feasible_and_ordered(
        srcs in 1usize..4,
        layers in proptest::collection::vec(
            proptest::collection::vec((0usize..64, 0usize..64), 1..5),
            1..5,
        ),
    ) {
        let g = build_dag(srcs, &layers);
        let p = problem::extract(&g).expect("acyclic");
        let asap = solve::solve_asap(&p);
        let heur = solve::solve_heuristic(&p, 64);
        let opt = solve::solve_optimal(&p);
        prop_assert!(asap.is_feasible(&p));
        prop_assert!(heur.is_feasible(&p));
        prop_assert!(opt.is_feasible(&p));
        prop_assert!(heur.total_buffers <= asap.total_buffers,
            "heuristic {} > asap {}", heur.total_buffers, asap.total_buffers);
        prop_assert!(opt.total_buffers <= heur.total_buffers,
            "optimal {} > heuristic {}", opt.total_buffers, heur.total_buffers);
    }

    #[test]
    fn optimally_balanced_dag_runs_at_maximum_rate(
        srcs in 1usize..3,
        layers in proptest::collection::vec(
            proptest::collection::vec((0usize..64, 0usize..64), 1..4),
            1..4,
        ),
    ) {
        let mut g = build_dag(srcs, &layers);
        let p = problem::extract(&g).expect("acyclic");
        let sol = solve::solve_optimal(&p);
        problem::apply(&mut g, &p, &sol);
        g.expand_fifos();

        let n = 120usize;
        let mut inputs = ProgramInputs::new();
        for (_, name) in g.sources() {
            inputs = inputs.bind(
                name.clone(),
                (0..n).map(|k| Value::Real(k as f64 * 0.01)).collect(),
            );
        }
        let r = Simulator::new(&g, &inputs, SimOptions::default())
            .unwrap()
            .run()
            .unwrap();
        prop_assert!(r.sources_exhausted, "balanced DAG must drain");
        // Every sink sees the fully pipelined interval of 2.
        for (_, name) in g.sinks() {
            let times: Vec<u64> = r.outputs[&name].iter().map(|&(t, _)| t).collect();
            if let Some(iv) = valpipe::machine::steady_interval_of(&times) {
                prop_assert!((iv - 2.0).abs() < 0.05,
                    "sink {name} interval {iv} after optimal balancing");
            }
        }
    }
}
