//! Property tests for the balancing algorithms (paper §8): on random
//! layered DAGs, all three solvers produce feasible potentials, the
//! optimum never uses more buffers than the heuristic, which never uses
//! more than ASAP — and applying any of them yields a machine program that
//! actually runs at the maximum rate.

use valpipe::balance::{problem, solve};
use valpipe::ir::{Graph, Opcode, Value};
use valpipe::machine::{ProgramInputs, Simulator};
use valpipe_util::Rng;

/// A random layered DAG of arithmetic cells: layer 0 is `srcs` sources;
/// every later node reads 1–2 earlier nodes; terminal nodes each get a
/// sink. `picks` drives the random wiring.
fn build_dag(srcs: usize, layers: &[Vec<(usize, usize)>]) -> Graph {
    let mut g = Graph::new();
    let mut pool: Vec<valpipe::ir::NodeId> = (0..srcs)
        .map(|k| g.add_node(Opcode::Source(format!("s{k}")), format!("s{k}")))
        .collect();
    for (li, layer) in layers.iter().enumerate() {
        let mut next = Vec::new();
        for (ni, &(p1, p2)) in layer.iter().enumerate() {
            let a = pool[p1 % pool.len()];
            let b = pool[p2 % pool.len()];
            let node = if p1 % 3 == 0 || a == b {
                g.cell(Opcode::Id, format!("n{li}_{ni}"), &[a.into()])
            } else {
                g.cell(
                    Opcode::Bin(valpipe::ir::BinOp::Add),
                    format!("n{li}_{ni}"),
                    &[a.into(), b.into()],
                )
            };
            next.push(node);
        }
        // Keep earlier nodes reachable as inputs for later layers.
        pool.extend(next);
    }
    // Terminal nodes (no consumers) each drain into a sink.
    for id in g.node_ids().collect::<Vec<_>>() {
        if g.nodes[id.idx()].op.produces_output() && g.nodes[id.idx()].outputs.is_empty() {
            let name = format!("out{}", id.idx());
            let s = g.add_node(Opcode::Sink(name.clone()), name);
            g.connect(id, s, 0);
        }
    }
    g
}

fn random_layers(r: &mut Rng, max_layers: usize, max_width: usize) -> Vec<Vec<(usize, usize)>> {
    (0..r.range(1, max_layers))
        .map(|_| {
            (0..r.range(1, max_width))
                .map(|_| (r.below(64), r.below(64)))
                .collect()
        })
        .collect()
}

#[test]
fn solver_hierarchy_feasible_and_ordered() {
    for case in 0..40u64 {
        let mut r = Rng::seed(0x3001).fork(case);
        let srcs = r.range(1, 4);
        let layers = random_layers(&mut r, 5, 5);
        let g = build_dag(srcs, &layers);
        let p = problem::extract(&g).expect("acyclic");
        let asap = solve::solve_asap(&p);
        let heur = solve::solve_heuristic(&p, 64);
        let opt = solve::solve_optimal(&p);
        assert!(asap.is_feasible(&p));
        assert!(heur.is_feasible(&p));
        assert!(opt.is_feasible(&p));
        assert!(
            heur.total_buffers <= asap.total_buffers,
            "heuristic {} > asap {}",
            heur.total_buffers,
            asap.total_buffers
        );
        assert!(
            opt.total_buffers <= heur.total_buffers,
            "optimal {} > heuristic {}",
            opt.total_buffers,
            heur.total_buffers
        );
    }
}

#[test]
fn optimally_balanced_dag_runs_at_maximum_rate() {
    for case in 0..40u64 {
        let mut r = Rng::seed(0x3002).fork(case);
        let srcs = r.range(1, 3);
        let layers = random_layers(&mut r, 4, 4);
        let mut g = build_dag(srcs, &layers);
        let p = problem::extract(&g).expect("acyclic");
        let sol = solve::solve_optimal(&p);
        problem::apply(&mut g, &p, &sol);
        g.expand_fifos();

        let n = 120usize;
        let mut inputs = ProgramInputs::new();
        for (_, name) in g.sources() {
            inputs = inputs.bind(
                name.clone(),
                (0..n).map(|k| Value::Real(k as f64 * 0.01)).collect(),
            );
        }
        let run = Simulator::builder(&g).inputs(inputs).run().unwrap();
        assert!(run.sources_exhausted, "balanced DAG must drain");
        // Every sink sees the fully pipelined interval of 2.
        for (_, name) in g.sinks() {
            if let Some(iv) = run.timing(&name).interval() {
                assert!(
                    (iv - 2.0).abs() < 0.05,
                    "sink {name} interval {iv} after optimal balancing"
                );
            }
        }
    }
}
