//! Property test: the scan, event-driven, and parallel kernels are
//! observationally identical — for random programs under random
//! simulator configurations, the entire `RunResult` (packets, times,
//! fire counts, step count, stop reason, stall report) must be equal
//! bit for bit, with `ParallelEvent` swept at 1, 2, and 4 workers.
//!
//! Two program families:
//!  * random layered DAGs over ADD/MUL/ID cells (arbitrary graph shape),
//!  * random pipe-structured Val programs through the full compiler
//!    (generators, gates, merges, FIFOs, feedback loops).

use std::collections::HashMap;
use valpipe::compiler::verify::stream_inputs;
use valpipe::ir::{BinOp, Graph, Opcode, Value};
use valpipe::machine::{ArcDelays, ProgramInputs, ResourceModel, Simulator, WatchdogConfig};
use valpipe::{compile_source, ArrayVal, CompileOptions, Kernel, SimConfig};
use valpipe_machine::FaultPlan;
use valpipe_util::Rng;

/// Random layered DAG over two sources, ADD/MUL/ID cells, one sink per
/// terminal node.
fn build_dag(r: &mut Rng) -> Graph {
    let mut g = Graph::new();
    let mut pool = vec![
        g.add_node(Opcode::Source("s0".into()), "s0"),
        g.add_node(Opcode::Source("s1".into()), "s1"),
    ];
    for li in 0..r.range(1, 4) {
        let mut next = Vec::new();
        for ni in 0..r.range(1, 4) {
            let a = pool[r.below(pool.len())];
            let b = pool[r.below(pool.len())];
            let node = if a == b {
                g.cell(Opcode::Id, format!("n{li}_{ni}"), &[a.into()])
            } else {
                let op = if r.flip() { BinOp::Mul } else { BinOp::Add };
                g.cell(
                    Opcode::Bin(op),
                    format!("n{li}_{ni}"),
                    &[a.into(), b.into()],
                )
            };
            next.push(node);
        }
        pool.extend(next);
    }
    for id in g.node_ids().collect::<Vec<_>>() {
        if g.nodes[id.idx()].op.produces_output() && g.nodes[id.idx()].outputs.is_empty() {
            let name = format!("out{}", id.idx());
            let s = g.add_node(Opcode::Sink(name.clone()), name);
            g.connect(id, s, 0);
        }
    }
    g
}

/// Random simulator configuration: capacities, per-arc latencies,
/// resource throttles, seeded fault plans, watchdogs, stop conditions.
fn random_config(r: &mut Rng, g: &Graph) -> SimConfig {
    let mut cfg = SimConfig::new()
        .max_steps(200_000)
        .arc_capacity(r.range(1, 4))
        .record_fire_times(r.flip());
    if r.chance(0.5) {
        cfg = cfg.delays(ArcDelays {
            forward: (0..g.arc_count()).map(|_| r.range(1, 4) as u64).collect(),
            ack: (0..g.arc_count()).map(|_| r.range(1, 4) as u64).collect(),
        });
    }
    if r.chance(0.4) {
        let units = r.range(1, 3);
        cfg = cfg.resources(ResourceModel {
            unit_of: (0..g.node_count()).map(|_| r.below(units) as u32).collect(),
            capacity: (0..units).map(|_| r.range(1, 4) as u32).collect(),
        });
    }
    if r.chance(0.4) {
        cfg = cfg.fault_plan(FaultPlan {
            seed: r.next_u64(),
            delay_result: if r.flip() { 0.25 } else { 0.0 },
            delay_result_max: r.range(1, 6) as u64,
            delay_ack: if r.flip() { 0.15 } else { 0.0 },
            delay_ack_max: r.range(1, 4) as u64,
            dup_result: if r.chance(0.3) { 0.05 } else { 0.0 },
            drop_ack: if r.chance(0.25) { 0.1 } else { 0.0 },
            ..Default::default()
        });
    }
    if r.chance(0.3) {
        cfg = cfg.watchdog(WatchdogConfig {
            step_budget: r.range(2_000, 20_000) as u64,
            progress_window: 64,
        });
    }
    cfg = cfg.check_invariants(r.flip());
    cfg
}

fn assert_kernels_agree(g: &Graph, inputs: &ProgramInputs, cfg: SimConfig, ctx: &str) {
    let run = |kernel: Kernel| {
        Simulator::builder(g)
            .inputs(inputs.clone())
            .config(cfg.clone().kernel(kernel))
            .run()
            .unwrap()
    };
    let scan = run(Kernel::Scan);
    for kernel in [
        Kernel::EventDriven,
        Kernel::ParallelEvent(1),
        Kernel::ParallelEvent(2),
        Kernel::ParallelEvent(4),
    ] {
        let other = run(kernel);
        assert_eq!(scan, other, "{kernel:?} disagrees with Scan: {ctx}");
    }
}

#[test]
fn random_dags_random_configs_identical_runs() {
    for case in 0..48u64 {
        let mut r = Rng::seed(0x7001).fork(case);
        let g = build_dag(&mut r);
        let n = r.range(8, 40);
        let inputs = ProgramInputs::new()
            .bind("s0", (0..n).map(|k| Value::Real(k as f64 * 0.5)).collect())
            .bind(
                "s1",
                (0..n).map(|k| Value::Real(1.0 + k as f64 * 0.25)).collect(),
            );
        let cfg = random_config(&mut r, &g);
        assert_kernels_agree(&g, &inputs, cfg, &format!("dag case {case}"));
    }
}

/// Random pipe-structured Val program in the paper's Fig. 3 shape: a
/// chain of boundary-conditioned stencil forall blocks (each compiles
/// to gates + a merge), optionally capped by a first-order for-iter
/// recurrence (which the companion scheme turns into a merge-seeded
/// feedback loop). Coefficients and depth are randomized.
fn random_pipe_source(r: &mut Rng) -> (String, usize, String) {
    let blocks = r.range(1, 4);
    let m = r.range(10, 24);
    let mut src = format!("param m = {m};\ninput S0 : array[real] [0, m+1];\n");
    for k in 1..=blocks {
        let c1 = 0.25 + 0.25 * r.below(3) as f64;
        let c2 = 1.0 + r.below(2) as f64;
        src.push_str(&format!(
            "S{k} : array[real] :=\n  forall i in [0, m+1]\n    P : real :=\n      if (i = 0)|(i = m+1) then S{p}[i]\n      else {c1} * (S{p}[i-1] + {c2}*S{p}[i] + S{p}[i+1])\n      endif;\n  construct P endall;\n",
            p = k - 1,
        ));
    }
    let mut out = format!("S{blocks}");
    if r.flip() {
        let c = 0.25 + 0.25 * r.below(3) as f64;
        src.push_str(&format!(
            "X : array[real] :=\n  for\n    i : integer := 1;\n    T : array[real] := [0: 0.]\n  do\n    let P : real := {c}*S{blocks}[i]*T[i-1] + S0[i]\n    in\n      if i < m then\n        iter\n          T := T[i: P];\n          i := i + 1\n        enditer\n      else T\n      endif\n    endlet\n  endfor;\n",
        ));
        out = "X".into();
    }
    src.push_str(&format!("output {out};\n"));
    (src, m, out)
}

#[test]
fn random_compiled_programs_identical_runs() {
    for case in 0..12u64 {
        let mut r = Rng::seed(0x7002).fork(case);
        let (src, m, _) = random_pipe_source(&mut r);
        let compiled = compile_source(&src, &CompileOptions::paper())
            .unwrap_or_else(|e| panic!("case {case} must compile: {e}\n{src}"));
        let exe = compiled.executable();
        let vals: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut arrays = HashMap::new();
        arrays.insert("S0".to_string(), ArrayVal::from_reals(0, &vals));
        let waves = r.range(3, 8);
        let inputs = stream_inputs(&compiled, &arrays, waves);
        let cfg = random_config(&mut r, &exe);
        assert_kernels_agree(&exe, &inputs, cfg, &format!("compiled case {case}"));
    }
}
