//! Property test for the epoch-batched parallel kernel (DESIGN.md §16):
//! executing whole multi-step epochs per barrier handoff must be
//! observationally invisible. For random programs and random epoch caps
//! K ∈ {1..16}, the entire `RunResult` must equal the scan kernel's bit
//! for bit — under both shard policies, and also when faults, resource
//! throttles, or watchdogs force the engine to fall back to per-step
//! execution (the horizon is unprovable, and the gate must notice).

use std::collections::HashMap;
use valpipe::compiler::verify::stream_inputs;
use valpipe::ir::{BinOp, Graph, Opcode, Value};
use valpipe::machine::{
    ArcDelays, ProgramInputs, ResourceModel, RunOutcome, RunSpec, Simulator, WatchdogConfig,
};
use valpipe::{compile_source, ArrayVal, CompileOptions, Kernel, SimConfig};
use valpipe_machine::{FaultPlan, ShardPolicy};
use valpipe_util::Rng;

/// Random layered DAG over two sources, ADD/MUL/ID cells, one sink per
/// terminal node — same family as `property_kernels`.
fn build_dag(r: &mut Rng) -> Graph {
    let mut g = Graph::new();
    let mut pool = vec![
        g.add_node(Opcode::Source("s0".into()), "s0"),
        g.add_node(Opcode::Source("s1".into()), "s1"),
    ];
    for li in 0..r.range(1, 4) {
        let mut next = Vec::new();
        for ni in 0..r.range(1, 4) {
            let a = pool[r.below(pool.len())];
            let b = pool[r.below(pool.len())];
            let node = if a == b {
                g.cell(Opcode::Id, format!("n{li}_{ni}"), &[a.into()])
            } else {
                let op = if r.flip() { BinOp::Mul } else { BinOp::Add };
                g.cell(
                    Opcode::Bin(op),
                    format!("n{li}_{ni}"),
                    &[a.into(), b.into()],
                )
            };
            next.push(node);
        }
        pool.extend(next);
    }
    for id in g.node_ids().collect::<Vec<_>>() {
        if g.nodes[id.idx()].op.produces_output() && g.nodes[id.idx()].outputs.is_empty() {
            let name = format!("out{}", id.idx());
            let s = g.add_node(Opcode::Sink(name.clone()), name);
            g.connect(id, s, 0);
        }
    }
    g
}

/// Wide graph of independent chains — the shape the topology sharder
/// packs with zero cross arcs, so epochs provably engage.
fn build_chains(chains: usize, depth: usize) -> Graph {
    let mut g = Graph::new();
    for c in 0..chains {
        let mut prev = g.add_node(Opcode::Source(format!("a{c}")), format!("a{c}"));
        for d in 0..depth {
            prev = g.cell(
                Opcode::Bin(BinOp::Add),
                format!("c{c}_{d}"),
                &[prev.into(), 1.0.into()],
            );
        }
        let sink = g.add_node(Opcode::Sink(format!("y{c}")), format!("y{c}"));
        g.connect(prev, sink, 0);
    }
    g
}

fn chain_inputs(chains: usize, n: usize) -> ProgramInputs {
    let mut inputs = ProgramInputs::new();
    for c in 0..chains {
        inputs = inputs.bind(
            format!("a{c}"),
            (0..n)
                .map(|k| Value::Real((c * n + k) as f64 * 0.5))
                .collect(),
        );
    }
    inputs
}

/// Fault-free random configuration (delays + capacities only) — the
/// regime where epochs are allowed to engage.
fn clean_config(r: &mut Rng, g: &Graph) -> SimConfig {
    let mut cfg = SimConfig::new()
        .max_steps(200_000)
        .arc_capacity(r.range(1, 4))
        .record_fire_times(r.flip());
    if r.chance(0.5) {
        cfg = cfg.delays(ArcDelays {
            forward: (0..g.arc_count()).map(|_| r.range(1, 4) as u64).collect(),
            ack: (0..g.arc_count()).map(|_| r.range(1, 4) as u64).collect(),
        });
    }
    cfg
}

/// Configuration with at least one epoch-hostile feature (faults,
/// throttles, watchdog, invariant checking) — the gate must force
/// per-step execution and stay bit-identical anyway.
fn hostile_config(r: &mut Rng, g: &Graph) -> SimConfig {
    let mut cfg = clean_config(r, g);
    loop {
        let mut any = false;
        if r.flip() {
            cfg = cfg.fault_plan(FaultPlan {
                seed: r.next_u64(),
                delay_result: 0.25,
                delay_result_max: r.range(1, 6) as u64,
                delay_ack: if r.flip() { 0.15 } else { 0.0 },
                delay_ack_max: r.range(1, 4) as u64,
                dup_result: if r.chance(0.3) { 0.05 } else { 0.0 },
                drop_ack: if r.chance(0.25) { 0.1 } else { 0.0 },
                ..Default::default()
            });
            any = true;
        }
        if r.flip() {
            let units = r.range(1, 3);
            cfg = cfg.resources(ResourceModel {
                unit_of: (0..g.node_count()).map(|_| r.below(units) as u32).collect(),
                capacity: (0..units).map(|_| r.range(1, 4) as u32).collect(),
            });
            any = true;
        }
        if r.flip() {
            cfg = cfg.watchdog(WatchdogConfig {
                step_budget: r.range(2_000, 20_000) as u64,
                progress_window: 64,
            });
            any = true;
        }
        if r.flip() {
            cfg = cfg.check_invariants(true);
            any = true;
        }
        if any {
            return cfg;
        }
    }
}

fn assert_epochs_invisible(g: &Graph, inputs: &ProgramInputs, cfg: SimConfig, ctx: &str) {
    let run = |cfg: SimConfig| {
        Simulator::builder(g)
            .inputs(inputs.clone())
            .config(cfg)
            .run()
            .unwrap()
    };
    let scan = run(cfg.clone().kernel(Kernel::Scan));
    for policy in [ShardPolicy::Topology, ShardPolicy::Striped] {
        let epoch = run(cfg
            .clone()
            .kernel(Kernel::ParallelEvent(4))
            .shard_policy(policy));
        assert_eq!(scan, epoch, "epoch run ({policy:?}) disagrees: {ctx}");
    }
}

#[test]
fn random_epoch_caps_identical_on_random_dags() {
    for case in 0..32u64 {
        let mut r = Rng::seed(0xE70C).fork(case);
        let g = build_dag(&mut r);
        let n = r.range(8, 40);
        let inputs = ProgramInputs::new()
            .bind("s0", (0..n).map(|k| Value::Real(k as f64 * 0.5)).collect())
            .bind(
                "s1",
                (0..n).map(|k| Value::Real(1.0 + k as f64 * 0.25)).collect(),
            );
        let cap = r.range(1, 17) as u64;
        let cfg = clean_config(&mut r, &g).epoch_cap(cap);
        assert_epochs_invisible(&g, &inputs, cfg, &format!("dag case {case} cap {cap}"));
    }
}

#[test]
fn random_epoch_caps_identical_on_compiled_programs() {
    for case in 0..8u64 {
        let mut r = Rng::seed(0xE70D).fork(case);
        let m = r.range(10, 24);
        let c1 = 0.25 + 0.25 * r.below(3) as f64;
        let src = format!(
            "param m = {m};\ninput S0 : array[real] [0, m+1];\nS1 : array[real] :=\n  forall i in [0, m+1]\n    P : real :=\n      if (i = 0)|(i = m+1) then S0[i]\n      else {c1} * (S0[i-1] + 2.0*S0[i] + S0[i+1])\n      endif;\n  construct P endall;\noutput S1;\n"
        );
        let compiled = compile_source(&src, &CompileOptions::paper())
            .unwrap_or_else(|e| panic!("case {case} must compile: {e}"));
        let exe = compiled.executable();
        let vals: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut arrays = HashMap::new();
        arrays.insert("S0".to_string(), ArrayVal::from_reals(0, &vals));
        let inputs = stream_inputs(&compiled, &arrays, r.range(3, 8));
        let cap = r.range(1, 17) as u64;
        let cfg = clean_config(&mut r, &exe).epoch_cap(cap);
        assert_epochs_invisible(
            &exe,
            &inputs,
            cfg,
            &format!("compiled case {case} cap {cap}"),
        );
    }
}

#[test]
fn hostile_configs_force_fallback_and_stay_identical() {
    for case in 0..24u64 {
        let mut r = Rng::seed(0xE70E).fork(case);
        let g = build_dag(&mut r);
        let n = r.range(8, 40);
        let inputs = ProgramInputs::new()
            .bind("s0", (0..n).map(|k| Value::Real(k as f64 * 0.5)).collect())
            .bind(
                "s1",
                (0..n).map(|k| Value::Real(1.0 + k as f64 * 0.25)).collect(),
            );
        let cap = r.range(1, 17) as u64;
        let cfg = hostile_config(&mut r, &g).epoch_cap(cap);
        assert_epochs_invisible(&g, &inputs, cfg, &format!("hostile case {case} cap {cap}"));
    }
}

/// On a wide graph of independent chains the topology sharder packs
/// whole chains per shard (zero cross arcs), so the engine must
/// actually batch: epochs > 0, a mean horizon ≥ 2, and the batched
/// steps must account for (nearly) the whole run.
#[test]
fn epochs_engage_on_partitionable_graphs() {
    let g = build_chains(8, 6);
    let inputs = chain_inputs(8, 32);
    let driven = Simulator::builder(&g)
        .inputs(inputs.clone())
        .config(SimConfig::new().kernel(Kernel::ParallelEvent(4)))
        .build()
        .unwrap()
        .drive(RunSpec::new())
        .unwrap();
    let stats = driven.epochs;
    assert!(stats.epochs > 0, "no epochs ran on a partitionable graph");
    assert!(
        stats.mean_horizon() >= 2.0,
        "mean horizon {} < 2",
        stats.mean_horizon()
    );
    assert!(stats.batched_steps > 0);
    assert_eq!(stats.shards, 4);
    assert_eq!(stats.cross_arcs, 0, "chain packing must not cut chains");
    let RunOutcome::Done(result) = driven.outcome else {
        panic!("run must complete");
    };
    // And the batched run still matches the scan kernel exactly.
    let scan = Simulator::builder(&g)
        .inputs(inputs)
        .config(SimConfig::new().kernel(Kernel::Scan))
        .run()
        .unwrap();
    assert_eq!(scan, *result);
}

/// A pause boundary lands inside what would otherwise be one long
/// epoch; the clamp must stop exactly at the boundary and the resumed
/// run must still be bit-identical.
#[test]
fn pause_inside_epoch_window_resumes_identically() {
    let g = build_chains(6, 5);
    let inputs = chain_inputs(6, 24);
    let cfg = SimConfig::new().kernel(Kernel::ParallelEvent(4));
    let reference = Simulator::builder(&g)
        .inputs(inputs.clone())
        .config(cfg.clone())
        .run()
        .unwrap();
    for pause in [3u64, 7, 13, 29] {
        let driven = Simulator::builder(&g)
            .inputs(inputs.clone())
            .config(cfg.clone())
            .build()
            .unwrap()
            .drive(RunSpec::new().pause_at(pause))
            .unwrap();
        let RunOutcome::Paused(session) = driven.outcome else {
            panic!("pause at {pause} must yield a paused session");
        };
        let resumed = session.drive(RunSpec::new()).unwrap();
        let RunOutcome::Done(result) = resumed.outcome else {
            panic!("resumed run must complete");
        };
        assert_eq!(reference, *result, "pause at {pause} changed the run");
    }
}
