//! Property test: checkpoint/restore is exact at *every* step.
//!
//! For random programs under random configurations (delays, contention,
//! seeded faults, watchdogs), a run is driven with a checkpoint taken
//! every instruction time; each snapshot is then restored — on the same
//! kernel and across a kernel switch, including the parallel kernel in
//! both roles — and run to completion. Every recovered `RunResult` must
//! equal the uninterrupted run bit for bit.
//!
//! Two program families, as in `property_kernels`: random layered DAGs,
//! and pipe-structured Val programs through the full compiler (gates,
//! merges, control generators, FIFO expansion, feedback loops).

use std::collections::HashMap;
use valpipe::compiler::verify::stream_inputs;
use valpipe::ir::{BinOp, Graph, Opcode, Value};
use valpipe::machine::{
    ArcDelays, ProgramInputs, ResourceModel, RunSpec, Session, Simulator, WatchdogConfig,
};
use valpipe::{compile_source, ArrayVal, CompileOptions, Kernel, SimConfig, Snapshot};
use valpipe_machine::FaultPlan;
use valpipe_util::Rng;

/// Random layered DAG over two sources, ADD/MUL/ID cells, one sink per
/// terminal node (same family as `property_kernels`).
fn build_dag(r: &mut Rng) -> Graph {
    let mut g = Graph::new();
    let mut pool = vec![
        g.add_node(Opcode::Source("s0".into()), "s0"),
        g.add_node(Opcode::Source("s1".into()), "s1"),
    ];
    for li in 0..r.range(1, 4) {
        let mut next = Vec::new();
        for ni in 0..r.range(1, 4) {
            let a = pool[r.below(pool.len())];
            let b = pool[r.below(pool.len())];
            let node = if a == b {
                g.cell(Opcode::Id, format!("n{li}_{ni}"), &[a.into()])
            } else {
                let op = if r.flip() { BinOp::Mul } else { BinOp::Add };
                g.cell(
                    Opcode::Bin(op),
                    format!("n{li}_{ni}"),
                    &[a.into(), b.into()],
                )
            };
            next.push(node);
        }
        pool.extend(next);
    }
    for id in g.node_ids().collect::<Vec<_>>() {
        if g.nodes[id.idx()].op.produces_output() && g.nodes[id.idx()].outputs.is_empty() {
            let name = format!("out{}", id.idx());
            let s = g.add_node(Opcode::Sink(name.clone()), name);
            g.connect(id, s, 0);
        }
    }
    g
}

/// Random configuration. Acknowledge drops (which wedge arcs forever)
/// are always paired with a watchdog so the run terminates in a stall
/// report — recovering *into* a stall is part of the property.
fn random_config(r: &mut Rng, g: &Graph) -> SimConfig {
    let mut cfg = SimConfig::new()
        .max_steps(50_000)
        .arc_capacity(r.range(1, 4))
        .record_fire_times(r.flip());
    if r.chance(0.5) {
        cfg = cfg.delays(ArcDelays {
            forward: (0..g.arc_count()).map(|_| r.range(1, 4) as u64).collect(),
            ack: (0..g.arc_count()).map(|_| r.range(1, 4) as u64).collect(),
        });
    }
    if r.chance(0.4) {
        let units = r.range(1, 3);
        cfg = cfg.resources(ResourceModel {
            unit_of: (0..g.node_count()).map(|_| r.below(units) as u32).collect(),
            capacity: (0..units).map(|_| r.range(1, 4) as u32).collect(),
        });
    }
    if r.chance(0.5) {
        let drop_ack = if r.chance(0.25) { 0.05 } else { 0.0 };
        cfg = cfg.fault_plan(FaultPlan {
            seed: r.next_u64(),
            delay_result: if r.flip() { 0.25 } else { 0.0 },
            delay_result_max: r.range(1, 6) as u64,
            delay_ack: if r.flip() { 0.15 } else { 0.0 },
            delay_ack_max: r.range(1, 4) as u64,
            dup_result: if r.chance(0.3) { 0.05 } else { 0.0 },
            drop_ack,
            ..Default::default()
        });
        if drop_ack > 0.0 {
            cfg = cfg.watchdog(WatchdogConfig {
                step_budget: 3_000,
                progress_window: 64,
            });
        }
    }
    cfg.check_invariants(r.flip())
}

/// Drive one full run under `capture_kernel` snapshotting every step,
/// then restore every snapshot on each kernel and run it out; all
/// recovered results must equal the uninterrupted run.
fn assert_recoverable_at_every_step(
    g: &Graph,
    inputs: &ProgramInputs,
    cfg: &SimConfig,
    capture_kernel: Kernel,
    ctx: &str,
) {
    let mut snaps: Vec<Snapshot> = Vec::new();
    let reference = Simulator::builder(g)
        .inputs(inputs.clone())
        .config(cfg.clone().kernel(capture_kernel).checkpoint_every(1))
        .build()
        .unwrap_or_else(|e| panic!("{ctx}: build failed: {e}"))
        .drive_with(RunSpec::new(), |s| snaps.push(s))
        .unwrap_or_else(|e| panic!("{ctx}: run failed: {e}"))
        .result();
    assert!(!snaps.is_empty(), "{ctx}: no checkpoints emitted");
    // Every step was checkpointed; subsample long runs to bound cost,
    // always keeping the first and the final-step snapshot (the final
    // one re-evaluates the stopping decision from restored state alone).
    let stride = snaps.len().div_ceil(48);
    let last = snaps.len() - 1;
    for (i, snap) in snaps.iter().enumerate() {
        if i % stride != 0 && i != last {
            continue;
        }
        for resume_kernel in [Kernel::Scan, Kernel::EventDriven, Kernel::ParallelEvent(2)] {
            let recovered = Session::restore_with_kernel(g, snap, resume_kernel)
                .unwrap_or_else(|e| panic!("{ctx}: restore at {} failed: {e}", snap.step()))
                .drive(RunSpec::new())
                .unwrap_or_else(|e| panic!("{ctx}: resumed run at {} failed: {e}", snap.step()))
                .result();
            assert_eq!(
                recovered,
                reference,
                "{ctx}: diverged after restore at step {} ({capture_kernel:?} -> {resume_kernel:?})",
                snap.step()
            );
        }
    }
}

#[test]
fn random_dags_recover_exactly_at_every_step() {
    for case in 0..24u64 {
        let mut r = Rng::seed(0x5A11).fork(case);
        let g = build_dag(&mut r);
        let n = r.range(6, 20);
        let inputs = ProgramInputs::new()
            .bind("s0", (0..n).map(|k| Value::Real(k as f64 * 0.5)).collect())
            .bind(
                "s1",
                (0..n).map(|k| Value::Real(1.0 + k as f64 * 0.25)).collect(),
            );
        let cfg = random_config(&mut r, &g);
        let capture = match case % 3 {
            0 => Kernel::Scan,
            1 => Kernel::EventDriven,
            _ => Kernel::ParallelEvent(2),
        };
        assert_recoverable_at_every_step(&g, &inputs, &cfg, capture, &format!("dag case {case}"));
    }
}

/// Hostile-bytes fuzz of the snapshot decoder: arbitrary buffers,
/// bit-flipped real snapshots, truncations, and valid-prefix-plus-junk
/// must all come back as typed [`SnapshotError`]s — never a panic, and
/// never a silently accepted corruption (the checksums see to that).
#[test]
fn corrupt_snapshot_bytes_never_panic_and_never_pass() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    // A genuine snapshot to corrupt, taken mid-run of a small DAG.
    let mut r = Rng::seed(0xC0AB);
    let g = build_dag(&mut r);
    let inputs = ProgramInputs::new()
        .bind("s0", (0..12).map(|k| Value::Real(k as f64 * 0.5)).collect())
        .bind("s1", (0..12).map(|k| Value::Real(1.0 + k as f64)).collect());
    let session = Simulator::builder(&g)
        .inputs(inputs)
        .config(SimConfig::new().max_steps(50_000))
        .build()
        .expect("builds");
    let paused = match session
        .drive(RunSpec::new().pause_at(3))
        .expect("drives")
        .outcome
    {
        valpipe::machine::RunOutcome::Paused(s) => s,
        _ => panic!("expected a pause at step 3"),
    };
    let good = paused.checkpoint().as_bytes().to_vec();
    assert!(Snapshot::from_bytes(good.clone()).is_ok());

    let old_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut rejected = 0usize;
    let mut panicked: Option<String> = None;
    for trial in 0..400u64 {
        let mut rr = Rng::seed(0xBAD5EED).fork(trial);
        let bytes: Vec<u8> = match trial % 4 {
            // Arbitrary garbage of arbitrary length.
            0 => (0..rr.below(256)).map(|_| rr.below(256) as u8).collect(),
            // Real snapshot with 1–8 flipped bits.
            1 => {
                let mut b = good.clone();
                for _ in 0..1 + rr.below(8) {
                    let i = rr.below(b.len());
                    b[i] ^= 1 << rr.below(8);
                }
                b
            }
            // Truncation at an arbitrary point.
            2 => good[..rr.below(good.len())].to_vec(),
            // Valid prefix, garbage tail.
            _ => {
                let cut = rr.below(good.len());
                let mut b = good[..cut].to_vec();
                b.extend((0..rr.below(64)).map(|_| rr.below(256) as u8));
                b
            }
        };
        let same_len = bytes.len() == good.len();
        let unchanged = same_len && bytes == good;
        let decoded = catch_unwind(AssertUnwindSafe(|| Snapshot::from_bytes(bytes)));
        match decoded {
            Ok(Ok(snap)) => {
                // Only an unchanged buffer may decode; and restoring it
                // must behave (flips can, rarely, collide checksums —
                // then restore still must not panic).
                if unchanged {
                    continue;
                }
                let restored =
                    catch_unwind(AssertUnwindSafe(|| Session::restore(&g, &snap).map(|_| ())));
                if restored.is_err() {
                    panicked = Some(format!("trial {trial}: restore panicked"));
                    break;
                }
            }
            Ok(Err(_)) => rejected += 1,
            Err(_) => {
                panicked = Some(format!("trial {trial}: Snapshot::from_bytes panicked"));
                break;
            }
        }
    }
    std::panic::set_hook(old_hook);
    if let Some(msg) = panicked {
        panic!("{msg}");
    }
    assert!(
        rejected > 300,
        "only {rejected}/400 corruptions were rejected"
    );
}

#[test]
fn compiled_programs_recover_exactly_at_every_step() {
    // A boundary-conditioned stencil block capped by a first-order
    // recurrence: compiles to control generators, T/F gates, merges and
    // FIFO pseudo-cells — the cell kinds the DAG family cannot produce.
    let src = "param m = 12;\n\
               input S0 : array[real] [0, m+1];\n\
               S1 : array[real] :=\n  forall i in [0, m+1]\n    P : real :=\n      if (i = 0)|(i = m+1) then S0[i]\n      else 0.25 * (S0[i-1] + 2.*S0[i] + S0[i+1])\n      endif;\n  construct P endall;\n\
               X : array[real] :=\n  for\n    i : integer := 1;\n    T : array[real] := [0: 0.]\n  do\n    let P : real := 0.5*S1[i]*T[i-1] + S0[i]\n    in\n      if i < m then\n        iter\n          T := T[i: P];\n          i := i + 1\n        enditer\n      else T\n      endif\n    endlet\n  endfor;\n\
               output X;\n";
    let compiled = compile_source(src, &CompileOptions::paper()).expect("program must compile");
    let mut exe = compiled.executable().clone();
    exe.expand_fifos();
    let vals: Vec<f64> = (0..14).map(|i| (i as f64 * 0.2).sin()).collect();
    let mut arrays = HashMap::new();
    arrays.insert("S0".to_string(), ArrayVal::from_reals(0, &vals));
    for case in 0..4u64 {
        let mut r = Rng::seed(0x5A12).fork(case);
        let waves = r.range(2, 5);
        let inputs = stream_inputs(&compiled, &arrays, waves);
        let cfg = random_config(&mut r, &exe);
        let capture = match case % 3 {
            0 => Kernel::EventDriven,
            1 => Kernel::Scan,
            _ => Kernel::ParallelEvent(2),
        };
        assert_recoverable_at_every_step(
            &exe,
            &inputs,
            &cfg,
            capture,
            &format!("compiled case {case}"),
        );
    }
}
