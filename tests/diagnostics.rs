//! Source-level diagnostics, end to end: a compiled paper example run
//! under a fault plan produces stall reports and machine errors that name
//! the Val statement (`file:line:col` + expression text) of every cell
//! involved — plus the provenance-totality property behind the guarantee.

use std::collections::HashMap;
use valpipe::compiler::verify::{check_against_oracle_with, VerifyError};
use valpipe::ir::opcode::Opcode;
use valpipe::ir::value::{BinOp, Value};
use valpipe::machine::fault::CellFreeze;
use valpipe::machine::{FaultPlan, WatchdogConfig};
use valpipe::{
    compile_source_named, render_error, ArrayVal, CompileOptions, ForIterScheme, ProgramInputs,
    SimConfig, Simulator,
};
use valpipe_util::Rng;

/// The paper's Example 1 (Fig. 6): a forall with a named definition and a
/// boundary conditional.
fn fig6_src(m: usize) -> String {
    format!(
        "param m = {m};
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real :=
      if (i = 0)|(i = m+1) then C[i]
      else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct B[i]*(P*P)
  endall;
output A;"
    )
}

fn fig6_inputs(m: usize) -> HashMap<String, ArrayVal> {
    let b: Vec<f64> = (0..m + 2).map(|k| 1.0 + (k as f64) * 0.25).collect();
    let c: Vec<f64> = (0..m + 2).map(|k| (k as f64 * 0.4).sin()).collect();
    let mut h = HashMap::new();
    h.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    h.insert("C".to_string(), ArrayVal::from_reals(0, &c));
    h
}

/// Acceptance: freeze a multiplier mid-run; the stall diagnosis must name
/// the Val source location of *every* blocked cell it lists.
#[test]
fn stall_report_names_the_source_of_every_blocked_cell() {
    let m = 8;
    let src = fig6_src(m);
    let compiled = compile_source_named(&src, "fig6.val", &CompileOptions::paper()).unwrap();
    let exe = compiled.executable();
    let victim = exe
        .nodes
        .iter()
        .position(|n| matches!(n.op, Opcode::Bin(BinOp::Mul)))
        .expect("fig6 has a multiplier");
    let plan = FaultPlan {
        freezes: vec![CellFreeze {
            node: victim,
            from: 40,
            until: u64::MAX,
        }],
        ..Default::default()
    };
    let cfg = SimConfig::new().fault_plan(plan).watchdog(WatchdogConfig {
        step_budget: 50_000,
        ..Default::default()
    });
    let err = check_against_oracle_with(&compiled, &fig6_inputs(m), 16, 1e-9, cfg)
        .expect_err("frozen multiplier must stall the pipeline");
    let VerifyError::Stalled {
        report: Some(report),
        ..
    } = err
    else {
        panic!("expected a stall diagnosis, got: {err:?}");
    };
    assert!(
        report.contains("fig6.val:"),
        "no source location in:\n{report}"
    );
    // Every `cell N (...) blocked:` line must be followed by its source.
    let lines: Vec<&str> = report.lines().collect();
    let mut blocked = 0;
    for (i, line) in lines.iter().enumerate() {
        if line.starts_with("cell ") && line.contains("blocked:") {
            blocked += 1;
            let next = lines.get(i + 1).copied().unwrap_or("");
            assert!(
                next.trim_start().starts_with("at fig6.val:"),
                "blocked cell without source:\n{line}\n{next}\nfull report:\n{report}"
            );
        }
    }
    assert!(
        blocked > 0,
        "stall report listed no blocked cells:\n{report}"
    );
}

/// Acceptance: a runtime type fault inside the forall body renders with
/// the faulting statement's `file:line:col` and expression text.
#[test]
fn machine_error_names_the_faulting_statement() {
    let m = 8;
    let src = fig6_src(m);
    let compiled = compile_source_named(&src, "fig6.val", &CompileOptions::paper()).unwrap();
    let exe = compiled.executable();
    // Poison one element of C: a boolean in real arithmetic faults the
    // first arithmetic cell it reaches.
    let mut c_vals: Vec<Value> = (0..m + 2).map(|k| Value::Real(k as f64 * 0.1)).collect();
    c_vals[4] = Value::Bool(true);
    let b_vals: Vec<Value> = (0..m + 2).map(|k| Value::Real(1.0 + k as f64)).collect();
    let err = Simulator::builder(&exe)
        .inputs(ProgramInputs::new().bind("C", c_vals).bind("B", b_vals))
        .max_steps(100_000)
        .run()
        .expect_err("boolean in real arithmetic must fault");
    let rendered = render_error(&err, &exe, &compiled.prov);
    assert!(
        rendered.contains("\n  at fig6.val:"),
        "no source annotation in:\n{rendered}"
    );
    assert!(
        rendered.contains("in definition 'P' in block 'A'")
            || rendered.contains("in forall body of block 'A'"),
        "annotation does not name the statement:\n{rendered}"
    );
}

/// A compiled program's diagnostics would be useless if any cell fell
/// back to the whole-program entry: provenance must be *total* — every
/// executable cell (including balancer FIFO stages, synthesized generator
/// circuits, drain sinks) resolves to a real statement.
#[test]
fn provenance_is_total_over_random_compiled_programs() {
    const M: usize = 10;
    for case in 0..48u64 {
        let mut r = Rng::seed(0x6001).fork(case);
        // Random primitive forall body over P and Q, with optional
        // conditionals so some cases compile gates and merges.
        fn body(r: &mut Rng, depth: usize) -> String {
            if depth == 0 || r.chance(0.3) {
                return match r.below(4) {
                    0 => format!("({}.5)", r.range_i64(0, 9)),
                    1 => format!("P[i-{}]", r.range_i64(0, 2)),
                    2 => format!("Q[i+{}]", r.range_i64(0, 2)),
                    _ => "P[i]".to_string(),
                };
            }
            match r.below(5) {
                0 => format!("({} + {})", body(r, depth - 1), body(r, depth - 1)),
                1 => format!("({} * {})", body(r, depth - 1), body(r, depth - 1)),
                2 => format!("({} - {})", body(r, depth - 1), body(r, depth - 1)),
                3 => format!(
                    "(if i < {} then {} else {} endif)",
                    r.range_i64(1, M as i64),
                    body(r, depth - 1),
                    body(r, depth - 1)
                ),
                _ => format!("(-{})", body(r, depth - 1)),
            }
        }
        let src = if r.chance(0.25) {
            // A for-iter recurrence exercises the Todd/companion lowering.
            format!(
                "param m = {M};
input A : array[real] [0, m+1];
input B : array[real] [0, m+1];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    let P : real := A[i]*T[i-1] + B[i]
    in
      if i < m then iter T := T[i: P]; i := i + 1 enditer else T endif
    endlet
  endfor;
output X;"
            )
        } else {
            format!(
                "param m = {M};
input P : array[real] [0, m+2];
input Q : array[real] [0, m+2];
Y : array[real] := forall i in [2, m] construct {} endall;
output Y;",
                body(&mut r, 3)
            )
        };
        let mut opts = CompileOptions::paper();
        if r.flip() {
            opts.synthesize_generators = true;
        }
        if r.chance(0.3) {
            opts.scheme = ForIterScheme::Todd;
        }
        let compiled = compile_source_named(&src, "prop.val", &opts)
            .unwrap_or_else(|e| panic!("compile failed: {e}\nsource:\n{src}"));
        for g in [&compiled.graph, &compiled.executable()] {
            for (i, n) in g.nodes.iter().enumerate() {
                assert!(
                    compiled.prov.is_resolved(n.src),
                    "cell {i} ('{}', {:?}) has unresolved provenance (src={}) in:\n{src}",
                    n.label,
                    n.op,
                    n.src
                );
            }
        }
    }
}
