//! Property test: `ExecMode::FastForward` is observationally identical
//! to exact execution — for random balanced programs fed periodic
//! (repeated-wave) inputs under random configurations, the entire
//! `RunResult` must be bit-identical on every kernel, whether or not the
//! engine found a periodic window to skip. Configurations that make
//! windows inexact (fault plans, throttles) must fall back to exact
//! stepping and still agree.

use std::collections::HashMap;
use valpipe::compiler::verify::stream_inputs;
use valpipe::ir::{BinOp, Graph, Opcode, Value};
use valpipe::machine::{ArcDelays, ProgramInputs, ResourceModel, Simulator, WatchdogConfig};
use valpipe::{compile_source, ArrayVal, CompileOptions, Kernel, RunSpec, SimConfig};
use valpipe_machine::FaultPlan;
use valpipe_util::Rng;

/// Random layered DAG over two sources, ADD/MUL/ID cells, one sink per
/// terminal node (the same family the kernel-equivalence property uses).
fn build_dag(r: &mut Rng) -> Graph {
    let mut g = Graph::new();
    let mut pool = vec![
        g.add_node(Opcode::Source("s0".into()), "s0"),
        g.add_node(Opcode::Source("s1".into()), "s1"),
    ];
    for li in 0..r.range(1, 4) {
        let mut next = Vec::new();
        for ni in 0..r.range(1, 4) {
            let a = pool[r.below(pool.len())];
            let b = pool[r.below(pool.len())];
            let node = if a == b {
                g.cell(Opcode::Id, format!("n{li}_{ni}"), &[a.into()])
            } else {
                let op = if r.flip() { BinOp::Mul } else { BinOp::Add };
                g.cell(
                    Opcode::Bin(op),
                    format!("n{li}_{ni}"),
                    &[a.into(), b.into()],
                )
            };
            next.push(node);
        }
        pool.extend(next);
    }
    for id in g.node_ids().collect::<Vec<_>>() {
        if g.nodes[id.idx()].op.produces_output() && g.nodes[id.idx()].outputs.is_empty() {
            let name = format!("out{}", id.idx());
            let s = g.add_node(Opcode::Sink(name.clone()), name);
            g.connect(id, s, 0);
        }
    }
    g
}

/// Periodic inputs: a short random wave repeated many times — the
/// steady-state shape fast-forward exists for.
fn periodic_inputs(r: &mut Rng, waves: usize) -> ProgramInputs {
    let wlen = r.range(2, 6);
    let wave_a: Vec<f64> = (0..wlen).map(|_| 0.25 * r.range(1, 16) as f64).collect();
    let wave_b: Vec<f64> = (0..wlen).map(|_| 0.25 * r.range(1, 16) as f64).collect();
    let n = waves * wlen;
    ProgramInputs::new()
        .bind(
            "s0",
            (0..n).map(|k| Value::Real(wave_a[k % wlen])).collect(),
        )
        .bind(
            "s1",
            (0..n).map(|k| Value::Real(wave_b[k % wlen])).collect(),
        )
}

/// Random configuration. Unlike the kernel property, hazards are tagged:
/// fault plans and throttles are drawn separately so the test can assert
/// the fallback accounting.
fn random_config(r: &mut Rng, g: &Graph, hazards: bool) -> SimConfig {
    let mut cfg = SimConfig::new()
        .max_steps(200_000)
        .arc_capacity(r.range(1, 4))
        .record_fire_times(r.flip());
    if r.chance(0.5) {
        cfg = cfg.delays(ArcDelays {
            forward: (0..g.arc_count()).map(|_| r.range(1, 4) as u64).collect(),
            ack: (0..g.arc_count()).map(|_| r.range(1, 4) as u64).collect(),
        });
    }
    if r.chance(0.3) {
        cfg = cfg.watchdog(WatchdogConfig {
            step_budget: r.range(20_000, 120_000) as u64,
            progress_window: 1_000,
        });
    }
    if hazards {
        if r.flip() {
            cfg = cfg.fault_plan(FaultPlan {
                seed: r.next_u64(),
                delay_result: 0.25,
                delay_result_max: r.range(1, 6) as u64,
                dup_result: if r.chance(0.3) { 0.05 } else { 0.0 },
                ..Default::default()
            });
        } else {
            let units = r.range(1, 3);
            cfg = cfg.resources(ResourceModel {
                unit_of: (0..g.node_count()).map(|_| r.below(units) as u32).collect(),
                capacity: (0..units).map(|_| r.range(1, 4) as u32).collect(),
            });
        }
    }
    cfg.check_invariants(r.flip())
}

/// Exact run vs fast-forwarded run on every kernel; returns the total
/// steps skipped (to assert engagement happened across the sweep).
fn assert_ff_identical(g: &Graph, inputs: &ProgramInputs, cfg: &SimConfig, ctx: &str) -> u64 {
    let mut skipped = 0;
    for (ki, kernel) in [Kernel::Scan, Kernel::EventDriven, Kernel::ParallelEvent(2)]
        .into_iter()
        .enumerate()
    {
        let exact = Simulator::builder(g)
            .inputs(inputs.clone())
            .config(cfg.clone().kernel(kernel))
            .run()
            .unwrap_or_else(|e| panic!("{ctx}: exact run failed: {e}"));
        // The event kernel re-verifies its first windows against a shadow
        // replay; the others trust the periodicity proof outright.
        let verify = if ki == 1 { 2 } else { 0 };
        let driven = Simulator::builder(g)
            .inputs(inputs.clone())
            .config(cfg.clone().kernel(kernel))
            .build()
            .unwrap_or_else(|e| panic!("{ctx}: build failed: {e}"))
            .drive(RunSpec::new().fast_forward(verify))
            .unwrap_or_else(|e| panic!("{ctx}: ff run failed: {e}"));
        assert!(
            driven.fast_forward.fallbacks == 0 || cfg.fault_plan_ref().is_some(),
            "{ctx}: unexpected fallback on {kernel:?}"
        );
        skipped += driven.fast_forward.skipped_steps;
        let ff = driven.result();
        assert_eq!(ff, exact, "{ctx}: fast-forward diverged on {kernel:?}");
    }
    skipped
}

#[test]
fn random_dags_fast_forward_identically() {
    let mut total_skipped = 0u64;
    for case in 0..24u64 {
        let mut r = Rng::seed(0xFF01).fork(case);
        let g = build_dag(&mut r);
        let waves = r.range(60, 200);
        let inputs = periodic_inputs(&mut r, waves);
        let cfg = random_config(&mut r, &g, false);
        total_skipped += assert_ff_identical(&g, &inputs, &cfg, &format!("dag case {case}"));
    }
    assert!(
        total_skipped > 10_000,
        "the sweep must actually engage fast-forward (skipped {total_skipped})"
    );
}

#[test]
fn hazardous_configs_fall_back_and_agree() {
    for case in 0..16u64 {
        let mut r = Rng::seed(0xFF02).fork(case);
        let g = build_dag(&mut r);
        let waves = r.range(20, 60);
        let inputs = periodic_inputs(&mut r, waves);
        let cfg = random_config(&mut r, &g, true);
        for kernel in [Kernel::Scan, Kernel::EventDriven] {
            let exact = Simulator::builder(&g)
                .inputs(inputs.clone())
                .config(cfg.clone().kernel(kernel))
                .run()
                .unwrap();
            let driven = Simulator::builder(&g)
                .inputs(inputs.clone())
                .config(cfg.clone().kernel(kernel))
                .build()
                .unwrap()
                .drive(RunSpec::new().fast_forward(1))
                .unwrap();
            assert_eq!(driven.fast_forward.skipped_steps, 0, "case {case}");
            assert_eq!(driven.fast_forward.fallbacks, 1, "case {case}");
            assert_eq!(driven.result(), exact, "case {case} on {kernel:?}");
        }
    }
}

/// Random pipe-structured Val programs through the full compiler, fed
/// many repetitions of one input wave (`stream_inputs` is periodic by
/// construction) — gates, merges, FIFOs, and feedback loops.
fn random_pipe_source(r: &mut Rng) -> (String, usize) {
    let blocks = r.range(1, 4);
    let m = r.range(10, 24);
    let mut src = format!("param m = {m};\ninput S0 : array[real] [0, m+1];\n");
    for k in 1..=blocks {
        let c1 = 0.25 + 0.25 * r.below(3) as f64;
        let c2 = 1.0 + r.below(2) as f64;
        src.push_str(&format!(
            "S{k} : array[real] :=\n  forall i in [0, m+1]\n    P : real :=\n      if (i = 0)|(i = m+1) then S{p}[i]\n      else {c1} * (S{p}[i-1] + {c2}*S{p}[i] + S{p}[i+1])\n      endif;\n  construct P endall;\n",
            p = k - 1,
        ));
    }
    src.push_str(&format!("output S{blocks};\n"));
    (src, m)
}

#[test]
fn random_compiled_programs_fast_forward_identically() {
    let mut total_skipped = 0u64;
    for case in 0..8u64 {
        let mut r = Rng::seed(0xFF03).fork(case);
        let (src, m) = random_pipe_source(&mut r);
        let compiled = compile_source(&src, &CompileOptions::paper())
            .unwrap_or_else(|e| panic!("case {case} must compile: {e}\n{src}"));
        let exe = compiled.executable();
        let vals: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut arrays = HashMap::new();
        arrays.insert("S0".to_string(), ArrayVal::from_reals(0, &vals));
        let waves = r.range(20, 40);
        let inputs = stream_inputs(&compiled, &arrays, waves);
        let cfg = SimConfig::new().max_steps(500_000);
        total_skipped += assert_ff_identical(&exe, &inputs, &cfg, &format!("compiled case {case}"));
    }
    assert!(
        total_skipped > 0,
        "at least one compiled case must engage fast-forward"
    );
}
