//! Smoke tests of the `valpipe` command-line driver.

use std::io::Write;
use std::process::Command;

fn write_program() -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("valpipe_cli_test_{}.val", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(
        f,
        "param m = 8;
input C : array[real] [0, m+1];
S : array[real] := forall i in [1, m] construct 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endall;
output S;"
    )
    .unwrap();
    path
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_valpipe"))
}

#[test]
fn check_reports_blocks() {
    let p = write_program();
    let out = cli().arg("check").arg(&p).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("block S over [1, 8]"), "{text}");
}

#[test]
fn compile_emits_listing_and_json() {
    let p = write_program();
    let out = cli().arg("compile").arg(&p).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("MULT"));
    assert!(text.contains("TGATE"));

    let out = cli().arg("compile").arg(&p).arg("--json").output().unwrap();
    assert!(out.status.success());
    let g = valpipe::ir::Graph::from_json(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert!(g.node_count() > 5);
}

#[test]
fn run_verifies_and_reports_rate() {
    let p = write_program();
    let out = cli()
        .arg("run")
        .arg(&p)
        .arg("--waves")
        .arg("25")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verified"), "{text}");
    assert!(text.contains("interval"), "{text}");
}

#[test]
fn dot_emits_graphviz() {
    let p = write_program();
    let out = cli().arg("dot").arg(&p).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("digraph"));
}

#[test]
fn bad_program_fails_with_diagnostic() {
    let path = std::env::temp_dir().join(format!("valpipe_cli_bad_{}.val", std::process::id()));
    std::fs::write(
        &path,
        "param m = 4;\nA : array[real] := forall i in [0, m] construct B[2*i] endall;\noutput A;\n",
    )
    .unwrap();
    let out = cli().arg("check").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "{err}");
}

fn write_deep_program(parens: usize) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "valpipe_cli_deep_{}_{parens}.val",
        std::process::id()
    ));
    std::fs::write(
        &path,
        format!(
            "param m = 8;\ninput C : array[real] [0, m+1];\n\
             S : array[real] := forall i in [1, m] construct {}C[i]{} endall;\noutput S;\n",
            "(".repeat(parens),
            ")".repeat(parens)
        ),
    )
    .unwrap();
    path
}

#[test]
fn over_limit_program_reports_resource_limit_and_exit_3() {
    // 80 levels breaches the default nesting budget (64): the driver
    // must answer with a structured resource_limit line and exit code 3
    // — not a panic, not a generic compile error.
    let p = write_deep_program(80);
    let out = cli().arg("compile").arg(&p).output().unwrap();
    assert_eq!(out.status.code(), Some(3), "unexpected exit status");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("resource_limit: nesting deeper than 64 levels"),
        "{err}"
    );
}

#[test]
fn limits_flag_adjusts_the_budget() {
    let p = write_deep_program(80);
    // Lifting the depth budget compiles the same program...
    let out = cli()
        .arg("compile")
        .arg(&p)
        .arg("--limits")
        .arg("depth=none")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // ...and a tiny cell budget rejects even the smoke program, again
    // as a structured resource_limit, not a panic.
    let small = write_program();
    let out = cli()
        .arg("compile")
        .arg(&small)
        .arg("--limits")
        .arg("cells=3")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("resource_limit:"), "{err}");
    assert!(err.contains("limit is 3"), "{err}");
}

#[test]
fn user_supplied_inputs() {
    let p = write_program();
    let vals: Vec<String> = (0..10).map(|i| format!("{}.0", i)).collect();
    let out = cli()
        .arg("run")
        .arg(&p)
        .arg("--waves")
        .arg("12")
        .arg("--input")
        .arg(format!("C={}", vals.join(",")))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
