//! Property test: generator synthesis is semantics-preserving for
//! arbitrary run-length control patterns and index ranges.

use proptest::prelude::*;
use valpipe::compiler::synth::synthesize_generators;
use valpipe::ir::{CtlStream, Graph, Opcode};
use valpipe::machine::{ProgramInputs, SimOptions, Simulator};

fn pattern() -> impl Strategy<Value = CtlStream> {
    proptest::collection::vec((any::<bool>(), 1u32..4), 1..6).prop_map(CtlStream::from_runs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn synthesized_ctl_matches_primitive(stream in pattern()) {
        let build = |primitive: bool| {
            let mut g = Graph::new();
            let gen = g.add_node(Opcode::CtlGen(stream.clone()), "ctl");
            let _ = g.cell(Opcode::Sink("y".into()), "y", &[gen.into()]);
            if !primitive {
                synthesize_generators(&mut g);
            }
            let mut opts = SimOptions::default();
            opts.stop_outputs = Some(vec![("y".into(), 3 * stream.wave_len() as usize + 2)]);
            opts.max_steps = 50_000;
            Simulator::new(&g, &ProgramInputs::new(), opts)
                .unwrap()
                .run()
                .unwrap()
                .values("y")
        };
        let want = build(true);
        let got = build(false);
        let n = want.len().min(got.len());
        prop_assert!(n >= stream.wave_len() as usize);
        prop_assert_eq!(&got[..n], &want[..n], "pattern {}", stream);
    }

    #[test]
    fn synthesized_idx_matches_primitive(lo in -5i64..5, len in 1i64..9) {
        let hi = lo + len - 1;
        let build = |primitive: bool| {
            let mut g = Graph::new();
            let gen = g.add_node(Opcode::IdxGen { lo, hi }, "idx");
            let _ = g.cell(Opcode::Sink("y".into()), "y", &[gen.into()]);
            if !primitive {
                synthesize_generators(&mut g);
            }
            let mut opts = SimOptions::default();
            opts.stop_outputs = Some(vec![("y".into(), 3 * len as usize + 2)]);
            opts.max_steps = 50_000;
            Simulator::new(&g, &ProgramInputs::new(), opts)
                .unwrap()
                .run()
                .unwrap()
                .values("y")
        };
        let want = build(true);
        let got = build(false);
        let n = want.len().min(got.len());
        prop_assert_eq!(&got[..n], &want[..n]);
    }
}
