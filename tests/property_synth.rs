//! Property test: generator synthesis is semantics-preserving for
//! arbitrary run-length control patterns and index ranges.

use valpipe::compiler::synth::synthesize_generators;
use valpipe::ir::{CtlStream, Graph, Opcode};
use valpipe::machine::Simulator;
use valpipe_util::Rng;

fn random_pattern(r: &mut Rng) -> CtlStream {
    let n_runs = r.range(1, 6);
    CtlStream::from_runs((0..n_runs).map(|_| (r.flip(), r.range(1, 4) as u32)))
}

#[test]
fn synthesized_ctl_matches_primitive() {
    for case in 0..64u64 {
        let mut r = Rng::seed(0x6001).fork(case);
        let stream = random_pattern(&mut r);
        let build = |primitive: bool| {
            let mut g = Graph::new();
            let gen = g.add_node(Opcode::CtlGen(stream.clone()), "ctl");
            let _ = g.cell(Opcode::Sink("y".into()), "y", &[gen.into()]);
            if !primitive {
                synthesize_generators(&mut g);
            }
            Simulator::builder(&g)
                .stop_outputs(vec![("y".into(), 3 * stream.wave_len() as usize + 2)])
                .max_steps(50_000)
                .run()
                .unwrap()
                .values("y")
        };
        let want = build(true);
        let got = build(false);
        let n = want.len().min(got.len());
        assert!(n >= stream.wave_len() as usize);
        assert_eq!(&got[..n], &want[..n], "pattern {stream}");
    }
}

#[test]
fn synthesized_idx_matches_primitive() {
    for case in 0..64u64 {
        let mut r = Rng::seed(0x6002).fork(case);
        let lo = r.range_i64(-5, 5);
        let len = r.range_i64(1, 9);
        let hi = lo + len - 1;
        let build = |primitive: bool| {
            let mut g = Graph::new();
            let gen = g.add_node(Opcode::IdxGen { lo, hi }, "idx");
            let _ = g.cell(Opcode::Sink("y".into()), "y", &[gen.into()]);
            if !primitive {
                synthesize_generators(&mut g);
            }
            Simulator::builder(&g)
                .stop_outputs(vec![("y".into(), 3 * len as usize + 2)])
                .max_steps(50_000)
                .run()
                .unwrap()
                .values("y")
        };
        let want = build(true);
        let got = build(false);
        let n = want.len().min(got.len());
        assert_eq!(&got[..n], &want[..n]);
    }
}
