//! Frontend property tests: pretty-print/parse round-trips and 2-D
//! flattening vs a direct 2-D reference evaluation.

use proptest::prelude::*;
use std::collections::HashMap;
use valpipe::val::ast::{BinOp, Def, Expr, UnOp};
use valpipe::val::pretty::expr_to_source;
use valpipe::val::{flatten_program, parse_expr, parse_program};
use valpipe::ArrayVal;

/// Expressions over the printable operator set.
fn printable_expr() -> impl Strategy<Value = Expr> {
    // Literals are non-negative: `-0.25` prints as `(-0.25)`, which
    // parses (correctly) as `Neg(0.25)` — structurally different, same
    // meaning. Negative values come from the explicit Neg variant.
    let leaf = prop_oneof![
        (0i64..=99).prop_map(Expr::IntLit),
        (0i64..=30).prop_map(|v| Expr::RealLit(v as f64 / 4.0)),
        Just(Expr::BoolLit(true)),
        Just(Expr::var("x")),
        Just(Expr::var("i")),
        (-2i64..=2).prop_map(|off| {
            Expr::index(
                "A",
                match off.cmp(&0) {
                    std::cmp::Ordering::Equal => Expr::var("i"),
                    std::cmp::Ordering::Greater => {
                        Expr::bin(BinOp::Add, Expr::var("i"), Expr::IntLit(off))
                    }
                    std::cmp::Ordering::Less => {
                        Expr::bin(BinOp::Sub, Expr::var("i"), Expr::IntLit(-off))
                    }
                },
            )
        }),
    ];
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div),
                Just(BinOp::Lt), Just(BinOp::Le), Just(BinOp::Gt), Just(BinOp::Ge),
                Just(BinOp::Eq), Just(BinOp::Ne), Just(BinOp::And), Just(BinOp::Or),
            ])
            .prop_map(|(a, b, op)| Expr::bin(op, a, b)),
            inner.clone().prop_map(|a| Expr::un(UnOp::Neg, a)),
            inner.clone().prop_map(|a| Expr::un(UnOp::Not, a)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| Expr::if_(c, t, f)),
            (inner.clone(), inner.clone()).prop_map(|(v, b)| Expr::Let(
                vec![Def { name: "p".into(), ty: None, value: v }],
                Box::new(b),
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(print(e)) == e` for every generated expression.
    #[test]
    fn print_parse_roundtrip(e in printable_expr()) {
        let printed = expr_to_source(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\nprinted: {printed}"));
        prop_assert_eq!(reparsed, e, "printed: {}", printed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flattened 2-D programs agree with a direct 2-D reference sweep.
    #[test]
    fn flattening_matches_2d_reference(
        n in 2usize..6,
        m in 2usize..7,
        seed in 0u64..1000,
    ) {
        let src = format!(
            "
param n = {n};
param m = {m};
input U : array[array[real]] [0, n+1][0, m+1];
V : array[array[real]] :=
  forall i in [0, n+1], j in [0, m+1]
  construct
    if (i = 0)|(i = n+1)|(j = 0)|(j = m+1) then U[i][j] * 2.
    else U[i-1][j] + U[i+1][j] - U[i][j-1] * U[i][j+1]
    endif
  endall;
output V;
"
        );
        let prog = parse_program(&src).unwrap();
        let (flat, info) = flatten_program(&prog).unwrap();
        let w = m + 2;
        prop_assert_eq!(info.shapes["V"].width() as usize, w);

        // Inputs from the seed.
        let grid: Vec<Vec<f64>> = (0..n + 2)
            .map(|i| {
                (0..w)
                    .map(|j| (((seed as usize + i * 31 + j * 17) % 97) as f64) / 10.0)
                    .collect()
            })
            .collect();
        let mut inputs = HashMap::new();
        inputs.insert("U".to_string(), ArrayVal::from_grid(&grid));
        let out = valpipe::val::interp::run_program(&flat, &inputs).unwrap();
        let v = out["V"].to_grid(w);
        for i in 0..n + 2 {
            for j in 0..w {
                let want = if i == 0 || i == n + 1 || j == 0 || j == w - 1 {
                    grid[i][j] * 2.0
                } else {
                    grid[i - 1][j] + grid[i + 1][j] - grid[i][j - 1] * grid[i][j + 1]
                };
                prop_assert!((v[i][j] - want).abs() < 1e-12, "({},{})", i, j);
            }
        }
    }
}
