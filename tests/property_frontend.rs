//! Frontend property tests: pretty-print/parse round-trips and 2-D
//! flattening vs a direct 2-D reference evaluation.

use std::collections::HashMap;
use valpipe::val::ast::{BinOp, Def, Expr, UnOp};
use valpipe::val::pretty::expr_to_source;
use valpipe::val::{flatten_program, parse_expr, parse_program};
use valpipe::ArrayVal;
use valpipe_util::Rng;

/// Expressions over the printable operator set, recursion bounded by
/// `depth`.
fn printable_expr(r: &mut Rng, depth: usize) -> Expr {
    // Literals are non-negative: `-0.25` prints as `(-0.25)`, which
    // parses (correctly) as `Neg(0.25)` — structurally different, same
    // meaning. Negative values come from the explicit Neg variant.
    if depth == 0 || r.chance(0.3) {
        return match r.below(6) {
            0 => Expr::IntLit(r.range_i64(0, 100)),
            1 => Expr::RealLit(r.range_i64(0, 31) as f64 / 4.0),
            2 => Expr::BoolLit(true),
            3 => Expr::var("x"),
            4 => Expr::var("i"),
            _ => {
                let off = r.range_i64(-2, 3);
                Expr::index(
                    "A",
                    match off.cmp(&0) {
                        std::cmp::Ordering::Equal => Expr::var("i"),
                        std::cmp::Ordering::Greater => {
                            Expr::bin(BinOp::Add, Expr::var("i"), Expr::IntLit(off))
                        }
                        std::cmp::Ordering::Less => {
                            Expr::bin(BinOp::Sub, Expr::var("i"), Expr::IntLit(-off))
                        }
                    },
                )
            }
        };
    }
    match r.below(5) {
        0 => {
            let ops = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
                BinOp::Eq,
                BinOp::Ne,
                BinOp::And,
                BinOp::Or,
            ];
            Expr::bin(
                ops[r.below(ops.len())],
                printable_expr(r, depth - 1),
                printable_expr(r, depth - 1),
            )
        }
        1 => Expr::un(UnOp::Neg, printable_expr(r, depth - 1)),
        2 => Expr::un(UnOp::Not, printable_expr(r, depth - 1)),
        3 => Expr::if_(
            printable_expr(r, depth - 1),
            printable_expr(r, depth - 1),
            printable_expr(r, depth - 1),
        ),
        _ => Expr::Let(
            vec![Def {
                name: "p".into(),
                ty: None,
                value: printable_expr(r, depth - 1),
            }],
            Box::new(printable_expr(r, depth - 1)),
        ),
    }
}

/// `parse(print(e)) == e` for every generated expression.
#[test]
fn print_parse_roundtrip() {
    for case in 0..256u64 {
        let mut r = Rng::seed(0x5001).fork(case);
        let e = printable_expr(&mut r, 5);
        let printed = expr_to_source(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\nprinted: {printed}"));
        assert_eq!(reparsed, e, "printed: {printed}");
    }
}

/// Flattened 2-D programs agree with a direct 2-D reference sweep.
#[test]
fn flattening_matches_2d_reference() {
    for case in 0..24u64 {
        let mut r = Rng::seed(0x5002).fork(case);
        let n = r.range(2, 6);
        let m = r.range(2, 7);
        let seed = r.below(1000) as u64;
        let src = format!(
            "
param n = {n};
param m = {m};
input U : array[array[real]] [0, n+1][0, m+1];
V : array[array[real]] :=
  forall i in [0, n+1], j in [0, m+1]
  construct
    if (i = 0)|(i = n+1)|(j = 0)|(j = m+1) then U[i][j] * 2.
    else U[i-1][j] + U[i+1][j] - U[i][j-1] * U[i][j+1]
    endif
  endall;
output V;
"
        );
        let prog = parse_program(&src).unwrap();
        let (flat, info) = flatten_program(&prog).unwrap();
        let w = m + 2;
        assert_eq!(info.shapes["V"].width() as usize, w);

        // Inputs from the seed.
        let grid: Vec<Vec<f64>> = (0..n + 2)
            .map(|i| {
                (0..w)
                    .map(|j| (((seed as usize + i * 31 + j * 17) % 97) as f64) / 10.0)
                    .collect()
            })
            .collect();
        let mut inputs = HashMap::new();
        inputs.insert("U".to_string(), ArrayVal::from_grid(&grid));
        let out = valpipe::val::interp::run_program(&flat, &inputs).unwrap();
        let v = out["V"].to_grid(w);
        for i in 0..n + 2 {
            for j in 0..w {
                let want = if i == 0 || i == n + 1 || j == 0 || j == w - 1 {
                    grid[i][j] * 2.0
                } else {
                    grid[i - 1][j] + grid[i + 1][j] - grid[i][j - 1] * grid[i][j + 1]
                };
                assert!((v[i][j] - want).abs() < 1e-12, "({i},{j})");
            }
        }
    }
}

/// Random whole programs round-trip through the pretty-printer
/// (`parse(pretty(ast)) == ast`), the instrumented printer emits
/// byte-identical text, and every span both printers record slices to
/// non-empty source whose line/col matches the byte offset.
#[test]
fn program_print_parse_roundtrip_with_spans() {
    use valpipe::val::pretty::{program_to_source, program_to_source_mapped};
    use valpipe::val::srcmap::{SourceMap, StmtKey};

    fn check_spans(map: &SourceMap, keys: &[StmtKey], src_label: &str) {
        for key in keys {
            let span = map
                .span(key)
                .unwrap_or_else(|| panic!("{src_label}: no span for {key:?}"));
            let snippet = map.snippet(span);
            assert!(
                !snippet.is_empty(),
                "{src_label}: empty snippet for {key:?}"
            );
            // line/col must agree with the byte offset.
            let prefix = &map.text[..span.start as usize];
            let line = 1 + prefix.matches('\n').count() as u32;
            let col = 1 + prefix.rsplit('\n').next().unwrap().chars().count() as u32;
            assert_eq!((span.line, span.col), (line, col), "{src_label}: {key:?}");
        }
    }

    for case in 0..64u64 {
        let mut r = Rng::seed(0x5003).fork(case);
        // A chain of 1–3 forall blocks, each with 0–2 definitions,
        // reading the previous block (or the input) through a window.
        let nblocks = r.range(1, 4);
        let mut src = String::from("param m = 10;\ninput S0 : array[real] [0, m+1];\n");
        for b in 1..=nblocks {
            let prev = format!("S{}", b - 1);
            src.push_str(&format!("S{b} : array[real] :=\n  forall i in [1, m]\n"));
            let ndefs = r.below(3);
            for d in 0..ndefs {
                src.push_str(&format!(
                    "    d{d} : real := {prev}[i-1] * {}.5;\n",
                    r.range_i64(0, 9)
                ));
            }
            let body = match (ndefs, r.below(3)) {
                (0, 0) => format!("{prev}[i] + {prev}[i+1]"),
                (0, _) => format!("0.5 * ({prev}[i-1] + {prev}[i+1])"),
                (n, 0) => format!("d0 * {prev}[i] + {}.25", n),
                (n, _) => format!("d{} + {prev}[i]", n - 1),
            };
            src.push_str(&format!("  construct {body}\n  endall;\n"));
        }
        src.push_str(&format!("output S{nblocks};\n"));

        let (prog, parse_map) = valpipe::val::parse_program_mapped(&src, "case.val")
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
        // parse(pretty(ast)) == ast
        let printed = program_to_source(&prog);
        let reparsed =
            parse_program(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(reparsed, prog, "round-trip drift for:\n{src}");
        // The instrumented printer emits byte-identical text.
        let print_map = program_to_source_mapped(&prog, "case.val");
        assert_eq!(print_map.text, printed, "instrumented printer drift");

        // Both maps cover every statement, with offset-consistent spans.
        let mut keys = vec![
            StmtKey::Param("m".into()),
            StmtKey::Input("S0".into()),
            StmtKey::Output,
        ];
        for b in &prog.blocks {
            keys.push(StmtKey::BlockHeader(b.name.clone()));
            keys.push(StmtKey::BlockBody(b.name.clone()));
            if let valpipe::val::ast::BlockBody::Forall(f) = &b.body {
                for d in &f.defs {
                    keys.push(StmtKey::BlockDef(b.name.clone(), d.name.clone()));
                }
            }
        }
        check_spans(&parse_map, &keys, "parse map");
        check_spans(&print_map, &keys, "print map");
    }
}
