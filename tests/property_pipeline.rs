//! Property tests: randomly generated programs in the paper's pipelinable
//! class compile, run fully pipelined, and agree with the reference
//! interpreter on every packet. Cases come from the workspace's
//! deterministic PRNG, so every run checks the same programs.

use std::collections::HashMap;
use valpipe::compiler::verify::check_against_oracle;
use valpipe::val::ast::{BinOp, Expr, UnOp};
use valpipe::{compile_source, ArrayVal, CompileOptions, ForIterScheme};
use valpipe_util::Rng;

const M: usize = 10;

/// Render an expression back to Val source (the generator works on ASTs,
/// the compiler entry point takes source — exercising the parser too).
fn to_src(e: &Expr) -> String {
    match e {
        Expr::IntLit(v) => format!("({v})"),
        Expr::RealLit(v) => {
            if v.fract() == 0.0 {
                format!("({v:.1})")
            } else {
                format!("({v})")
            }
        }
        Expr::BoolLit(v) => if *v { "true" } else { "false" }.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Bin(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "=",
                BinOp::Ne => "~=",
                BinOp::And => "&",
                BinOp::Or => "|",
                _ => unreachable!("not generated"),
            };
            format!("({} {o} {})", to_src(a), to_src(b))
        }
        Expr::Un(UnOp::Neg, a) => format!("(-{})", to_src(a)),
        Expr::Un(UnOp::Not, a) => format!("(~{})", to_src(a)),
        Expr::Un(UnOp::Abs, _) => unreachable!("not generated"),
        Expr::Index(a, i) => format!("{a}[{}]", to_src(i)),
        Expr::If(c, t, f) => format!(
            "(if {} then {} else {} endif)",
            to_src(c),
            to_src(t),
            to_src(f)
        ),
        Expr::Let(defs, body) => {
            let ds = defs
                .iter()
                .map(|d| format!("{} := {}", d.name, to_src(&d.value)))
                .collect::<Vec<_>>()
                .join("; ");
            format!("(let {ds} in {} endlet)", to_src(body))
        }
        _ => unreachable!("not generated"),
    }
}

fn idx(off: i64) -> Expr {
    match off.cmp(&0) {
        std::cmp::Ordering::Equal => Expr::var("i"),
        std::cmp::Ordering::Greater => Expr::bin(BinOp::Add, Expr::var("i"), Expr::IntLit(off)),
        std::cmp::Ordering::Less => Expr::bin(BinOp::Sub, Expr::var("i"), Expr::IntLit(-off)),
    }
}

fn leaf(r: &mut Rng) -> Expr {
    match r.below(4) {
        0 => Expr::RealLit(r.range_i64(-15, 16) as f64 / 10.0),
        1 => Expr::index("P", idx(r.range_i64(-1, 2))),
        2 => Expr::index("Q", idx(r.range_i64(-1, 2))),
        _ => Expr::var("i"),
    }
}

/// Numeric primitive expressions on `i` over arrays P and Q, recursion
/// bounded by `depth`. The weighted cases mirror the original generator:
/// arithmetic (4), negation (1), division by a constant (1), static
/// condition (2), dynamic condition (2), let sharing (1).
fn num_expr(r: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || r.chance(0.25) {
        return leaf(r);
    }
    match r.below(11) {
        0..=3 => {
            let op = [BinOp::Add, BinOp::Sub, BinOp::Mul][r.below(3)];
            Expr::bin(op, num_expr(r, depth - 1), num_expr(r, depth - 1))
        }
        4 => Expr::un(UnOp::Neg, num_expr(r, depth - 1)),
        5 => Expr::bin(
            BinOp::Div,
            num_expr(r, depth - 1),
            Expr::RealLit(r.range_i64(2, 9) as f64),
        ),
        // Static condition (index-only): exercises control-stream gating.
        6 | 7 => Expr::if_(
            Expr::bin(
                BinOp::Lt,
                Expr::var("i"),
                Expr::IntLit(r.range_i64(1, M as i64)),
            ),
            num_expr(r, depth - 1),
            num_expr(r, depth - 1),
        ),
        // Dynamic condition (data-dependent): exercises Fig. 5 gating.
        8 | 9 => Expr::if_(
            Expr::bin(BinOp::Lt, num_expr(r, depth - 1), num_expr(r, depth - 1)),
            num_expr(r, depth - 1),
            num_expr(r, depth - 1),
        ),
        // Let sharing: the bound stream fans out to two consumers.
        _ => Expr::Let(
            vec![valpipe::val::Def {
                name: "p".into(),
                ty: None,
                value: num_expr(r, depth - 1),
            }],
            Box::new(Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::var("p"), Expr::var("p")),
                num_expr(r, depth - 1),
            )),
        ),
    }
}

fn inputs() -> HashMap<String, ArrayVal> {
    let p: Vec<f64> = (0..M + 2).map(|k| (k as f64 * 0.7).sin()).collect();
    let q: Vec<f64> = (0..M + 2).map(|k| (k as f64 * 0.3).cos()).collect();
    let mut h = HashMap::new();
    h.insert("P".to_string(), ArrayVal::from_reals(0, &p));
    h.insert("Q".to_string(), ArrayVal::from_reals(0, &q));
    h
}

/// Theorem 1/2 as a property: every random primitive forall compiles,
/// drains, matches the oracle, and streams at the maximum rate.
#[test]
fn random_primitive_forall_fully_pipelined() {
    for case in 0..48u64 {
        let mut r = Rng::seed(0x2001).fork(case);
        let body = num_expr(&mut r, 4);
        let src = format!(
            "param m = {M};
input P : array[real] [0, m+1];
input Q : array[real] [0, m+1];
Y : array[real] := forall i in [1, m] construct {} endall;
output Y;",
            to_src(&body)
        );
        let compiled = compile_source(&src, &CompileOptions::paper())
            .unwrap_or_else(|e| panic!("compile failed: {e}\nsource:\n{src}"));
        let report = check_against_oracle(&compiled, &inputs(), 24, 1e-9)
            .unwrap_or_else(|e| panic!("oracle failed: {e}\nsource:\n{src}"));
        let iv = report.run.timing("Y").interval().expect("steady state");
        // Full pipelining: never slower than the input-paced bound of
        // `2·(M+2)/M` (M useful outputs per (M+2)-element input wave), and
        // never faster than the machine's 2-instruction-time maximum.
        // (Bodies whose array reads are pruned by always-false static
        // conditions free-run at exactly 2.0.)
        let upper = 2.0 * (M as f64 + 2.0) / M as f64 + 0.25;
        assert!(
            iv > 1.9 && iv < upper,
            "interval {iv} outside [1.9, {upper}] for:\n{src}"
        );
    }
}

/// Theorem 3 as a property: every random *linear* recurrence matches
/// the oracle under both schemes, and the companion scheme is at least
/// as fast as Todd's.
#[test]
fn random_linear_recurrence_schemes_agree() {
    for case in 0..48u64 {
        let mut r = Rng::seed(0x2002).fork(case);
        let alpha = match r.below(4) {
            0 => Expr::RealLit(r.range_i64(50, 99) as f64 / 100.0),
            1 => Expr::bin(BinOp::Mul, Expr::index("P", idx(0)), Expr::RealLit(0.5)),
            2 => Expr::index("P", idx(-1)),
            _ => Expr::IntLit(1),
        };
        let beta = match r.below(3) {
            0 => Expr::RealLit(r.range_i64(-20, 20) as f64 / 10.0),
            1 => Expr::index("Q", idx(0)),
            _ => Expr::bin(BinOp::Add, Expr::index("Q", idx(1)), Expr::RealLit(0.25)),
        };
        let flip = r.flip();
        // Body: α·T[i-1] + β, sometimes written β + T[i-1]·α to exercise
        // the linearity analyzer's structural cases.
        let t = "T[i-1]".to_string();
        let body = if flip {
            format!("{} + ({t} * {})", to_src(&beta), to_src(&alpha))
        } else {
            format!("({} * {t}) + {}", to_src(&alpha), to_src(&beta))
        };
        let src = format!(
            "param m = {M};
input P : array[real] [0, m+1];
input Q : array[real] [0, m+1];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.25]
  do
    if i < m then iter T := T[i: {body}]; i := i + 1 enditer else T endif
  endfor;
output X;"
        );
        let mut ivs = Vec::new();
        for scheme in [ForIterScheme::Todd, ForIterScheme::Companion] {
            let mut opts = CompileOptions::paper();
            opts.scheme = scheme;
            let compiled = compile_source(&src, &opts)
                .unwrap_or_else(|e| panic!("compile ({scheme:?}) failed: {e}\n{src}"));
            let report = check_against_oracle(&compiled, &inputs(), 24, 1e-9)
                .unwrap_or_else(|e| panic!("oracle ({scheme:?}) failed: {e}\n{src}"));
            ivs.push(report.run.timing("X").interval().expect("steady state"));
        }
        assert!(
            ivs[1] <= ivs[0] + 0.05,
            "companion ({}) slower than Todd ({}) for:\n{src}",
            ivs[1],
            ivs[0]
        );
    }
}
