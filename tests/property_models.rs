//! Cross-model property: the idealized simulator, the detailed
//! static-latency machine, and the closed-loop networked machine must
//! produce identical packet sequences for random programs — data-driven
//! execution is timing-independent (the heart of the dataflow model).

use valpipe::ir::{BinOp, Graph, Opcode, Value};
use valpipe::machine::{
    run_closed_loop, ClosedLoopOptions, MachineConfig, Placement, ProgramInputs, Simulator,
};
use valpipe_util::Rng;

/// Random layered DAG over two sources, ADD/MUL/ID cells, one sink per
/// terminal node.
fn build_dag(layers: &[Vec<(usize, usize, bool)>]) -> Graph {
    let mut g = Graph::new();
    let mut pool = vec![
        g.add_node(Opcode::Source("s0".into()), "s0"),
        g.add_node(Opcode::Source("s1".into()), "s1"),
    ];
    for (li, layer) in layers.iter().enumerate() {
        let mut next = Vec::new();
        for (ni, &(p1, p2, mul)) in layer.iter().enumerate() {
            let a = pool[p1 % pool.len()];
            let b = pool[p2 % pool.len()];
            let node = if a == b {
                g.cell(Opcode::Id, format!("n{li}_{ni}"), &[a.into()])
            } else {
                let op = if mul { BinOp::Mul } else { BinOp::Add };
                g.cell(
                    Opcode::Bin(op),
                    format!("n{li}_{ni}"),
                    &[a.into(), b.into()],
                )
            };
            next.push(node);
        }
        pool.extend(next);
    }
    for id in g.node_ids().collect::<Vec<_>>() {
        if g.nodes[id.idx()].op.produces_output() && g.nodes[id.idx()].outputs.is_empty() {
            let name = format!("out{}", id.idx());
            let s = g.add_node(Opcode::Sink(name.clone()), name);
            g.connect(id, s, 0);
        }
    }
    g
}

#[test]
fn all_three_machine_models_agree() {
    for case in 0..24u64 {
        let mut r = Rng::seed(0x4001).fork(case);
        let layers: Vec<Vec<(usize, usize, bool)>> = (0..r.range(1, 4))
            .map(|_| {
                (0..r.range(1, 4))
                    .map(|_| (r.below(64), r.below(64), r.flip()))
                    .collect()
            })
            .collect();
        let pes_pow = r.range(1, 4) as u32;
        let cap = r.range(1, 4);

        let g = build_dag(&layers);
        let n = 24usize;
        let inputs = ProgramInputs::new()
            .bind("s0", (0..n).map(|k| Value::Real(k as f64 * 0.5)).collect())
            .bind(
                "s1",
                (0..n).map(|k| Value::Real(1.0 + k as f64 * 0.25)).collect(),
            );

        // 1. Idealized.
        let ideal = Simulator::builder(&g).inputs(inputs.clone()).run().unwrap();
        assert!(ideal.sources_exhausted);

        // 2. Detailed static-latency machine.
        let pes = 1usize << pes_pow;
        let cfg = MachineConfig {
            pes,
            network_latency: 2,
            ..Default::default()
        };
        let placement = Placement::round_robin(&g, cfg);
        let detailed = Simulator::builder(&g)
            .inputs(inputs.clone())
            .config(placement.sim_config(&g, cap).max_steps(2_000_000))
            .run()
            .unwrap();
        assert!(detailed.sources_exhausted);

        // 3. Closed-loop networked machine.
        let cl = run_closed_loop(
            &g,
            &inputs,
            &placement.pe_of,
            &ClosedLoopOptions {
                pes,
                arc_capacity: cap as u32,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(cl.sources_exhausted);

        for (_, name) in g.sinks() {
            let want = ideal.values(&name);
            assert_eq!(&detailed.values(&name), &want, "detailed {name}");
            assert_eq!(&cl.values(&name), &want, "closed-loop {name}");
        }
    }
}
