//! Negative tests of the verification harness itself: a corrupted machine
//! program must be *caught*, not silently accepted — otherwise every rate
//! measurement in EXPERIMENTS.md would be meaningless.

use std::collections::HashMap;
use valpipe::compiler::verify::{check_against_oracle, VerifyError};
use valpipe::ir::{Opcode, PortBinding, Value};
use valpipe::{compile_source, ArrayVal, CompileOptions};

fn setup() -> (valpipe::Compiled, HashMap<String, ArrayVal>) {
    let src = "
param m = 8;
input B : array[real] [0, m];
Y : array[real] := forall i in [0, m] construct B[i] * 2. + 1. endall;
output Y;
";
    let compiled = compile_source(src, &CompileOptions::paper()).unwrap();
    let b: Vec<f64> = (0..9).map(|i| i as f64).collect();
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    (compiled, inputs)
}

#[test]
fn oracle_catches_a_corrupted_literal() {
    let (mut compiled, inputs) = setup();
    // Flip the `* 2.` literal to `* 2.000001`.
    let mut tampered = false;
    for node in &mut compiled.graph.nodes {
        for b in &mut node.inputs {
            if let PortBinding::Lit(Value::Real(x)) = b {
                if *x == 2.0 {
                    *b = PortBinding::Lit(Value::Real(2.000001));
                    tampered = true;
                }
            }
        }
    }
    assert!(tampered);
    let err = check_against_oracle(&compiled, &inputs, 4, 1e-9).unwrap_err();
    assert!(matches!(err, VerifyError::Mismatch { .. }), "{err}");
}

#[test]
fn oracle_catches_a_rewired_opcode() {
    let (mut compiled, inputs) = setup();
    let mut tampered = false;
    for node in &mut compiled.graph.nodes {
        if matches!(node.op, Opcode::Bin(valpipe::ir::BinOp::Add)) {
            node.op = Opcode::Bin(valpipe::ir::BinOp::Sub);
            tampered = true;
            break;
        }
    }
    assert!(tampered);
    let err = check_against_oracle(&compiled, &inputs, 4, 1e-9).unwrap_err();
    assert!(matches!(err, VerifyError::Mismatch { .. }), "{err}");
}

#[test]
fn oracle_catches_a_dropped_control_run() {
    // Corrupt a window-selection control stream: the program now emits the
    // wrong number of packets (or the wrong elements) and must be flagged.
    let src = "
param m = 8;
input B : array[real] [0, m+1];
Y : array[real] := forall i in [1, m] construct B[i-1] + B[i+1] endall;
output Y;
";
    let mut compiled = compile_source(src, &CompileOptions::paper()).unwrap();
    let mut tampered = false;
    for node in &mut compiled.graph.nodes {
        if let Opcode::CtlGen(s) = &node.op {
            // Shift a window whose selection starts late back to position
            // 0 — the tap now passes the wrong elements.
            let n = s.wave_len();
            let trues = s.trues_per_wave();
            let starts_late = !s.at(0);
            if trues < n && starts_late && !tampered {
                node.op = Opcode::CtlGen(valpipe::ir::CtlStream::window(n, 0, trues));
                tampered = true;
            }
        }
    }
    assert!(tampered);
    let b: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    let err = check_against_oracle(&compiled, &inputs, 4, 1e-9).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::Mismatch { .. }
                | VerifyError::WrongLength { .. }
                | VerifyError::Stalled { .. }
        ),
        "{err}"
    );
}

#[test]
fn removing_buffers_jams_the_two_tap_stencil() {
    // The paper's §5 warning made literal: without the skew FIFOs the
    // two-tap stencil DEADLOCKS — the early tap's passed element blocks
    // the shared source, so the late tap never receives the element it
    // must discard. ("The elements of the incoming array not used in the
    // computation must be discarded so they do not cause jams.")
    let src = "
param m = 16;
input C : array[real] [0, m+1];
S : array[real] := forall i in [1, m] construct C[i-1] + C[i+1] endall;
output S;
";
    let balanced = compile_source(src, &CompileOptions::paper()).unwrap();
    let mut unbalanced_opts = CompileOptions::paper();
    unbalanced_opts.balance = valpipe::balance::BalanceMode::None;
    let unbalanced = compile_source(src, &unbalanced_opts).unwrap();
    let c: Vec<f64> = (0..18).map(|i| (i as f64).sqrt()).collect();
    let mut inputs = HashMap::new();
    inputs.insert("C".to_string(), ArrayVal::from_reals(0, &c));
    let rb = check_against_oracle(&balanced, &inputs, 20, 1e-12).unwrap();
    assert!((rb.run.timing("S").interval().unwrap() - 2.25).abs() < 0.15);
    let err = check_against_oracle(&unbalanced, &inputs, 20, 1e-12).unwrap_err();
    assert!(matches!(err, VerifyError::Stalled { .. }), "{err}");
    // The stall report must finger a blocked gate.
    let run =
        valpipe::compiler::verify::run(&unbalanced, &inputs, 2, valpipe::SimConfig::new()).unwrap();
    let report = run.stall_report.expect("jammed run carries a report");
    assert_eq!(report.kind, valpipe::machine::StallKind::Deadlock);
    assert!(!report.blocked_cells.is_empty());
    assert!(!report.held_arcs.is_empty());
    let text = report.to_string();
    assert!(text.contains("blocked"), "{text}");
}
