//! Integration tests: the paper's published examples end-to-end across
//! every crate — parse → classify → compile → simulate → oracle → rate.

use std::collections::HashMap;
use valpipe::compiler::verify::{check_against_oracle, run};
use valpipe::val::parser::{parse_block_body, EXAMPLE_1, EXAMPLE_2, FIG3_PROGRAM};
use valpipe::SimConfig;
use valpipe::{compile_source, ArrayVal, CompileOptions, ForIterScheme};

fn fig3_inputs(m: usize) -> HashMap<String, ArrayVal> {
    let b: Vec<f64> = (0..m + 2).map(|i| 0.5 + (i as f64 * 0.37).sin()).collect();
    let c: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.21).cos()).collect();
    let mut h = HashMap::new();
    h.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    h.insert("C".to_string(), ArrayVal::from_reals(0, &c));
    h
}

#[test]
fn published_examples_parse_and_classify() {
    use valpipe::ir::Value;
    use valpipe::val::classify::{check_primitive_forall, check_primitive_foriter, NameEnv};
    use valpipe::val::BlockBody;

    let mut params = valpipe::val::fold::Bindings::new();
    params.insert("m".into(), Value::Int(32));
    let env = NameEnv::new(
        None,
        std::iter::empty(),
        ["A", "B", "C"].map(str::to_string),
        params,
    );

    let BlockBody::Forall(f) = parse_block_body(EXAMPLE_1).unwrap() else {
        panic!("Example 1 must parse as forall");
    };
    let pf = check_primitive_forall(&f, &env).unwrap();
    assert_eq!((pf.lo, pf.hi), (0, 33));

    let BlockBody::ForIter(fi) = parse_block_body(EXAMPLE_2).unwrap() else {
        panic!("Example 2 must parse as for-iter");
    };
    let pfi = check_primitive_foriter(&fi, &env).unwrap();
    assert_eq!(pfi.range(), (0, 31));
    // And it is a *simple* for-iter: the companion function is derivable.
    let lf = valpipe::val::extract_linear(&pfi.step_inlined(), &pfi.acc).unwrap();
    assert!(lf.alpha.mentions("A"));
    assert!(lf.beta.mentions("B"));
}

#[test]
fn fig3_program_full_stack() {
    let compiled = compile_source(FIG3_PROGRAM, &CompileOptions::paper()).unwrap();
    // The for-iter got the companion scheme automatically.
    assert_eq!(
        compiled.stats.schemes["X"],
        valpipe::compiler::UsedScheme::Companion
    );
    let report = check_against_oracle(&compiled, &fig3_inputs(32), 25, 1e-9).unwrap();
    assert!(report.max_rel_err < 1e-9);
    let iv_a = report.run.timing("A").interval().unwrap();
    assert!((iv_a - 2.0).abs() < 0.1, "A interval {iv_a}");
}

#[test]
fn fig3_program_with_todd_is_slower_but_correct() {
    let mut opts = CompileOptions::paper();
    opts.scheme = ForIterScheme::Todd;
    let compiled = compile_source(FIG3_PROGRAM, &opts).unwrap();
    let report = check_against_oracle(&compiled, &fig3_inputs(32), 25, 1e-9).unwrap();
    let iv_x = report.run.timing("X").interval().unwrap();
    assert!(iv_x > 3.5, "Todd X interval {iv_x} should be cycle-limited");
    // The slow loop back-pressures the whole upstream pipeline through the
    // acknowledgment discipline: even A's sink sees the degraded rate.
    // This is exactly why the paper needs the companion scheme — one
    // unpipelined recurrence throttles the entire program.
    let iv_a = report.run.timing("A").interval().unwrap();
    assert!(
        iv_a > 3.0,
        "A interval {iv_a} should be dragged down by the loop"
    );
}

#[test]
fn rates_stable_across_sizes() {
    for m in [8usize, 24, 64] {
        let src = FIG3_PROGRAM.replace("param m = 32;", &format!("param m = {m};"));
        let compiled = compile_source(&src, &CompileOptions::paper()).unwrap();
        let report = check_against_oracle(&compiled, &fig3_inputs(m), 20, 1e-9).unwrap();
        let iv = report.run.timing("A").interval().unwrap();
        assert!(
            (iv - 2.0).abs() < 0.1,
            "m={m}: interval {iv} — the rate must not depend on array size"
        );
    }
}

#[test]
fn machine_code_listing_and_dot_cover_all_cells() {
    let compiled = compile_source(FIG3_PROGRAM, &CompileOptions::paper()).unwrap();
    let listing = valpipe::ir::pretty::listing(&compiled.graph);
    assert_eq!(listing.lines().count(), compiled.graph.node_count());
    let dot = valpipe::ir::dot::to_dot(&compiled.graph, "fig3");
    assert_eq!(
        dot.matches("\n  n").count(),
        compiled.graph.node_count() + compiled.graph.arc_count()
    );
}

#[test]
fn executable_graph_has_no_symbolic_fifos() {
    let compiled = compile_source(FIG3_PROGRAM, &CompileOptions::paper()).unwrap();
    let exe = compiled.executable();
    assert!(exe
        .nodes
        .iter()
        .all(|n| !matches!(n.op, valpipe::ir::Opcode::Fifo(_))));
    assert!(valpipe::ir::validate::validate(&exe).is_empty());
}

#[test]
fn detailed_machine_model_matches_values() {
    use valpipe::machine::{MachineConfig, Placement, Simulator};

    let compiled = compile_source(FIG3_PROGRAM, &CompileOptions::paper()).unwrap();
    let exe = compiled.executable();
    let placement = Placement::round_robin(&exe, MachineConfig::default());
    let inputs = valpipe::compiler::verify::stream_inputs(&compiled, &fig3_inputs(32), 5);
    let r = Simulator::builder(&exe)
        .inputs(inputs)
        .config(placement.sim_config(&exe, 4).max_steps(2_000_000))
        .run()
        .unwrap();
    assert!(r.sources_exhausted, "detailed machine must drain all input");
    // Values identical to the idealized run (timing differs, data doesn't).
    let ideal = run(&compiled, &fig3_inputs(32), 5, SimConfig::new()).unwrap();
    let take = ideal.values("X").len().min(r.values("X").len());
    assert!(take > 0);
    assert_eq!(r.values("X")[..take], ideal.values("X")[..take]);
}

#[test]
fn rejects_non_pipelinable_programs() {
    // Nested forall (disallowed by the pipe-structured definition).
    let bad = "
param m = 4;
input B : array[real] [0, m];
A : array[real] := forall i in [0, m] construct B[2*i] endall;
output A;
";
    assert!(compile_source(bad, &CompileOptions::paper()).is_err());

    // Dynamic range.
    let bad2 = "
input B : array[real] [0, 4];
A : array[real] := forall i in [0, B[0]] construct B[i] endall;
output A;
";
    assert!(compile_source(bad2, &CompileOptions::paper()).is_err());
}

#[test]
fn latency_grows_with_depth_but_rate_does_not() {
    // §3's pipelining tradeoff, quantified: fill latency is linear in the
    // block count, throughput per input wave is constant.
    use valpipe::compiler::verify::run;
    let mut fills = Vec::new();
    for blocks in [4usize, 16] {
        let m = 2 * blocks + 12;
        let mut src = format!("param m = {m};\ninput S0 : array[real] [0, m+1];\n");
        for k in 1..=blocks {
            src.push_str(&format!(
                "S{k} : array[real] := forall i in [{k}, m+1-{k}] construct 0.5*(S{}[i-1] + S{}[i+1]) endall;\n",
                k - 1, k - 1
            ));
        }
        src.push_str(&format!("output S{blocks};\n"));
        let compiled = compile_source(&src, &CompileOptions::paper()).unwrap();
        let vals: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut arrays = HashMap::new();
        arrays.insert("S0".to_string(), ArrayVal::from_reals(0, &vals));
        let r = run(&compiled, &arrays, 6, SimConfig::new()).unwrap();
        fills.push(r.fill_latency(&format!("S{blocks}")).unwrap());
    }
    assert!(
        fills[1] > 2 * fills[0],
        "deeper pipe must take longer to fill: {fills:?}"
    );
}

#[test]
fn closed_loop_machine_runs_feedback_loops() {
    // The companion-scheme loop (initial tokens + merge-seeded feedback)
    // must work when every packet crosses a real network.
    use valpipe_machine::{run_closed_loop, ClosedLoopOptions, MachineConfig, Placement};
    let compiled = compile_source(FIG3_PROGRAM, &CompileOptions::paper()).unwrap();
    let exe = compiled.executable();
    let inputs = valpipe::compiler::verify::stream_inputs(&compiled, &fig3_inputs(32), 6);
    let ideal =
        valpipe::compiler::verify::run(&compiled, &fig3_inputs(32), 6, SimConfig::new()).unwrap();
    let placement = Placement::round_robin(
        &exe,
        MachineConfig {
            pes: 8,
            ..Default::default()
        },
    );
    let r = run_closed_loop(
        &exe,
        &inputs,
        &placement.pe_of,
        &ClosedLoopOptions {
            pes: 8,
            arc_capacity: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r.sources_exhausted);
    for out in ["A", "X"] {
        let take = ideal.values(out).len().min(r.values(out).len());
        assert!(take > 100, "{out}: {take}");
        assert_eq!(r.values(out)[..take], ideal.values(out)[..take], "{out}");
    }
}
