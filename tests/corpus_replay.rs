//! CI gate: every committed repro in `tests/corpus/` replays
//! byte-identically — the recorded `% expect:` line must equal the
//! outcome the differential executor produces today, byte for byte.
//!
//! A mismatch means compiler behavior drifted on an anchored program: a
//! fixed limitation (update the expectation and celebrate), a changed
//! diagnostic (update the expectation), or a reintroduced bug (fix it).

use std::path::Path;

use valpipe_fuzz::{replay_dir, with_quiet_panics, Repro};

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus"))
}

#[test]
fn corpus_repros_replay_byte_identically() {
    let results = with_quiet_panics(|| replay_dir(corpus_dir())).expect("corpus replays");
    assert!(!results.is_empty(), "tests/corpus/ holds no repros");
    let mismatches: Vec<String> = results
        .iter()
        .filter(|r| !r.ok)
        .map(|r| {
            format!(
                "{}:\n  expect: {}\n  actual: {}",
                r.path.display(),
                r.expect,
                r.actual
            )
        })
        .collect();
    assert!(
        mismatches.is_empty(),
        "corpus drift:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn corpus_files_are_well_formed_repros() {
    let mut seen = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "val") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).expect("readable");
        let repro = Repro::parse(&text)
            .unwrap_or_else(|e| panic!("{}: bad repro format: {e}", path.display()));
        assert!(
            !repro.src.trim().is_empty(),
            "{}: empty source",
            path.display()
        );
        // The header lines are `%` comments, so the whole file must also
        // be valid input to the plain compiler frontend (parse may still
        // reject — that is what some repros record — but reading the file
        // as a repro must agree with reading it as source minus headers).
        assert!(
            text.starts_with("% valpipe-fuzz repro"),
            "{}: missing magic",
            path.display()
        );
    }
    assert!(seen >= 5, "expected the seeded corpus, found {seen} repros");
}
