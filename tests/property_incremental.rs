//! Property suite for the incremental query engine: warm recompiles must
//! be byte-identical to cold compiles — for arbitrary random programs,
//! random single-block edits, corrupted mutants (typed errors included),
//! and in the presence of arbitrary on-disk cache corruption.

use valpipe::compiler::{PipelineOutput, QueryEngine};
use valpipe::{CompileError, CompileLimits, CompileOptions, Stage};
use valpipe_fuzz::{generate, mutate};
use valpipe_util::Rng;

fn compile(
    engine: &mut QueryEngine,
    src: &str,
    opts: &CompileOptions,
) -> Result<PipelineOutput, CompileError> {
    engine.run_source(
        opts,
        &CompileLimits::default(),
        &Stage::ALL,
        src,
        "prop.val",
    )
}

/// Deterministic digest of a compile outcome: stage dumps plus graph
/// fingerprint on success, rendered diagnostic on failure.
fn digest(r: &Result<PipelineOutput, CompileError>) -> String {
    match r {
        Ok(out) => {
            let mut s = format!("fingerprint {:016x}\n", out.compiled.graph.fingerprint());
            for (stage, dump) in &out.dumps {
                s.push_str(&format!("==== {stage} ====\n{dump}"));
            }
            s
        }
        Err(e) => format!("error: {e}\n"),
    }
}

/// Pass-stat invariants: the warm run must replicate the cold run's pass
/// sequence and graph sizes exactly (wall times are the only freedom).
fn assert_stats_match(cold: &PipelineOutput, warm: &PipelineOutput) {
    let names = |o: &PipelineOutput| o.pass_stats.iter().map(|s| s.name).collect::<Vec<_>>();
    assert_eq!(names(cold), names(warm));
    for (c, w) in cold.pass_stats.iter().zip(&warm.pass_stats) {
        assert_eq!(
            (c.nodes_before, c.arcs_before, c.nodes_after, c.arcs_after),
            (w.nodes_before, w.arcs_before, w.nodes_after, w.arcs_after),
            "pass {} sizes diverge between cold and warm",
            c.name
        );
    }
}

/// A small chain program with an editable literal per block.
fn chain(blocks: usize, lits: &[&str]) -> String {
    let m = 2 * blocks + 8;
    let mut s = format!("param m = {m};\ninput S0 : array[real] [0, m+1];\n");
    for k in 1..=blocks {
        s.push_str(&format!(
            "S{k} : array[real] := forall i in [{k}, m+1-{k}] construct {} * (S{}[i-1] + S{}[i+1]) endall;\n",
            lits[(k - 1) % lits.len()],
            k - 1,
            k - 1
        ));
    }
    s.push_str(&format!("output S{blocks};\n"));
    s
}

#[test]
fn single_block_edits_recompile_byte_identically_and_sparsely() {
    let base = chain(8, &["0.5"]);
    let opts = CompileOptions::paper();
    let mut engine = QueryEngine::new();
    compile(&mut engine, &base, &opts).unwrap();

    let mut r = Rng::seed(0x1AC1);
    for trial in 0..12u64 {
        // Edit one random block to one random (length-preserving) literal.
        let k = 1 + r.below(8);
        let lit = format!("0.{}", 51 + r.below(49));
        let mut lits = vec!["0.5"; 8];
        lits[k - 1] = &lit;
        let edited = chain(8, &lits);

        let warm = compile(&mut engine, &edited, &opts).unwrap();
        let executed = engine.stats().executed();
        let total = engine.stats().total();
        let cold = compile(&mut QueryEngine::new(), &edited, &opts).unwrap();
        assert_eq!(
            digest(&Ok(cold.clone())),
            digest(&Ok(warm.clone())),
            "trial {trial}: warm artifact diverged from cold"
        );
        assert_stats_match(&cold, &warm);
        assert!(
            executed * 4 < total,
            "trial {trial}: edit of 1/8 blocks re-executed {executed}/{total} queries"
        );
    }
}

#[test]
fn random_programs_and_mutants_match_cold_including_typed_errors() {
    let mut engine = QueryEngine::new();
    let mut r = Rng::seed(0x1AC2);
    let mut errors_seen = 0usize;
    for seed in 0..25u64 {
        let case = generate(seed);
        // Valid program: cold-vs-warm through the shared engine.
        let cold = compile(&mut QueryEngine::new(), &case.src, &case.opts);
        let warm = compile(&mut engine, &case.src, &case.opts);
        assert_eq!(digest(&cold), digest(&warm), "seed {seed} (original)");

        // Corrupted mutant: the shared warm engine must agree with a cold
        // compile — especially on the diagnostic when the mutant is
        // rejected (cached type errors must re-resolve locations).
        let mutant = mutate(&case.src, &mut r);
        let cold_m = compile(&mut QueryEngine::new(), &mutant, &case.opts);
        let warm_m = compile(&mut engine, &mutant, &case.opts);
        assert_eq!(digest(&cold_m), digest(&warm_m), "seed {seed} (mutant)");
        if cold_m.is_err() {
            errors_seen += 1;
        }
        // And again: the second warm compile of the same mutant answers
        // from the memo and must still render identically.
        let warm_m2 = compile(&mut engine, &mutant, &case.opts);
        assert_eq!(
            digest(&cold_m),
            digest(&warm_m2),
            "seed {seed} (mutant, memoized)"
        );
    }
    assert!(errors_seen > 0, "mutation never produced a rejection");
}

fn cache_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("valpipe-incr-prop-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn cache_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut v: Vec<_> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|f| f.ok().map(|f| f.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "vpqc"))
                .collect()
        })
        .unwrap_or_default();
    v.sort();
    v
}

#[test]
fn cache_corruption_always_falls_back_cold_never_panics_never_stale() {
    let dir = cache_dir("corrupt");
    let src = chain(5, &["0.5"]);
    let opts = CompileOptions::paper();
    let reference = {
        let mut e = QueryEngine::with_disk_cache(&dir);
        digest(&compile(&mut e, &src, &opts))
    };
    let files = cache_files(&dir);
    assert!(!files.is_empty(), "disk cache was not written");
    let path = &files[0];
    let pristine = std::fs::read(path).unwrap();

    // Bit flips marching through the file, truncations, version skew,
    // and garbage: every damaged cache must yield the cold answer.
    let mut variants: Vec<Vec<u8>> = Vec::new();
    let mut pos = 0usize;
    while pos < pristine.len() {
        let mut v = pristine.clone();
        v[pos] ^= 1 << (pos % 8);
        variants.push(v);
        pos += pristine.len() / 13 + 1;
    }
    for cut in [0usize, 3, 15, 16, pristine.len().saturating_sub(1)] {
        variants.push(pristine[..cut.min(pristine.len())].to_vec());
    }
    let mut skew = pristine.clone();
    skew[4] = skew[4].wrapping_add(1);
    variants.push(skew);
    variants.push(b"{\"regions\":[],\"balance\":[]}".to_vec());

    for (i, bytes) in variants.iter().enumerate() {
        std::fs::write(path, bytes).unwrap();
        let mut e = QueryEngine::with_disk_cache(&dir);
        let got = digest(&compile(&mut e, &src, &opts));
        assert_eq!(reference, got, "variant {i} changed the compile output");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_cache_is_never_stale_across_edits() {
    let dir = cache_dir("stale");
    let opts = CompileOptions::paper();
    let a = chain(6, &["0.5"]);
    let b = chain(6, &["0.5", "0.7", "0.5", "0.5", "0.5", "0.5"]);
    {
        let mut e = QueryEngine::with_disk_cache(&dir);
        compile(&mut e, &a, &opts).unwrap();
    }
    // A different process (fresh engine) edits the source: the cached
    // regions for unchanged blocks may be reused, but the output must be
    // the cold output of the *edited* source.
    let cold_b = digest(&compile(&mut QueryEngine::new(), &b, &opts));
    let mut e2 = QueryEngine::with_disk_cache(&dir);
    let warm_b = digest(&compile(&mut e2, &b, &opts));
    assert_eq!(cold_b, warm_b);
    assert!(
        e2.stats().disk_entries_loaded > 0,
        "expected the second process to revive disk artifacts: {}",
        e2.stats().render()
    );
    // And back: recompiling the original source stays byte-stable too.
    let cold_a = digest(&compile(&mut QueryEngine::new(), &a, &opts));
    let warm_a = digest(&compile(&mut e2, &a, &opts));
    assert_eq!(cold_a, warm_a);
    let _ = std::fs::remove_dir_all(&dir);
}
