//! Golden `--emit` stage dumps for the paper's figures.
//!
//! The dumps are deterministic by construction (no wall times, no hash
//! iteration order), so they are committed verbatim under `tests/golden/`
//! and any drift — in the compiler's output graphs, the dump format, or
//! the provenance tables — fails here with a diff-able artifact.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_emit
//! ```

use valpipe::{CompileOptions, PassManager, Stage};

fn fig2_src(m: usize) -> String {
    format!(
        "param m = {m};
input A : array[real] [0, m];
input B : array[real] [0, m];
Y : array[real] :=
  forall i in [0, m]
    y : real := A[i] * B[i];
  construct (y + 2.) * (y - 3.)
  endall;
output Y;"
    )
}

fn fig6_src(m: usize) -> String {
    format!(
        "param m = {m};
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real :=
      if (i = 0)|(i = m+1) then C[i]
      else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct B[i]*(P*P)
  endall;
output A;"
    )
}

fn fig3_src(m: usize) -> String {
    valpipe::val::parser::FIG3_PROGRAM.replace("param m = 32;", &format!("param m = {m};"))
}

/// Dump the requested stages and compare against (or update) the golden
/// file.
fn check(name: &str, src: &str, file: &str, stages: &[Stage]) {
    let out = PassManager::new(&CompileOptions::paper())
        .emit_all(stages)
        .run_source(src, file)
        .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    let mut got = String::new();
    for (stage, dump) in &out.dumps {
        got.push_str(&format!("==== {stage} ====\n"));
        got.push_str(dump);
        if !dump.ends_with('\n') {
            got.push('\n');
        }
    }
    let path = format!("{}/tests/golden/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path}: {e} (run with UPDATE_GOLDEN=1)"));
    assert!(
        got == want,
        "{name}: dump drifted from {path}.\n\
         If the change is intentional, rerun with UPDATE_GOLDEN=1.\n\
         --- got ---\n{got}\n--- want ---\n{want}"
    );
}

/// Fig. 2's scalar pipeline: every stage dump, locking the format of all
/// five artifacts.
#[test]
fn fig2_all_stages() {
    check("fig2_all", &fig2_src(4), "fig2.val", &Stage::ALL);
}

/// Fig. 3 (Example 1 feeding Example 2): the final machine program with
/// its provenance table.
#[test]
fn fig3_machine() {
    check("fig3_machine", &fig3_src(8), "fig3.val", &[Stage::Machine]);
}

/// Fig. 6 (Example 1 standalone): balanced IR and machine program.
#[test]
fn fig6_balanced_and_machine() {
    check(
        "fig6_machine",
        &fig6_src(4),
        "fig6.val",
        &[Stage::Balanced, Stage::Machine],
    );
}
