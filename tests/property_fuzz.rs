//! Property tests for the fuzzing subsystem (`crates/fuzz`).
//!
//! * **Generator validity** — every generated program parses, type
//!   checks, and (when the compiler accepts it) terminates under the
//!   interpreter within its iteration guard; rejections stay inside the
//!   known gating-limitation footprint.
//! * **Mutator safety** — corrupted sources never panic the frontend or
//!   the limited compile path; every answer is a typed error or a valid
//!   compilation.
//! * **Differential smoke** — the oracle-vs-matrix executor passes on a
//!   spread of seeds (the deep campaign lives in `exp_fuzz`).
//! * **Shrinker contract** — reduction preserves the failure predicate
//!   end-to-end through the real differential executor.

use std::panic::{catch_unwind, AssertUnwindSafe};

use valpipe::{compile_source_limited, CompileError, CompileLimits, CompileOptions};
use valpipe_fuzz::{generate, mutate, run_case, shrink, CaseSpec, Outcome};
use valpipe_util::Rng;
use valpipe_val::interp;

#[test]
fn generated_programs_parse_typecheck_and_terminate() {
    for seed in 0..64u64 {
        let case = generate(seed);
        let prog = valpipe_val::parse_program(&case.src)
            .unwrap_or_else(|e| panic!("seed {seed} does not parse: {e}\n{}", case.src));
        valpipe_val::check_program(&prog)
            .unwrap_or_else(|e| panic!("seed {seed} does not typecheck: {e}\n{}", case.src));
        // Every generated program compiles: the historical reconvergent-
        // gating rejection (phantom deadlock out of gate fusion) is fixed
        // and anchored by tests/corpus/fixed-*.val.
        let compiled =
            compile_source_limited(&case.src, "<gen>", &case.opts, &CompileLimits::default())
                .unwrap_or_else(|e| panic!("seed {seed}: unexpected rejection: {e}\n{}", case.src));
        // Terminates with a value under the interpreter's own iteration
        // guard — the generator's declared budget.
        let arrays = valpipe_fuzz::diff::standard_arrays(&compiled);
        interp::run_program(&compiled.program, &arrays).unwrap_or_else(|e| {
            panic!("seed {seed} does not terminate cleanly: {e}\n{}", case.src)
        });
    }
}

#[test]
fn mutants_never_panic_the_compiler() {
    let opts = CompileOptions::paper();
    let limits = CompileLimits::service();
    let mut r = Rng::seed(0xFA22);
    for seed in 0..32u64 {
        let case = generate(seed);
        for round in 0..4 {
            let mutant = mutate(&case.src, &mut r);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                compile_source_limited(&mutant, "<mutant>", &opts, &limits).map(|_| ())
            }));
            match outcome {
                Ok(_) => {} // typed error or clean compile — both fine
                Err(_) => panic!("seed {seed} mutant {round} panicked the compiler:\n{mutant}"),
            }
        }
    }
}

#[test]
fn mutants_over_limits_get_limit_errors_not_panics() {
    // Force the over-limit paths: tiny budgets make almost every mutant
    // (and the original) breach something; all breaches must surface as
    // CompileError::Limit, never a panic.
    let opts = CompileOptions::paper();
    let tight = CompileLimits {
        max_source_bytes: 200,
        max_nesting_depth: 4,
        max_cells: 12,
        max_arcs: 20,
        max_fifo_depth: 2,
        ..CompileLimits::default()
    };
    let mut r = Rng::seed(0x717E);
    let mut limit_hits = 0usize;
    for seed in 0..16u64 {
        let case = generate(seed);
        for _ in 0..2 {
            let mutant = mutate(&case.src, &mut r);
            if let Err(CompileError::Limit(_)) =
                compile_source_limited(&mutant, "<tight>", &opts, &tight)
            {
                limit_hits += 1;
            }
        }
    }
    assert!(limit_hits > 0, "tight budgets never tripped a limit");
}

#[test]
fn differential_matrix_smoke() {
    for seed in 0..16u64 {
        let case = generate(seed);
        let outcome = run_case(&CaseSpec::from_gen(&case));
        assert!(
            !outcome.is_failure(),
            "seed {seed}: {}\n{}",
            outcome.line(),
            case.src
        );
    }
}

#[test]
fn shrinker_preserves_failures_through_the_executor() {
    // A real over-limit failure mode: the shrunk repro must still trip
    // the same rejection line through the full differential pipeline.
    let deep = format!(
        "param m = 8;\ninput P : array[real] [0, m+1];\n\
         Y : array[real] := forall i in [1, m] construct {}P[i]{} endall;\noutput Y;\n",
        "(".repeat(120),
        ")".repeat(120)
    );
    let want = run_case(&CaseSpec::replay(deep.clone())).line();
    assert!(want.starts_with("rejected[limit]"), "got {want}");
    let small = shrink(&deep, |s| run_case(&CaseSpec::replay(s)).line() == want);
    assert!(small.len() < deep.len(), "no reduction achieved");
    assert_eq!(run_case(&CaseSpec::replay(small)).line(), want);
}

#[test]
fn outcome_classification_covers_the_triad() {
    // One of each: pass, typed rejection, resource-limit rejection.
    let pass = run_case(&CaseSpec::replay(
        "param m = 8;\ninput P : array[real] [0, m+1];\n\
         Y : array[real] := forall i in [1, m] construct P[i] endall;\noutput Y;\n",
    ));
    assert!(matches!(pass, Outcome::Pass { .. }), "got {}", pass.line());
    let garbage = run_case(&CaseSpec::replay("endall endfor ]]"));
    assert!(
        matches!(
            garbage,
            Outcome::Rejected {
                stage: "compile",
                ..
            }
        ),
        "got {}",
        garbage.line()
    );
    let over = run_case(&CaseSpec::replay(format!(
        "param m = 8;\ninput P : array[real] [0, m+1];\n\
         Y : array[real] := forall i in [1, m] construct {}P[i]{} endall;\noutput Y;\n",
        "(".repeat(200),
        ")".repeat(200)
    )));
    assert!(
        matches!(over, Outcome::Rejected { stage: "limit", .. }),
        "got {}",
        over.line()
    );
}
