//! Multi-time-step driving (§2's array-memory story): the physics step is
//! one pipe-structured program; between steps the state array lives in the
//! **array memories** — "data that must be held for a long time interval
//! before being consumed by further computational blocks, for example, the
//! data produced by one time step of a physics simulation".
//!
//! This driver runs T time steps, each as one fully pipelined machine run,
//! feeding the produced state back as next step's input, and accounts the
//! operation-packet traffic: only the AM boundary cells ever touch the
//! array memories.
//!
//! ```sh
//! cargo run --release --example timestepping
//! ```

use std::collections::HashMap;
use valpipe::compiler::verify::run;
use valpipe::SimConfig;
use valpipe::{compile_source, ArrayVal, CompileOptions};

fn source(m: usize) -> String {
    format!(
        "
param m = {m};
input U : array[real] [0, m+1];
V : array[real] :=
  forall i in [0, m+1]
  construct
    if (i = 0)|(i = m+1) then U[i]
    else U[i] + 0.2 * (U[i-1] - 2.*U[i] + U[i+1])
    endif
  endall;
output V;
"
    )
}

fn main() {
    let m = 48usize;
    let steps = 12usize;
    let mut opts = CompileOptions::paper();
    opts.am_boundary = true;
    let compiled = compile_source(&source(m), &opts).expect("compiles");
    println!("== diffusion over {steps} time steps, m = {m} ==");
    println!(
        "machine code: {}",
        valpipe::ir::pretty::summary(&compiled.graph)
    );

    // Initial condition: a spike in the middle.
    let mut u: Vec<f64> = vec![0.0; m + 2];
    u[(m + 2) / 2] = 100.0;

    let mut total_fires = 0u64;
    let mut am_fires = 0u64;
    for step in 0..steps {
        let mut arrays = HashMap::new();
        arrays.insert("U".to_string(), ArrayVal::from_reals(0, &u));
        let r = run(&compiled, &arrays, 1, SimConfig::new()).expect("step runs");
        assert!(r.sources_exhausted);
        let v = r.reals("V");
        total_fires += r.total_fires;
        am_fires += r.am_fires;
        // Conservation (boundaries fixed at 0 ⇒ interior mass decays only
        // through them; early steps conserve to numerical accuracy).
        let mass: f64 = v.iter().sum();
        if step < 3 {
            let before: f64 = u.iter().sum();
            assert!((mass - before).abs() < 1e-9, "diffusion must conserve mass");
        }
        u = v;
    }

    let peak = u.iter().cloned().fold(f64::MIN, f64::max);
    println!("peak after {steps} steps: {peak:.3} (spreads out from 100.0)");
    assert!(peak < 40.0 && peak > 1.0);
    let frac = am_fires as f64 / total_fires as f64;
    println!(
        "operation packets to array memories across all steps: {:.2}% of {}",
        frac * 100.0,
        total_fires
    );
    assert!(frac <= 0.125, "§2: at most one eighth to the AMs");
    println!("\nState crosses time steps only through the array memories ✓");
}
