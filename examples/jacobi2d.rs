//! §9's multi-dimensional extension: a 2-D Jacobi relaxation sweep with
//! boundary conditions, compiled to a fully pipelined row-major stream
//! program (column neighbours are ±1 taps, row neighbours ±W taps — the
//! same Fig. 4 window machinery, wider skew FIFOs).
//!
//! ```sh
//! cargo run --release --example jacobi2d
//! ```

use std::collections::HashMap;
use valpipe::compiler::verify::check_against_oracle;
use valpipe::{compile_source, ArrayVal, CompileOptions};

fn source(n: usize, m: usize) -> String {
    format!(
        "
param n = {n};
param m = {m};
input U : array[array[real]] [0, n+1][0, m+1];
V : array[array[real]] :=
  forall i in [0, n+1], j in [0, m+1]
  construct
    if (i = 0)|(i = n+1)|(j = 0)|(j = m+1) then U[i][j]
    else 0.25 * (U[i-1][j] + U[i+1][j] + U[i][j-1] + U[i][j+1])
    endif
  endall;
output V;
"
    )
}

fn main() {
    let (n, m) = (14usize, 18usize);
    let compiled = compile_source(&source(n, m), &CompileOptions::paper()).expect("compiles");
    let shape = compiled.dims.shapes["V"];
    println!(
        "== 2-D Jacobi sweep, {}×{} grid ==",
        shape.height(),
        shape.width()
    );
    println!(
        "machine code: {}",
        valpipe::ir::pretty::summary(&compiled.graph)
    );
    println!(
        "row-neighbour taps carry offset ±{} (the row-major stride); the balancer",
        shape.width()
    );
    println!("inserts the matching skew FIFOs automatically.\n");

    let rows: Vec<Vec<f64>> = (0..n + 2)
        .map(|i| {
            (0..m + 2)
                .map(|j| (i as f64 * 0.31).sin() + (j as f64 * 0.17).cos())
                .collect()
        })
        .collect();
    let mut inputs = HashMap::new();
    inputs.insert("U".to_string(), ArrayVal::from_grid(&rows));
    let report = check_against_oracle(&compiled, &inputs, 20, 1e-12).expect("oracle");

    println!(
        "packets checked: {} (20 grid sweeps)",
        report.packets_checked
    );
    let iv = report.run.timing("V").interval().unwrap();
    println!("steady-state interval: {iv:.3} instruction times (max rate = 2.0)");
    assert!((iv - 2.0).abs() < 0.1);
    println!("\n2-D arrays as row-major packet streams: fully pipelined ✓");
}
