//! Quickstart: compile the paper's Example 1 (a boundary-aware smoothing
//! `forall`) to static dataflow machine code, run it on the simulated
//! machine, check it against the interpreter, and measure the pipeline
//! rate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::collections::HashMap;
use valpipe::compiler::verify::check_against_oracle;
use valpipe::{compile_source, ArrayVal, CompileOptions};

const SRC: &str = "
param m = 64;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];

% The paper's Example 1: a forall with boundary conditions.
A : array[real] :=
  forall i in [0, m+1]
    P : real :=
      if (i = 0)|(i = m+1) then C[i]
      else
        0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct
    B[i]*(P*P)
  endall;

output A;
";

fn main() {
    // 1. Compile to a balanced machine-level data flow program.
    let compiled = compile_source(SRC, &CompileOptions::paper()).expect("compiles");
    println!("== machine code summary ==");
    println!("{}", valpipe::ir::pretty::summary(&compiled.graph));
    println!(
        "loop buffers: {}, global balancing buffers: {}",
        compiled.stats.loop_buffers, compiled.stats.global_buffers
    );

    // 2. Feed 50 waves of input arrays through the pipe and compare every
    //    output packet against the reference interpreter.
    let m = 64usize;
    let b: Vec<f64> = (0..m + 2).map(|i| 0.5 + (i as f64 * 0.37).sin()).collect();
    let c: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.21).cos()).collect();
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    inputs.insert("C".to_string(), ArrayVal::from_reals(0, &c));
    let report = check_against_oracle(&compiled, &inputs, 50, 1e-12).expect("matches oracle");

    // 3. Report.
    println!("\n== execution ==");
    println!(
        "packets checked against interpreter: {}",
        report.packets_checked
    );
    println!("max relative error: {:.3e}", report.max_rel_err);
    let iv = report
        .run
        .timing("A")
        .interval()
        .expect("steady state reached");
    println!("steady-state initiation interval: {iv:.3} instruction times");
    println!("(fully pipelined = 2.0 — one result per two instruction times)");
    assert!((iv - 2.0).abs() < 0.1);
    println!("\nFully pipelined ✓");
}
