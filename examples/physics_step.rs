//! An application-shaped workload (paper §2): one time step of a 1-D
//! "physics" code built from several pipe-structured blocks — flux
//! stencil, limiter with a data-dependent conditional, state update, and
//! a running diagnostic recurrence — with the long-lived state routed
//! through the **array memories** between time steps.
//!
//! Reproduces the §2 packet-traffic claim: *"one eighth or less of the
//! operation packets would be sent to the array memories."*
//!
//! ```sh
//! cargo run --release --example physics_step
//! ```

use std::collections::HashMap;
use valpipe::compiler::verify::check_against_oracle;
use valpipe::{compile_source, ArrayVal, CompileOptions};

fn source(m: usize) -> String {
    format!(
        "
param m = {m};
input U : array[real] [0, m+1];   % state from the previous time step
input K : array[real] [0, m+1];   % spatially varying coefficient

% Flux stencil.
F : array[real] :=
  forall i in [1, m]
  construct K[i] * (U[i+1] - U[i-1]) * 0.5
  endall;

% Data-dependent limiter (dynamic conditional).
G : array[real] :=
  forall i in [1, m]
  construct
    if F[i] > 1. then 1. else if F[i] < -1. then -1. else F[i] endif endif
  endall;

% State update with boundary handling.
V : array[real] :=
  forall i in [0, m+1]
  construct
    if (i = 0)|(i = m+1) then U[i]
    else U[i] + 0.1 * (G[i])
    endif
  endall;

% Running diagnostic: d_i = 0.5*d_(i-1) + V[i] (a linear recurrence the
% compiler maps with the companion pipeline).
D : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    if i < m then iter T := T[i: 0.5*T[i-1] + V[i]]; i := i + 1 enditer else T endif
  endfor;

output V, D;
"
    )
}

fn main() {
    let m = 64usize;
    let mut opts = CompileOptions::paper();
    opts.am_boundary = true; // inputs come from / outputs go to array memory
    let compiled = compile_source(&source(m), &opts).expect("compiles");

    let u: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.11).sin() * 3.0).collect();
    let k: Vec<f64> = (0..m + 2)
        .map(|i| 0.8 + 0.2 * (i as f64 * 0.05).cos())
        .collect();
    let mut inputs = HashMap::new();
    inputs.insert("U".to_string(), ArrayVal::from_reals(0, &u));
    inputs.insert("K".to_string(), ArrayVal::from_reals(0, &k));

    let report = check_against_oracle(&compiled, &inputs, 30, 1e-9).expect("oracle");

    println!("== physics step over {} waves ==", 30);
    println!(
        "machine code: {}",
        valpipe::ir::pretty::summary(&compiled.graph)
    );
    println!("packets checked: {}", report.packets_checked);
    for out in ["V", "D"] {
        let iv = report.run.timing(out).interval().unwrap();
        println!("output {out}: interval {iv:.3} instruction times");
    }
    let frac = report.run.am_traffic_fraction();
    println!(
        "\noperation packets to array memories: {:.2}% of {}",
        frac * 100.0,
        report.run.total_fires
    );
    println!(
        "paper §2 claim: ≤ 12.5%  →  {}",
        if frac <= 0.125 {
            "holds ✓"
        } else {
            "VIOLATED ✗"
        }
    );
    assert!(frac <= 0.125);
}
