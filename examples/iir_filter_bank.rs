//! A signal-processing workload: a bank of first-order IIR low-pass
//! filters over one input signal, each a `for-iter` linear recurrence
//! `y_i = (1-α)·y_(i-1) + α·x_i` — exactly the class Theorem 3 fully
//! pipelines via the companion function. All filters share the input
//! stream (one producer fanning out, §4's producer/consumer links) and
//! run concurrently at the maximum rate.
//!
//! ```sh
//! cargo run --release --example iir_filter_bank
//! ```

use std::collections::HashMap;
use valpipe::compiler::verify::check_against_oracle;
use valpipe::{compile_source, ArrayVal, CompileOptions};

fn source(m: usize, alphas: &[f64]) -> String {
    let mut s = format!("param m = {m};\ninput X : array[real] [0, m];\n");
    for (k, &a) in alphas.iter().enumerate() {
        s.push_str(&format!(
            "Y{k} : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    if i < m then
      iter T := T[i: {:.4}*T[i-1] + {a:.4}*X[i]]; i := i + 1 enditer
    else T
    endif
  endfor;\n",
            1.0 - a
        ));
    }
    s.push_str("output ");
    s.push_str(
        &(0..alphas.len())
            .map(|k| format!("Y{k}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    s.push_str(";\n");
    s
}

fn main() {
    let m = 64usize;
    let alphas = [0.05, 0.15, 0.4, 0.8];
    let compiled = compile_source(&source(m, &alphas), &CompileOptions::paper()).expect("compiles");
    println!(
        "== IIR filter bank: {} filters over one signal ==",
        alphas.len()
    );
    println!(
        "machine code: {}",
        valpipe::ir::pretty::summary(&compiled.graph)
    );
    for (name, scheme) in &compiled.stats.schemes {
        println!("  {name}: {scheme:?} scheme");
    }

    // A noisy step signal.
    let x: Vec<f64> = (0..m + 1)
        .map(|i| if i > m / 2 { 1.0 } else { 0.0 } + 0.1 * ((i * 37) as f64).sin())
        .collect();
    let mut inputs = HashMap::new();
    inputs.insert("X".to_string(), ArrayVal::from_reals(0, &x));
    let report = check_against_oracle(&compiled, &inputs, 40, 1e-9).expect("oracle");
    println!("\npackets checked: {}", report.packets_checked);
    for (k, &alpha) in alphas.iter().enumerate() {
        let out = format!("Y{k}");
        let iv = report.run.timing(&out).interval().unwrap();
        println!(
            "filter α={alpha:<5}: interval {iv:.3} instruction times (rate {:.3})",
            1.0 / iv
        );
        assert!(iv < 2.2, "every filter must run at the maximum rate");
    }
    // Smoothing sanity: the slowest filter ends well below the step level,
    // the fastest close to it.
    let last = |k: usize| *report.run.reals(&format!("Y{k}")).get(m - 1).unwrap() as f64;
    assert!(last(0) < last(3), "heavier smoothing lags the step");
    println!(
        "\nAll {} recurrences fully pipelined concurrently ✓",
        alphas.len()
    );
}
