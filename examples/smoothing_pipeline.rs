//! The paper's Fig. 3 pipe-structured program: Example 1 (forall) feeding
//! Example 2 (for-iter), compiled as ONE fully pipelined machine program
//! (Theorem 4). Prints the instruction-cell listing and writes a Graphviz
//! rendering next to the binary.
//!
//! ```sh
//! cargo run --release --example smoothing_pipeline
//! ```

use std::collections::HashMap;
use valpipe::compiler::verify::check_against_oracle;
use valpipe::val::parser::FIG3_PROGRAM;
use valpipe::{compile_source, ArrayVal, CompileOptions};

fn main() {
    let compiled = compile_source(FIG3_PROGRAM, &CompileOptions::paper()).expect("compiles");

    println!("== Fig. 3 pipe-structured program ==\n");
    println!("flow dependency graph:");
    for (p, c) in &compiled.flow.edges {
        println!("  {p} → {c}");
    }
    println!("\nblocks:");
    for b in &compiled.flow.blocks {
        println!(
            "  {} over [{}, {}], consumes {:?}",
            b.name, b.range.0, b.range.1, b.consumes
        );
    }

    println!(
        "\n== machine code ({}) ==",
        valpipe::ir::pretty::summary(&compiled.graph)
    );
    let listing = valpipe::ir::pretty::listing(&compiled.graph);
    for line in listing.lines().take(25) {
        println!("{line}");
    }
    println!("  … ({} cells total)", compiled.graph.node_count());

    // Graphviz export of the full program.
    let dot = valpipe::ir::dot::to_dot(&compiled.graph, "fig3");
    let path = std::env::temp_dir().join("valpipe_fig3.dot");
    std::fs::write(&path, dot).expect("write dot");
    println!("\nGraphviz written to {}", path.display());

    // Execute 40 waves with firing traces and verify.
    let m = 32usize;
    let b: Vec<f64> = (0..m + 2).map(|i| 0.5 + (i as f64 * 0.37).sin()).collect();
    let c: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.21).cos()).collect();
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    inputs.insert("C".to_string(), ArrayVal::from_reals(0, &c));
    let report = check_against_oracle(&compiled, &inputs, 40, 1e-9).expect("oracle");
    println!("\n== execution over 40 waves ==");
    println!("packets checked: {}", report.packets_checked);
    for out in ["A", "X"] {
        let iv = report.run.timing(out).interval().unwrap();
        println!(
            "output {out}: interval {iv:.3} instruction times (rate {:.3})",
            1.0 / iv
        );
    }

    // Occupancy + Chrome trace of a short traced run.
    let exe = compiled.executable();
    let sim_inputs = valpipe::compiler::verify::stream_inputs(&compiled, &inputs, 6);
    let traced = valpipe::Simulator::builder(&exe)
        .inputs(sim_inputs)
        .record_fire_times(true)
        .run()
        .expect("run");
    println!("\n== occupancy (6 waves) ==");
    print!("{}", valpipe::machine::occupancy_chart(&traced, 64));
    let trace = valpipe::machine::chrome_trace(&exe, &traced).expect("trace");
    let tpath = std::env::temp_dir().join("valpipe_fig3_trace.json");
    std::fs::write(&tpath, trace).expect("write trace");
    println!("Chrome/Perfetto trace written to {}", tpath.display());
    println!("\nThe whole producer/consumer pipeline runs fully pipelined (Theorem 4) ✓");
}
