//! The paper's §7 head-to-head: compile the Example 2 first-order linear
//! recurrence with **Todd's scheme** (Fig. 7) and with the **companion
//! pipeline** (Fig. 8), verify both against the interpreter, and compare
//! their steady-state rates — the companion scheme reaches the maximum
//! rate, Todd's is bounded by the feedback cycle.
//!
//! ```sh
//! cargo run --release --example recurrence_schemes
//! ```

use std::collections::HashMap;
use valpipe::compiler::verify::check_against_oracle;
use valpipe::{compile_source, ArrayVal, CompileOptions, ForIterScheme};

fn source(m: usize) -> String {
    format!(
        "
param m = {m};
input A : array[real] [0, m+1];
input B : array[real] [0, m+1];

% The paper's Example 2: x_i = A[i]*x_(i-1) + B[i].
X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0.]
  do
    let P : real := A[i]*T[i-1] + B[i]
    in
      if i < m then
        iter T := T[i: P]; i := i + 1 enditer
      else T
      endif
    endlet
  endfor;

output X;
"
    )
}

fn main() {
    let m = 48usize;
    let a: Vec<f64> = (0..m + 2)
        .map(|i| 0.9 + 0.01 * (i as f64 * 0.7).sin())
        .collect();
    let b: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.13).cos()).collect();
    let mut inputs = HashMap::new();
    inputs.insert("A".to_string(), ArrayVal::from_reals(0, &a));
    inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));

    println!("Example 2 recurrence, m = {m}, 60 waves\n");
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>12}",
        "scheme", "cells", "interval", "rate", "max rel err"
    );
    let mut intervals = Vec::new();
    for (label, scheme) in [
        ("todd", ForIterScheme::Todd),
        ("companion", ForIterScheme::Companion),
    ] {
        let mut opts = CompileOptions::paper();
        opts.scheme = scheme;
        let compiled = compile_source(&source(m), &opts).expect("compiles");
        let report = check_against_oracle(&compiled, &inputs, 60, 1e-9).expect("oracle");
        let iv = report.run.timing("X").interval().expect("steady state");
        println!(
            "{:<12} {:>8} {:>10.3} {:>12.4} {:>12.2e}",
            label,
            compiled.graph.node_count(),
            iv,
            1.0 / iv,
            report.max_rel_err
        );
        intervals.push(iv);
    }
    let speedup = intervals[0] / intervals[1];
    println!("\ncompanion speedup over Todd: {speedup:.2}×");
    println!("(the companion pipeline restores the maximum rate by making");
    println!(" x_i depend on x_(i-2) through G(a_i, a_(i-1)) — Theorem 3)");
}
