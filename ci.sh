#!/usr/bin/env sh
# Tier-1 gate: release build, full test suite, and a warning-free clippy
# pass. Run from the repository root; fails fast on the first error.
set -eu

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all gates passed"
