#!/usr/bin/env sh
# Tier-1 gate: release build, full test suite, and a warning-free clippy
# pass. Run from the repository root; fails fast on the first error.
set -eu

# Build artifacts must never be committed.
if [ -n "$(git ls-files target/)" ]; then
    echo "ci: FAIL — build artifacts are tracked under target/" >&2
    exit 1
fi

cargo build --release
cargo test -q

# The two step-loop kernels must agree bit-for-bit; run the dedicated
# equivalence and property suites explicitly so a regression names them.
cargo test -q -p valpipe-machine --test kernel_equivalence
cargo test -q --test property_kernels

# Checkpoint/restore must replay bit-identically (snapshot format is
# pinned by the golden fixture; recovery at every step by the property
# suite; crash-against-disk by one exp_soak trial).
cargo test -q -p valpipe-machine --test snapshot
cargo test -q --test property_snapshot
cargo run --release -q -p valpipe-bench --bin exp_soak -- --trials 1 \
    | grep -q 'CLAIM \[HOLDS\] a run killed at a random step' \
    || { echo "ci: FAIL — exp_soak recovery claim did not hold" >&2; exit 1; }

cargo clippy --workspace --all-targets -- -D warnings

# Benchmarks must at least run: smoke mode shrinks workloads and skips
# the wall-clock speedup assertion (meaningless on shared CI machines).
cargo bench -p valpipe-bench -- --test

echo "ci: all gates passed"
