#!/usr/bin/env sh
# Tier-1 gate: release build, full test suite, and a warning-free clippy
# pass. Run from the repository root; fails fast on the first error.
set -eu

# Build artifacts must never be committed.
if [ -n "$(git ls-files target/)" ]; then
    echo "ci: FAIL — build artifacts are tracked under target/" >&2
    exit 1
fi

# The tree must be rustfmt-clean.
cargo fmt --all --check

cargo build --release
cargo test -q

# The three step-loop kernels must agree bit-for-bit; run the dedicated
# equivalence and property suites explicitly so a regression names them.
cargo test -q -p valpipe-machine --test kernel_equivalence
cargo test -q --test property_kernels

# The epoch-batched parallel kernel must stay bit-identical under every
# epoch cap and shard policy, forced fallbacks included (DESIGN.md §16).
cargo test -q --test property_epochs

# Smoke equivalence through the reporter CLI: the parallel kernel at two
# workers must print the byte-identical experiment report.
cargo run --release -q -p valpipe-bench --bin exp_fig2 > target/ci_fig2_seq.txt
cargo run --release -q -p valpipe-bench --bin exp_fig2 -- --workers 2 > target/ci_fig2_par.txt
cmp -s target/ci_fig2_seq.txt target/ci_fig2_par.txt \
    || { echo "ci: FAIL — exp_fig2 output differs under --workers 2" >&2; exit 1; }
grep -q 'CLAIM \[HOLDS\]' target/ci_fig2_par.txt \
    || { echo "ci: FAIL — exp_fig2 claims did not hold under --workers 2" >&2; exit 1; }

# Checkpoint/restore must replay bit-identically (snapshot format is
# pinned by the golden fixture; recovery at every step by the property
# suite; crash-against-disk by one exp_soak trial).
cargo test -q -p valpipe-machine --test snapshot
cargo test -q --test property_snapshot
cargo run --release -q -p valpipe-bench --bin exp_soak -- --trials 1 > target/ci_soak.txt
grep -q 'CLAIM \[HOLDS\] a run killed at a random step' target/ci_soak.txt \
    || { echo "ci: FAIL — exp_soak recovery claim did not hold" >&2; exit 1; }

# The compiler's machine dump for the paper's Example 1 is pinned: any
# change to the compiled graph or to the provenance table shows up as a
# diff against the committed golden. Pass stats go to stderr so the
# dump on stdout stays byte-comparable; regenerate with
#   ./target/release/valpipe check examples/fig6.val --emit=machine \
#       > tests/golden/ci_emit_fig6.txt
./target/release/valpipe check examples/fig6.val --emit=machine --pass-stats \
    > target/ci_emit_fig6.txt 2>target/ci_pass_stats.txt
cmp -s target/ci_emit_fig6.txt tests/golden/ci_emit_fig6.txt \
    || { echo "ci: FAIL — --emit=machine dump for examples/fig6.val drifted from tests/golden/ci_emit_fig6.txt" >&2; exit 1; }
grep -q '^total' target/ci_pass_stats.txt \
    || { echo "ci: FAIL — --pass-stats printed no summary row" >&2; exit 1; }

# Steady-state fast-forward must be an unobservable optimization:
# bit-identical results and post-skip snapshots on every kernel
# (dedicated + property suites), plus the reporter's >=100x step-skip
# claim on the Fig. 6 steady-state workload.
cargo test -q -p valpipe-machine --test fastforward
cargo test -q --test property_fastforward
cargo run --release -q -p valpipe-bench --bin exp_fastforward -- --smoke > target/ci_fastforward.txt
grep -q 'CLAIM \[FAILS\]' target/ci_fastforward.txt \
    && { echo "ci: FAIL — exp_fastforward claims did not hold" >&2; exit 1; }
grep -q 'CLAIM \[HOLDS\] fast-forward simulates >= 100x fewer' target/ci_fastforward.txt \
    || { echo "ci: FAIL — exp_fastforward did not report the step-skip claim" >&2; exit 1; }

# The simulation service must survive its chaos soak: concurrent clients
# vs. kill -9 + restart, bit-identical results, at least one structured
# overload rejection, hibernated-session recovery, graceful shutdown.
cargo run --release -q -p valpipe-bench --bin exp_service -- --smoke > target/ci_service.txt
grep -q 'CLAIM \[FAILS\]' target/ci_service.txt \
    && { echo "ci: FAIL — exp_service chaos soak claims did not hold" >&2; exit 1; }
grep -q 'CLAIM \[HOLDS\] results served across kill -9' target/ci_service.txt \
    || { echo "ci: FAIL — exp_service did not report the bit-identity claim" >&2; exit 1; }

# Robustness: a fixed-seed differential fuzz smoke (oracle vs. every
# kernel × mode × kill-restore, plus never-panic mutants) and byte-exact
# replay of every committed repro in tests/corpus/. The dedicated suites
# run first so a regression names them.
cargo test -q --test property_fuzz
cargo test -q --test corpus_replay
cargo run --release -q -p valpipe-bench --bin exp_fuzz -- --trials 100 --seed 0xD1FF > target/ci_fuzz.txt
grep -q 'CLAIM \[FAILS\]' target/ci_fuzz.txt \
    && { echo "ci: FAIL — exp_fuzz claims did not hold" >&2; exit 1; }
grep -q 'CLAIM \[HOLDS\] every valid generated program agrees' target/ci_fuzz.txt \
    || { echo "ci: FAIL — exp_fuzz did not report the differential claim" >&2; exit 1; }
grep -q 'CLAIM \[HOLDS\] all 5 committed corpus repros replay byte-identically' target/ci_fuzz.txt \
    || { echo "ci: FAIL — exp_fuzz did not replay the committed corpus" >&2; exit 1; }

# Incremental compilation (DESIGN.md §17): warm recompiles must be
# byte-identical to cold across random programs, single-block edits,
# invalid mutants, and arbitrary cache corruption (dedicated property
# suite), and the exp_incremental smoke must hold all three claims —
# <5% of queries re-executed on a single-block edit, >=10x warm
# speedup, and cold+warm engine output bit-identical to the legacy
# pipeline across the workload suite and every committed corpus repro.
cargo test -q --test property_incremental
cargo run --release -q -p valpipe-bench --bin exp_incremental -- --blocks 120 > target/ci_incremental.txt
grep -q 'CLAIM \[FAILS\]' target/ci_incremental.txt \
    && { echo "ci: FAIL — exp_incremental claims did not hold" >&2; exit 1; }
grep -q 'CLAIM \[HOLDS\] a single-block edit' target/ci_incremental.txt \
    || { echo "ci: FAIL — exp_incremental did not report the query-reuse claim" >&2; exit 1; }
grep -q 'CLAIM \[HOLDS\] cold and warm engine output is bit-identical' target/ci_incremental.txt \
    || { echo "ci: FAIL — exp_incremental did not report the bit-identity claim" >&2; exit 1; }

# The --incremental CLI path must produce the same pinned fig6 machine
# dump as the plain pipeline, both cold (empty cache) and warm (second
# run revives the on-disk .valpipe-cache/ entries across processes).
rm -rf .valpipe-cache
./target/release/valpipe check examples/fig6.val --emit=machine --incremental \
    > target/ci_emit_fig6_cold.txt 2>/dev/null
./target/release/valpipe check examples/fig6.val --emit=machine --incremental \
    > target/ci_emit_fig6_warm.txt 2>target/ci_incr_stats.txt
cmp -s target/ci_emit_fig6_cold.txt tests/golden/ci_emit_fig6.txt \
    || { echo "ci: FAIL — cold --incremental dump drifted from tests/golden/ci_emit_fig6.txt" >&2; exit 1; }
cmp -s target/ci_emit_fig6_warm.txt tests/golden/ci_emit_fig6.txt \
    || { echo "ci: FAIL — warm --incremental dump drifted from tests/golden/ci_emit_fig6.txt" >&2; exit 1; }
grep -q 'from disk' target/ci_incr_stats.txt \
    || { echo "ci: FAIL — warm --incremental run did not revive the disk cache" >&2; exit 1; }
rm -rf .valpipe-cache

cargo clippy --workspace --all-targets -- -D warnings

# Benchmarks must at least run: smoke mode shrinks workloads and skips
# the wall-clock speedup assertions (meaningless on shared CI machines).
# The kernels bench must also emit a well-formed machine-readable
# trajectory; CI writes it to a scratch path so the committed
# BENCH_machine.json baseline is never clobbered by a smoke run.
# (Name the bench targets explicitly: bare `cargo bench` also runs the
# lib/bin targets under the libtest harness, which rejects `--json`.)
BENCH_JSON_PATH="$(pwd)/target/ci_bench_smoke.json" \
    cargo bench -p valpipe-bench --bench compile --bench simulate \
    --bench balance --bench kernels --bench fastforward -- --test --json
test -s target/ci_bench_smoke.json \
    || { echo "ci: FAIL — bench trajectory JSON was not emitted" >&2; exit 1; }

# Perf-regression gate: the smoke run's kernels trajectory must stay
# within 15% steps/s of the newest comparable entries (same bench,
# smoke flag, host_cores, graph, kernel, workers, epoch/shard config)
# in the committed baseline. Unmatched tuples (new workloads, different
# host) and sub-noise-floor rows pass through uncompared.
cargo run --release -q -p valpipe-bench --bin bench_gate -- \
    --baseline BENCH_machine.json --candidate target/ci_bench_smoke.json \
    || { echo "ci: FAIL — bench_gate found a steps/s regression beyond 15%" >&2; exit 1; }

# bench_gate compares only the newest candidate document, and the
# combined smoke file ends with the kernels doc — so the incremental
# compile rows (cold / warm-noop / warm-edit, DESIGN.md §17) get their
# own candidate file and gate.
BENCH_JSON_PATH="$(pwd)/target/ci_bench_compile.json" \
    cargo bench -p valpipe-bench --bench compile -- --test --json
cargo run --release -q -p valpipe-bench --bin bench_gate -- \
    --baseline BENCH_machine.json --candidate target/ci_bench_compile.json \
    || { echo "ci: FAIL — bench_gate found a compile-throughput regression beyond 15%" >&2; exit 1; }

echo "ci: all gates passed"
