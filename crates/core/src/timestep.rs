//! The §9 delay-for-rate tradeoff.
//!
//! > "a recurrence having a cyclic dependence of four operators may be
//! > implemented at the maximum rate by introducing a delay (via a FIFO
//! > buffer) of length equal to the number of elements in the array being
//! > generated."
//!
//! The canonical instance is a *time-stepping* loop: each element of the
//! next state depends on the same element of the previous state,
//! `x_i^{t+1} = f(x_i^t)`. The whole array circulates through the operator
//! cycle and a delay line of length `n` (the array size), so the cycle
//! holds `n` tokens — enough to keep every operator busy. Under the
//! one-token-per-arc acknowledge discipline a ring of `L` cells holding
//! `m` tokens runs at `min(m, L−m)/L` (tokens need holes to advance into —
//! the classic 50%-occupancy optimum of self-timed rings), so the maximum
//! rate 1/2 is reached when the delay line is sized to make the cycle
//! exactly `2n` cells. The cost is buffer cells and one full array of
//! latency per time step — delay traded for rate, as §9 says.

use valpipe_ir::opcode::Opcode;
use valpipe_ir::value::{BinOp, Value};
use valpipe_ir::Graph;

/// Build the time-stepping loop `x ← a·x + b` (elementwise) over an array
/// preloaded with `initial`. The operator cycle is `MULT → ADD →
/// {extra_ops × ID} → delay-line(delay_stages)`; the `ADD` output also
/// streams to the sink `"x"`, one array per time step, forever.
/// `delay_stages` must be at least the array length; making the whole
/// cycle `2n` cells long yields the maximum rate.
pub fn build_timestep_loop(
    initial: &[Value],
    a: f64,
    b: f64,
    extra_ops: usize,
    delay_stages: usize,
) -> Graph {
    assert!(!initial.is_empty());
    assert!(
        delay_stages >= initial.len(),
        "delay line must hold the whole array"
    );
    let mut g = Graph::new();
    let mul = g.add_node(Opcode::Bin(BinOp::Mul), "f.mul");
    g.set_lit(mul, 1, Value::Real(a));
    let add = g.add_node(Opcode::Bin(BinOp::Add), "f.add");
    g.connect(mul, add, 0);
    g.set_lit(add, 1, Value::Real(b));
    let mut tail = add;
    for k in 0..extra_ops {
        tail = g.cell(Opcode::Id, format!("f.pad{k}"), &[tail.into()]);
    }
    // Delay line of `delay_stages` identity cells; the initial array sits
    // on the arcs nearest the loop's operators (element 0 exits first),
    // the remaining arcs start empty (the holes tokens advance into).
    let n = initial.len();
    let mut prev = tail;
    for k in (0..delay_stages).rev() {
        let stage = g.add_node(Opcode::Id, format!("delay{k}"));
        if k < n {
            g.connect_init(prev, stage, 0, initial[k]);
        } else {
            g.connect(prev, stage, 0);
        }
        prev = stage;
    }
    g.connect(prev, mul, 0);
    let _ = g.cell(Opcode::Sink("x".into()), "x.out", &[add.into()]);
    g
}

/// Oracle: the first `steps` states after the initial one.
pub fn reference_timestep(initial: &[f64], a: f64, b: f64, steps: usize) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(steps);
    let mut x: Vec<f64> = initial.to_vec();
    for _ in 0..steps {
        for v in &mut x {
            *v = a * *v + b;
        }
        out.push(x.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use valpipe_machine::Simulator;

    fn run_loop(
        n: usize,
        extra_ops: usize,
        delay: usize,
        max_steps: u64,
    ) -> valpipe_machine::RunResult {
        let initial: Vec<Value> = (0..n).map(|i| Value::Real(i as f64)).collect();
        let g = build_timestep_loop(&initial, 0.5, 1.0, extra_ops, delay);
        Simulator::builder(&g).max_steps(max_steps).run().unwrap()
    }

    #[test]
    fn values_match_reference() {
        let n = 6;
        let r = run_loop(n, 2, n, 600);
        let got: Vec<f64> = r.reals("x");
        let want = reference_timestep(
            &(0..n).map(|i| i as f64).collect::<Vec<_>>(),
            0.5,
            1.0,
            got.len() / n + 1,
        );
        for (k, &v) in got.iter().enumerate() {
            let (t, i) = (k / n, k % n);
            assert!(
                (v - want[t][i]).abs() < 1e-12,
                "step {t} elem {i}: {v} vs {}",
                want[t][i]
            );
        }
    }

    #[test]
    fn long_array_reaches_maximum_rate() {
        // Cycle sized to 2n: 2 ops + 2 pads + 24 delay stages = 28 cells,
        // 14 tokens = half occupancy ⇒ the maximum rate 1/2.
        let r = run_loop(14, 2, 24, 4000);
        let iv = r.timing("x").interval().unwrap();
        assert!((iv - 2.0).abs() < 0.05, "interval {iv} ≉ 2");
    }

    #[test]
    fn single_element_limited_by_cycle_length() {
        // n = 1: one token in a cycle of 2 + 2 + 1 = 5 cells → interval 5.
        let r = run_loop(1, 2, 1, 4000);
        let iv = r.timing("x").interval().unwrap();
        assert!((iv - 5.0).abs() < 0.1, "interval {iv} ≉ 5");
    }

    #[test]
    fn odd_cycle_cannot_reach_maximum_rate() {
        // §7 cites [10]: a loop needs an EVEN number of stages for maximum
        // pipelining. Two tokens in a 5-cell ring peak at 2/5, not 1/2.
        let r = run_loop(2, 1, 2, 4000); // 2 ops + 1 pad + 2 delay = 5 cells
        let iv = r.timing("x").interval().unwrap();
        assert!((iv - 2.5).abs() < 0.1, "odd 5-cycle interval {iv} ≉ 5/2");
        // One more stage (even, 6 cells, 2 tokens → 2/6) is WORSE; the
        // right fix is 4 cells (2 ops + 2 delay).
        let r = run_loop(2, 0, 2, 4000);
        let iv = r.timing("x").interval().unwrap();
        assert!((iv - 2.0).abs() < 0.1, "even 4-cycle interval {iv} ≉ 2");
    }

    #[test]
    fn rate_is_tokens_over_cycle_below_saturation() {
        // n = 3 tokens, cycle = 2 + 6 + 3 = 11 cells → per-element interval
        // 11/3 (tokens below half occupancy: rate = m/L).
        let r = run_loop(3, 6, 3, 6000);
        let iv = r.timing("x").interval().unwrap();
        assert!((iv - 11.0 / 3.0).abs() < 0.2, "interval {iv} ≉ 11/3");
    }
}
