//! Pipelined mapping of primitive `forall` expressions (paper §6,
//! Theorem 2, Fig. 6).
//!
//! The instruction graph is the cascade of the definition-part graphs and
//! the accumulation-part graph: definitions compile once into the block's
//! root scope (they are evaluated for every index value, exactly as the
//! paper prescribes), then the accumulation expression consumes them. All
//! gating, merging and skew is handled by the expression compiler
//! ([`crate::builder`]); the result is one cell whose output stream *is*
//! the constructed array.

use crate::builder::{BlockBuilder, BlockProv, Compiler, Provider};
use crate::error::CompileError;
use valpipe_ir::NodeId;
use valpipe_val::ast::Forall;
use valpipe_val::fold::simplify;

/// Compile a primitive forall over manifest range `[lo, hi]`; returns the
/// cell producing the constructed array's stream. Cells are stamped with
/// the provenance id of the definition or body statement they realize.
pub fn compile_forall(
    c: &mut Compiler,
    name: &str,
    f: &Forall,
    lo: i64,
    hi: i64,
    src: &BlockProv,
) -> Result<NodeId, CompileError> {
    c.g.set_provenance(src.header);
    let mut b = BlockBuilder::new(c, name, &f.index_var, lo, hi);
    for d in &f.defs {
        let def_src = src.defs.get(&d.name).copied().unwrap_or(src.header);
        b.c.g.set_provenance(def_src);
        let v = b.compile(&simplify(&d.value))?;
        b.define_local(&d.name, v);
    }
    b.c.g.set_provenance(src.body);
    let out = b.compile(&simplify(&f.body))?;
    let node = b.materialize(out);
    c.providers
        .insert(name.to_string(), Provider { node, lo, hi });
    Ok(node)
}
