//! End-to-end verification harness: compile → simulate → compare against
//! the reference interpreter.
//!
//! Every throughput experiment first passes through this harness, so rate
//! numbers are only ever reported for programs whose pipelined execution
//! provably computes the same values as direct evaluation.

use crate::program::Compiled;
use std::collections::HashMap;
use valpipe_ir::value::Value;
use valpipe_machine::{ProgramInputs, RunResult, SimConfig, Simulator};
use valpipe_val::interp::{self, ArrayVal};

/// Verification failure.
#[derive(Debug, Clone)]
pub enum VerifyError {
    /// The simulator faulted.
    Sim(String),
    /// The interpreter faulted.
    Interp(String),
    /// The run ended without consuming all input (deadlock or jam).
    Stalled {
        /// Steps executed before the stall.
        steps: u64,
        /// The machine's stall diagnosis (blocked cells, held arcs, wait
        /// cycle), rendered; `None` when the run stopped on a bare step
        /// limit with nothing visibly blocked.
        report: Option<String>,
    },
    /// An output mismatched the oracle.
    Mismatch {
        /// Output name.
        output: String,
        /// Wave index.
        wave: usize,
        /// Element position within the wave.
        position: usize,
        /// Simulated value.
        got: f64,
        /// Oracle value.
        want: f64,
    },
    /// An output had the wrong number of packets.
    WrongLength {
        /// Output name.
        output: String,
        /// Packets received.
        got: usize,
        /// Packets expected.
        want: usize,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Sim(m) => write!(f, "simulation fault: {m}"),
            VerifyError::Interp(m) => write!(f, "interpreter fault: {m}"),
            VerifyError::Stalled { steps, report } => {
                write!(
                    f,
                    "pipeline stalled before consuming all input ({steps} steps)"
                )?;
                if let Some(r) = report {
                    write!(f, "\n{r}")?;
                }
                Ok(())
            }
            VerifyError::Mismatch {
                output,
                wave,
                position,
                got,
                want,
            } => write!(
                f,
                "output '{output}' wave {wave} element {position}: got {got}, want {want}"
            ),
            VerifyError::WrongLength { output, got, want } => {
                write!(f, "output '{output}': {got} packets, expected {want}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Build simulator inputs feeding each declared input array `waves` times.
pub fn stream_inputs(
    compiled: &Compiled,
    arrays: &HashMap<String, ArrayVal>,
    waves: usize,
) -> ProgramInputs {
    let mut inputs = ProgramInputs::new();
    for (name, _) in &compiled.flow.inputs {
        if let Some(a) = arrays.get(name) {
            let mut all = Vec::with_capacity(a.data.len() * waves);
            for _ in 0..waves {
                all.extend(a.data.iter().copied());
            }
            inputs = inputs.bind(name.clone(), all);
        }
    }
    inputs
}

/// Run the compiled program on `waves` repetitions of the input arrays.
/// Machine faults come back annotated with the Val source location of the
/// faulting cell (via the program's provenance table).
pub fn run(
    compiled: &Compiled,
    arrays: &HashMap<String, ArrayVal>,
    waves: usize,
    cfg: SimConfig,
) -> Result<RunResult, VerifyError> {
    let g = compiled.executable();
    let inputs = stream_inputs(compiled, arrays, waves);
    Simulator::builder(&g)
        .inputs(inputs)
        .config(cfg)
        .run()
        .map_err(|e| VerifyError::Sim(valpipe_machine::render_error(&e, &g, &compiled.prov)))
}

/// Outcome of a successful oracle check.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Largest relative error observed over all outputs and waves.
    pub max_rel_err: f64,
    /// Total output packets compared.
    pub packets_checked: usize,
    /// The simulation result (for rate measurements).
    pub run: RunResult,
}

/// Compile-run-compare: simulate `waves` waves and check every declared
/// output against the interpreter, element by element, within relative
/// tolerance `tol` (the companion transformation reassociates floating
/// arithmetic, so exact equality is only guaranteed for integer data).
pub fn check_against_oracle(
    compiled: &Compiled,
    arrays: &HashMap<String, ArrayVal>,
    waves: usize,
    tol: f64,
) -> Result<OracleReport, VerifyError> {
    check_against_oracle_with(compiled, arrays, waves, tol, SimConfig::new())
}

/// [`check_against_oracle`] on a caller-supplied simulator config — the
/// hook the experiment reporters use to thread fault plans and watchdog
/// budgets through an oracle-checked measurement. The stop condition is
/// still managed here (`base`'s stop-outputs are overwritten).
pub fn check_against_oracle_with(
    compiled: &Compiled,
    arrays: &HashMap<String, ArrayVal>,
    waves: usize,
    tol: f64,
    base: SimConfig,
) -> Result<OracleReport, VerifyError> {
    let expected = interp::run_program(&compiled.program, arrays)
        .map_err(|e| VerifyError::Interp(e.to_string()))?;
    // Ask the simulator to stop once every output has its packets: a
    // program whose outputs don't depend on the inputs would otherwise
    // regenerate waves forever from its control generators.
    let cfg = base.stop_outputs(
        compiled
            .program
            .outputs
            .iter()
            .map(|name| (name.clone(), expected[name].data.len() * waves))
            .collect(),
    );
    let result = run(compiled, arrays, waves, cfg)?;
    let stalled = (result.stop == valpipe_machine::StopReason::Quiescent
        && !result.sources_exhausted)
        || result.stop == valpipe_machine::StopReason::MaxSteps
        || result.stop == valpipe_machine::StopReason::Stalled;
    if stalled {
        // Render the stall diagnosis against the executable graph (the
        // simulator's cell ids) so every blocked cell names its Val
        // source statement.
        let report = result.stall_report.as_ref().map(|r| {
            let g = compiled.executable();
            valpipe_machine::render_stall(r, &g, &compiled.prov)
        });
        return Err(VerifyError::Stalled {
            steps: result.steps,
            report,
        });
    }
    let mut max_rel = 0.0f64;
    let mut checked = 0usize;
    for name in &compiled.program.outputs {
        let want_wave = &expected[name];
        let got = result.values(name);
        let want_len = want_wave.data.len() * waves;
        // Open-ended control generators let the pipeline pre-fire a prefix
        // of the (never-fed) next wave — e.g. a for-iter MERGE emits the
        // next initial element from its constant operand. Those trailing
        // packets are legitimate and are checked against the cyclic
        // expectation below; anything shorter than the full run, or a
        // whole extra wave, is a real defect.
        if got.len() < want_len || got.len() >= want_len + want_wave.data.len() {
            return Err(VerifyError::WrongLength {
                output: name.clone(),
                got: got.len(),
                want: want_len,
            });
        }
        for (k, gv) in got.iter().enumerate() {
            let wave = k / want_wave.data.len();
            let pos = k % want_wave.data.len();
            let want = value_as_real(want_wave.data[pos]);
            let gotv = value_as_real(*gv);
            let denom = want.abs().max(1.0);
            let rel = (gotv - want).abs() / denom;
            if rel > tol {
                return Err(VerifyError::Mismatch {
                    output: name.clone(),
                    wave,
                    position: pos,
                    got: gotv,
                    want,
                });
            }
            max_rel = max_rel.max(rel);
            checked += 1;
        }
    }
    Ok(OracleReport {
        max_rel_err: max_rel,
        packets_checked: checked,
        run: result,
    })
}

fn value_as_real(v: Value) -> f64 {
    match v {
        Value::Int(i) => i as f64,
        Value::Real(r) => r,
        Value::Bool(b) => {
            if b {
                1.0
            } else {
                0.0
            }
        }
    }
}

/// Steady-state initiation interval of a named output over a run.
pub fn output_interval(run: &RunResult, name: &str) -> Option<f64> {
    run.timing(name).interval()
}

/// Multi-phase driving (the paper's §2 array-memory story): run the
/// program `steps` times, each time feeding selected outputs back as the
/// next step's inputs (`feedback` maps output name → input name). Returns
/// the final input arrays plus aggregate operation-packet counts.
pub fn run_timesteps(
    compiled: &Compiled,
    initial: &HashMap<String, ArrayVal>,
    feedback: &[(&str, &str)],
    steps: usize,
) -> Result<(HashMap<String, ArrayVal>, u64, u64), VerifyError> {
    let mut arrays = initial.clone();
    let (mut total, mut am) = (0u64, 0u64);
    for _ in 0..steps {
        let r = run(compiled, &arrays, 1, SimConfig::new())?;
        if !r.sources_exhausted {
            return Err(VerifyError::Stalled {
                steps: r.steps,
                report: r.stall_report.as_ref().map(|rep| rep.to_string()),
            });
        }
        total += r.total_fires;
        am += r.am_fires;
        for &(out, input) in feedback {
            let lo = compiled.range_of(input).map(|(lo, _)| lo).unwrap_or(0);
            arrays.insert(
                input.to_string(),
                ArrayVal {
                    lo,
                    data: r.values(out),
                },
            );
        }
    }
    Ok((arrays, total, am))
}
