//! Resource budgets for compiling untrusted source.
//!
//! The compile pipeline is exposed to hostile input in two places: the
//! `valpipe` CLI (a user-supplied `.val` file) and the multi-tenant
//! service (arbitrary source over the wire). Without budgets, a small
//! program can demand an enormous compile: deep nesting overflows the
//! parser stack, a huge anchor like `[0: x]` at index `-10_000_000`
//! expands FIFOs into gigabytes, and pathological balancing problems burn
//! unbounded wall-clock. [`CompileLimits`] bounds each axis; every breach
//! surfaces as a typed, non-panicking [`LimitBreach`] inside
//! [`crate::CompileError::Limit`].

use std::fmt;
use std::time::Duration;

/// Resource budgets enforced by the [`crate::PassManager`] while compiling.
///
/// A limit of `usize::MAX` / `u64::MAX` (see [`CompileLimits::unbounded`])
/// disables that check. [`CompileLimits::default`] is generous — far above
/// anything the paper's examples or the property suites produce — while
/// [`CompileLimits::service`] is the tighter profile a multi-tenant worker
/// applies to wire jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileLimits {
    /// Maximum accepted source length in bytes, checked before lexing.
    pub max_source_bytes: usize,
    /// Maximum expression/type nesting depth accepted by the parser.
    pub max_nesting_depth: usize,
    /// Maximum cell count in any compile artifact, checked after each pass
    /// and again after FIFO expansion (where anchors multiply cells).
    pub max_cells: usize,
    /// Maximum arc count in any compile artifact.
    pub max_arcs: usize,
    /// Maximum FIFO depth assigned to a single arc by balancing.
    pub max_fifo_depth: usize,
    /// Wall-clock budget for the whole compile, checked between passes.
    pub max_compile_millis: u64,
}

impl Default for CompileLimits {
    fn default() -> Self {
        CompileLimits {
            max_source_bytes: 1 << 20, // 1 MiB of source
            max_nesting_depth: 64,
            max_cells: 250_000,
            max_arcs: 500_000,
            max_fifo_depth: 100_000,
            max_compile_millis: 30_000,
        }
    }
}

impl CompileLimits {
    /// No limits at all: every check passes. This is what trusted callers
    /// (tests, benches, the library API that existed before limits) get.
    pub fn unbounded() -> Self {
        CompileLimits {
            max_source_bytes: usize::MAX,
            max_nesting_depth: usize::MAX,
            max_cells: usize::MAX,
            max_arcs: usize::MAX,
            max_fifo_depth: usize::MAX,
            max_compile_millis: u64::MAX,
        }
    }

    /// The profile a multi-tenant service worker applies to untrusted wire
    /// jobs: small source, shallow nesting, modest graphs, short compiles.
    pub fn service() -> Self {
        CompileLimits {
            max_source_bytes: 256 << 10, // 256 KiB
            max_nesting_depth: 48,
            max_cells: 50_000,
            max_arcs: 100_000,
            max_fifo_depth: 10_000,
            max_compile_millis: 10_000,
        }
    }

    /// Wall budget as a [`Duration`].
    pub fn compile_budget(&self) -> Duration {
        Duration::from_millis(self.max_compile_millis)
    }

    /// Parse a `key=value[,key=value…]` spec, overriding fields of `self`.
    /// Keys: `source-bytes`, `depth`, `cells`, `arcs`, `fifo`, `millis`;
    /// a value of `none` lifts that limit. Used by the CLI `--limits` flag.
    pub fn apply_spec(mut self, spec: &str) -> Result<Self, String> {
        for part in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("bad limit '{part}': expected key=value"))?;
            let parse = |v: &str| -> Result<usize, String> {
                if v == "none" {
                    Ok(usize::MAX)
                } else {
                    v.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad limit value '{v}' for '{key}'"))
                }
            };
            match key.trim() {
                "source-bytes" => self.max_source_bytes = parse(val)?,
                "depth" => self.max_nesting_depth = parse(val)?,
                "cells" => self.max_cells = parse(val)?,
                "arcs" => self.max_arcs = parse(val)?,
                "fifo" => self.max_fifo_depth = parse(val)?,
                "millis" => self.max_compile_millis = parse(val)? as u64,
                other => return Err(format!("unknown limit key '{other}'")),
            }
        }
        Ok(self)
    }
}

/// One exceeded budget: which axis, what the program demanded, what the
/// limit was. `pass` names the pipeline stage that tripped the check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LimitBreach {
    /// Source text longer than `max_source_bytes`.
    SourceBytes {
        /// Observed source length.
        got: usize,
        /// Configured limit.
        limit: usize,
    },
    /// Parser nesting depth exceeded `max_nesting_depth`.
    NestingDepth {
        /// Configured limit.
        limit: usize,
    },
    /// An artifact grew past `max_cells`.
    Cells {
        /// Pass after which the check tripped.
        pass: &'static str,
        /// Observed cell count.
        got: usize,
        /// Configured limit.
        limit: usize,
    },
    /// An artifact grew past `max_arcs`.
    Arcs {
        /// Pass after which the check tripped.
        pass: &'static str,
        /// Observed arc count.
        got: usize,
        /// Configured limit.
        limit: usize,
    },
    /// Balancing assigned a FIFO deeper than `max_fifo_depth`.
    FifoDepth {
        /// Deepest FIFO requested.
        got: usize,
        /// Configured limit.
        limit: usize,
    },
    /// The compile ran past its wall-clock budget.
    CompileWall {
        /// Elapsed milliseconds when the check tripped.
        elapsed_ms: u64,
        /// Configured budget in milliseconds.
        limit_ms: u64,
    },
}

impl fmt::Display for LimitBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitBreach::SourceBytes { got, limit } => {
                write!(f, "source is {got} bytes, limit is {limit}")
            }
            LimitBreach::NestingDepth { limit } => {
                write!(f, "nesting deeper than {limit} levels")
            }
            LimitBreach::Cells { pass, got, limit } => {
                write!(f, "{got} cells after pass '{pass}', limit is {limit}")
            }
            LimitBreach::Arcs { pass, got, limit } => {
                write!(f, "{got} arcs after pass '{pass}', limit is {limit}")
            }
            LimitBreach::FifoDepth { got, limit } => {
                write!(
                    f,
                    "balancing requires a FIFO of depth {got}, limit is {limit}"
                )
            }
            LimitBreach::CompileWall {
                elapsed_ms,
                limit_ms,
            } => {
                write!(f, "compile ran {elapsed_ms} ms, budget is {limit_ms} ms")
            }
        }
    }
}

impl std::error::Error for LimitBreach {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_overrides_fields() {
        let l = CompileLimits::default()
            .apply_spec("cells=10, fifo=7,millis=250")
            .unwrap();
        assert_eq!(l.max_cells, 10);
        assert_eq!(l.max_fifo_depth, 7);
        assert_eq!(l.max_compile_millis, 250);
        assert_eq!(
            l.max_source_bytes,
            CompileLimits::default().max_source_bytes
        );
    }

    #[test]
    fn spec_none_lifts_limit() {
        let l = CompileLimits::service().apply_spec("depth=none").unwrap();
        assert_eq!(l.max_nesting_depth, usize::MAX);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(CompileLimits::default().apply_spec("bogus=1").is_err());
        assert!(CompileLimits::default().apply_spec("cells").is_err());
        assert!(CompileLimits::default().apply_spec("cells=x").is_err());
    }

    #[test]
    fn breach_display_is_structured() {
        let b = LimitBreach::Cells {
            pass: "fuse",
            got: 12,
            limit: 10,
        };
        assert_eq!(b.to_string(), "12 cells after pass 'fuse', limit is 10");
    }
}
