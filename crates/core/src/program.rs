//! Whole-program compilation (paper §8, Theorem 4).
//!
//! A pipe-structured program's blocks are compiled in dependency order
//! into one instruction graph; each block's output stream feeds its
//! consumers' window gates directly, and the declared outputs get sink
//! cells. Loop interiors are balanced locally, then the whole acyclic
//! interconnection is balanced globally ([`valpipe_balance`]) so the
//! complete program runs fully pipelined.

use crate::error::CompileError;
use crate::foriter::UsedScheme;
use crate::options::CompileOptions;
use crate::pipeline::PassManager;
use std::collections::HashMap;
use valpipe_ir::prov::Provenance;
use valpipe_ir::Graph;
use valpipe_val::ast::Program;
use valpipe_val::deps::FlowGraph;
use valpipe_val::srcmap::SourceMap;

/// Compilation statistics.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Instruction cells before buffer insertion.
    pub cells_before_balance: usize,
    /// Buffer stages inserted inside feedback loops.
    pub loop_buffers: u64,
    /// Buffer stages inserted by global balancing.
    pub global_buffers: u64,
    /// Scheme used per for-iter block.
    pub schemes: HashMap<String, UsedScheme>,
    /// Blocks skipped as dead code.
    pub dead_blocks: Vec<String>,
    /// Generator cells lowered to ordinary circuits (when
    /// `synthesize_generators` is set).
    pub synthesized_generators: usize,
    /// Static gate pairs fused by the optimizer.
    pub fused_gates: usize,
}

/// A compiled pipe-structured program.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The balanced machine-level program (symbolic FIFOs not yet
    /// expanded; call [`Compiled::executable`] before simulation).
    pub graph: Graph,
    /// The type-checked source program.
    pub program: Program,
    /// The flow dependency graph (block ranges, edges).
    pub flow: FlowGraph,
    /// Original shapes of flattened two-dimensional arrays.
    pub dims: valpipe_val::dims::FlattenInfo,
    /// Source-to-cell provenance table; every node's `src` field indexes
    /// into it (see `valpipe_ir::prov`).
    pub prov: Provenance,
    /// Statistics.
    pub stats: CompileStats,
}

impl Compiled {
    /// The graph with symbolic FIFOs lowered to identity chains — the form
    /// the machine actually loads.
    pub fn executable(&self) -> Graph {
        let mut g = self.graph.clone();
        g.expand_fifos();
        g
    }

    /// Manifest range of a named array (input or block).
    pub fn range_of(&self, name: &str) -> Option<(i64, i64)> {
        self.flow.range_of(name)
    }
}
/// Compile a pipe-structured program to fully pipelined machine code.
/// Two-dimensional constructs (§9's extension) are flattened to row-major
/// streams first. Source spans are synthesized by pretty-printing the
/// program, so provenance is total even for programs built in memory;
/// compile from text via [`compile_source`] to get real source locations.
pub fn compile_program(prog: &Program, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    let map = valpipe_val::pretty::program_to_source_mapped(prog, "<ast>");
    compile_program_mapped(prog, opts, &map)
}

/// Compile with an explicit statement [`SourceMap`] (from
/// `parse_program_mapped` or `program_to_source_mapped`): diagnostics and
/// provenance point at the mapped source text. Runs the full staged
/// pipeline ([`crate::pipeline::PassManager`]) without instrumentation.
pub fn compile_program_mapped(
    prog: &Program,
    opts: &CompileOptions,
    map: &SourceMap,
) -> Result<Compiled, CompileError> {
    Ok(PassManager::new(opts).run(prog, map)?.compiled)
}

/// Compile a program given as source text. Parse positions are carried
/// through to machine-level provenance, so diagnostics point back at this
/// text.
pub fn compile_source(src: &str, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    compile_source_named(src, "<source>", opts)
}

/// [`compile_source`] with an explicit file name for diagnostics.
pub fn compile_source_named(
    src: &str,
    file: &str,
    opts: &CompileOptions,
) -> Result<Compiled, CompileError> {
    let (prog, map) =
        valpipe_val::parser::parse_program_mapped(src, file).map_err(CompileError::Parse)?;
    compile_program_mapped(&prog, opts, &map)
}

/// Compile untrusted source text under resource budgets: parse failures
/// come back as [`CompileError::Parse`] and any exceeded budget as
/// [`CompileError::Limit`], never a panic. This is the entry point for the
/// CLI and the service; trusted callers keep using [`compile_source`].
pub fn compile_source_limited(
    src: &str,
    file: &str,
    opts: &CompileOptions,
    limits: &crate::limits::CompileLimits,
) -> Result<Compiled, CompileError> {
    Ok(PassManager::new(opts)
        .limits(*limits)
        .run_source(src, file)?
        .compiled)
}
