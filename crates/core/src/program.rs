//! Whole-program compilation (paper §8, Theorem 4).
//!
//! A pipe-structured program's blocks are compiled in dependency order
//! into one instruction graph; each block's output stream feeds its
//! consumers' window gates directly, and the declared outputs get sink
//! cells. Loop interiors are balanced locally, then the whole acyclic
//! interconnection is balanced globally ([`valpipe_balance`]) so the
//! complete program runs fully pipelined.

use crate::builder::{Compiler, Provider};
use crate::error::CompileError;
use crate::forall::compile_forall;
use crate::foriter::{compile_foriter, UsedScheme};
use crate::loops::balance_loop_interiors;
use crate::options::CompileOptions;
use std::collections::{HashMap, HashSet};
use valpipe_balance::{problem, solve, BalanceMode};
use valpipe_ir::opcode::Opcode;
use valpipe_ir::validate::validate;
use valpipe_ir::Graph;
use valpipe_val::ast::Program;
use valpipe_val::deps::{analyze, BlockClass, FlowGraph};
use valpipe_val::fold::Bindings;
use valpipe_val::typeck::check_program;
use valpipe_ir::value::Value;

/// Compilation statistics.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Instruction cells before buffer insertion.
    pub cells_before_balance: usize,
    /// Buffer stages inserted inside feedback loops.
    pub loop_buffers: u64,
    /// Buffer stages inserted by global balancing.
    pub global_buffers: u64,
    /// Scheme used per for-iter block.
    pub schemes: HashMap<String, UsedScheme>,
    /// Blocks skipped as dead code.
    pub dead_blocks: Vec<String>,
    /// Generator cells lowered to ordinary circuits (when
    /// `synthesize_generators` is set).
    pub synthesized_generators: usize,
    /// Static gate pairs fused by the optimizer.
    pub fused_gates: usize,
}

/// A compiled pipe-structured program.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The balanced machine-level program (symbolic FIFOs not yet
    /// expanded; call [`Compiled::executable`] before simulation).
    pub graph: Graph,
    /// The type-checked source program.
    pub program: Program,
    /// The flow dependency graph (block ranges, edges).
    pub flow: FlowGraph,
    /// Original shapes of flattened two-dimensional arrays.
    pub dims: valpipe_val::dims::FlattenInfo,
    /// Statistics.
    pub stats: CompileStats,
}

impl Compiled {
    /// The graph with symbolic FIFOs lowered to identity chains — the form
    /// the machine actually loads.
    pub fn executable(&self) -> Graph {
        let mut g = self.graph.clone();
        g.expand_fifos();
        g
    }

    /// Manifest range of a named array (input or block).
    pub fn range_of(&self, name: &str) -> Option<(i64, i64)> {
        self.flow.range_of(name)
    }
}

/// Compile a pipe-structured program to fully pipelined machine code.
/// Two-dimensional constructs (§9's extension) are flattened to row-major
/// streams first.
pub fn compile_program(prog: &Program, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    let (prog, dims) = valpipe_val::dims::flatten_program(prog)
        .map_err(CompileError::Unsupported)?;
    let prog = check_program(&prog)?;
    let flow = analyze(&prog)?;

    let mut params = Bindings::new();
    for (n, v) in &prog.params {
        params.insert(n.clone(), Value::Int(*v));
    }
    let mut c = Compiler::new(params);
    let mut stats = CompileStats::default();

    // Input sources, anchored at −2·lo (the machine feeds every input
    // from absolute time 0; element i cannot arrive before 2·(i − lo)).
    for (name, (lo, hi)) in &flow.inputs {
        let src = c.g.add_node(Opcode::Source(name.clone()), name.clone());
        c.anchors.push((src, -2 * lo));
        let node = if opts.am_boundary {
            let l = c.label(&format!("{name}.amr"));
            c.g.cell(Opcode::AmRead, l, &[src.into()])
        } else {
            src
        };
        c.providers.insert(name.clone(), Provider { node, lo: *lo, hi: *hi });
    }

    // Dead-block elimination: only blocks that (transitively) reach a
    // declared output are compiled.
    let live = live_blocks(&flow, &prog.outputs);

    for block in &flow.blocks {
        if !opts.keep_dead_blocks && !live.contains(&block.name) {
            stats.dead_blocks.push(block.name.clone());
            continue;
        }
        let decl = prog
            .block(&block.name)
            .ok_or_else(|| CompileError::Internal(format!("missing block '{}'", block.name)))?;
        match (&block.class, &decl.body) {
            (BlockClass::Forall { lo, hi }, valpipe_val::ast::BlockBody::Forall(f)) => {
                compile_forall(&mut c, &block.name, f, *lo, *hi)?;
            }
            (BlockClass::ForIter(pfi), _) => {
                let (_, used) = compile_foriter(&mut c, &block.name, pfi, opts.scheme)?;
                stats.schemes.insert(block.name.clone(), used);
            }
            _ => {
                return Err(CompileError::Internal(format!(
                    "classification mismatch for block '{}'",
                    block.name
                )))
            }
        }
    }

    // Output sinks.
    for name in &prog.outputs {
        let p = *c
            .providers
            .get(name)
            .ok_or_else(|| CompileError::Internal(format!("no provider for output '{name}'")))?;
        let node = if opts.am_boundary {
            let l = c.label(&format!("{name}.amw"));
            c.g.cell(Opcode::AmWrite, l, &[p.node.into()])
        } else {
            p.node
        };
        let l = c.label(&format!("{name}.out"));
        c.g.cell(Opcode::Sink(name.clone()), l, &[node.into()]);
    }

    // Any compiled block whose stream ends up unconsumed (kept dead
    // blocks) still needs a consumer to be structurally valid.
    for id in c.g.node_ids().collect::<Vec<_>>() {
        if c.g.nodes[id.idx()].op.produces_output() && c.g.nodes[id.idx()].outputs.is_empty() {
            let label = format!("__drain.{}", id.idx());
            let sink = c.g.add_node(Opcode::Sink(label.clone()), label);
            c.g.connect(id, sink, 0);
        }
    }

    if opts.fuse_gates {
        let fused = crate::fuse::fuse_static_gates(&mut c.g);
        stats.fused_gates = fused.fused;
        if fused.fused > 0 {
            crate::fuse::sweep_dead(&mut c.g);
        }
    }

    if opts.synthesize_generators {
        let synth = crate::synth::synthesize_generators(&mut c.g);
        stats.synthesized_generators = synth.ctl_generators + synth.index_generators;
    }

    stats.cells_before_balance = c.g.node_count();
    stats.loop_buffers = balance_loop_interiors(&mut c.g);

    let defects = validate(&c.g);
    if !defects.is_empty() {
        let msg = defects
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        return Err(CompileError::BadCode(msg));
    }

    // Global balancing (Theorem 4).
    if opts.balance != BalanceMode::None {
        let p = problem::extract_anchored(&c.g, &c.anchors)?;
        let sol = match opts.balance {
            BalanceMode::Asap => solve::solve_asap(&p),
            BalanceMode::Heuristic => solve::solve_heuristic(&p, 64),
            BalanceMode::Optimal => solve::solve_optimal(&p),
            BalanceMode::None => unreachable!(),
        };
        stats.global_buffers = problem::apply(&mut c.g, &p, &sol);
    }

    Ok(Compiled {
        graph: c.g,
        program: prog,
        flow,
        dims,
        stats,
    })
}

/// Compile a program given as source text.
pub fn compile_source(src: &str, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    let prog = valpipe_val::parser::parse_program(src)
        .map_err(|e| CompileError::Unsupported(format!("parse error: {e}")))?;
    compile_program(&prog, opts)
}

fn live_blocks(flow: &FlowGraph, outputs: &[String]) -> HashSet<String> {
    // Walk producer edges backwards from the outputs.
    let mut preds: HashMap<&str, Vec<&str>> = HashMap::new();
    for (prod, cons) in &flow.edges {
        preds.entry(cons.as_str()).or_default().push(prod.as_str());
    }
    let mut live: HashSet<String> = HashSet::new();
    let mut stack: Vec<&str> = outputs.iter().map(|s| s.as_str()).collect();
    while let Some(name) = stack.pop() {
        if live.insert(name.to_string()) {
            if let Some(ps) = preds.get(name) {
                stack.extend(ps.iter().copied());
            }
        }
    }
    live
}
