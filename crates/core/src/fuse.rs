//! Gate-fusion optimization.
//!
//! Nested static conditionals gate a pulled stream once per scope level:
//! `value → TGate(s1) → TGate(s2) → consumer`. Both gates run off
//! compile-time control streams, so the cascade is equivalent to a single
//! gate selecting `s2 ∘ s1` (the inner pattern *compressed onto* the
//! elements the outer gate passes). Fusing saves a cell and a control
//! generator per level — on deeply banded conditionals this is a
//! significant fraction of the program — and shortens the paths the
//! balancer must pad.
//!
//! Fusion is sound only for gates whose control comes directly from a
//! `CtlGen` with no other consumers (static gating as emitted by the
//! compiler); dynamically controlled gates are left alone.

use valpipe_ir::opcode::{Opcode, GATE_CTL, GATE_DATA};
use valpipe_ir::{CtlStream, Graph, NodeId, PortBinding};

/// Statistics of one fusion pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Gate pairs fused.
    pub fused: usize,
}

fn static_gate_ctl(g: &Graph, n: NodeId) -> Option<(NodeId, CtlStream)> {
    if !matches!(g.nodes[n.idx()].op, Opcode::TGate) {
        return None;
    }
    let PortBinding::Wired(ctl_arc) = g.nodes[n.idx()].inputs[GATE_CTL] else {
        return None;
    };
    let ctl_node = g.arcs[ctl_arc.idx()].src;
    // The generator must feed this gate alone (we'll rewrite its pattern).
    if g.nodes[ctl_node.idx()].outputs.len() != 1 {
        return None;
    }
    match &g.nodes[ctl_node.idx()].op {
        Opcode::CtlGen(s) => Some((ctl_node, s.clone())),
        _ => None,
    }
}

/// Fuse chains `TGate(outer) → TGate(inner)` where both controls are
/// private static generators: the inner gate takes over with the composed
/// pattern, and the outer gate (if it has no other consumers) is bypassed.
///
/// Returns the number of fusions performed. Dead cells (the bypassed gate
/// and its generator) are left unwired-on-the-output side; run before
/// validation/balancing and call [`sweep_dead`] afterwards.
pub fn fuse_static_gates(g: &mut Graph) -> FuseStats {
    let mut stats = FuseStats::default();
    loop {
        let mut did = false;
        'outer: for inner in g.node_ids().collect::<Vec<_>>() {
            let Some((inner_ctl, inner_stream)) = static_gate_ctl(g, inner) else {
                continue;
            };
            let PortBinding::Wired(data_arc) = g.nodes[inner.idx()].inputs[GATE_DATA] else {
                continue;
            };
            let outer = g.arcs[data_arc.idx()].src;
            let Some((_, outer_stream)) = static_gate_ctl(g, outer) else {
                continue;
            };
            let PortBinding::Wired(outer_data_arc) = g.nodes[outer.idx()].inputs[GATE_DATA] else {
                continue;
            };
            // Never bypass across a loop back-edge: the gate is part of a
            // feedback cycle and removing it would rewire the cycle.
            if !g.arcs[outer_data_arc.idx()].is_forward() || !g.arcs[data_arc.idx()].is_forward() {
                continue;
            }
            // Composed selection: expand the inner pattern (which runs over
            // the outer gate's PASSED elements) back onto the full wave.
            let composed = compose(&outer_stream, &inner_stream);
            // Bypass: inner's data comes straight from outer's producer
            // under the composed selection. The outer gate keeps serving
            // any other consumers; once the last one is bypassed its
            // outputs are empty and `sweep_dead` removes it together with
            // its private generator.
            let producer = g.arcs[outer_data_arc.idx()].src;
            // Stream-phase weights accumulate: the bypassed path carried
            // the outer tap's offset on its data arc AND the inner tap's
            // offset on the fused arc.
            let phase = g.arcs[outer_data_arc.idx()].phase + g.arcs[data_arc.idx()].phase;
            detach_arc(g, data_arc); // outer → inner
            g.nodes[inner.idx()].inputs[GATE_DATA] = PortBinding::Unbound;
            let a = g.connect(producer, inner, GATE_DATA);
            g.arcs[a.idx()].phase = phase;
            g.nodes[inner_ctl.idx()].op = Opcode::CtlGen(composed);
            stats.fused += 1;
            did = true;
            break 'outer;
        }
        if !did {
            break;
        }
    }
    stats
}

/// `inner` is a pattern over the elements `outer` passes; produce the
/// equivalent single pattern over the full wave.
fn compose(outer: &CtlStream, inner: &CtlStream) -> CtlStream {
    let total = outer.wave_len();
    let mut bits = Vec::with_capacity(total as usize);
    let mut passed = 0u64;
    for k in 0..total as u64 {
        if outer.at(k) {
            bits.push((inner.at(passed), 1));
            passed += 1;
        } else {
            bits.push((false, 1));
        }
    }
    CtlStream::from_runs(bits)
}

fn detach_arc(g: &mut Graph, arc: valpipe_ir::ArcId) {
    let e = g.arcs[arc.idx()].clone();
    let pos = g.nodes[e.src.idx()]
        .outputs
        .iter()
        .position(|&a| a == arc)
        .expect("arc registered at source");
    g.nodes[e.src.idx()].outputs.remove(pos);
    // Leave the arc record in place but orphaned (points nowhere useful);
    // sweep_dead rebuilds the graph without it.
    g.nodes[e.dst.idx()].inputs[e.dst_port] = PortBinding::Unbound;
}

/// Rebuild the graph without cells that can never affect an output
/// (unwired or unreachable-from-sink cells left behind by fusion).
/// Returns the number of cells removed.
pub fn sweep_dead(g: &mut Graph) -> usize {
    // Keep every cell that reaches a sink via forward or feedback arcs.
    let n = g.node_count();
    let mut keep = vec![false; n];
    let mut stack: Vec<usize> = g
        .node_ids()
        .filter(|id| matches!(g.nodes[id.idx()].op, Opcode::Sink(_)))
        .map(|id| id.idx())
        .collect();
    // Predecessor lists from wired ports (orphaned arc records left by
    // `detach_arc` are invisible here by construction).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in g.nodes.iter().enumerate() {
        for b in &node.inputs {
            if let PortBinding::Wired(a) = b {
                preds[i].push(g.arcs[a.idx()].src.idx());
            }
        }
    }
    while let Some(k) = stack.pop() {
        if keep[k] {
            continue;
        }
        keep[k] = true;
        stack.extend(preds[k].iter().copied());
    }
    let removed = keep.iter().filter(|&&k| !k).count();
    // Orphaned arc records (left by `detach_arc` when the bypassed gate
    // survives for other consumers — reconvergent fanout) must also force
    // a rebuild: cycle analyses count in-degrees over the arc table, so a
    // stale record makes the fused gate look forever-blocked and the
    // validator reports a phantom deadlock. Every live arc is registered
    // in exactly one `outputs` list, so any count mismatch — fewer
    // registrations (orphans) or more (an arc id registered twice, a
    // defect the rebuild equally repairs) — forces the rebuild rather
    // than underflowing a subtraction.
    let registered: usize = g.nodes.iter().map(|n| n.outputs.len()).sum();
    if removed == 0 && registered == g.arcs.len() {
        return 0;
    }
    // Rebuild.
    let mut map = vec![usize::MAX; n];
    let mut out = Graph::new();
    for (i, node) in g.nodes.iter().enumerate() {
        if keep[i] {
            let nid = out.add_node(node.op.clone(), node.label.clone());
            out.nodes[nid.idx()].src = node.src;
            map[i] = nid.idx();
        }
    }
    for (i, node) in g.nodes.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        for (port, b) in node.inputs.iter().enumerate() {
            match b {
                PortBinding::Wired(a) => {
                    let e = &g.arcs[a.idx()];
                    debug_assert!(keep[e.src.idx()], "kept cell fed by dead cell");
                    let na = out.connect_full(
                        valpipe_ir::NodeId(map[e.src.idx()] as u32),
                        valpipe_ir::NodeId(map[i] as u32),
                        port,
                        e.initial,
                        e.phase,
                    );
                    out.arcs[na.idx()].back = e.back;
                }
                PortBinding::Lit(v) => out.set_lit(valpipe_ir::NodeId(map[i] as u32), port, *v),
                PortBinding::Unbound => {}
            }
        }
    }
    *g = out;
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use valpipe_ir::In;

    /// source → TGate(outer: F T T T F) → TGate(inner over 3: T F T) → sink.
    fn cascade() -> Graph {
        let mut g = Graph::new();
        let src = g.add_node(Opcode::Source("a".into()), "a");
        let c1 = g.add_node(Opcode::CtlGen(CtlStream::window(5, 1, 3)), "c1");
        let g1 = g.cell(Opcode::TGate, "outer", &[c1.into(), src.into()]);
        let c2 = g.add_node(
            Opcode::CtlGen(CtlStream::from_runs([(true, 1), (false, 1), (true, 1)])),
            "c2",
        );
        let g2 = g.cell(Opcode::TGate, "inner", &[c2.into(), In::Node(g1)]);
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[g2.into()]);
        g
    }

    #[test]
    fn fuses_and_composes_patterns() {
        let mut g = cascade();
        let stats = fuse_static_gates(&mut g);
        assert_eq!(stats.fused, 1);
        let removed = sweep_dead(&mut g);
        assert_eq!(removed, 2, "outer gate + its generator");
        // One gate remains, selecting positions 1 and 3 of the wave.
        let hist = g.opcode_histogram();
        assert_eq!(hist["TGATE"], 1);
        let pattern = g
            .nodes
            .iter()
            .find_map(|n| match &n.op {
                Opcode::CtlGen(s) => Some(s.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(
            pattern.take(5),
            vec![false, true, false, true, false],
            "inner T F T over outer-passed positions 1,2,3"
        );
    }

    #[test]
    fn sweep_repairs_duplicate_arc_registration_without_panicking() {
        let mut g = cascade();
        // Violate the one-owner invariant: register one arc id in a
        // second node's outputs list (registered > arcs). The sweep must
        // treat this as a defect and rebuild, not underflow.
        let (owner, arc) = g
            .nodes
            .iter()
            .enumerate()
            .find_map(|(i, n)| n.outputs.first().map(|&a| (i, a)))
            .unwrap();
        let other = (owner + 1) % g.node_count();
        g.nodes[other].outputs.push(arc);
        let registered: usize = g.nodes.iter().map(|n| n.outputs.len()).sum();
        assert_eq!(registered, g.arcs.len() + 1, "invariant violated for test");
        sweep_dead(&mut g);
        let registered: usize = g.nodes.iter().map(|n| n.outputs.len()).sum();
        assert_eq!(registered, g.arcs.len(), "rebuild restores one-owner");
    }

    #[test]
    fn fused_graph_computes_the_same_stream() {
        use valpipe_machine::{ProgramInputs, Simulator};
        let data: Vec<valpipe_ir::Value> =
            (0..15).map(|i| valpipe_ir::Value::Real(i as f64)).collect();
        let inputs = ProgramInputs::new().bind("a", data);
        let cascade_g = cascade();
        let before = Simulator::builder(&cascade_g)
            .inputs(inputs.clone())
            .run()
            .unwrap()
            .reals("y");
        let mut g = cascade();
        fuse_static_gates(&mut g);
        sweep_dead(&mut g);
        let after = Simulator::builder(&g)
            .inputs(inputs)
            .run()
            .unwrap()
            .reals("y");
        assert_eq!(before, after);
        assert_eq!(before, vec![1.0, 3.0, 6.0, 8.0, 11.0, 13.0]);
    }

    #[test]
    fn reconvergent_fanout_leaves_no_orphaned_arcs() {
        // The outer gate fans out to a second consumer (reconvergent
        // fanout), so it survives the bypass. The detached outer→inner
        // arc must not linger as a stale record: cycle analyses count
        // in-degrees over the arc table, and a stale record makes the
        // fused gate look forever-blocked (phantom UnseededCycle).
        let mut g = Graph::new();
        let src = g.add_node(Opcode::Source("a".into()), "a");
        let c1 = g.add_node(Opcode::CtlGen(CtlStream::window(4, 0, 3)), "c1");
        let g1 = g.cell(Opcode::TGate, "outer", &[c1.into(), src.into()]);
        let c2 = g.add_node(
            Opcode::CtlGen(CtlStream::from_runs([(false, 2), (true, 2)])),
            "c2",
        );
        let g2 = g.cell(Opcode::TGate, "inner", &[c2.into(), In::Node(g1)]);
        let add = g.cell(
            Opcode::Bin(valpipe_ir::BinOp::Add),
            "add",
            &[In::Node(g1), In::Node(g2)],
        );
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);
        let stats = fuse_static_gates(&mut g);
        assert_eq!(stats.fused, 1);
        sweep_dead(&mut g);
        // Every arc record is registered at its source again.
        let registered: usize = g.nodes.iter().map(|n| n.outputs.len()).sum();
        assert_eq!(registered, g.arcs.len(), "orphaned arc records remain");
        assert!(
            g.forward_topo_order().is_some(),
            "phantom cycle from stale arc record"
        );
        assert!(valpipe_ir::validate::validate(&g).is_empty());
    }

    #[test]
    fn dynamic_gates_left_alone() {
        let mut g = Graph::new();
        let src = g.add_node(Opcode::Source("a".into()), "a");
        let cond = g.add_node(Opcode::Source("c".into()), "c");
        let g1 = g.cell(Opcode::TGate, "dyn", &[cond.into(), src.into()]);
        let c2 = g.add_node(Opcode::CtlGen(CtlStream::constant(true, 2)), "c2");
        let g2 = g.cell(Opcode::TGate, "static", &[c2.into(), In::Node(g1)]);
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[g2.into()]);
        let stats = fuse_static_gates(&mut g);
        assert_eq!(stats.fused, 0);
    }

    #[test]
    fn shared_generator_blocks_fusion() {
        // The outer gate's generator also feeds a merge: must not fuse.
        let mut g = Graph::new();
        let src = g.add_node(Opcode::Source("a".into()), "a");
        let c1 = g.add_node(Opcode::CtlGen(CtlStream::window(4, 1, 2)), "c1");
        let g1 = g.add_node(Opcode::TGate, "outer");
        g.connect(c1, g1, 0);
        g.connect(src, g1, 1);
        let c2 = g.add_node(Opcode::CtlGen(CtlStream::constant(true, 2)), "c2");
        let g2 = g.cell(Opcode::TGate, "inner", &[c2.into(), In::Node(g1)]);
        let m = g.add_node(Opcode::Merge, "m");
        g.connect(c1, m, 0); // second consumer of c1
        g.connect(g2, m, 1);
        g.set_lit(m, 2, valpipe_ir::Value::Real(0.0));
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[m.into()]);
        let stats = fuse_static_gates(&mut g);
        assert_eq!(stats.fused, 0);
    }
}
