//! Query-based incremental compilation.
//!
//! The classic pipeline ([`PassManager::run`]) is a straight line: parse
//! the whole file, check the whole program, lower every block, balance
//! the whole graph. This module re-poses each stage as a set of
//! **queries** — per-statement parses, per-block type checks, per-block
//! lowered regions, whole-problem balance solutions, the machine listing
//! — each memoized under a fingerprint of *everything that can influence
//! its result*. Re-running a compile after an edit re-executes only the
//! queries whose inputs changed; everything else is revalidated
//! green-for-free because its key still matches (red–green with early
//! cutoff: a downstream key embeds the upstream *value* fingerprints, so
//! an upstream re-execution that reproduces the same value leaves the
//! downstream keys untouched).
//!
//! Memo hits are **exact-match**, not hash-match: every memo table is
//! keyed by the full canonical key string, so a hit proves the inputs
//! are byte-identical. No 64-bit fingerprint collision — accidental or
//! adversarially constructed (the engine is shared across tenants in
//! the serve registry) — can splice one compilation's artifact into
//! another's. Hashing (`checksum64`) is used only to *name* disk-cache
//! files, where a collision merely co-locates two files' entries; the
//! entries themselves still verify by full key.
//!
//! Memo tables are bounded: after each run, entries not touched within
//! the retention cap are swept (generation-based LRU), so a long-lived
//! shared engine fed arbitrary programs holds bounded memory.
//!
//! **Bit-identity is the contract.** A warm [`QueryEngine::run_source`]
//! must produce exactly the artifacts of a cold one: same graph
//! fingerprint, same stage dumps byte-for-byte, same pass-stat sequence,
//! same typed errors. The engine guarantees this by construction:
//!
//! * per-statement parses are cached with **relative** spans and rebased
//!   to the statement's current position, so cached parse trees are
//!   position-independent;
//! * per-block type checks are keyed by the flattened block **and** a
//!   canonical rendering of the typing environment; cached type errors
//!   carry no source location — the location is attached at use time
//!   from the current source map;
//! * per-block lowered regions ([`valpipe_ir::GraphDelta`]) are keyed by
//!   the typed block, the lowering options, the parameter bindings, the
//!   upstream providers, the provenance ids, and the exact node/arc/label
//!   counters they were captured at, so a splice is a verbatim replay;
//! * balance solutions are keyed by the full constraint-problem
//!   structure; the solvers are deterministic, so an equal problem has an
//!   equal solution;
//! * the machine listing is keyed by the full balanced listing.
//!
//! Any irregularity (a statement the splitter cannot carve, a corrupt
//! disk-cache file) falls back to the cold path — never a panic, never a
//! stale answer.
//!
//! The optional on-disk cache (`.valpipe-cache/`) persists the expensive
//! artifacts (regions and balance solutions) between processes in a
//! versioned, checksummed envelope written atomically (tmp + rename).

use crate::builder::{Compiler, Provider};
use crate::error::CompileError;
use crate::foriter::UsedScheme;
use crate::limits::{CompileLimits, LimitBreach};
use crate::options::CompileOptions;
use crate::pipeline::{
    block_prov, build_prov, dump_graph, live_blocks, lower_block, lower_epilogue, lower_inputs,
    PassStat, PipelineOutput, Stage,
};
use crate::program::{CompileStats, Compiled};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;
use valpipe_balance::{problem, solve, BalanceMode, BalanceSolution};
use valpipe_ir::opcode::Opcode;
use valpipe_ir::prov::Span;
use valpipe_ir::region::GraphDelta;
use valpipe_ir::validate::validate;
use valpipe_ir::value::Value;
use valpipe_ir::NodeId;
use valpipe_util::{checksum64, Json};
use valpipe_val::ast::{BlockDecl, Program};
use valpipe_val::deps::analyze;
use valpipe_val::fold::Bindings;
use valpipe_val::parser::{
    parse_program_mapped_limited, parse_stmt_mapped, split_statements, ParseErrorKind, TopStmt,
};
use valpipe_val::srcmap::{SourceMap, StmtKey};
use valpipe_val::typeck::{attach_loc, check_block, program_prelude_env, TypeError};

/// Fingerprint of a string. Used only to *name* on-disk cache files,
/// never to answer a memo lookup — memo tables key on the full string.
fn fp(s: &str) -> u64 {
    checksum64(s.as_bytes())
}

/// Per-run query accounting, by query kind: how many were posed and how
/// many actually executed (the rest were memo hits).
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Per-statement parse queries (posed, executed).
    pub parse: (usize, usize),
    /// Per-block type-check queries.
    pub typed: (usize, usize),
    /// Per-block lowered-region queries.
    pub region: (usize, usize),
    /// Balance-solution queries.
    pub balance: (usize, usize),
    /// Machine-listing queries.
    pub machine: (usize, usize),
    /// Whether this run abandoned statement splitting and re-parsed the
    /// whole file (malformed source, or a statement failed in isolation).
    pub full_parse_fallbacks: usize,
    /// Artifacts revived from the on-disk cache at load time.
    pub disk_entries_loaded: usize,
}

impl QueryStats {
    /// Total queries posed this run.
    pub fn total(&self) -> usize {
        self.parse.0 + self.typed.0 + self.region.0 + self.balance.0 + self.machine.0
    }

    /// Queries that executed (missed the memo) this run.
    pub fn executed(&self) -> usize {
        self.parse.1 + self.typed.1 + self.region.1 + self.balance.1 + self.machine.1
    }

    /// Queries answered from the memo this run.
    pub fn hits(&self) -> usize {
        self.total() - self.executed()
    }

    /// One-line human rendering (for `--incremental` stderr reporting).
    pub fn render(&self) -> String {
        format!(
            "queries: {} total, {} executed, {} cached \
             (parse {}/{}, typed {}/{}, region {}/{}, balance {}/{}, machine {}/{}){}{}",
            self.total(),
            self.executed(),
            self.hits(),
            self.parse.1,
            self.parse.0,
            self.typed.1,
            self.typed.0,
            self.region.1,
            self.region.0,
            self.balance.1,
            self.balance.0,
            self.machine.1,
            self.machine.0,
            if self.full_parse_fallbacks > 0 {
                " [full-parse fallback]"
            } else {
                ""
            },
            if self.disk_entries_loaded > 0 {
                format!(" [{} from disk]", self.disk_entries_loaded)
            } else {
                String::new()
            },
        )
    }
}

/// Cached result of lowering one block: the graph region it appended plus
/// every other piece of compiler state the block's lowering touched.
#[derive(Debug, Clone, PartialEq)]
struct RegionEntry {
    delta: GraphDelta,
    /// Providers the block registered (its own output stream), sorted by
    /// name for determinism.
    providers: Vec<(String, Provider)>,
    /// Balance anchors the block appended.
    anchors: Vec<(NodeId, i64)>,
    /// Unique-label counter after the block lowered.
    label_seq: u32,
    /// Recurrence scheme used (for-iter blocks only).
    scheme: Option<UsedScheme>,
}

/// A memoized value plus the run generation that last touched it (for
/// the post-run LRU sweep).
#[derive(Debug, Clone)]
struct Memo<V> {
    value: V,
    gen: u64,
}

/// A parsed statement with its statement-relative spans.
type ParsedStmt = (TopStmt, Vec<(StmtKey, Span)>);

/// Default per-table memo retention: generous enough that a 1000-block
/// program's working set stays resident, small enough to bound a
/// long-lived shared engine fed arbitrary distinct programs.
const DEFAULT_MEMO_CAP: usize = 16_384;

/// The incremental compile engine: memo tables for every query kind plus
/// an optional on-disk cache. One engine instance per logical compilation
/// session; a fresh engine performs exactly the cold pipeline.
///
/// Every memo table is keyed by the full canonical key string — a hit
/// requires byte-identical inputs, so no hash collision can cross-wire
/// two compilations (see the module docs).
#[derive(Debug)]
pub struct QueryEngine {
    parse_memo: HashMap<String, Memo<ParsedStmt>>,
    typed_memo: HashMap<String, Memo<Result<BlockDecl, TypeError>>>,
    region_memo: HashMap<String, Memo<RegionEntry>>,
    balance_memo: HashMap<String, Memo<BalanceSolution>>,
    machine_memo: HashMap<String, Memo<String>>,
    stats: QueryStats,
    /// Current run generation; bumped at every [`QueryEngine::run_source`].
    gen: u64,
    /// Per-table entry cap enforced after each run.
    memo_cap: usize,
    /// Region/balance memos gained entries since the last disk save.
    dirty: bool,
    cache_dir: Option<PathBuf>,
    cache_loaded: Option<u64>,
}

impl Default for QueryEngine {
    fn default() -> QueryEngine {
        QueryEngine {
            parse_memo: HashMap::new(),
            typed_memo: HashMap::new(),
            region_memo: HashMap::new(),
            balance_memo: HashMap::new(),
            machine_memo: HashMap::new(),
            stats: QueryStats::default(),
            gen: 0,
            memo_cap: DEFAULT_MEMO_CAP,
            dirty: false,
            cache_dir: None,
            cache_loaded: None,
        }
    }
}

impl QueryEngine {
    /// Fresh engine with empty memos and no disk cache.
    pub fn new() -> QueryEngine {
        QueryEngine::default()
    }

    /// Cap each memo table at roughly `cap` entries. After every run,
    /// entries least recently touched (by run generation) are swept
    /// until the table fits; entries touched by the current run are
    /// never swept, so a single program larger than the cap still
    /// compiles warm within a run. Long-lived shared engines (the serve
    /// registry) rely on this to bound memory against arbitrary
    /// distinct submissions.
    pub fn set_memo_cap(&mut self, cap: usize) {
        self.memo_cap = cap.max(1);
    }

    /// Fresh engine that persists regions and balance solutions under the
    /// given directory (created on first save). Corrupt or mismatched
    /// cache files are ignored silently — the engine falls back to a cold
    /// compile, never panics, and never serves stale artifacts (every
    /// lookup still goes through the full content key).
    pub fn with_disk_cache(dir: impl Into<PathBuf>) -> QueryEngine {
        QueryEngine {
            cache_dir: Some(dir.into()),
            ..QueryEngine::default()
        }
    }

    /// Query accounting for the most recent [`QueryEngine::run_source`].
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Compile source text through the staged pipeline, answering every
    /// stage from the memo tables where the inputs are unchanged. The
    /// output is bit-identical to [`PassManager::run_source`] with the
    /// same options, limits, and emit list.
    ///
    /// [`PassManager::run_source`]: crate::pipeline::PassManager::run_source
    pub fn run_source(
        &mut self,
        opts: &CompileOptions,
        limits: &CompileLimits,
        emit: &[Stage],
        src: &str,
        file: &str,
    ) -> Result<PipelineOutput, CompileError> {
        self.stats = QueryStats::default();
        self.gen += 1;
        if let Some(dir) = self.cache_dir.clone() {
            let key = cache_key(file, opts);
            if self.cache_loaded != Some(key) {
                self.stats.disk_entries_loaded = self.load_cache(&dir, key);
                self.cache_loaded = Some(key);
            }
        }
        let out = self.run_source_inner(opts, limits, emit, src, file);
        // Sweep cold memo entries whether the compile succeeded or not —
        // failed compiles populate memos too.
        self.evict();
        if out.is_ok() && self.dirty {
            if let Some(dir) = self.cache_dir.clone() {
                // Best-effort persistence; failure to write is not a
                // compile failure (and leaves `dirty` set for a retry).
                if self.save_cache(&dir, cache_key(file, opts)).is_ok() {
                    self.dirty = false;
                }
            }
        }
        out
    }

    fn run_source_inner(
        &mut self,
        opts: &CompileOptions,
        limits: &CompileLimits,
        emit: &[Stage],
        src: &str,
        file: &str,
    ) -> Result<PipelineOutput, CompileError> {
        if src.len() > limits.max_source_bytes {
            return Err(LimitBreach::SourceBytes {
                got: src.len(),
                limit: limits.max_source_bytes,
            }
            .into());
        }
        let (prog0, map) = self.parse(src, file, limits.max_nesting_depth)?;
        self.drive(opts, limits, emit, &prog0, &map)
    }

    /// Trim each memo table to the retention cap, dropping the entries
    /// least recently touched. Entries touched this run share the
    /// current (maximal) generation and always survive.
    fn evict(&mut self) {
        fn trim<V>(m: &mut HashMap<String, Memo<V>>, cap: usize) {
            if m.len() <= cap {
                return;
            }
            let mut gens: Vec<u64> = m.values().map(|e| e.gen).collect();
            gens.sort_unstable();
            let cutoff = gens[m.len() - cap];
            m.retain(|_, e| e.gen >= cutoff);
        }
        let cap = self.memo_cap;
        trim(&mut self.parse_memo, cap);
        trim(&mut self.typed_memo, cap);
        trim(&mut self.region_memo, cap);
        trim(&mut self.balance_memo, cap);
        trim(&mut self.machine_memo, cap);
    }

    // ---- parse queries ---------------------------------------------------

    /// Whole-file parse via per-statement queries, falling back to the
    /// canonical whole-program parser on any irregularity (so diagnostics
    /// and limit classification stay byte-identical with the cold path).
    fn parse(
        &mut self,
        src: &str,
        file: &str,
        max_depth: usize,
    ) -> Result<(Program, SourceMap), CompileError> {
        let full = |stats: &mut QueryStats| {
            stats.full_parse_fallbacks += 1;
            parse_program_mapped_limited(src, file, max_depth).map_err(|e| match e.kind {
                ParseErrorKind::DepthLimit => LimitBreach::NestingDepth {
                    limit: max_depth.min(valpipe_val::parser::DEFAULT_MAX_NESTING_DEPTH),
                }
                .into(),
                ParseErrorKind::Syntax => CompileError::Parse(e),
            })
        };

        let Ok(stmts) = split_statements(src) else {
            return full(&mut self.stats);
        };
        let mut prog = Program::default();
        let mut map = SourceMap::new(file, src);
        let gen = self.gen;
        for s in &stmts {
            let text = &src[s.start..s.end];
            let key = format!("parse|{max_depth}|{text}");
            self.stats.parse.0 += 1;
            let (stmt, rel) = match self.parse_memo.get_mut(&key) {
                Some(hit) => {
                    hit.gen = gen;
                    hit.value.clone()
                }
                None => {
                    self.stats.parse.1 += 1;
                    match parse_stmt_mapped(text, max_depth) {
                        Ok(v) => {
                            self.parse_memo.insert(
                                key,
                                Memo {
                                    value: v.clone(),
                                    gen,
                                },
                            );
                            v
                        }
                        // A statement that fails in isolation gets its
                        // authoritative diagnostic from the whole-program
                        // parser (absolute positions, identical wording).
                        Err(_) => return full(&mut self.stats),
                    }
                }
            };
            for (k, sp) in rel {
                map.record(k, rebase(sp, s.start as u32, s.line, s.col));
            }
            match stmt {
                TopStmt::Param(n, v) => prog.params.push((n, v)),
                TopStmt::Input(d) => prog.inputs.push(d),
                TopStmt::Output(ns) => prog.outputs.extend(ns),
                TopStmt::Block(b) => prog.blocks.push(b),
            }
        }
        Ok((prog, map))
    }

    // ---- the staged driver ----------------------------------------------

    /// The pass sequence of [`PassManager::run`], with the per-block
    /// stages answered by queries. Pass names, order, limit checkpoints,
    /// and dump contents replicate the cold pipeline exactly.
    ///
    /// [`PassManager::run`]: crate::pipeline::PassManager::run
    fn drive(
        &mut self,
        opts: &CompileOptions,
        limits: &CompileLimits,
        emit: &[Stage],
        prog0: &Program,
        map: &SourceMap,
    ) -> Result<PipelineOutput, CompileError> {
        let mut stats: Vec<PassStat> = Vec::new();
        let mut dumps: Vec<(Stage, String)> = Vec::new();
        let empty = valpipe_ir::Graph::new();
        let t_compile = Instant::now();
        let limits_v = *limits;

        macro_rules! pass {
            ($name:literal, $g:expr, $body:expr) => {{
                let t0 = Instant::now();
                let (nb, ab) = {
                    let g: &valpipe_ir::Graph = $g;
                    (g.node_count(), g.arcs.len())
                };
                let r = $body;
                let (na, aa) = {
                    let g: &valpipe_ir::Graph = $g;
                    (g.node_count(), g.arcs.len())
                };
                stats.push(PassStat {
                    name: $name,
                    wall_s: t0.elapsed().as_secs_f64(),
                    nodes_before: nb,
                    arcs_before: ab,
                    nodes_after: na,
                    arcs_after: aa,
                });
                if na > limits_v.max_cells {
                    return Err(LimitBreach::Cells {
                        pass: $name,
                        got: na,
                        limit: limits_v.max_cells,
                    }
                    .into());
                }
                if aa > limits_v.max_arcs {
                    return Err(LimitBreach::Arcs {
                        pass: $name,
                        got: aa,
                        limit: limits_v.max_arcs,
                    }
                    .into());
                }
                let elapsed = t_compile.elapsed();
                if elapsed > limits_v.compile_budget() {
                    return Err(LimitBreach::CompileWall {
                        elapsed_ms: elapsed.as_millis() as u64,
                        limit_ms: limits_v.max_compile_millis,
                    }
                    .into());
                }
                r
            }};
        }

        if emit.contains(&Stage::Ast) {
            dumps.push((Stage::Ast, valpipe_val::pretty::program_to_source(prog0)));
        }

        // ---- AST → TypedAst --------------------------------------------
        let (prog, dims) = pass!("flatten", &empty, {
            valpipe_val::dims::flatten_program(prog0).map_err(CompileError::Unsupported)?
        });
        let prog = pass!("typecheck", &empty, self.typecheck(&prog, map)?);
        let flow = pass!("analyze", &empty, analyze(&prog)?);
        let (prov, src_ids) = build_prov(&prog, map);

        if emit.contains(&Stage::Typed) {
            dumps.push((Stage::Typed, valpipe_val::pretty::program_to_source(&prog)));
        }

        // ---- TypedAst → Ir ---------------------------------------------
        let mut params = Bindings::new();
        for (n, v) in &prog.params {
            params.insert(n.clone(), Value::Int(*v));
        }
        let params_fp = fp(&format!("{:?}", prog.params));
        let mut c = Compiler::new(params);
        let mut cstats = CompileStats::default();

        pass!("lower", &c.g, {
            lower_inputs(&mut c, opts, &flow, &src_ids);
            let live = live_blocks(&flow, &prog.outputs);
            for block in &flow.blocks {
                if !opts.keep_dead_blocks && !live.contains(&block.name) {
                    cstats.dead_blocks.push(block.name.clone());
                    continue;
                }
                self.lower_block_query(
                    &mut c,
                    &mut cstats,
                    opts,
                    &prog,
                    block,
                    &src_ids,
                    params_fp,
                )?;
            }
            lower_epilogue(&mut c, opts, &prog, &src_ids)?;
        });

        if opts.fuse_gates {
            pass!("fuse", &c.g, {
                let fused = crate::fuse::fuse_static_gates(&mut c.g);
                cstats.fused_gates = fused.fused;
                if fused.fused > 0 {
                    crate::fuse::sweep_dead(&mut c.g);
                }
            });
        }

        if opts.synthesize_generators {
            pass!("synth", &c.g, {
                let synth = crate::synth::synthesize_generators(&mut c.g);
                cstats.synthesized_generators = synth.ctl_generators + synth.index_generators;
            });
        }

        cstats.cells_before_balance = c.g.node_count();
        if emit.contains(&Stage::Ir) {
            dumps.push((Stage::Ir, dump_graph(&c.g, &prov)));
        }

        // ---- Ir → BalancedIr -------------------------------------------
        pass!("loop-balance", &c.g, {
            cstats.loop_buffers = crate::loops::balance_loop_interiors(&mut c.g);
        });

        pass!("validate", &c.g, {
            let defects = validate(&c.g);
            if !defects.is_empty() {
                let msg = defects
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(CompileError::BadCode(msg));
            }
        });

        if opts.balance != BalanceMode::None {
            pass!("global-balance", &c.g, {
                let p = problem::extract_anchored(&c.g, &c.anchors)?;
                let sol = self.balance_query(&p, opts.balance)?;
                cstats.global_buffers = problem::apply(&mut c.g, &p, &sol);
            });
        }

        let mut expanded_cells = c.g.node_count();
        let mut deepest = 0usize;
        for n in &c.g.nodes {
            if let Opcode::Fifo(d) = n.op {
                deepest = deepest.max(d as usize);
                expanded_cells += (d as usize).saturating_sub(1);
            }
        }
        if deepest > limits_v.max_fifo_depth {
            return Err(LimitBreach::FifoDepth {
                got: deepest,
                limit: limits_v.max_fifo_depth,
            }
            .into());
        }
        if expanded_cells > limits_v.max_cells {
            return Err(LimitBreach::Cells {
                pass: "fifo-expand",
                got: expanded_cells,
                limit: limits_v.max_cells,
            }
            .into());
        }

        if emit.contains(&Stage::Balanced) {
            dumps.push((Stage::Balanced, dump_graph(&c.g, &prov)));
        }

        let compiled = Compiled {
            graph: c.g,
            program: prog,
            flow,
            dims,
            prov,
            stats: cstats,
        };

        // ---- BalancedIr → MachineProgram -------------------------------
        if emit.contains(&Stage::Machine) {
            self.stats.machine.0 += 1;
            let balanced_listing = dump_graph(&compiled.graph, &compiled.prov);
            let key = format!("machine|{balanced_listing}");
            let gen = self.gen;
            let listing = match self.machine_memo.get_mut(&key) {
                Some(hit) => {
                    hit.gen = gen;
                    hit.value.clone()
                }
                None => {
                    self.stats.machine.1 += 1;
                    let g = compiled.executable();
                    let text = dump_graph(&g, &compiled.prov);
                    self.machine_memo.insert(
                        key,
                        Memo {
                            value: text.clone(),
                            gen,
                        },
                    );
                    text
                }
            };
            dumps.push((Stage::Machine, listing));
        }

        dumps.sort_by_key(|(s, _)| emit.iter().position(|e| e == s));

        Ok(PipelineOutput {
            compiled,
            pass_stats: stats,
            dumps,
        })
    }

    // ---- typed queries ---------------------------------------------------

    /// Per-block replication of `check_program`: same environment
    /// evolution, same first-error-wins order, same output check. Cached
    /// type errors are stored location-free and resolved against the
    /// current source map at use time.
    fn typecheck(&mut self, prog: &Program, map: &SourceMap) -> Result<Program, CompileError> {
        let mut env = program_prelude_env(prog).map_err(|e| attach_loc(e, map))?;
        let mut out = prog.clone();
        let gen = self.gen;
        for (bi, block) in prog.blocks.iter().enumerate() {
            let key = format!("typed|{:?}|{}", block, env.canonical());
            self.stats.typed.0 += 1;
            let checked = match self.typed_memo.get_mut(&key) {
                Some(hit) => {
                    hit.gen = gen;
                    hit.value.clone()
                }
                None => {
                    self.stats.typed.1 += 1;
                    let r = check_block(block, &env);
                    self.typed_memo.insert(
                        key,
                        Memo {
                            value: r.clone(),
                            gen,
                        },
                    );
                    r
                }
            };
            out.blocks[bi] = checked.map_err(|e| attach_loc(e, map))?;
            env.bind(&block.name, block.ty.clone());
        }
        for o in &prog.outputs {
            if env.get(o).is_none() {
                return Err(attach_loc(
                    TypeError {
                        message: format!("output '{o}' is not a declared block or input"),
                        block: None,
                        def: None,
                        loc: None,
                    },
                    map,
                )
                .into());
            }
        }
        Ok(out)
    }

    // ---- region queries --------------------------------------------------

    /// Lower one block, answering from the region memo when every input —
    /// the typed block, the classification, the options, the parameters,
    /// the upstream providers, the provenance ids, and the exact
    /// node/arc/label counters — is unchanged. A memo hit splices the
    /// cached region verbatim; a miss lowers cold and captures the delta.
    #[allow(clippy::too_many_arguments)]
    fn lower_block_query(
        &mut self,
        c: &mut Compiler,
        cstats: &mut CompileStats,
        opts: &CompileOptions,
        prog: &Program,
        block: &valpipe_val::deps::BlockNode,
        src_ids: &HashMap<StmtKey, u32>,
        params_fp: u64,
    ) -> Result<(), CompileError> {
        let decl = prog.block(&block.name);
        let bp = block_prov(prog, &block.name, src_ids);
        let node_base = c.g.nodes.len() as u32;
        let arc_base = c.g.arcs.len() as u32;

        let mut key_src = String::new();
        let _ = write!(
            key_src,
            "region|{:?}|decl:{decl:?}|scheme:{:?}|am:{}|params:{params_fp:016x}\
             |nb:{node_base}|ab:{arc_base}|ls:{}|bp:{}:{}:",
            block,
            opts.scheme,
            opts.am_boundary,
            c.label_seq(),
            bp.header,
            bp.body,
        );
        let mut defs: Vec<_> = bp.defs.iter().collect();
        defs.sort();
        for (name, id) in defs {
            let _ = write!(key_src, "{name}={id},");
        }
        let mut provs: Vec<_> = c.providers.iter().collect();
        provs.sort_by(|a, b| a.0.cmp(b.0));
        for (name, p) in provs {
            let _ = write!(key_src, "|{name}:n{}:{}..{}", p.node.0, p.lo, p.hi);
        }
        let key = key_src;
        let gen = self.gen;

        self.stats.region.0 += 1;
        if let Some(hit) = self.region_memo.get_mut(&key) {
            hit.gen = gen;
            let entry = hit.value.clone();
            entry
                .delta
                .splice(&mut c.g)
                .map_err(CompileError::Internal)?;
            for (name, p) in &entry.providers {
                c.providers.insert(name.clone(), *p);
            }
            c.anchors.extend(entry.anchors.iter().copied());
            c.set_label_seq(entry.label_seq);
            if let Some(used) = entry.scheme {
                cstats.schemes.insert(block.name.clone(), used);
            }
            return Ok(());
        }

        self.stats.region.1 += 1;
        let anchors_base = c.anchors.len();
        let providers_before = c.providers.clone();
        let used = lower_block(c, opts, prog, block, src_ids)?;
        if let Some(u) = used {
            cstats.schemes.insert(block.name.clone(), u);
        }
        let mut added: Vec<(String, Provider)> = c
            .providers
            .iter()
            .filter(|(k, v)| providers_before.get(*k) != Some(v))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        added.sort_by(|a, b| a.0.cmp(&b.0));
        self.region_memo.insert(
            key,
            Memo {
                value: RegionEntry {
                    delta: GraphDelta::capture(&c.g, node_base, arc_base),
                    providers: added,
                    anchors: c.anchors[anchors_base..].to_vec(),
                    label_seq: c.label_seq(),
                    scheme: used,
                },
                gen,
            },
        );
        self.dirty = true;
        Ok(())
    }

    // ---- balance queries -------------------------------------------------

    /// Solve (or recall) a balance problem. The solvers are deterministic
    /// functions of the problem structure, so an exact key match is a
    /// proof the cached solution equals a fresh solve.
    fn balance_query(
        &mut self,
        p: &problem::BalanceProblem,
        mode: BalanceMode,
    ) -> Result<BalanceSolution, CompileError> {
        let mut key_src = format!("balance|{mode:?}|n:{}", p.n);
        for a in &p.arcs {
            let _ = write!(
                key_src,
                "|{}>{}w{}c{}a{:?}",
                a.u,
                a.v,
                a.w,
                a.cost,
                a.arc.map(|x| x.0)
            );
        }
        let key = key_src;
        let gen = self.gen;
        self.stats.balance.0 += 1;
        if let Some(hit) = self.balance_memo.get_mut(&key) {
            hit.gen = gen;
            return Ok(hit.value.clone());
        }
        self.stats.balance.1 += 1;
        let sol = match mode {
            BalanceMode::Asap => solve::solve_asap(p),
            BalanceMode::Heuristic => solve::solve_heuristic(p, 64),
            BalanceMode::Optimal => solve::solve_optimal(p),
            BalanceMode::None => {
                return Err(CompileError::Internal(
                    "balance pass entered with BalanceMode::None".into(),
                ))
            }
        };
        self.balance_memo.insert(
            key,
            Memo {
                value: sol.clone(),
                gen,
            },
        );
        self.dirty = true;
        Ok(sol)
    }

    // ---- disk cache ------------------------------------------------------

    /// Load persisted regions and balance solutions for the given cache
    /// key. Returns the number of entries loaded; any anomaly — missing
    /// file, bad magic, version skew, checksum mismatch, malformed JSON,
    /// undecodable entry — loads nothing and reports zero.
    fn load_cache(&mut self, dir: &Path, key: u64) -> usize {
        let path = cache_file(dir, key);
        let Ok(bytes) = std::fs::read(&path) else {
            return 0;
        };
        let Some(payload) = open_envelope(&bytes) else {
            return 0;
        };
        let Ok(text) = std::str::from_utf8(payload) else {
            return 0;
        };
        let Ok(j) = Json::parse(text) else {
            return 0;
        };
        // Decode everything before committing anything: a half-corrupt
        // file must not leave half its entries behind.
        let mut regions = Vec::new();
        let mut solutions = Vec::new();
        let Some(Json::Arr(rs)) = j.get("regions") else {
            return 0;
        };
        for r in rs {
            let Some(entry) = region_entry_from_json(r) else {
                return 0;
            };
            regions.push(entry);
        }
        let Some(Json::Arr(bs)) = j.get("balance") else {
            return 0;
        };
        for b in bs {
            let Some(entry) = balance_entry_from_json(b) else {
                return 0;
            };
            solutions.push(entry);
        }
        let n = regions.len() + solutions.len();
        let gen = self.gen;
        self.region_memo.extend(
            regions
                .into_iter()
                .map(|(k, v)| (k, Memo { value: v, gen })),
        );
        self.balance_memo.extend(
            solutions
                .into_iter()
                .map(|(k, v)| (k, Memo { value: v, gen })),
        );
        n
    }

    /// Persist regions and balance solutions atomically (tmp + rename).
    /// Entries carry their full key string, so a reader verifies by
    /// exact match — a corrupt or colliding entry can only miss, never
    /// masquerade as another compilation's artifact.
    fn save_cache(&self, dir: &Path, key: u64) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut regions: Vec<(&String, &Memo<RegionEntry>)> = self.region_memo.iter().collect();
        regions.sort_by(|a, b| a.0.cmp(b.0));
        let mut balance: Vec<(&String, &Memo<BalanceSolution>)> =
            self.balance_memo.iter().collect();
        balance.sort_by(|a, b| a.0.cmp(b.0));
        let j = Json::obj([
            (
                "regions",
                Json::Arr(
                    regions
                        .into_iter()
                        .map(|(k, e)| region_entry_to_json(k, &e.value))
                        .collect(),
                ),
            ),
            (
                "balance",
                Json::Arr(
                    balance
                        .into_iter()
                        .map(|(k, s)| balance_entry_to_json(k, &s.value))
                        .collect(),
                ),
            ),
        ]);
        let payload = j.to_string().into_bytes();
        let bytes = seal_envelope(&payload);
        let path = cache_file(dir, key);
        let tmp = path.with_extension("vpqc.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)
    }
}

/// Rebase a statement-relative span to its absolute position: bytes
/// shift by the statement's start offset, lines by its start line, and
/// columns only on the statement's first line (later lines already start
/// at column 1 of the file).
fn rebase(sp: Span, base_byte: u32, base_line: u32, base_col: u32) -> Span {
    let col = if sp.line == 1 {
        sp.col + base_col - 1
    } else {
        sp.col
    };
    Span::new(
        sp.start + base_byte,
        sp.end + base_byte,
        sp.line + base_line - 1,
        col,
    )
}

/// One cache file per (source file, compile options) pair.
fn cache_key(file: &str, opts: &CompileOptions) -> u64 {
    fp(&format!("cache|{file}|{opts:?}"))
}

fn cache_file(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.vpqc"))
}

const CACHE_MAGIC: &[u8; 4] = b"VPQC";
/// v2: entries key by full canonical key string (v1 keyed by 64-bit
/// fingerprint, which cannot be verified on hit).
const CACHE_VERSION: u32 = 2;

/// Envelope: magic, version, payload checksum, payload.
fn seal_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(CACHE_MAGIC);
    out.extend_from_slice(&CACHE_VERSION.to_le_bytes());
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Open an envelope; `None` on any structural problem (too short, wrong
/// magic, version skew, checksum mismatch).
fn open_envelope(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < 16 || &bytes[0..4] != CACHE_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if version != CACHE_VERSION {
        return None;
    }
    let sum = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let payload = &bytes[16..];
    if checksum64(payload) != sum {
        return None;
    }
    Some(payload)
}

fn scheme_name(s: UsedScheme) -> &'static str {
    match s {
        UsedScheme::Todd => "todd",
        UsedScheme::Companion => "companion",
        UsedScheme::Straight => "straight",
    }
}

fn scheme_from_name(s: &str) -> Option<UsedScheme> {
    match s {
        "todd" => Some(UsedScheme::Todd),
        "companion" => Some(UsedScheme::Companion),
        "straight" => Some(UsedScheme::Straight),
        _ => None,
    }
}

fn region_entry_to_json(key: &str, e: &RegionEntry) -> Json {
    Json::obj([
        ("key", Json::Str(key.to_string())),
        ("delta", e.delta.to_json()),
        (
            "providers",
            Json::Arr(
                e.providers
                    .iter()
                    .map(|(name, p)| {
                        Json::obj([
                            ("name", Json::Str(name.clone())),
                            ("node", Json::Int(p.node.0 as i64)),
                            ("lo", Json::Int(p.lo)),
                            ("hi", Json::Int(p.hi)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "anchors",
            Json::Arr(
                e.anchors
                    .iter()
                    .flat_map(|&(n, w)| [Json::Int(n.0 as i64), Json::Int(w)])
                    .collect(),
            ),
        ),
        ("label_seq", Json::Int(e.label_seq as i64)),
        (
            "scheme",
            match e.scheme {
                Some(s) => Json::Str(scheme_name(s).to_string()),
                None => Json::Null,
            },
        ),
    ])
}

fn region_entry_from_json(j: &Json) -> Option<(String, RegionEntry)> {
    let key = j.get("key")?.as_str()?.to_string();
    let delta = GraphDelta::from_json(j.get("delta")?).ok()?;
    let Json::Arr(ps) = j.get("providers")? else {
        return None;
    };
    let mut providers = Vec::new();
    for p in ps {
        providers.push((
            p.get("name")?.as_str()?.to_string(),
            Provider {
                node: NodeId(p.get("node")?.as_i64()? as u32),
                lo: p.get("lo")?.as_i64()?,
                hi: p.get("hi")?.as_i64()?,
            },
        ));
    }
    let Json::Arr(ans) = j.get("anchors")? else {
        return None;
    };
    if ans.len() % 2 != 0 {
        return None;
    }
    let anchors = ans
        .chunks(2)
        .map(|c| Some((NodeId(c[0].as_i64()? as u32), c[1].as_i64()?)))
        .collect::<Option<Vec<_>>>()?;
    let scheme = match j.get("scheme")? {
        Json::Null => None,
        Json::Str(s) => Some(scheme_from_name(s)?),
        _ => return None,
    };
    Some((
        key,
        RegionEntry {
            delta,
            providers,
            anchors,
            label_seq: j.get("label_seq")?.as_i64()? as u32,
            scheme,
        },
    ))
}

fn balance_entry_to_json(key: &str, s: &BalanceSolution) -> Json {
    Json::obj([
        ("key", Json::Str(key.to_string())),
        (
            "potential",
            Json::Arr(s.potential.iter().map(|&v| Json::Int(v)).collect()),
        ),
        (
            "depths",
            Json::Arr(s.depths.iter().map(|&d| Json::Int(d as i64)).collect()),
        ),
        ("total_buffers", Json::Int(s.total_buffers as i64)),
    ])
}

fn balance_entry_from_json(j: &Json) -> Option<(String, BalanceSolution)> {
    let key = j.get("key")?.as_str()?.to_string();
    let Json::Arr(pot) = j.get("potential")? else {
        return None;
    };
    let potential = pot.iter().map(|v| v.as_i64()).collect::<Option<Vec<_>>>()?;
    let Json::Arr(ds) = j.get("depths")? else {
        return None;
    };
    let depths = ds
        .iter()
        .map(|v| Some(v.as_i64()? as u32))
        .collect::<Option<Vec<_>>>()?;
    Some((
        key,
        BalanceSolution {
            potential,
            depths,
            total_buffers: j.get("total_buffers")?.as_i64()? as u64,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PassManager;
    use valpipe_val::parser::FIG3_PROGRAM;

    fn all_stages() -> Vec<Stage> {
        Stage::ALL.to_vec()
    }

    fn cold(src: &str) -> PipelineOutput {
        let opts = CompileOptions::paper();
        PassManager::new(&opts)
            .limits(CompileLimits::default())
            .emit_all(&Stage::ALL)
            .run_source(src, "fig3.val")
            .unwrap()
    }

    fn run(engine: &mut QueryEngine, src: &str) -> PipelineOutput {
        engine
            .run_source(
                &CompileOptions::paper(),
                &CompileLimits::default(),
                &all_stages(),
                src,
                "fig3.val",
            )
            .unwrap()
    }

    fn assert_identical(a: &PipelineOutput, b: &PipelineOutput) {
        assert_eq!(
            a.compiled.graph.fingerprint(),
            b.compiled.graph.fingerprint()
        );
        assert_eq!(a.dumps, b.dumps, "stage dumps must be byte-identical");
        let names = |o: &PipelineOutput| o.pass_stats.iter().map(|s| s.name).collect::<Vec<_>>();
        assert_eq!(names(a), names(b));
        for (sa, sb) in a.pass_stats.iter().zip(&b.pass_stats) {
            assert_eq!(
                (
                    sa.nodes_before,
                    sa.arcs_before,
                    sa.nodes_after,
                    sa.arcs_after
                ),
                (
                    sb.nodes_before,
                    sb.arcs_before,
                    sb.nodes_after,
                    sb.arcs_after
                ),
                "pass {} sizes diverge",
                sa.name
            );
        }
        assert_eq!(a.compiled.stats.schemes, b.compiled.stats.schemes);
        assert_eq!(a.compiled.stats.dead_blocks, b.compiled.stats.dead_blocks);
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("valpipe-qtest-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn warm_recompile_is_bit_identical_and_fully_cached() {
        let mut e = QueryEngine::new();
        let a = run(&mut e, FIG3_PROGRAM);
        assert!(e.stats().executed() > 0, "cold run executes queries");
        let b = run(&mut e, FIG3_PROGRAM);
        assert_identical(&a, &b);
        assert_eq!(
            e.stats().executed(),
            0,
            "unchanged source must answer every query from the memo: {}",
            e.stats().render()
        );
        assert!(e.stats().total() > 0);
    }

    #[test]
    fn single_block_edit_recompiles_only_that_block() {
        let edited = FIG3_PROGRAM.replace("0.25", "0.75");
        assert_ne!(edited, FIG3_PROGRAM);

        let mut e = QueryEngine::new();
        run(&mut e, FIG3_PROGRAM);
        let warm = run(&mut e, &edited);
        assert_identical(&cold(&edited), &warm);

        let s = e.stats();
        assert_eq!(s.parse.1, 1, "only the edited statement re-parses");
        assert_eq!(s.typed.1, 1, "only the edited block re-checks");
        assert_eq!(s.region.1, 1, "only the edited block re-lowers");
        assert_eq!(
            s.balance.1, 0,
            "a literal swap leaves the balance problem structurally unchanged"
        );
    }

    #[test]
    fn engine_matches_cold_pipeline_on_examples() {
        let edited = FIG3_PROGRAM.replace("0.25", "0.75");
        for src in [FIG3_PROGRAM, edited.as_str()] {
            let mut e = QueryEngine::new();
            assert_identical(&cold(src), &run(&mut e, src));
        }
    }

    #[test]
    fn cached_type_errors_resolve_locations_each_run() {
        let bad = "\ninput B : array[real] [0, 10];\n\nA : array[real] :=\n  forall i in [0, 10]\n  construct\n    B[i] + Q\n  endall;\n\noutput A;\n";
        let opts = CompileOptions::paper();
        let limits = CompileLimits::default();
        let mut e = QueryEngine::new();
        let e1 = e
            .run_source(&opts, &limits, &[], bad, "bad.val")
            .unwrap_err();
        assert_eq!(e.stats().typed.1, 1, "the failing block executed");
        let e2 = e
            .run_source(&opts, &limits, &[], bad, "bad.val")
            .unwrap_err();
        assert_eq!(e.stats().typed.1, 0, "the cached error was reused");
        assert_eq!(e1.to_string(), e2.to_string());
        assert!(e1.to_string().contains("bad.val:"), "{e1}");
    }

    #[test]
    fn disk_cache_revives_expensive_artifacts() {
        let dir = tmp_dir("revive");
        let a = {
            let mut e = QueryEngine::with_disk_cache(&dir);
            run(&mut e, FIG3_PROGRAM)
        };
        let mut e2 = QueryEngine::with_disk_cache(&dir);
        let b = run(&mut e2, FIG3_PROGRAM);
        assert_identical(&a, &b);
        assert!(
            e2.stats().disk_entries_loaded > 0,
            "{}",
            e2.stats().render()
        );
        assert_eq!(e2.stats().region.1, 0, "regions revived from disk");
        assert_eq!(
            e2.stats().balance.1,
            0,
            "balance solution revived from disk"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_files_fall_back_to_cold_without_panicking() {
        let dir = tmp_dir("corrupt");
        let reference = {
            let mut e = QueryEngine::with_disk_cache(&dir);
            run(&mut e, FIG3_PROGRAM)
        };
        let path = std::fs::read_dir(&dir)
            .unwrap()
            .map(|f| f.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "vpqc"))
            .unwrap();
        let pristine = std::fs::read(&path).unwrap();

        let mut variants: Vec<Vec<u8>> = Vec::new();
        let mut flipped = pristine.clone();
        flipped[pristine.len() / 2] ^= 0x40; // payload bit flip
        variants.push(flipped);
        variants.push(pristine[..10.min(pristine.len())].to_vec()); // truncation
        let mut skewed = pristine.clone();
        skewed[4] = skewed[4].wrapping_add(1); // version skew
        variants.push(skewed);
        variants.push(b"not a cache file at all".to_vec());

        for bytes in variants {
            std::fs::write(&path, &bytes).unwrap();
            let mut e = QueryEngine::with_disk_cache(&dir);
            let out = run(&mut e, FIG3_PROGRAM);
            assert_eq!(e.stats().disk_entries_loaded, 0);
            assert_identical(&reference, &out);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_cap_sweeps_entries_untouched_by_recent_runs() {
        let edited = FIG3_PROGRAM.replace("0.25", "0.75");
        let mut e = QueryEngine::new();
        e.set_memo_cap(1);
        run(&mut e, FIG3_PROGRAM);
        // Compiling a different program bumps shared entries but leaves
        // the first program's unique entries at the old generation; the
        // post-run sweep (cap 1) drops them.
        run(&mut e, &edited);
        run(&mut e, FIG3_PROGRAM);
        assert!(
            e.stats().executed() > 0,
            "swept entries must re-execute, not resurrect: {}",
            e.stats().render()
        );
        // Correctness is unaffected: output still matches a cold compile.
        let mut fresh = QueryEngine::new();
        assert_identical(&cold(FIG3_PROGRAM), &run(&mut fresh, FIG3_PROGRAM));
    }

    #[test]
    fn memo_cap_never_sweeps_the_current_runs_working_set() {
        let mut e = QueryEngine::new();
        e.set_memo_cap(1);
        run(&mut e, FIG3_PROGRAM);
        let b = run(&mut e, FIG3_PROGRAM);
        assert_eq!(
            e.stats().executed(),
            0,
            "entries touched by the previous run survive a cap of 1: {}",
            e.stats().render()
        );
        assert_identical(&cold(FIG3_PROGRAM), &b);
    }

    #[test]
    fn all_green_warm_run_skips_the_cache_rewrite() {
        let dir = tmp_dir("noop-save");
        let mut e = QueryEngine::with_disk_cache(&dir);
        run(&mut e, FIG3_PROGRAM);
        let path = std::fs::read_dir(&dir)
            .unwrap()
            .map(|f| f.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "vpqc"))
            .unwrap();
        std::fs::remove_file(&path).unwrap();
        // Nothing new to persist: every region/balance query hits the
        // memo, so the engine must not rewrite the file.
        run(&mut e, FIG3_PROGRAM);
        assert!(
            !path.exists(),
            "a fully-memoized run must not rewrite the disk cache"
        );
        // An edit computes a new region and re-persists.
        let edited = FIG3_PROGRAM.replace("0.25", "0.75");
        run(&mut e, &edited);
        assert!(path.exists(), "new artifacts must be persisted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_source_falls_back_to_the_whole_program_parser() {
        let mut e = QueryEngine::new();
        let err = e
            .run_source(
                &CompileOptions::paper(),
                &CompileLimits::default(),
                &[],
                "this is ( not val",
                "x.val",
            )
            .unwrap_err();
        assert!(matches!(err, CompileError::Parse(_)), "{err}");
        assert_eq!(e.stats().full_parse_fallbacks, 1);
    }
}
