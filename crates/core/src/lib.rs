//! # valpipe-core — the maximum-pipelining compiler
//!
//! Implementation of the central result of Dennis & Gao, *Maximum
//! Pipelining of Array Operations on Static Data Flow Machine* (ICPP
//! 1983): a compiler from pipe-structured Val programs to machine-level
//! data flow code that operates **fully pipelined** — every instruction
//! cell firing once per two instruction times.
//!
//! * [`builder`] — primitive expressions → balanced-ready instruction
//!   graphs (Theorem 1), including the array-window gating of Fig. 4 and
//!   the conditional gating/merging of Fig. 5;
//! * [`forall`] — primitive `forall` blocks (Theorem 2, Fig. 6);
//! * [`foriter`] — `for-iter` recurrences, via Todd's scheme (Fig. 7) or
//!   the companion-pipeline scheme (Theorem 3, Fig. 8);
//! * [`loops`] — local balancing of feedback-loop interiors;
//! * [`pipeline`] — the staged pass pipeline driving every compile
//!   (typed artifacts, per-pass stats, stage dumps);
//! * [`program`] — whole-program composition + global balancing
//!   (Theorem 4);
//! * [`verify`] — compile → simulate → compare against the reference
//!   interpreter.
//!
//! ## Quick example
//!
//! ```
//! use valpipe_core::{compile_source, CompileOptions};
//! use valpipe_core::verify::check_against_oracle;
//! use valpipe_val::interp::ArrayVal;
//! use std::collections::HashMap;
//!
//! let src = "
//! param m = 8;
//! input C : array[real] [0, m];
//! A : array[real] := forall i in [0, m] construct 2. * C[i] endall;
//! output A;
//! ";
//! let compiled = compile_source(src, &CompileOptions::default()).unwrap();
//! let mut inputs = HashMap::new();
//! inputs.insert("C".to_string(), ArrayVal::from_reals(0, &[0., 1., 2., 3., 4., 5., 6., 7., 8.]));
//! let report = check_against_oracle(&compiled, &inputs, 4, 1e-12).unwrap();
//! assert_eq!(report.packets_checked, 9 * 4);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod error;
pub mod forall;
pub mod foriter;
pub mod fuse;
pub mod limits;
pub mod loops;
pub mod options;
pub mod pipeline;
pub mod predict;
pub mod program;
pub mod query;
pub mod synth;
#[cfg(test)]
mod tests;
pub mod timestep;
pub mod verify;

pub use builder::{BlockBuilder, Compiler, Provider};
pub use error::CompileError;
pub use foriter::UsedScheme;
pub use limits::{CompileLimits, LimitBreach};
pub use options::{CompileOptions, ForIterScheme};
pub use pipeline::{dump_graph, render_pass_stats, PassManager, PassStat, PipelineOutput, Stage};
pub use program::{
    compile_program, compile_program_mapped, compile_source, compile_source_limited,
    compile_source_named, CompileStats, Compiled,
};
pub use query::{QueryEngine, QueryStats};
