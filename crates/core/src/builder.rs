//! Expression-to-instruction-graph compilation (Theorem 1).
//!
//! A block's body is compiled against a *stream scope*: every value is a
//! stream carrying one packet per element of the current **domain** (the
//! set of indices flowing through this point of the program). The root
//! domain is the block's manifest index range; each conditional arm
//! narrows the domain — statically (precomputed boolean control streams,
//! as in the paper's Figs. 4–6) when the condition depends only on the
//! index variable and parameters, or dynamically (gates driven by the
//! computed condition stream, Fig. 5) otherwise.
//!
//! Array accesses `A[i+c]` become gated taps off the producer's stream:
//! a `TGate` driven by a window-selection control stream discards the
//! unused elements (so they cannot jam the pipe), and the tap arc carries
//! a stream-phase weight of `2·c` instruction times that the balancer
//! turns into the skew FIFOs of Fig. 4.

use crate::error::CompileError;
use std::collections::HashMap;
use std::rc::Rc;
use valpipe_ir::opcode::{Opcode, GATE_DATA, MERGE_CTL, MERGE_FALSE, MERGE_TRUE};
use valpipe_ir::value::Value;
use valpipe_ir::{CtlStream, Graph, In, NodeId};
use valpipe_val::ast::{BinOp, Expr, UnOp};
use valpipe_val::classify::index_offset;
use valpipe_val::fold::{eval_static, is_static_in, Bindings};

/// A named array stream available to consumers: the producing cell plus
/// its manifest index range (streams are always contiguous in `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provider {
    /// The cell whose output carries the array's elements in index order.
    pub node: NodeId,
    /// Least index.
    pub lo: i64,
    /// Greatest index.
    pub hi: i64,
}

impl Provider {
    /// Number of elements per wave.
    pub fn len(&self) -> u32 {
        (self.hi - self.lo + 1) as u32
    }

    /// Streams are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Provenance-table ids (`valpipe_ir::prov`) for one block's statements,
/// used to stamp every cell the block compiles to with the statement it
/// came from. Id 0 is the whole-program fallback.
#[derive(Debug, Clone, Default)]
pub struct BlockProv {
    /// The block header (name, type, range specification).
    pub header: u32,
    /// Definition-part statements (or loop inits), keyed by name.
    pub defs: HashMap<String, u32>,
    /// The accumulation expression or loop body.
    pub body: u32,
}

/// Program-wide compilation state.
pub struct Compiler {
    /// The machine program under construction.
    pub g: Graph,
    /// Compile-time parameter values.
    pub params: Bindings,
    /// Array streams by name (inputs and already-compiled blocks).
    pub providers: HashMap<String, Provider>,
    /// Anchor weights for the balancer: each input source of an array over
    /// `[lo, hi]` is pinned at `−2·lo` relative to the machine start.
    pub anchors: Vec<(NodeId, i64)>,
    label_seq: u32,
}

impl Compiler {
    /// Fresh compiler with the given parameters.
    pub fn new(params: Bindings) -> Self {
        Compiler {
            g: Graph::new(),
            params,
            providers: HashMap::new(),
            anchors: Vec::new(),
            label_seq: 0,
        }
    }

    /// Unique label with a readable prefix.
    pub fn label(&mut self, prefix: &str) -> String {
        self.label_seq += 1;
        format!("{prefix}.{}", self.label_seq)
    }

    /// Current value of the unique-label counter. Part of the lowering
    /// state an incremental compiler must key and restore: labels embed
    /// the counter, so replaying a cached block region only reproduces
    /// the cold compile bit-for-bit if the counter advances identically.
    pub fn label_seq(&self) -> u32 {
        self.label_seq
    }

    /// Restore the unique-label counter (incremental replay only).
    pub(crate) fn set_label_seq(&mut self, v: u32) {
        self.label_seq = v;
    }

    /// A fresh control-stream generator cell.
    pub fn ctlgen(&mut self, stream: CtlStream, label_prefix: &str) -> NodeId {
        let l = self.label(label_prefix);
        self.g.add_node(Opcode::CtlGen(stream), l)
    }

    /// Turn a literal into a paced stream of `wave_len` copies per wave
    /// (a gate whose data operand is the literal, clocked by an all-true
    /// control stream).
    pub fn materialize_lit(&mut self, v: Value, wave_len: u32, label_prefix: &str) -> NodeId {
        let ctl = self.ctlgen(CtlStream::constant(true, wave_len), label_prefix);
        let l = self.label(label_prefix);
        self.g.cell(Opcode::TGate, l, &[ctl.into(), In::Lit(v)])
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PullKey {
    /// A let-bound or definition-part name.
    Local(String),
    /// An array tap `A[i + offset]`.
    Tap(String, i64),
    /// The index variable itself as a value stream.
    Index,
}

enum GateCtl {
    /// Precomputed boolean pattern over the parent domain.
    Static(CtlStream),
    /// Runtime condition stream; `true` keeps the then-polarity elements.
    Dynamic { ctl: NodeId, keep_true: bool },
}

struct Frame {
    locals: HashMap<String, In>,
    /// `None` for the root frame and pure `let` scoping frames.
    gate: Option<GateCtl>,
    /// The static index list at this level, if every enclosing gate is
    /// static. `None` once any dynamic gate encloses this frame.
    sel: Option<Rc<Vec<i64>>>,
    cache: HashMap<PullKey, In>,
}

/// Per-block compilation: owns the scope stack and the index variable.
pub struct BlockBuilder<'c> {
    /// Shared program-wide state.
    pub c: &'c mut Compiler,
    block: String,
    index_var: String,
    root_lo: i64,
    root_hi: i64,
    frames: Vec<Frame>,
    /// Taps resolved specially (the for-iter accumulator feedback): the
    /// stream already carries one packet per root-domain element.
    special_taps: HashMap<(String, i64), NodeId>,
}

impl<'c> BlockBuilder<'c> {
    /// Builder for a block over the contiguous index range `[lo, hi]`.
    pub fn new(
        c: &'c mut Compiler,
        block: impl Into<String>,
        index_var: impl Into<String>,
        lo: i64,
        hi: i64,
    ) -> Self {
        assert!(hi >= lo, "empty block range");
        let sel: Rc<Vec<i64>> = Rc::new((lo..=hi).collect());
        BlockBuilder {
            c,
            block: block.into(),
            index_var: index_var.into(),
            root_lo: lo,
            root_hi: hi,
            frames: vec![Frame {
                locals: HashMap::new(),
                gate: None,
                sel: Some(sel),
                cache: HashMap::new(),
            }],
            special_taps: HashMap::new(),
        }
    }

    /// Number of elements in the root domain.
    pub fn root_len(&self) -> u32 {
        (self.root_hi - self.root_lo + 1) as u32
    }

    /// Register a special feedback tap (for-iter accumulator): pulls of
    /// `name[i + offset]` resolve to `node`, which must carry one packet
    /// per root-domain element.
    pub fn set_special_tap(&mut self, name: impl Into<String>, offset: i64, node: NodeId) {
        self.special_taps.insert((name.into(), offset), node);
    }

    /// Bind a definition-part name in the current scope.
    pub fn define_local(&mut self, name: impl Into<String>, value: In) {
        self.frames
            .last_mut()
            .expect("scope stack never empty")
            .locals
            .insert(name.into(), value);
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError::Internal(format!(
            "block '{}': {}",
            self.block,
            msg.into()
        )))
    }

    fn top_sel(&self) -> Option<Rc<Vec<i64>>> {
        self.frames.last().and_then(|f| f.sel.clone())
    }

    fn label(&mut self, p: &str) -> String {
        let prefix = format!("{}.{p}", self.block);
        self.c.label(&prefix)
    }

    // ---- scope pulls ------------------------------------------------------

    fn pull(&mut self, key: PullKey) -> Result<In, CompileError> {
        self.pull_at(self.frames.len() - 1, key)
    }

    fn pull_at(&mut self, level: usize, key: PullKey) -> Result<In, CompileError> {
        if let Some(v) = self.frames[level].cache.get(&key) {
            return Ok(*v);
        }
        if let PullKey::Local(name) = &key {
            if let Some(v) = self.frames[level].locals.get(name) {
                return Ok(*v);
            }
        }
        // Ordinary array taps short-circuit to the deepest fully static
        // level: one gate selects exactly the elements this scope needs,
        // instead of cascading a gate per conditional.
        let shortcut_tap = matches!(&key, PullKey::Tap(name, off)
            if !self.special_taps.contains_key(&(name.clone(), *off)))
            && self.frames[level].sel.is_some();
        let value = if shortcut_tap {
            let PullKey::Tap(name, off) = &key else {
                unreachable!()
            };
            let sel = self.frames[level].sel.clone().expect("static level");
            self.resolve_tap(&name.clone(), *off, &sel)?
        } else if level == 0 {
            self.resolve_root(&key)?
        } else {
            let below = self.pull_at(level - 1, key.clone())?;
            self.apply_gate(level, below)?
        };
        self.frames[level].cache.insert(key, value);
        Ok(value)
    }

    fn resolve_root(&mut self, key: &PullKey) -> Result<In, CompileError> {
        match key {
            PullKey::Index => {
                let l = self.label("idx");
                Ok(In::Node(self.c.g.add_node(
                    Opcode::IdxGen {
                        lo: self.root_lo,
                        hi: self.root_hi,
                    },
                    l,
                )))
            }
            PullKey::Tap(name, off) => {
                if let Some(&n) = self.special_taps.get(&(name.clone(), *off)) {
                    return Ok(In::Node(n));
                }
                let sel = self.frames[0].sel.clone().expect("root is static");
                self.resolve_tap(&name.clone(), *off, &sel)
            }
            PullKey::Local(name) => self.err(format!("unbound local '{name}'")),
        }
    }

    /// Build (or reuse) a window-gated tap off a provider stream for
    /// `name[i + off]`, selecting exactly the indices in `sel`.
    fn resolve_tap(&mut self, name: &str, off: i64, sel: &[i64]) -> Result<In, CompileError> {
        let Some(p) = self.c.providers.get(name).copied() else {
            return self.err(format!("no provider for array '{name}'"));
        };
        // Which provider positions are consumed.
        let mut bits = vec![false; p.len() as usize];
        for &i in sel {
            let pos = i + off - p.lo;
            if pos < 0 || pos >= p.len() as i64 {
                return self.err(format!(
                    "tap {name}[i{off:+}] out of range at i={i} (analysis should have caught this)"
                ));
            }
            bits[pos as usize] = true;
        }
        let phase = i32::try_from(2 * off).expect("offset fits i32");
        if bits.iter().all(|&b| b) && off == 0 {
            // Full selection at zero offset: the provider stream itself.
            return Ok(In::Node(p.node));
        }
        let node = if bits.iter().all(|&b| b) {
            // Full selection at non-zero offset: an identity cell whose
            // input arc carries the phase lead.
            let l = self.label(&format!("tap_{name}{off:+}"));
            let id = self.c.g.add_node(Opcode::Id, l);
            self.c.g.connect_phase(p.node, id, 0, phase);
            id
        } else {
            let stream = CtlStream::from_runs(bits.iter().map(|&b| (b, 1)));
            let ctl = self.c.ctlgen(stream, &format!("{}.w_{name}", self.block));
            let l = self.label(&format!("tap_{name}{off:+}"));
            let gate = self.c.g.add_node(Opcode::TGate, l);
            self.c.g.connect(ctl, gate, 0);
            self.c.g.connect_phase(p.node, gate, GATE_DATA, phase);
            gate
        };
        Ok(In::Node(node))
    }

    fn apply_gate(&mut self, level: usize, below: In) -> Result<In, CompileError> {
        let node = match below {
            // Literals are operand fields — always available, never gated.
            In::Lit(_) => return Ok(below),
            In::Node(n) => n,
        };
        match &self.frames[level].gate {
            None => Ok(In::Node(node)),
            Some(GateCtl::Static(stream)) => {
                let stream = stream.clone();
                let ctl = self.c.ctlgen(stream, &format!("{}.sel", self.block));
                let l = self.label("gate");
                Ok(In::Node(self.c.g.cell(
                    Opcode::TGate,
                    l,
                    &[ctl.into(), node.into()],
                )))
            }
            Some(GateCtl::Dynamic { ctl, keep_true }) => {
                let (ctl, keep) = (*ctl, *keep_true);
                let op = if keep { Opcode::TGate } else { Opcode::FGate };
                let l = self.label("dgate");
                Ok(In::Node(self.c.g.cell(op, l, &[ctl.into(), node.into()])))
            }
        }
    }

    fn push_let_frame(&mut self) {
        let sel = self.top_sel();
        self.frames.push(Frame {
            locals: HashMap::new(),
            gate: None,
            sel,
            cache: HashMap::new(),
        });
    }

    fn push_static_frame(&mut self, bits: &[bool], keep_true: bool) {
        let parent = self.top_sel().expect("static frame requires static parent");
        let selected: Vec<i64> = parent
            .iter()
            .zip(bits)
            .filter(|&(_, &b)| b == keep_true)
            .map(|(&i, _)| i)
            .collect();
        let stream = CtlStream::from_runs(bits.iter().map(|&b| (b == keep_true, 1)));
        self.frames.push(Frame {
            locals: HashMap::new(),
            gate: Some(GateCtl::Static(stream)),
            sel: Some(Rc::new(selected)),
            cache: HashMap::new(),
        });
    }

    fn push_dynamic_frame(&mut self, ctl: NodeId, keep_true: bool) {
        self.frames.push(Frame {
            locals: HashMap::new(),
            gate: Some(GateCtl::Dynamic { ctl, keep_true }),
            sel: None,
            cache: HashMap::new(),
        });
    }

    fn pop_frame(&mut self) {
        self.frames.pop();
        assert!(!self.frames.is_empty(), "popped the root frame");
    }

    // ---- expression compilation (Theorem 1) -------------------------------

    /// Compile a primitive expression into a stream over the current
    /// domain. Returns a literal when the expression is constant.
    pub fn compile(&mut self, e: &Expr) -> Result<In, CompileError> {
        match e {
            Expr::IntLit(v) => Ok(In::Lit(Value::Int(*v))),
            Expr::RealLit(v) => Ok(In::Lit(Value::Real(*v))),
            Expr::BoolLit(v) => Ok(In::Lit(Value::Bool(*v))),
            Expr::Var(name) => {
                if name == &self.index_var {
                    return self.pull(PullKey::Index);
                }
                if let Some(v) = self.c.params.get(name) {
                    return Ok(In::Lit(*v));
                }
                self.pull(PullKey::Local(name.clone()))
            }
            Expr::Index(name, idx) => {
                let Some(off) = index_offset(idx, &self.index_var, &self.c.params) else {
                    return self.err(format!("non-canonical subscript of '{name}'"));
                };
                self.pull(PullKey::Tap(name.clone(), off))
            }
            Expr::Bin(op, a, b) => {
                let a = self.compile(a)?;
                let b = self.compile(b)?;
                self.emit_bin(*op, a, b)
            }
            Expr::Un(op, a) => {
                let a = self.compile(a)?;
                self.emit_un(*op, a)
            }
            Expr::Let(defs, body) => {
                self.push_let_frame();
                for d in defs {
                    let v = self.compile(&d.value)?;
                    self.define_local(&d.name, v);
                }
                let r = self.compile(body);
                self.pop_frame();
                r
            }
            Expr::If(c, t, f) => self.compile_if(c, t, f),
            Expr::Index2(name, ..) => self.err(format!(
                "unflattened two-dimensional access to '{name}' reached the compiler"
            )),
            Expr::Iter(_) | Expr::Append(..) | Expr::ArrayInit(..) => {
                self.err("array constructor inside a primitive expression")
            }
        }
    }

    fn emit_bin(&mut self, op: BinOp, a: In, b: In) -> Result<In, CompileError> {
        if let (In::Lit(x), In::Lit(y)) = (a, b) {
            return valpipe_ir::apply_bin(op, x, y)
                .map(In::Lit)
                .map_err(|e| CompileError::Internal(format!("constant fold: {e}")));
        }
        let l = self.label(&op.mnemonic().to_lowercase());
        Ok(In::Node(self.c.g.cell(Opcode::Bin(op), l, &[a, b])))
    }

    fn emit_un(&mut self, op: UnOp, a: In) -> Result<In, CompileError> {
        if let In::Lit(x) = a {
            return valpipe_ir::apply_un(op, x)
                .map(In::Lit)
                .map_err(|e| CompileError::Internal(format!("constant fold: {e}")));
        }
        let l = self.label(&op.mnemonic().to_lowercase());
        Ok(In::Node(self.c.g.cell(Opcode::Un(op), l, &[a])))
    }

    /// Conditional mapping (paper Fig. 5 / Fig. 6): static conditions gate
    /// by precomputed control streams, dynamic conditions by the computed
    /// condition stream; a MERGE cell reassembles the index order.
    fn compile_if(&mut self, cond: &Expr, t: &Expr, f: &Expr) -> Result<In, CompileError> {
        let params = self.c.params.clone();
        let iv = self.index_var.clone();
        let allowed = |n: &str| n == iv || params.contains_key(n);
        if let Some(parent_sel) = self.top_sel() {
            if is_static_in(cond, &allowed) {
                // Evaluate the condition for every index in the domain.
                let mut env = params.clone();
                let bits: Option<Vec<bool>> = parent_sel
                    .iter()
                    .map(|&i| {
                        env.insert(iv.clone(), Value::Int(i));
                        eval_static(cond, &env).and_then(Value::as_bool)
                    })
                    .collect();
                if let Some(bits) = bits {
                    return self.compile_static_if(&bits, t, f);
                }
                // Static-looking condition failed to evaluate (e.g. a
                // division fault at some index): fall through to the
                // dynamic mapping, which only evaluates where selected.
            }
        }
        // Dynamic mapping (Fig. 5).
        let c = self.compile(cond)?;
        let ctl = match c {
            In::Lit(Value::Bool(true)) => return self.compile(t),
            In::Lit(Value::Bool(false)) => return self.compile(f),
            In::Lit(v) => return self.err(format!("condition is a non-boolean literal {v}")),
            In::Node(n) => n,
        };
        self.push_dynamic_frame(ctl, true);
        let rt = self.compile(t);
        self.pop_frame();
        let rt = rt?;
        self.push_dynamic_frame(ctl, false);
        let rf = self.compile(f);
        self.pop_frame();
        let rf = rf?;
        let l = self.label("merge");
        let m = self.c.g.add_node(Opcode::Merge, l);
        self.c.g.connect(ctl, m, MERGE_CTL);
        self.c.g.bind(rt, m, MERGE_TRUE);
        self.c.g.bind(rf, m, MERGE_FALSE);
        Ok(In::Node(m))
    }

    fn compile_static_if(&mut self, bits: &[bool], t: &Expr, f: &Expr) -> Result<In, CompileError> {
        if bits.iter().all(|&b| b) {
            return self.compile(t);
        }
        if bits.iter().all(|&b| !b) {
            return self.compile(f);
        }
        self.push_static_frame(bits, true);
        let rt = self.compile(t);
        self.pop_frame();
        let rt = rt?;
        self.push_static_frame(bits, false);
        let rf = self.compile(f);
        self.pop_frame();
        let rf = rf?;
        let stream = CtlStream::from_runs(bits.iter().map(|&b| (b, 1)));
        let ctl = self.c.ctlgen(stream, &format!("{}.mctl", self.block));
        let l = self.label("merge");
        let m = self.c.g.add_node(Opcode::Merge, l);
        self.c.g.connect(ctl, m, MERGE_CTL);
        self.c.g.bind(rt, m, MERGE_TRUE);
        self.c.g.bind(rf, m, MERGE_FALSE);
        Ok(In::Node(m))
    }

    /// Ensure the result is a real stream cell (materializing constant
    /// results as paced literal streams).
    pub fn materialize(&mut self, v: In) -> NodeId {
        match v {
            In::Node(n) => n,
            In::Lit(lit) => {
                let len = self.root_len();
                let prefix = format!("{}.const", self.block);
                self.c.materialize_lit(lit, len, &prefix)
            }
        }
    }
}
