//! End-to-end compiler tests: the paper's examples, compiled, simulated,
//! checked against the interpreter, and measured at the predicted rates.

use crate::options::{CompileOptions, ForIterScheme};
use crate::program::compile_source;
use crate::verify::check_against_oracle;
use std::collections::HashMap;
use valpipe_balance::BalanceMode;
use valpipe_val::interp::ArrayVal;
use valpipe_val::parser::FIG3_PROGRAM;

fn arrays(m: usize) -> HashMap<String, ArrayVal> {
    let b: Vec<f64> = (0..m + 2).map(|i| 0.5 + (i as f64 * 0.37).sin()).collect();
    let c: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.21).cos()).collect();
    let mut h = HashMap::new();
    h.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    h.insert("C".to_string(), ArrayVal::from_reals(0, &c));
    h
}

/// Example 1 wrapped as a standalone program.
fn example1_src(m: usize) -> String {
    format!(
        "
param m = {m};
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real :=
      if (i = 0)|(i = m+1) then C[i]
      else
        0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct
    B[i]*(P*P)
  endall;
output A;
"
    )
}

/// Example 2 wrapped as a standalone program (A, B as inputs).
fn example2_src(m: usize) -> String {
    format!(
        "
param m = {m};
input A : array[real] [0, m+1];
input B : array[real] [0, m+1];
X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0.]
  do
    let P : real := A[i]*T[i-1] + B[i]
    in
      if i < m then
        iter T := T[i: P]; i := i + 1 enditer
      else T
      endif
    endlet
  endfor;
output X;
"
    )
}

fn ex2_arrays(m: usize) -> HashMap<String, ArrayVal> {
    let a: Vec<f64> = (0..m + 2)
        .map(|i| 0.9 + 0.01 * (i as f64 * 0.7).sin())
        .collect();
    let b: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.13).cos()).collect();
    let mut h = HashMap::new();
    h.insert("A".to_string(), ArrayVal::from_reals(0, &a));
    h.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    h
}

#[test]
fn fig4_stencil_correct_and_fully_pipelined() {
    let src = "
param m = 16;
input C : array[real] [0, m+1];
S : array[real] := forall i in [1, m] construct 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endall;
output S;
";
    let compiled = compile_source(src, &CompileOptions::paper()).unwrap();
    let c: Vec<f64> = (0..18).map(|i| (i as f64 * 0.4).sin()).collect();
    let mut inputs = HashMap::new();
    inputs.insert("C".to_string(), ArrayVal::from_reals(0, &c));
    let report = check_against_oracle(&compiled, &inputs, 30, 1e-12).unwrap();
    let iv = report.run.timing("S").interval().expect("enough packets");
    // 16 useful elements per 18-element input wave → interval 18/16 · 2.
    let expected = 2.0 * 18.0 / 16.0;
    assert!(
        (iv - expected).abs() < 0.15,
        "stencil interval {iv}, expected ≈ {expected}"
    );
}

#[test]
fn fig6_example1_forall_correct_and_pipelined() {
    let m = 16;
    let compiled = compile_source(&example1_src(m), &CompileOptions::paper()).unwrap();
    let report = check_against_oracle(&compiled, &arrays(m), 30, 1e-12).unwrap();
    // Output has m+2 elements per wave of m+2 inputs → full rate 1/2.
    let iv = report.run.timing("A").interval().unwrap();
    assert!((iv - 2.0).abs() < 0.1, "Example 1 interval {iv} ≉ 2");
}

#[test]
fn fig6_example1_unbalanced_ablation_is_slower() {
    let m = 16;
    let mut opts = CompileOptions::paper();
    opts.balance = BalanceMode::None;
    let compiled = compile_source(&example1_src(m), &opts).unwrap();
    // Still correct…
    let report = check_against_oracle(&compiled, &arrays(m), 30, 1e-12).unwrap();
    // …but no longer at the maximum rate.
    let iv = report.run.timing("A").interval().unwrap();
    assert!(
        iv > 2.2,
        "unbalanced Example 1 interval {iv} should exceed 2"
    );
}

#[test]
fn fig7_example2_todd_rate_one_quarter() {
    let m = 16;
    let mut opts = CompileOptions::paper();
    opts.scheme = ForIterScheme::Todd;
    let compiled = compile_source(&example2_src(m), &opts).unwrap();
    let report = check_against_oracle(&compiled, &ex2_arrays(m), 30, 1e-9).unwrap();
    // Cycle of 4 cells (MULT, ADD, MERGE, feedback gate), one circulating
    // value → one element per 4 instruction times. (The paper's Fig. 7
    // counts 3 because its output switch is a destination condition, not
    // a separate cell.)
    let iv = report.run.timing("X").interval().unwrap();
    assert!(
        (iv - 4.0).abs() < 0.2,
        "Todd scheme interval {iv}, expected ≈ 4"
    );
}

#[test]
fn fig8_example2_companion_rate_one_half() {
    let m = 16;
    let mut opts = CompileOptions::paper();
    opts.scheme = ForIterScheme::Companion;
    let compiled = compile_source(&example2_src(m), &opts).unwrap();
    // Companion reassociates float products: tolerance, not equality.
    let report = check_against_oracle(&compiled, &ex2_arrays(m), 30, 1e-9).unwrap();
    // Output wave has m elements per m+2 input wave: interval (m+2)/m · 2.
    let iv = report.run.timing("X").interval().unwrap();
    let expected = 2.0 * (m as f64 + 2.0) / m as f64;
    assert!(
        (iv - expected).abs() < 0.2,
        "companion interval {iv}, expected ≈ {expected}"
    );
}

#[test]
fn auto_scheme_picks_companion_for_linear() {
    let m = 12;
    let compiled = compile_source(&example2_src(m), &CompileOptions::paper()).unwrap();
    assert_eq!(
        compiled.stats.schemes["X"],
        crate::foriter::UsedScheme::Companion
    );
}

#[test]
fn nonlinear_recurrence_falls_back_to_todd_and_is_correct() {
    let m = 10;
    let src = format!(
        "
param m = {m};
input B : array[real] [0, m+1];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.5]
  do
    if i < m then
      iter T := T[i: T[i-1]*T[i-1] + B[i]*0.1]; i := i + 1 enditer
    else T
    endif
  endfor;
output X;
"
    );
    let compiled = compile_source(&src, &CompileOptions::paper()).unwrap();
    assert_eq!(
        compiled.stats.schemes["X"],
        crate::foriter::UsedScheme::Todd
    );
    let b: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.3).sin()).collect();
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    check_against_oracle(&compiled, &inputs, 10, 1e-9).unwrap();
}

#[test]
fn companion_requested_on_nonlinear_fails_cleanly() {
    let src = "
param m = 6;
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 1.]
  do
    if i < m then iter T := T[i: T[i-1]*T[i-1]]; i := i + 1 enditer else T endif
  endfor;
output X;
";
    let mut opts = CompileOptions::paper();
    opts.scheme = ForIterScheme::Companion;
    let err = compile_source(src, &opts).unwrap_err();
    assert!(matches!(err, crate::error::CompileError::Unsupported(_)));
}

#[test]
fn fig3_whole_program_correct_and_pipelined() {
    let compiled = compile_source(FIG3_PROGRAM, &CompileOptions::paper()).unwrap();
    let report = check_against_oracle(&compiled, &arrays(32), 20, 1e-9).unwrap();
    assert!(report.packets_checked > 0);
    // Both outputs flow at full rate (per their wave lengths): A has m+2
    // elements per wave, X has m.
    let iv_a = report.run.timing("A").interval().unwrap();
    assert!((iv_a - 2.0).abs() < 0.1, "A interval {iv_a}");
    let iv_x = report.run.timing("X").interval().unwrap();
    let expected_x = 2.0 * 34.0 / 32.0;
    assert!(
        (iv_x - expected_x).abs() < 0.2,
        "X interval {iv_x}, expected ≈ {expected_x}"
    );
}

#[test]
fn dynamic_conditional_correct_and_pipelined() {
    // Fig. 5's shape: the condition depends on data, not on the index.
    let src = "
param m = 15;
input A : array[real] [0, m];
input B : array[real] [0, m];
input C : array[real] [0, m];
Y : array[real] :=
  forall i in [0, m]
  construct
    if C[i] > 0. then -(A[i] + B[i]) else 5.*(A[i]*B[i] + 2.) endif
  endall;
output Y;
";
    let compiled = compile_source(src, &CompileOptions::paper()).unwrap();
    let n = 16;
    let mut inputs = HashMap::new();
    inputs.insert(
        "A".to_string(),
        ArrayVal::from_reals(0, &(0..n).map(|i| i as f64 * 0.5).collect::<Vec<_>>()),
    );
    inputs.insert(
        "B".to_string(),
        ArrayVal::from_reals(0, &(0..n).map(|i| 3.0 - i as f64 * 0.2).collect::<Vec<_>>()),
    );
    inputs.insert(
        "C".to_string(),
        ArrayVal::from_reals(
            0,
            &(0..n).map(|i| (i as f64 * 1.7).sin()).collect::<Vec<_>>(),
        ),
    );
    let report = check_against_oracle(&compiled, &inputs, 30, 1e-12).unwrap();
    let iv = report.run.timing("Y").interval().unwrap();
    assert!(
        (iv - 2.0).abs() < 0.1,
        "dynamic conditional interval {iv} ≉ 2"
    );
}

#[test]
fn pure_sum_recurrence_prefix_sums() {
    // x_i = x_{i-1} + B[i]: prefix sums via the companion scheme.
    let m = 20;
    let src = format!(
        "
param m = {m};
input B : array[real] [0, m];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    if i < m then iter T := T[i: T[i-1] + B[i]]; i := i + 1 enditer else T endif
  endfor;
output X;
"
    );
    let compiled = compile_source(&src, &CompileOptions::paper()).unwrap();
    assert_eq!(
        compiled.stats.schemes["X"],
        crate::foriter::UsedScheme::Companion
    );
    let b: Vec<f64> = (0..m + 1).map(|i| i as f64).collect();
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    let report = check_against_oracle(&compiled, &inputs, 20, 1e-9).unwrap();
    let iv = report.run.timing("X").interval().unwrap();
    let expected = 2.0 * (m as f64 + 1.0) / m as f64;
    assert!((iv - expected).abs() < 0.2, "prefix-sum interval {iv}");
}

#[test]
fn loop_without_feedback_compiles_straight() {
    let src = "
param m = 8;
input B : array[real] [0, m];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 7.]
  do
    if i < m then iter T := T[i: 2.*B[i]]; i := i + 1 enditer else T endif
  endfor;
output X;
";
    let compiled = compile_source(src, &CompileOptions::paper()).unwrap();
    assert_eq!(
        compiled.stats.schemes["X"],
        crate::foriter::UsedScheme::Straight
    );
    let b: Vec<f64> = (0..9).map(|i| i as f64).collect();
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    check_against_oracle(&compiled, &inputs, 8, 1e-12).unwrap();
}

#[test]
fn dead_blocks_eliminated() {
    let src = "
param m = 4;
input B : array[real] [0, m];
DEAD : array[real] := forall i in [0, m] construct B[i] * 100. endall;
Y : array[real] := forall i in [0, m] construct B[i] + 1. endall;
output Y;
";
    let compiled = compile_source(src, &CompileOptions::paper()).unwrap();
    assert_eq!(compiled.stats.dead_blocks, vec!["DEAD".to_string()]);
    let mut inputs = HashMap::new();
    inputs.insert(
        "B".to_string(),
        ArrayVal::from_reals(0, &[0., 1., 2., 3., 4.]),
    );
    check_against_oracle(&compiled, &inputs, 4, 1e-12).unwrap();
}

#[test]
fn am_boundary_routes_traffic_through_array_memories() {
    let m = 16;
    let mut opts = CompileOptions::paper();
    opts.am_boundary = true;
    let compiled = compile_source(&example1_src(m), &opts).unwrap();
    let report = check_against_oracle(&compiled, &arrays(m), 10, 1e-12).unwrap();
    let frac = report.run.am_traffic_fraction();
    assert!(frac > 0.0, "AM cells must fire");
    assert!(
        frac <= 0.125 + 1e-9,
        "paper §2: at most one eighth of operation packets to AMs, got {frac}"
    );
}

#[test]
fn integer_program_is_exact() {
    let src = "
param m = 10;
input K : array[integer] [0, m];
S : array[integer] :=
  for i : integer := 1; T : array[integer] := [0: 0]
  do
    if i < m then iter T := T[i: T[i-1] + K[i]]; i := i + 1 enditer else T endif
  endfor;
output S;
";
    let compiled = compile_source(src, &CompileOptions::paper()).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(
        "K".to_string(),
        ArrayVal::from_ints(0, &(0..11).collect::<Vec<_>>()),
    );
    // tol 0: integer data must match exactly even after the companion
    // transformation.
    check_against_oracle(&compiled, &inputs, 6, 0.0).unwrap();
}

#[test]
fn multi_block_chain_stays_fully_pipelined() {
    // Theorem 4 at a small scale: a chain of stencil blocks.
    let src = "
param m = 12;
input C : array[real] [0, m+1];
S1 : array[real] := forall i in [1, m] construct 0.5 * (C[i-1] + C[i+1]) endall;
S2 : array[real] := forall i in [2, m-1] construct 0.5 * (S1[i-1] + S1[i+1]) endall;
S3 : array[real] := forall i in [3, m-2] construct S2[i] + S2[i-1] endall;
output S3;
";
    let compiled = compile_source(src, &CompileOptions::paper()).unwrap();
    let c: Vec<f64> = (0..14).map(|i| (i as f64 * 0.33).sin()).collect();
    let mut inputs = HashMap::new();
    inputs.insert("C".to_string(), ArrayVal::from_reals(0, &c));
    let report = check_against_oracle(&compiled, &inputs, 40, 1e-12).unwrap();
    let iv = report.run.timing("S3").interval().unwrap();
    // 8 outputs per 14-element input wave.
    let expected = 2.0 * 14.0 / 8.0;
    assert!(
        (iv - expected).abs() < 0.3,
        "chain interval {iv} ≉ {expected}"
    );
}

#[test]
fn balance_modes_all_correct_with_decreasing_buffers() {
    let m = 16;
    let mut buffers = Vec::new();
    for mode in [
        BalanceMode::Asap,
        BalanceMode::Heuristic,
        BalanceMode::Optimal,
    ] {
        let mut opts = CompileOptions::paper();
        opts.balance = mode;
        let compiled = compile_source(&example1_src(m), &opts).unwrap();
        check_against_oracle(&compiled, &arrays(m), 8, 1e-12).unwrap();
        buffers.push(compiled.stats.global_buffers);
    }
    assert!(
        buffers[2] <= buffers[1] && buffers[1] <= buffers[0],
        "{buffers:?}"
    );
}

#[test]
fn synthesized_generators_end_to_end() {
    // Full fidelity: no primitive generator cells anywhere — every control
    // stream and index stream is a circuit of ordinary cells — and the
    // program still matches the oracle at the maximum rate.
    let m = 16;
    let mut opts = CompileOptions::paper();
    opts.synthesize_generators = true;
    let compiled = compile_source(&example1_src(m), &opts).unwrap();
    assert!(compiled.stats.synthesized_generators > 0);
    let exe = compiled.executable();
    assert!(
        exe.nodes.iter().all(|n| !matches!(
            n.op,
            valpipe_ir::Opcode::CtlGen(_) | valpipe_ir::Opcode::IdxGen { .. }
        )),
        "no primitive generators may remain"
    );
    let report = check_against_oracle(&compiled, &arrays(m), 25, 1e-12).unwrap();
    let iv = report.run.timing("A").interval().unwrap();
    assert!(
        (iv - 2.0).abs() < 0.1,
        "synthesized Example 1 interval {iv}"
    );
}

#[test]
fn synthesized_fig3_program_correct() {
    let mut opts = CompileOptions::paper();
    opts.synthesize_generators = true;
    let compiled = compile_source(FIG3_PROGRAM, &opts).unwrap();
    let report = check_against_oracle(&compiled, &arrays(32), 15, 1e-9).unwrap();
    assert!(report.packets_checked > 0);
    let iv = report.run.timing("A").interval().unwrap();
    assert!((iv - 2.0).abs() < 0.1, "synthesized Fig. 3 interval {iv}");
}

#[test]
fn jacobi_2d_fully_pipelined() {
    // §9: "The extension of this work to array values of multiple
    // dimension is straightforward." A 2-D Jacobi sweep flattens to
    // row-major streams with constant-offset taps (±1 for columns, ±W for
    // rows) and runs fully pipelined.
    let (n, m) = (6usize, 8usize);
    let src = format!(
        "
param n = {n};
param m = {m};
input U : array[array[real]] [0, n+1][0, m+1];
V : array[array[real]] :=
  forall i in [0, n+1], j in [0, m+1]
  construct
    if (i = 0)|(i = n+1)|(j = 0)|(j = m+1) then U[i][j]
    else 0.25 * (U[i-1][j] + U[i+1][j] + U[i][j-1] + U[i][j+1])
    endif
  endall;
output V;
"
    );
    let compiled = compile_source(&src, &CompileOptions::paper()).unwrap();
    let shape = compiled.dims.shapes["V"];
    assert_eq!(
        (shape.height(), shape.width()),
        (n as i64 + 2, m as i64 + 2)
    );
    let rows: Vec<Vec<f64>> = (0..n + 2)
        .map(|i| {
            (0..m + 2)
                .map(|j| (i as f64 * 0.31).sin() + (j as f64 * 0.17).cos())
                .collect()
        })
        .collect();
    let mut inputs = HashMap::new();
    inputs.insert("U".to_string(), ArrayVal::from_grid(&rows));
    let report = check_against_oracle(&compiled, &inputs, 20, 1e-12).unwrap();
    let iv = report.run.timing("V").interval().unwrap();
    assert!((iv - 2.0).abs() < 0.1, "2-D Jacobi interval {iv} ≉ 2");
}

#[test]
fn two_d_feeding_one_d_recurrence() {
    // A 2-D block flattens to a 1-D stream that a for-iter can consume —
    // e.g. a running sum over the flattened sweep.
    let (n, m) = (4usize, 5usize);
    let src = format!(
        "
param n = {n};
param m = {m};
param len = {};
input U : array[array[real]] [0, n][0, m];
S : array[array[real]] :=
  forall i in [0, n], j in [0, m]
  construct 2. * U[i][j]
  endall;
T : array[real] :=
  for k : integer := 1; T : array[real] := [0: 0.]
  do
    if k < len then iter T := T[k: T[k-1] + S[k]]; k := k + 1 enditer else T endif
  endfor;
output T;
",
        (n + 1) * (m + 1)
    );
    let compiled = compile_source(&src, &CompileOptions::paper()).unwrap();
    let rows: Vec<Vec<f64>> = (0..n + 1)
        .map(|i| (0..m + 1).map(|j| (i * 10 + j) as f64 * 0.1).collect())
        .collect();
    let mut inputs = HashMap::new();
    inputs.insert("U".to_string(), ArrayVal::from_grid(&rows));
    check_against_oracle(&compiled, &inputs, 12, 1e-9).unwrap();
}

#[test]
fn index_variable_as_value_stream() {
    // `construct B[i] * i` needs the index itself as a runtime stream
    // (an IdxGen cell, or a counter circuit under synthesis).
    let src = "
param m = 9;
input B : array[real] [0, m];
Y : array[real] := forall i in [0, m] construct B[i] * i endall;
output Y;
";
    for synth in [false, true] {
        let mut opts = CompileOptions::paper();
        opts.synthesize_generators = synth;
        let compiled = compile_source(src, &opts).unwrap();
        let b: Vec<f64> = (0..10).map(|i| 1.0 + i as f64 * 0.1).collect();
        let mut inputs = HashMap::new();
        inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));
        let report = check_against_oracle(&compiled, &inputs, 16, 1e-12).unwrap();
        let iv = report.run.timing("Y").interval().unwrap();
        assert!((iv - 2.0).abs() < 0.1, "synth={synth} interval {iv}");
    }
}

#[test]
fn repeated_taps_share_one_gate() {
    // B[i] used three times must produce ONE tap fanned out, not three
    // separate gates off the source.
    let src = "
param m = 6;
input B : array[real] [0, m];
Y : array[real] := forall i in [0, m] construct B[i] * B[i] + B[i] endall;
output Y;
";
    let compiled = compile_source(src, &CompileOptions::paper()).unwrap();
    // Window == full range at offset 0 → tap is the source itself; the
    // source node must fan out to exactly the two cells that consume it
    // (MULT twice → same cell ports count as arcs).
    let hist = compiled.graph.opcode_histogram();
    assert_eq!(
        hist.get("TGATE").copied().unwrap_or(0),
        0,
        "no gate needed for a full window"
    );
    let src_node = compiled.graph.sources()[0].0;
    assert_eq!(
        compiled.graph.out_arcs(src_node).len(),
        3,
        "three consuming ports, one stream"
    );
}

#[test]
fn shifted_taps_share_per_offset() {
    let src = "
param m = 8;
input B : array[real] [0, m+1];
Y : array[real] := forall i in [1, m] construct (B[i-1] + B[i-1]) + (B[i+1] + B[i+1]) endall;
output Y;
";
    let compiled = compile_source(src, &CompileOptions::paper()).unwrap();
    // Exactly two window gates (one per distinct offset), each fanned out.
    let hist = compiled.graph.opcode_histogram();
    assert_eq!(hist.get("TGATE").copied().unwrap_or(0), 2);
}

#[test]
fn statically_dead_arm_is_not_compiled() {
    // Condition false at every index: the then-arm must vanish entirely —
    // no merge, no gates for it.
    let src = "
param m = 5;
input B : array[real] [0, m];
Y : array[real] :=
  forall i in [0, m]
  construct if i > m then 999. else B[i] endif
  endall;
output Y;
";
    let compiled = compile_source(src, &CompileOptions::paper()).unwrap();
    assert_eq!(
        compiled
            .graph
            .opcode_histogram()
            .get("MERG")
            .copied()
            .unwrap_or(0),
        0
    );
    let b: Vec<f64> = (0..6).map(|i| i as f64).collect();
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    let report = check_against_oracle(&compiled, &inputs, 10, 0.0).unwrap();
    assert_eq!(report.packets_checked, 60);
}

#[test]
fn nested_static_conditionals_compose_selections() {
    // Three-way static split by index bands; each band via nested ifs.
    let src = "
param m = 11;
input B : array[real] [0, m];
Y : array[real] :=
  forall i in [0, m]
  construct
    if i < 4 then B[i] * 10.
    else if i < 8 then B[i] * 100. else B[i] * 1000. endif
    endif
  endall;
output Y;
";
    let compiled = compile_source(src, &CompileOptions::paper()).unwrap();
    let b: Vec<f64> = (0..12).map(|i| 1.0 + i as f64).collect();
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    let report = check_against_oracle(&compiled, &inputs, 16, 1e-12).unwrap();
    let iv = report.run.timing("Y").interval().unwrap();
    assert!((iv - 2.0).abs() < 0.1, "banded conditional interval {iv}");
}

#[test]
fn dynamic_condition_inside_static_arm() {
    // Static boundary test; dynamic limiter inside the interior arm.
    let src = "
param m = 9;
input B : array[real] [0, m+1];
Y : array[real] :=
  forall i in [0, m+1]
  construct
    if (i = 0)|(i = m+1) then 0.
    else if B[i] > 0.5 then B[i-1] else B[i+1] endif
    endif
  endall;
output Y;
";
    let compiled = compile_source(src, &CompileOptions::paper()).unwrap();
    let b: Vec<f64> = (0..11).map(|i| ((i * 7) % 11) as f64 / 11.0).collect();
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    let report = check_against_oracle(&compiled, &inputs, 20, 1e-12).unwrap();
    let iv = report.run.timing("Y").interval().unwrap();
    assert!(
        (iv - 2.0).abs() < 0.15,
        "mixed static/dynamic interval {iv}"
    );
}

#[test]
fn gate_fusion_shrinks_banded_conditionals() {
    // A definition-part local pulled into nested static bands passes
    // through a gate per band level (array taps already get composed
    // windows via the tap shortcut); fusion collapses the cascades.
    let src = "
param m = 11;
input B : array[real] [0, m];
Y : array[real] :=
  forall i in [0, m]
    P : real := B[i] * 2.;
  construct
    if i < 4 then P + 1.
    else if i < 8 then P + 2. else P + 3. endif
    endif
  endall;
output Y;
";
    let mut no_fuse = CompileOptions::paper();
    no_fuse.fuse_gates = false;
    let plain = compile_source(src, &no_fuse).unwrap();
    let fused = compile_source(src, &CompileOptions::paper()).unwrap();
    assert!(fused.stats.fused_gates > 0, "bands must fuse");
    assert!(
        fused.graph.node_count() < plain.graph.node_count(),
        "fusion must shrink the program ({} vs {})",
        fused.graph.node_count(),
        plain.graph.node_count()
    );
    // Same results either way.
    let b: Vec<f64> = (0..12).map(|i| 1.0 + i as f64).collect();
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));
    let ra = check_against_oracle(&plain, &inputs, 12, 1e-12).unwrap();
    let rb = check_against_oracle(&fused, &inputs, 12, 1e-12).unwrap();
    assert_eq!(ra.packets_checked, rb.packets_checked);
    let iv = rb.run.timing("Y").interval().unwrap();
    assert!((iv - 2.0).abs() < 0.1, "fused interval {iv}");
}

#[test]
fn run_timesteps_diffuses_and_accounts_traffic() {
    let m = 24;
    let src = format!(
        "
param m = {m};
input U : array[real] [0, m+1];
V : array[real] :=
  forall i in [0, m+1]
  construct
    if (i = 0)|(i = m+1) then U[i]
    else U[i] + 0.25 * (U[i-1] - 2.*U[i] + U[i+1])
    endif
  endall;
output V;
"
    );
    let mut opts = CompileOptions::paper();
    opts.am_boundary = true;
    let compiled = compile_source(&src, &opts).unwrap();
    let mut u = vec![0.0; m + 2];
    u[m / 2] = 64.0;
    let mut initial = HashMap::new();
    initial.insert("U".to_string(), ArrayVal::from_reals(0, &u));
    let (finals, total, am) =
        crate::verify::run_timesteps(&compiled, &initial, &[("V", "U")], 10).unwrap();
    let v = finals["U"].to_reals();
    // Mass conserved (fixed zero boundaries), peak reduced.
    let mass: f64 = v.iter().sum();
    assert!((mass - 64.0).abs() < 1e-9);
    assert!(v[m / 2] < 30.0 && v[m / 2] > 1.0);
    assert!(am > 0 && (am as f64 / total as f64) <= 0.125);
}
