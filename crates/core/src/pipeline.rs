//! The staged pass pipeline: AST → TypedAst → Ir → BalancedIr →
//! MachineProgram.
//!
//! Every compile in the workspace runs through [`PassManager::run`]: a
//! fixed sequence of named passes with typed artifacts between the
//! stages, each gated by its validator (type checking, the flow analysis,
//! [`valpipe_ir::validate`], the balancer's anchoring extraction) and
//! instrumented with wall time and node/arc growth ([`PassStat`]).
//! [`crate::compile_program`] and [`crate::compile_source`] are thin
//! wrappers over it.
//!
//! Stage artifacts can be dumped as deterministic text
//! ([`Stage`], [`dump_graph`]) — the CLI exposes this as
//! `--emit=ast,typed,ir,balanced,machine`, and the golden tests in
//! `tests/` diff the dumps. Wall times are deliberately confined to
//! [`PassStat`] (rendered on stderr) so every dump is byte-stable.

use crate::builder::{BlockProv, Compiler, Provider};
use crate::error::CompileError;
use crate::forall::compile_forall;
use crate::foriter::compile_foriter;
use crate::limits::{CompileLimits, LimitBreach};
use crate::loops::balance_loop_interiors;
use crate::options::CompileOptions;
use crate::program::{CompileStats, Compiled};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;
use valpipe_balance::{problem, solve, BalanceMode};
use valpipe_ir::opcode::Opcode;
use valpipe_ir::prov::Provenance;
use valpipe_ir::validate::validate;
use valpipe_ir::value::Value;
use valpipe_ir::{Graph, PortBinding};
use valpipe_val::ast::{BlockBody, Program};
use valpipe_val::deps::{analyze, BlockClass, FlowGraph};
use valpipe_val::fold::Bindings;
use valpipe_val::srcmap::{SourceMap, StmtKey};
use valpipe_val::typeck::check_program_mapped;

/// The pipeline's observable artifacts, in stage order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// The program as written (pretty-printed source).
    Ast,
    /// After flattening and type checking (annotated, `~` disambiguated).
    Typed,
    /// The lowered instruction graph before any balancing.
    Ir,
    /// After loop-interior and global balancing (symbolic FIFOs).
    Balanced,
    /// The executable machine program (FIFOs expanded to identity chains).
    Machine,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Ast,
        Stage::Typed,
        Stage::Ir,
        Stage::Balanced,
        Stage::Machine,
    ];

    /// The stage's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ast => "ast",
            Stage::Typed => "typed",
            Stage::Ir => "ir",
            Stage::Balanced => "balanced",
            Stage::Machine => "machine",
        }
    }

    /// Parse a CLI stage name.
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|st| st.name() == s)
    }

    /// Parse a comma-separated `--emit` list (e.g. `ir,machine`; `all`
    /// selects every stage).
    pub fn parse_list(s: &str) -> Result<Vec<Stage>, String> {
        if s == "all" {
            return Ok(Stage::ALL.to_vec());
        }
        let mut out = Vec::new();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let st = Stage::parse(part).ok_or_else(|| {
                format!("unknown stage '{part}' (want ast,typed,ir,balanced,machine)")
            })?;
            if !out.contains(&st) {
                out.push(st);
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall time and graph growth of one pass.
#[derive(Debug, Clone)]
pub struct PassStat {
    /// Pass name (e.g. `lower`, `global-balance`).
    pub name: &'static str,
    /// Wall-clock seconds spent in the pass.
    pub wall_s: f64,
    /// Cells before the pass ran.
    pub nodes_before: usize,
    /// Arcs before the pass ran.
    pub arcs_before: usize,
    /// Cells after.
    pub nodes_after: usize,
    /// Arcs after.
    pub arcs_after: usize,
}

impl PassStat {
    /// Net cell growth (negative when the pass removed cells).
    pub fn node_growth(&self) -> i64 {
        self.nodes_after as i64 - self.nodes_before as i64
    }

    /// Net arc growth.
    pub fn arc_growth(&self) -> i64 {
        self.arcs_after as i64 - self.arcs_before as i64
    }
}

/// Render pass statistics as an aligned table (intended for stderr: the
/// wall times are nondeterministic).
pub fn render_pass_stats(stats: &[PassStat]) -> String {
    let mut out = String::from("pass              wall_ms    cells   +cells     arcs    +arcs\n");
    let mut total = 0.0;
    for s in stats {
        total += s.wall_s;
        out.push_str(&format!(
            "{:<16} {:>8.3} {:>8} {:>+8} {:>8} {:>+8}\n",
            s.name,
            s.wall_s * 1e3,
            s.nodes_after,
            s.node_growth(),
            s.arcs_after,
            s.arc_growth(),
        ));
    }
    out.push_str(&format!("{:<16} {:>8.3}\n", "total", total * 1e3));
    out
}

/// Result of a pipeline run: the compiled program plus whatever
/// instrumentation was requested.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The compiled program (same value `compile_program` returns).
    pub compiled: Compiled,
    /// Per-pass wall time and growth, in execution order.
    pub pass_stats: Vec<PassStat>,
    /// Requested stage dumps, in the order given to [`PassManager::emit`].
    pub dumps: Vec<(Stage, String)>,
}

/// The staged compile driver. Configure which artifacts to dump, then
/// [`run`](PassManager::run).
#[derive(Debug, Clone)]
pub struct PassManager<'o> {
    opts: &'o CompileOptions,
    emit: Vec<Stage>,
    limits: CompileLimits,
}

impl<'o> PassManager<'o> {
    /// A pipeline over the given compile options, dumping nothing and
    /// enforcing no resource limits (the historical, trusted-input
    /// behaviour).
    pub fn new(opts: &'o CompileOptions) -> Self {
        PassManager {
            opts,
            emit: Vec::new(),
            limits: CompileLimits::unbounded(),
        }
    }

    /// Enforce the given resource budgets; breaches surface as
    /// [`CompileError::Limit`].
    pub fn limits(mut self, limits: CompileLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Request a textual dump of a stage artifact.
    pub fn emit(mut self, stage: Stage) -> Self {
        if !self.emit.contains(&stage) {
            self.emit.push(stage);
        }
        self
    }

    /// Request several stage dumps at once.
    pub fn emit_all(mut self, stages: &[Stage]) -> Self {
        for &s in stages {
            self = self.emit(s);
        }
        self
    }

    /// Compile source text through the full pipeline.
    ///
    /// Delegates to a fresh [`crate::query::QueryEngine`] (all memo
    /// tables empty), which performs exactly the cold staged compile.
    /// Callers that compile repeatedly should hold an engine themselves
    /// and reuse it across runs to get incremental recompilation.
    pub fn run_source(&self, src: &str, file: &str) -> Result<PipelineOutput, CompileError> {
        crate::query::QueryEngine::new().run_source(self.opts, &self.limits, &self.emit, src, file)
    }

    /// Run every pass over `prog`, whose statement spans live in `map`.
    pub fn run(&self, prog: &Program, map: &SourceMap) -> Result<PipelineOutput, CompileError> {
        let mut stats: Vec<PassStat> = Vec::new();
        let mut dumps: Vec<(Stage, String)> = Vec::new();
        let empty = Graph::new();
        let t_compile = Instant::now();
        let limits = self.limits;

        // Every pass ends with an artifact-size and wall-budget check, so a
        // hostile program is cut off at the first pass that blows a budget.
        macro_rules! pass {
            ($name:literal, $g:expr, $body:expr) => {{
                let t0 = Instant::now();
                let (nb, ab) = {
                    let g: &Graph = $g;
                    (g.node_count(), g.arcs.len())
                };
                let r = $body;
                let (na, aa) = {
                    let g: &Graph = $g;
                    (g.node_count(), g.arcs.len())
                };
                stats.push(PassStat {
                    name: $name,
                    wall_s: t0.elapsed().as_secs_f64(),
                    nodes_before: nb,
                    arcs_before: ab,
                    nodes_after: na,
                    arcs_after: aa,
                });
                if na > limits.max_cells {
                    return Err(LimitBreach::Cells {
                        pass: $name,
                        got: na,
                        limit: limits.max_cells,
                    }
                    .into());
                }
                if aa > limits.max_arcs {
                    return Err(LimitBreach::Arcs {
                        pass: $name,
                        got: aa,
                        limit: limits.max_arcs,
                    }
                    .into());
                }
                let elapsed = t_compile.elapsed();
                if elapsed > limits.compile_budget() {
                    return Err(LimitBreach::CompileWall {
                        elapsed_ms: elapsed.as_millis() as u64,
                        limit_ms: limits.max_compile_millis,
                    }
                    .into());
                }
                r
            }};
        }

        if self.emit.contains(&Stage::Ast) {
            dumps.push((Stage::Ast, valpipe_val::pretty::program_to_source(prog)));
        }

        // ---- AST → TypedAst --------------------------------------------
        let (prog, dims) = pass!("flatten", &empty, {
            valpipe_val::dims::flatten_program(prog).map_err(CompileError::Unsupported)?
        });
        let prog = pass!("typecheck", &empty, check_program_mapped(&prog, map)?);
        let flow = pass!("analyze", &empty, analyze(&prog)?);
        let (prov, src_ids) = build_prov(&prog, map);

        if self.emit.contains(&Stage::Typed) {
            dumps.push((Stage::Typed, valpipe_val::pretty::program_to_source(&prog)));
        }

        // ---- TypedAst → Ir ---------------------------------------------
        let mut params = Bindings::new();
        for (n, v) in &prog.params {
            params.insert(n.clone(), Value::Int(*v));
        }
        let mut c = Compiler::new(params);
        let mut cstats = CompileStats::default();

        pass!(
            "lower",
            &c.g,
            self.lower(&mut c, &mut cstats, &prog, &flow, &src_ids)?
        );

        if self.opts.fuse_gates {
            pass!("fuse", &c.g, {
                let fused = crate::fuse::fuse_static_gates(&mut c.g);
                cstats.fused_gates = fused.fused;
                if fused.fused > 0 {
                    crate::fuse::sweep_dead(&mut c.g);
                }
            });
        }

        if self.opts.synthesize_generators {
            pass!("synth", &c.g, {
                let synth = crate::synth::synthesize_generators(&mut c.g);
                cstats.synthesized_generators = synth.ctl_generators + synth.index_generators;
            });
        }

        cstats.cells_before_balance = c.g.node_count();
        if self.emit.contains(&Stage::Ir) {
            dumps.push((Stage::Ir, dump_graph(&c.g, &prov)));
        }

        // ---- Ir → BalancedIr -------------------------------------------
        pass!("loop-balance", &c.g, {
            cstats.loop_buffers = balance_loop_interiors(&mut c.g);
        });

        pass!("validate", &c.g, {
            let defects = validate(&c.g);
            if !defects.is_empty() {
                let msg = defects
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(CompileError::BadCode(msg));
            }
        });

        if self.opts.balance != BalanceMode::None {
            pass!("global-balance", &c.g, {
                let p = problem::extract_anchored(&c.g, &c.anchors)?;
                let sol = match self.opts.balance {
                    BalanceMode::Asap => solve::solve_asap(&p),
                    BalanceMode::Heuristic => solve::solve_heuristic(&p, 64),
                    BalanceMode::Optimal => solve::solve_optimal(&p),
                    BalanceMode::None => {
                        return Err(CompileError::Internal(
                            "balance pass entered with BalanceMode::None".into(),
                        ))
                    }
                };
                cstats.global_buffers = problem::apply(&mut c.g, &p, &sol);
            });
        }

        // Balancing decides FIFO depths symbolically; expansion multiplies
        // each `Fifo(d)` into `d` identity cells. Check both the deepest
        // single FIFO and the total expanded cell count now, before
        // `Compiled::executable` would materialize the blow-up.
        let mut expanded_cells = c.g.node_count();
        let mut deepest = 0usize;
        for n in &c.g.nodes {
            if let Opcode::Fifo(d) = n.op {
                deepest = deepest.max(d as usize);
                expanded_cells += (d as usize).saturating_sub(1);
            }
        }
        if deepest > limits.max_fifo_depth {
            return Err(LimitBreach::FifoDepth {
                got: deepest,
                limit: limits.max_fifo_depth,
            }
            .into());
        }
        if expanded_cells > limits.max_cells {
            return Err(LimitBreach::Cells {
                pass: "fifo-expand",
                got: expanded_cells,
                limit: limits.max_cells,
            }
            .into());
        }

        if self.emit.contains(&Stage::Balanced) {
            dumps.push((Stage::Balanced, dump_graph(&c.g, &prov)));
        }

        let compiled = Compiled {
            graph: c.g,
            program: prog,
            flow,
            dims,
            prov,
            stats: cstats,
        };

        // ---- BalancedIr → MachineProgram -------------------------------
        if self.emit.contains(&Stage::Machine) {
            let g = compiled.executable();
            dumps.push((Stage::Machine, dump_graph(&g, &compiled.prov)));
        }

        // Dumps come back in the order requested, not pipeline order.
        dumps.sort_by_key(|(s, _)| self.emit.iter().position(|e| e == s));

        Ok(PipelineOutput {
            compiled,
            pass_stats: stats,
            dumps,
        })
    }

    /// The lowering pass: input sources, per-block circuits (Theorems
    /// 1–3), output sinks and structural drains, with every cell stamped
    /// with its statement's provenance id.
    fn lower(
        &self,
        c: &mut Compiler,
        stats: &mut CompileStats,
        prog: &Program,
        flow: &FlowGraph,
        src_ids: &HashMap<StmtKey, u32>,
    ) -> Result<(), CompileError> {
        lower_inputs(c, self.opts, flow, src_ids);

        // Dead-block elimination: only blocks that (transitively) reach a
        // declared output are compiled.
        let live = live_blocks(flow, &prog.outputs);

        for block in &flow.blocks {
            if !self.opts.keep_dead_blocks && !live.contains(&block.name) {
                stats.dead_blocks.push(block.name.clone());
                continue;
            }
            if let Some(used) = lower_block(c, self.opts, prog, block, src_ids)? {
                stats.schemes.insert(block.name.clone(), used);
            }
        }

        lower_epilogue(c, self.opts, prog, src_ids)
    }
}

/// Lower the program's input declarations: one anchored `Source` cell per
/// input (element `i` of an array over `[lo, hi]` cannot arrive before
/// `2·(i − lo)` instruction times, hence the `−2·lo` anchor), optionally
/// routed through an array-memory read cell.
pub(crate) fn lower_inputs(
    c: &mut Compiler,
    opts: &CompileOptions,
    flow: &FlowGraph,
    src_ids: &HashMap<StmtKey, u32>,
) {
    for (name, (lo, hi)) in &flow.inputs {
        c.g.set_provenance(
            src_ids
                .get(&StmtKey::Input(name.clone()))
                .copied()
                .unwrap_or(0),
        );
        let src = c.g.add_node(Opcode::Source(name.clone()), name.clone());
        c.anchors.push((src, -2 * lo));
        let node = if opts.am_boundary {
            let l = c.label(&format!("{name}.amr"));
            c.g.cell(Opcode::AmRead, l, &[src.into()])
        } else {
            src
        };
        c.providers.insert(
            name.clone(),
            Provider {
                node,
                lo: *lo,
                hi: *hi,
            },
        );
    }
}

/// Lower one block to its circuit (Theorems 1–3). Returns the recurrence
/// scheme used when the block is a for-iter.
pub(crate) fn lower_block(
    c: &mut Compiler,
    opts: &CompileOptions,
    prog: &Program,
    block: &valpipe_val::deps::BlockNode,
    src_ids: &HashMap<StmtKey, u32>,
) -> Result<Option<crate::foriter::UsedScheme>, CompileError> {
    let decl = prog
        .block(&block.name)
        .ok_or_else(|| CompileError::Internal(format!("missing block '{}'", block.name)))?;
    let bp = block_prov(prog, &block.name, src_ids);
    match (&block.class, &decl.body) {
        (BlockClass::Forall { lo, hi }, BlockBody::Forall(f)) => {
            compile_forall(c, &block.name, f, *lo, *hi, &bp)?;
            Ok(None)
        }
        (BlockClass::ForIter(pfi), _) => {
            let (_, used) = compile_foriter(c, &block.name, pfi, opts.scheme, &bp)?;
            Ok(Some(used))
        }
        _ => Err(CompileError::Internal(format!(
            "classification mismatch for block '{}'",
            block.name
        ))),
    }
}

/// Lower the program epilogue: output sinks (optionally through
/// array-memory write cells) and structural drain sinks for any stream
/// left unconsumed (kept dead blocks).
pub(crate) fn lower_epilogue(
    c: &mut Compiler,
    opts: &CompileOptions,
    prog: &Program,
    src_ids: &HashMap<StmtKey, u32>,
) -> Result<(), CompileError> {
    c.g.set_provenance(src_ids.get(&StmtKey::Output).copied().unwrap_or(0));
    for name in &prog.outputs {
        let p = *c
            .providers
            .get(name)
            .ok_or_else(|| CompileError::Internal(format!("no provider for output '{name}'")))?;
        let node = if opts.am_boundary {
            let l = c.label(&format!("{name}.amw"));
            c.g.cell(Opcode::AmWrite, l, &[p.node.into()])
        } else {
            p.node
        };
        let l = c.label(&format!("{name}.out"));
        c.g.cell(Opcode::Sink(name.clone()), l, &[node.into()]);
    }

    // Any compiled block whose stream ends up unconsumed (kept dead
    // blocks) still needs a consumer to be structurally valid.
    for id in c.g.node_ids().collect::<Vec<_>>() {
        if c.g.nodes[id.idx()].op.produces_output() && c.g.nodes[id.idx()].outputs.is_empty() {
            // The drain sink belongs to whatever statement produced
            // the unconsumed stream.
            c.g.set_provenance(c.g.nodes[id.idx()].src);
            let label = format!("__drain.{}", id.idx());
            let sink = c.g.add_node(Opcode::Sink(label.clone()), label);
            c.g.connect(id, sink, 0);
        }
    }
    c.g.set_provenance(0);
    Ok(())
}

/// Build the provenance table for a program from its statement source
/// map, in deterministic program order. Statements absent from the map
/// fall back to provenance id 0 (the whole-program entry).
pub(crate) fn build_prov(prog: &Program, map: &SourceMap) -> (Provenance, HashMap<StmtKey, u32>) {
    let mut prov = Provenance::new(&map.file);
    let mut ids = HashMap::new();
    let put =
        |prov: &mut Provenance, ids: &mut HashMap<StmtKey, u32>, key: StmtKey, role: String| {
            if let Some(span) = map.span(&key) {
                let id = prov.add(role, span, map.snippet(span));
                ids.insert(key, id);
            }
        };
    for (n, _) in &prog.params {
        put(
            &mut prov,
            &mut ids,
            StmtKey::Param(n.clone()),
            format!("param '{n}'"),
        );
    }
    for i in &prog.inputs {
        put(
            &mut prov,
            &mut ids,
            StmtKey::Input(i.name.clone()),
            format!("input declaration '{}'", i.name),
        );
    }
    for b in &prog.blocks {
        put(
            &mut prov,
            &mut ids,
            StmtKey::BlockHeader(b.name.clone()),
            format!("header of block '{}'", b.name),
        );
        match &b.body {
            BlockBody::Forall(f) => {
                for d in &f.defs {
                    put(
                        &mut prov,
                        &mut ids,
                        StmtKey::BlockDef(b.name.clone(), d.name.clone()),
                        format!("definition '{}' in block '{}'", d.name, b.name),
                    );
                }
                put(
                    &mut prov,
                    &mut ids,
                    StmtKey::BlockBody(b.name.clone()),
                    format!("forall body of block '{}'", b.name),
                );
            }
            BlockBody::ForIter(fi) => {
                for d in &fi.inits {
                    put(
                        &mut prov,
                        &mut ids,
                        StmtKey::BlockInit(b.name.clone(), d.name.clone()),
                        format!("loop init '{}' in block '{}'", d.name, b.name),
                    );
                }
                put(
                    &mut prov,
                    &mut ids,
                    StmtKey::BlockBody(b.name.clone()),
                    format!("loop body of block '{}'", b.name),
                );
            }
        }
    }
    put(
        &mut prov,
        &mut ids,
        StmtKey::Output,
        "output declaration".to_string(),
    );
    (prov, ids)
}

/// Per-block provenance ids for [`compile_forall`]/[`compile_foriter`].
pub(crate) fn block_prov(prog: &Program, name: &str, ids: &HashMap<StmtKey, u32>) -> BlockProv {
    let mut bp = BlockProv {
        header: ids
            .get(&StmtKey::BlockHeader(name.to_string()))
            .copied()
            .unwrap_or(0),
        defs: HashMap::new(),
        body: ids
            .get(&StmtKey::BlockBody(name.to_string()))
            .copied()
            .unwrap_or(0),
    };
    if let Some(decl) = prog.block(name) {
        match &decl.body {
            BlockBody::Forall(f) => {
                for d in &f.defs {
                    if let Some(&id) = ids.get(&StmtKey::BlockDef(name.to_string(), d.name.clone()))
                    {
                        bp.defs.insert(d.name.clone(), id);
                    }
                }
            }
            BlockBody::ForIter(fi) => {
                for d in &fi.inits {
                    if let Some(&id) =
                        ids.get(&StmtKey::BlockInit(name.to_string(), d.name.clone()))
                    {
                        bp.defs.insert(d.name.clone(), id);
                    }
                }
            }
        }
    }
    bp
}

pub(crate) fn live_blocks(flow: &FlowGraph, outputs: &[String]) -> HashSet<String> {
    // Walk producer edges backwards from the outputs.
    let mut preds: HashMap<&str, Vec<&str>> = HashMap::new();
    for (prod, cons) in &flow.edges {
        preds.entry(cons.as_str()).or_default().push(prod.as_str());
    }
    let mut live: HashSet<String> = HashSet::new();
    let mut stack: Vec<&str> = outputs.iter().map(|s| s.as_str()).collect();
    while let Some(name) = stack.pop() {
        if live.insert(name.to_string()) {
            if let Some(ps) = preds.get(name) {
                stack.extend(ps.iter().copied());
            }
        }
    }
    live
}

/// Deterministic textual listing of an instruction graph with its
/// provenance table — the `--emit=ir,balanced,machine` dump format used
/// by the golden tests. Contains no wall times or other nondeterminism.
pub fn dump_graph(g: &Graph, prov: &Provenance) -> String {
    let mut out = format!("cells {}  arcs {}\n", g.node_count(), g.arcs.len());
    for (i, n) in g.nodes.iter().enumerate() {
        let ins = n
            .inputs
            .iter()
            .map(|b| match b {
                PortBinding::Unbound => "unbound".to_string(),
                PortBinding::Lit(v) => format!("#{v}"),
                PortBinding::Wired(a) => {
                    let e = &g.arcs[a.idx()];
                    let mut s = format!("n{}", e.src.idx());
                    if e.phase != 0 {
                        s.push_str(&format!("@{:+}", e.phase));
                    }
                    if e.back {
                        s.push('^');
                    }
                    if let Some(v) = &e.initial {
                        s.push_str(&format!("!{v}"));
                    }
                    s
                }
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "n{i:<5} {:<14} {:<28} [{ins}]",
            n.op.mnemonic(),
            n.label
        ));
        if prov.is_resolved(n.src) {
            out.push_str(&format!("  ; src{}", n.src));
        }
        out.push('\n');
    }
    if prov.entries.len() > 1 {
        out.push_str("provenance:\n");
        for i in 1..prov.entries.len() {
            out.push_str(&format!("  src{i}: {}\n", prov.describe(i as u32)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use valpipe_val::parser::FIG3_PROGRAM;

    #[test]
    fn pipeline_matches_compile_program() {
        let opts = CompileOptions::paper();
        let direct = crate::program::compile_source(FIG3_PROGRAM, &opts).unwrap();
        let piped = PassManager::new(&opts)
            .run_source(FIG3_PROGRAM, "<source>")
            .unwrap();
        assert_eq!(
            direct.graph.fingerprint(),
            piped.compiled.graph.fingerprint()
        );
    }

    #[test]
    fn stage_dumps_are_deterministic_and_ordered() {
        let opts = CompileOptions::paper();
        let pm = PassManager::new(&opts).emit_all(&[Stage::Machine, Stage::Ast, Stage::Ir]);
        let a = pm.run_source(FIG3_PROGRAM, "fig3.val").unwrap();
        let b = pm.run_source(FIG3_PROGRAM, "fig3.val").unwrap();
        let sa: Vec<_> = a.dumps.iter().map(|(s, _)| *s).collect();
        assert_eq!(sa, vec![Stage::Machine, Stage::Ast, Stage::Ir]);
        assert_eq!(a.dumps, b.dumps, "dumps must be byte-stable");
        let machine = &a.dumps[0].1;
        assert!(machine.starts_with("cells "));
        assert!(machine.contains("provenance:"));
        assert!(machine.contains("fig3.val:"));
    }

    #[test]
    fn pass_stats_cover_the_pipeline() {
        let opts = CompileOptions::paper();
        let out = PassManager::new(&opts)
            .run_source(FIG3_PROGRAM, "<source>")
            .unwrap();
        let names: Vec<_> = out.pass_stats.iter().map(|s| s.name).collect();
        // paper(): fuse_gates on, generator synthesis off.
        assert_eq!(
            names,
            vec![
                "flatten",
                "typecheck",
                "analyze",
                "lower",
                "fuse",
                "loop-balance",
                "validate",
                "global-balance"
            ]
        );
        let lower = &out.pass_stats[3];
        assert!(lower.node_growth() > 0, "lowering creates cells");
        let rendered = render_pass_stats(&out.pass_stats);
        assert!(rendered.contains("global-balance"));
        assert!(rendered.contains("total"));
    }

    #[test]
    fn stage_list_parsing() {
        assert_eq!(
            Stage::parse_list("ir,machine").unwrap(),
            vec![Stage::Ir, Stage::Machine]
        );
        assert_eq!(Stage::parse_list("all").unwrap().len(), 5);
        assert!(Stage::parse_list("bogus").is_err());
    }
}
