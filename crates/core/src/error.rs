//! Compiler errors.

use crate::limits::LimitBreach;
use std::fmt;
use valpipe_balance::ProblemError;
use valpipe_val::{AnalyzeError, ParseError, TypeError};

/// Any failure on the way from Val source to balanced machine code.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// Source text failed to parse.
    Parse(ParseError),
    /// A [`crate::CompileLimits`] resource budget was exceeded.
    Limit(LimitBreach),
    /// Frontend type error.
    Type(TypeError),
    /// Classification / range analysis failure.
    Analyze(AnalyzeError),
    /// Balancing failure (unseeded cycle, inconsistent loop interior).
    Balance(ProblemError),
    /// Program is valid Val but outside what the chosen scheme supports
    /// (e.g. companion scheme on a nonlinear recurrence).
    Unsupported(String),
    /// The generated machine program failed structural validation — a
    /// compiler bug, reported with the defect list.
    BadCode(String),
    /// Internal invariant violation (a compiler bug).
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Limit(b) => write!(f, "resource limit: {b}"),
            CompileError::Type(e) => write!(f, "{e}"),
            CompileError::Analyze(e) => write!(f, "{e}"),
            CompileError::Balance(e) => write!(f, "balancing failed: {e}"),
            CompileError::Unsupported(m) => write!(f, "unsupported: {m}"),
            CompileError::BadCode(m) => write!(f, "generated invalid machine code: {m}"),
            CompileError::Internal(m) => write!(f, "internal compiler error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LimitBreach> for CompileError {
    fn from(b: LimitBreach) -> Self {
        CompileError::Limit(b)
    }
}
impl From<TypeError> for CompileError {
    fn from(e: TypeError) -> Self {
        CompileError::Type(e)
    }
}
impl From<AnalyzeError> for CompileError {
    fn from(e: AnalyzeError) -> Self {
        CompileError::Analyze(e)
    }
}
impl From<ProblemError> for CompileError {
    fn from(e: ProblemError) -> Self {
        CompileError::Balance(e)
    }
}
