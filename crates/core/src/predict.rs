//! Static throughput prediction.
//!
//! The paper argues rates analytically: a balanced acyclic pipeline runs
//! at 1/2, a feedback cycle of `L` cells holding `k` values at `k/L`, and
//! window gating scales output rate by the selected fraction. This module
//! computes those bounds from the *compiled graph alone* — no simulation —
//! so the simulator and the theory check each other:
//!
//! * the machine bound comes from the **marked-graph cycle ratio**: every
//!   arc contributes a forward place holding its tokens and a reverse
//!   "hole" place holding `capacity − tokens`; steady throughput of cell
//!   firings is `min over directed cycles of tokens(C) / |C|`. The plain
//!   two-place round trip of any single arc yields the global 1/2 cap, and
//!   feedback loops yield their `k/L` (Todd's bound, the companion loop's
//!   1/2, the §9 ring law) — one uniform theorem;
//! * merge-initialized loops (no physical initial token) carry *virtual*
//!   tokens equal to the leading-false run of the MERGE's control pattern
//!   — the number of elements injected per wave before feedback is
//!   consumed, i.e. the dependence distance;
//! * the **input-pacing bound**: a source emits at best one element per 2
//!   instruction times, so an output of `W_out` elements per wave fed from
//!   an input of `W_in` cannot beat `2·W_in / W_out`.
//!
//! [`predict_interval`] returns the max of the two bounds; the test suite
//! and `exp_predict` verify it against measured intervals across the whole
//! workload zoo.

use std::collections::HashMap;
use valpipe_balance::problem::sccs;
use valpipe_ir::opcode::{Opcode, MERGE_CTL};
use valpipe_ir::{Graph, PortBinding};

/// Tokens resting on an arc for cycle analysis: physical initial tokens,
/// plus the virtual tokens a MERGE injects on its declared back-edge.
fn arc_tokens(g: &Graph, arc: valpipe_ir::ArcId) -> u64 {
    let e = &g.arcs[arc.idx()];
    let mut t = u64::from(e.initial.is_some());
    if e.back && e.initial.is_none() {
        // Virtual tokens: the leading run of `false` in the feeding
        // merge's control pattern = elements taken from the initializer
        // before the feedback is first consumed.
        if let Opcode::Merge = g.nodes[e.src.idx()].op {
            if let PortBinding::Wired(ctl_arc) = g.nodes[e.src.idx()].inputs[MERGE_CTL] {
                if let Opcode::CtlGen(s) = &g.nodes[g.arcs[ctl_arc.idx()].src.idx()].op {
                    let runs = s.runs();
                    if !runs.is_empty() && !runs[0].value {
                        t += runs[0].count as u64;
                    }
                }
            }
        }
    }
    t
}

/// Minimum cycle ratio `tokens(C)/|C|` over all directed cycles of the
/// token/hole place graph, computed by parametric search with
/// Bellman–Ford negative-cycle detection. `arc_capacity` is the link
/// buffering (1 on the base machine). Returns the machine-wide throughput
/// bound on cell firings (≤ 1/2 when capacities are 1).
pub fn min_cycle_ratio(g: &Graph, arc_capacity: u64) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.5;
    }
    // Restrict to arcs inside feedback SCCs: gates and merges fire at
    // data-dependent rates, so mixed cycles through acyclic gated regions
    // are artifacts of the uniform-rate marked-graph assumption. Within a
    // loop every cell fires once per element, where the model is exact.
    // The per-arc forward+hole round trip (capacity/2) is always real and
    // caps the rate at 1/2 on the base machine.
    let scc = sccs(g);
    let mut comp_size = vec![0usize; n];
    for i in 0..n {
        comp_size[scc[i]] += 1;
    }
    let mut edges = Vec::with_capacity(g.arc_count() * 2);
    for a in g.arc_ids() {
        let e = &g.arcs[a.idx()];
        if scc[e.src.idx()] != scc[e.dst.idx()] || comp_size[scc[e.src.idx()]] < 2 {
            continue;
        }
        let t = arc_tokens(g, a);
        edges.push((e.src.idx(), e.dst.idx(), t));
        edges.push((e.dst.idx(), e.src.idx(), arc_capacity.saturating_sub(t)));
    }
    if edges.is_empty() {
        return (arc_capacity as f64 / 2.0).min(1.0);
    }
    // A cycle with ratio λ exists iff Bellman–Ford finds a negative cycle
    // under weights tokens − λ. Binary search λ in (0, 1].
    let has_cycle_below = |lambda: f64| -> bool {
        let mut dist = vec![0.0f64; n];
        for _ in 0..n {
            let mut changed = false;
            for &(u, v, t) in &edges {
                let w = t as f64 - lambda;
                if dist[u] + w < dist[v] - 1e-12 {
                    dist[v] = dist[u] + w;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
        }
        true
    };
    // A cell fires at most once per instruction time regardless of
    // buffering, and a token+acknowledge round trip costs 2 over the
    // arc's slots: rate ≤ min(1, cap/2).
    let cap_bound = (arc_capacity as f64 / 2.0).min(1.0);
    let (mut lo, mut hi) = (0.0f64, 4.0f64);
    for _ in 0..48 {
        let mid = (lo + hi) / 2.0;
        if has_cycle_below(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi.min(cap_bound)
}

/// Predicted steady-state initiation interval (instruction times per
/// packet) of each sink, from graph structure alone.
///
/// `wave_lens` gives the packets-per-wave of every source and sink port
/// (the compiler knows these from the array ranges).
pub fn predict_interval(
    g: &Graph,
    wave_lens: &HashMap<String, u64>,
    arc_capacity: u64,
) -> HashMap<String, f64> {
    let machine_interval = 1.0 / min_cycle_ratio(g, arc_capacity);
    // Input pacing: a source needs at least `src_interval` per packet
    // (its own fire/ack round trip), and a full input wave of W_in
    // packets must stream in per output wave of W_out — an independent
    // lower bound on the wave period. Elements a window gate discards
    // still cost source time, which is exactly what this term charges.
    let src_interval = 1.0 / (arc_capacity as f64 / 2.0).min(1.0);
    let max_in_wave = g
        .sources()
        .iter()
        .filter_map(|(_, name)| wave_lens.get(name))
        .copied()
        .max()
        .unwrap_or(0);
    let mut out = HashMap::new();
    for (_, name) in g.sinks() {
        let Some(&w_out) = wave_lens.get(&name) else {
            continue;
        };
        let pacing = if max_in_wave > 0 && w_out > 0 {
            src_interval * max_in_wave as f64 / w_out as f64
        } else {
            0.0
        };
        out.insert(name, machine_interval.max(pacing));
    }
    out
}

/// Convenience: predicted intervals for a compiled program's outputs.
pub fn predict_compiled(c: &crate::Compiled) -> HashMap<String, f64> {
    let mut wave_lens = HashMap::new();
    for (name, (lo, hi)) in &c.flow.inputs {
        wave_lens.insert(name.clone(), (hi - lo + 1) as u64);
    }
    for b in &c.flow.blocks {
        wave_lens.insert(b.name.clone(), (b.range.1 - b.range.0 + 1) as u64);
    }
    let mut g = c.executable();
    // Drain sinks for kept-dead streams have no wave length; they don't
    // appear in outputs and are ignored by predict_interval.
    let _ = &mut g;
    predict_interval(&g, &wave_lens, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{CompileOptions, ForIterScheme};
    use crate::program::compile_source;
    use crate::verify::check_against_oracle;
    use std::collections::HashMap as Map;
    use valpipe_val::interp::ArrayVal;

    fn measure(src: &str, opts: &CompileOptions, out: &str) -> (f64, f64) {
        let compiled = compile_source(src, opts).unwrap();
        let mut inputs = Map::new();
        for (name, (lo, hi)) in &compiled.flow.inputs {
            let vals: Vec<f64> = (*lo..=*hi)
                .map(|i| 0.8 + 0.1 * (i as f64 * 0.37).sin())
                .collect();
            inputs.insert(name.clone(), ArrayVal::from_reals(*lo, &vals));
        }
        let report = check_against_oracle(&compiled, &inputs, 30, 1e-8).unwrap();
        let measured = report.run.timing(out).interval().unwrap();
        let predicted = predict_compiled(&compiled)[out];
        (predicted, measured)
    }

    #[test]
    fn plain_chain_predicts_one_half() {
        let src = "
param m = 20;
input B : array[real] [0, m];
Y : array[real] := forall i in [0, m] construct B[i] * 2. + 1. endall;
output Y;
";
        let (p, m) = measure(src, &CompileOptions::paper(), "Y");
        assert!((p - 2.0).abs() < 1e-6, "predicted {p}");
        assert!((p - m).abs() / m < 0.03, "predicted {p}, measured {m}");
    }

    #[test]
    fn window_pacing_predicted() {
        let src = "
param m = 16;
input C : array[real] [0, m+1];
S : array[real] := forall i in [1, m] construct 0.25*(C[i-1] + 2.*C[i] + C[i+1]) endall;
output S;
";
        let (p, m) = measure(src, &CompileOptions::paper(), "S");
        assert!((p - 2.25).abs() < 1e-6, "predicted {p}");
        assert!((p - m).abs() / m < 0.03, "predicted {p}, measured {m}");
    }

    #[test]
    fn todd_cycle_predicted() {
        let src = "
param m = 24;
input A : array[real] [0, m+1];
input B : array[real] [0, m+1];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    if i < m then iter T := T[i: A[i]*T[i-1] + B[i]]; i := i + 1 enditer else T endif
  endfor;
output X;
";
        let mut opts = CompileOptions::paper();
        opts.scheme = ForIterScheme::Todd;
        let (p, m) = measure(src, &opts, "X");
        assert!((p - 4.0).abs() < 0.1, "Todd predicted {p}");
        assert!((p - m).abs() / m < 0.05, "predicted {p}, measured {m}");

        // Companion: virtual tokens 2 → cycle ratio 2/4 → pacing dominates.
        let mut opts = CompileOptions::paper();
        opts.scheme = ForIterScheme::Companion;
        let (p, m) = measure(src, &opts, "X");
        let expected = 2.0 * 26.0 / 24.0;
        assert!((p - expected).abs() < 0.05, "companion predicted {p}");
        assert!((p - m).abs() / m < 0.05, "predicted {p}, measured {m}");
    }

    #[test]
    fn min_cycle_ratio_of_ring() {
        // Hand-built 5-ring with 2 tokens → ratio 2/5.
        use valpipe_ir::value::Value;
        use valpipe_ir::{Graph, Opcode};
        let mut g = Graph::new();
        let cells: Vec<_> = (0..5)
            .map(|k| g.add_node(Opcode::Id, format!("c{k}")))
            .collect();
        for k in 0..5 {
            let (a, b) = (cells[k], cells[(k + 1) % 5]);
            if k < 2 {
                g.connect_init(a, b, 0, Value::Int(0));
            } else {
                g.connect(a, b, 0);
            }
        }
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[cells[0].into()]);
        let r = min_cycle_ratio(&g, 1);
        assert!((r - 0.4).abs() < 1e-6, "ratio {r} ≉ 2/5");
    }

    #[test]
    fn capacity_relaxes_the_bound() {
        // The same acyclic chain under capacity 4: the hole cycles hold 4
        // tokens over 2 transitions → bound 1 (interval 1), matching the
        // detailed-machine measurements in exp_machine.
        use valpipe_ir::{Graph, Opcode};
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let b = g.cell(Opcode::Id, "b", &[a.into()]);
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[b.into()]);
        assert!((min_cycle_ratio(&g, 1) - 0.5).abs() < 1e-6);
        assert!((min_cycle_ratio(&g, 4) - 1.0).abs() < 1e-6);
    }
}
