//! Pipelined mapping of primitive `for-iter` constructs (paper §7).
//!
//! Two schemes:
//!
//! * **Todd's scheme** (Fig. 7): the recurrence body feeds back through a
//!   MERGE that injects the initial element once per wave and an output
//!   gate that drops the last element from the feedback path. The cycle
//!   holds a single circulating value, so the initiation rate is limited
//!   to `1 / cycle-length` — the paper's 1/3 bound (1/4 here, because this
//!   implementation realizes the output switch as a separate gated
//!   identity cell rather than a conditional destination field).
//!
//! * **Companion scheme** (Fig. 8, Theorem 3): for bodies linear in
//!   `X[i-1]`, the derived companion function `G` builds a *companion
//!   pipeline* computing `c_i = G(a_i, a_{i-1})`, the recurrence becomes
//!   `x_i = F(c_i, x_{i-2})`, and the (even-length) cycle holds **two**
//!   values — restoring the maximum rate of 1/2. The two initial elements
//!   `x_r` and `x_p` come from a separate initial-value subgraph, exactly
//!   the dashed box of Fig. 8.

use crate::builder::{BlockBuilder, BlockProv, Compiler, Provider};
use crate::error::CompileError;
use crate::options::ForIterScheme;
use valpipe_ir::opcode::{Opcode, GATE_DATA, MERGE_CTL, MERGE_FALSE, MERGE_TRUE};
use valpipe_ir::value::{BinOp, Value};
use valpipe_ir::{CtlStream, In, NodeId};
use valpipe_val::ast::Expr;
use valpipe_val::classify::PrimitiveForIter;
use valpipe_val::fold::{eval_static, simplify};
use valpipe_val::linear::extract_linear;

/// Which scheme actually got used for a block (reported in compile stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsedScheme {
    /// Todd's feedback scheme.
    Todd,
    /// Companion-pipeline scheme.
    Companion,
    /// Degenerate loops (no self-reference, or too short for a loop).
    Straight,
}

/// Compile a primitive for-iter; returns the cell producing the array
/// stream and the scheme used. The loop body's provenance id stamps every
/// circuit cell (the feedback cycle realizes the body as a whole).
pub fn compile_foriter(
    c: &mut Compiler,
    name: &str,
    pfi: &PrimitiveForIter,
    scheme: ForIterScheme,
    src: &BlockProv,
) -> Result<(NodeId, UsedScheme), CompileError> {
    c.g.set_provenance(if src.body != 0 { src.body } else { src.header });
    let (r, hi) = pfi.range();
    let n = (hi - r + 1) as u32; // total elements including the initial one
    debug_assert!(n >= 2, "classifier guarantees bound > start");

    let init = eval_static(&pfi.init_expr, &c.params).ok_or_else(|| {
        CompileError::Unsupported(format!(
            "block '{name}': initial element is not a manifest scalar"
        ))
    })?;

    let step = simplify(&pfi.step_inlined());
    let uses_feedback = step.mentions(&pfi.acc);

    // A loop that never reads its own past elements is a forall in
    // disguise: initial element merged with an unconditional step stream.
    if !uses_feedback {
        let node = compile_straight(c, name, pfi, &step, init, n)?;
        c.providers
            .insert(name.to_string(), Provider { node, lo: r, hi });
        return Ok((node, UsedScheme::Straight));
    }

    let linear = extract_linear(&step, &pfi.acc);
    let use_companion = match scheme {
        ForIterScheme::Todd => false,
        ForIterScheme::Companion => {
            if linear.is_none() {
                return Err(CompileError::Unsupported(format!(
                    "block '{name}': companion scheme requested but the recurrence is not linear in {}[i-1]",
                    pfi.acc
                )));
            }
            true
        }
        ForIterScheme::Auto => linear.is_some() && n >= 3,
    };

    let (node, used) = if use_companion {
        let lf = linear.expect("checked above");
        (
            compile_companion(c, name, pfi, &lf.alpha, &lf.beta, init, n)?,
            UsedScheme::Companion,
        )
    } else {
        (
            compile_todd(c, name, pfi, &step, init, n)?,
            UsedScheme::Todd,
        )
    };
    c.providers
        .insert(name.to_string(), Provider { node, lo: r, hi });
    Ok((node, used))
}

/// Degenerate case: the body never reads `X[i-1]`.
fn compile_straight(
    c: &mut Compiler,
    name: &str,
    pfi: &PrimitiveForIter,
    step: &Expr,
    init: Value,
    n: u32,
) -> Result<NodeId, CompileError> {
    let mut b = BlockBuilder::new(c, name, &pfi.index_var, pfi.start, pfi.bound - 1);
    let s = b.compile(step)?;
    let s = b.materialize(s);
    let ctl = c.ctlgen(CtlStream::all_but_first(n), &format!("{name}.mctl"));
    let l = c.label(&format!("{name}.merge"));
    let m = c.g.add_node(Opcode::Merge, l);
    c.g.connect(ctl, m, MERGE_CTL);
    c.g.connect(s, m, MERGE_TRUE);
    c.g.set_lit(m, MERGE_FALSE, init);
    Ok(m)
}

/// Todd's scheme (Fig. 7).
fn compile_todd(
    c: &mut Compiler,
    name: &str,
    pfi: &PrimitiveForIter,
    step: &Expr,
    init: Value,
    n: u32,
) -> Result<NodeId, CompileError> {
    // Feedback gate: drops the last element of each wave of X, so only
    // x_{r} … x_{bound-2} re-enter as x_{i-1}.
    let fb_ctl = c.ctlgen(CtlStream::all_but_last(n), &format!("{name}.fbctl"));
    let fb_label = c.label(&format!("{name}.xprev"));
    let gate = c.g.add_node(Opcode::TGate, fb_label);
    c.g.connect(fb_ctl, gate, 0);

    // Step subgraph over i = start … bound-1, reading X[i-1] from the gate.
    let mut b = BlockBuilder::new(c, name, &pfi.index_var, pfi.start, pfi.bound - 1);
    b.set_special_tap(&pfi.acc, -1, gate);
    let s = b.compile(step)?;
    let s = b.materialize(s);

    // Output merge: initial element first, then the step results.
    let ctl = c.ctlgen(CtlStream::all_but_first(n), &format!("{name}.mctl"));
    let l = c.label(&format!("{name}.merge"));
    let m = c.g.add_node(Opcode::Merge, l);
    c.g.connect(ctl, m, MERGE_CTL);
    c.g.connect(s, m, MERGE_TRUE);
    c.g.set_lit(m, MERGE_FALSE, init);

    // Close the cycle; liveness comes from the merge's literal operand.
    c.g.connect_back(m, gate, GATE_DATA);
    Ok(m)
}

/// Reference either a registered coefficient stream or a literal, as an
/// expression the block builder can compile.
fn coeff_expr(v: In, provider: &str, offset: i64, index_var: &str) -> Expr {
    match v {
        In::Lit(Value::Int(x)) => Expr::IntLit(x),
        In::Lit(Value::Real(x)) => Expr::RealLit(x),
        In::Lit(Value::Bool(x)) => Expr::BoolLit(x),
        In::Node(_) => {
            let idx = if offset == 0 {
                Expr::var(index_var)
            } else {
                Expr::bin(
                    if offset > 0 { BinOp::Add } else { BinOp::Sub },
                    Expr::var(index_var),
                    Expr::IntLit(offset.abs()),
                )
            };
            Expr::Index(provider.to_string(), Box::new(idx))
        }
    }
}

/// Companion scheme (Fig. 8).
fn compile_companion(
    c: &mut Compiler,
    name: &str,
    pfi: &PrimitiveForIter,
    alpha: &Expr,
    beta: &Expr,
    init: Value,
    n: u32,
) -> Result<NodeId, CompileError> {
    let iv = pfi.index_var.clone();
    let (lo_param, hi_param) = (pfi.start, pfi.bound - 1); // α/β domain

    // Coefficient streams α_i, β_i over i = start … bound-1.
    let a_name = format!("__{name}.alpha");
    let b_name = format!("__{name}.beta");
    let a_in = {
        let mut b = BlockBuilder::new(c, a_name.clone(), &iv, lo_param, hi_param);
        b.compile(alpha)?
    };
    if let In::Node(node) = a_in {
        c.providers.insert(
            a_name.clone(),
            Provider {
                node,
                lo: lo_param,
                hi: hi_param,
            },
        );
    }
    let b_in = {
        let mut b = BlockBuilder::new(c, b_name.clone(), &iv, lo_param, hi_param);
        b.compile(beta)?
    };
    if let In::Node(node) = b_in {
        c.providers.insert(
            b_name.clone(),
            Provider {
                node,
                lo: lo_param,
                hi: hi_param,
            },
        );
    }

    // Initial values: x_r = E0, x_p = α_p·x_r + β_p  (the dashed
    // "code for initial values" box of Fig. 8).
    let x_r = init;
    let x_start_expr = simplify(&Expr::bin(
        BinOp::Add,
        Expr::bin(BinOp::Mul, coeff_expr(a_in, &a_name, 0, &iv), lit_expr(x_r)),
        coeff_expr(b_in, &b_name, 0, &iv),
    ));
    let x_start = {
        let mut b = BlockBuilder::new(c, format!("{name}.init"), &iv, pfi.start, pfi.start);
        b.compile(&x_start_expr)?
    };
    let init_stream: In = if n == 2 {
        // No loop at all: the array is exactly [x_r, x_p].
        let m = merge2(c, name, In::Lit(x_r), x_start)?;
        return Ok(m);
    } else {
        let m = merge2(c, name, In::Lit(x_r), x_start)?;
        In::Node(m)
    };

    // Companion pipeline: c1 = α_i·α_{i-1}, c2 = α_i·β_{i-1} + β_i over
    // i = start+1 … bound-1.
    let (c1, c2) = {
        let mut b = BlockBuilder::new(c, format!("{name}.comp"), &iv, pfi.start + 1, pfi.bound - 1);
        let c1e = simplify(&Expr::bin(
            BinOp::Mul,
            coeff_expr(a_in, &a_name, 0, &iv),
            coeff_expr(a_in, &a_name, -1, &iv),
        ));
        let c2e = simplify(&Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Mul,
                coeff_expr(a_in, &a_name, 0, &iv),
                coeff_expr(b_in, &b_name, -1, &iv),
            ),
            coeff_expr(b_in, &b_name, 0, &iv),
        ));
        let c1 = b.compile(&c1e)?;
        let c2 = b.compile(&c2e)?;
        (c1, c2)
    };

    // The loop: xprev --MULT(c1)--> ADD(c2) --> MERGE --> gate --> xprev.
    // Four cells (even length), two circulating values → rate 1/2.
    let fb_ctl = c.ctlgen(CtlStream::all_but_last_k(n, 2), &format!("{name}.fbctl"));
    let gl = c.label(&format!("{name}.xprev2"));
    let gate = c.g.add_node(Opcode::TGate, gl);
    c.g.connect(fb_ctl, gate, 0);

    let ml = c.label(&format!("{name}.fmul"));
    let mul = c.g.add_node(Opcode::Bin(BinOp::Mul), ml);
    c.g.bind(c1, mul, 0);
    c.g.connect(gate, mul, 1);
    let al = c.label(&format!("{name}.fadd"));
    let add = c.g.add_node(Opcode::Bin(BinOp::Add), al);
    c.g.connect(mul, add, 0);
    c.g.bind(c2, add, 1);

    let ctl = c.ctlgen(CtlStream::all_but_first_k(n, 2), &format!("{name}.mctl"));
    let l = c.label(&format!("{name}.merge"));
    let m = c.g.add_node(Opcode::Merge, l);
    c.g.connect(ctl, m, MERGE_CTL);
    c.g.connect(add, m, MERGE_TRUE);
    c.g.bind(init_stream, m, MERGE_FALSE);

    c.g.connect_back(m, gate, GATE_DATA);
    Ok(m)
}

fn lit_expr(v: Value) -> Expr {
    match v {
        Value::Int(x) => Expr::IntLit(x),
        Value::Real(x) => Expr::RealLit(x),
        Value::Bool(x) => Expr::BoolLit(x),
    }
}

/// Two-element-per-wave merge `[first, second]` (control `<T F>`).
fn merge2(c: &mut Compiler, name: &str, first: In, second: In) -> Result<NodeId, CompileError> {
    let ctl = c.ctlgen(
        CtlStream::from_runs([(true, 1), (false, 1)]),
        &format!("{name}.ictl"),
    );
    let l = c.label(&format!("{name}.imerge"));
    let m = c.g.add_node(Opcode::Merge, l);
    c.g.connect(ctl, m, MERGE_CTL);
    c.g.bind(first, m, MERGE_TRUE);
    c.g.bind(second, m, MERGE_FALSE);
    Ok(m)
}
