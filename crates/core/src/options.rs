//! Compilation options.

use valpipe_balance::BalanceMode;

/// How `for-iter` recurrences are mapped (paper §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForIterScheme {
    /// Companion-pipeline scheme (Fig. 8) when the recurrence is linear in
    /// `X[i-1]`; Todd's scheme otherwise.
    #[default]
    Auto,
    /// Always Todd's scheme (Fig. 7): simple feedback, one token in the
    /// cycle, rate limited to `1 / cycle length`.
    Todd,
    /// Always the companion scheme (Fig. 8): dependence distance doubled
    /// via the companion function `G`, two tokens in the cycle, maximum
    /// rate. Fails on recurrences without a derivable companion.
    Companion,
}

/// Options controlling compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Recurrence mapping scheme.
    pub scheme: ForIterScheme,
    /// Global balancing algorithm (paper §8). `BalanceMode::None` disables
    /// buffer insertion entirely — useful for the imbalance ablations.
    pub balance: BalanceMode,
    /// Route program inputs through array-memory read cells and program
    /// outputs through array-memory write cells, modeling long-lived state
    /// (e.g. between time steps of a physics code, paper §2). Enables the
    /// array-memory traffic accounting experiments.
    pub am_boundary: bool,
    /// Keep blocks whose results reach no declared output (default:
    /// dead blocks are not compiled).
    pub keep_dead_blocks: bool,
    /// Lower every control/index generator into circuits of ordinary
    /// instruction cells (Todd's construction) before balancing, so the
    /// final program uses no primitive generator nodes.
    pub synthesize_generators: bool,
    /// Fuse cascaded static gates (nested static conditionals produce
    /// `TGate(s1) → TGate(s2)` chains that collapse into one gate with the
    /// composed selection) and sweep the dead cells. On by default.
    pub fuse_gates: bool,
}

impl CompileOptions {
    /// Options matching the paper's headline construction: auto scheme,
    /// optimal buffering, gate fusion.
    pub fn paper() -> Self {
        CompileOptions {
            scheme: ForIterScheme::Auto,
            balance: BalanceMode::Optimal,
            fuse_gates: true,
            ..Default::default()
        }
    }
}
