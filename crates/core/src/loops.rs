//! Local balancing of feedback-loop interiors.
//!
//! The global balancer freezes every arc inside a feedback loop (buffering
//! one would stretch the cycle and change the loop's rate), which requires
//! the loop interior itself to already be path-balanced. Recurrence bodies
//! that read `X[i-1]` at several different depths (e.g. `(x + B[i]) * x`)
//! violate this, so the for-iter compiler runs this pass: within each
//! strongly connected component, equalize every interior path by inserting
//! FIFOs *inside* the loop. This consciously lengthens the cycle — the
//! paper's point exactly: an unbalanced (or deep) recurrence cycle costs
//! rate, `1 / cycle-length` (§7).

use valpipe_balance::problem::{arc_weight, sccs};
use valpipe_ir::{ArcId, Graph};

/// Balance every loop interior; returns the number of buffer stages added.
pub fn balance_loop_interiors(g: &mut Graph) -> u64 {
    let scc = sccs(g);
    let n = g.node_count();

    // Collect interior forward arcs per component.
    let mut comp_size = vec![0usize; n];
    for i in 0..n {
        comp_size[scc[i]] += 1;
    }
    let interior: Vec<ArcId> = g
        .arc_ids()
        .filter(|a| {
            let e = &g.arcs[a.idx()];
            e.is_forward()
                && scc[e.src.idx()] == scc[e.dst.idx()]
                && comp_size[scc[e.src.idx()]] > 1
        })
        .collect();
    if interior.is_empty() {
        return 0;
    }

    // Local ASAP over the interior DAG.
    let mut indeg = vec![0usize; n];
    for &a in &interior {
        indeg[g.arcs[a.idx()].dst.idx()] += 1;
    }
    let members: Vec<usize> = (0..n).filter(|&i| comp_size[scc[i]] > 1).collect();
    let mut stack: Vec<usize> = members.iter().copied().filter(|&i| indeg[i] == 0).collect();
    let mut pot = vec![0i64; n];
    let mut order = Vec::new();
    let mut out: Vec<Vec<ArcId>> = vec![Vec::new(); n];
    for &a in &interior {
        out[g.arcs[a.idx()].src.idx()].push(a);
    }
    while let Some(u) = stack.pop() {
        order.push(u);
        for &a in &out[u] {
            let e = &g.arcs[a.idx()];
            let w = arc_weight(g, a);
            pot[e.dst.idx()] = pot[e.dst.idx()].max(pot[u] + w);
            indeg[e.dst.idx()] -= 1;
            if indeg[e.dst.idx()] == 0 {
                stack.push(e.dst.idx());
            }
        }
    }
    debug_assert_eq!(order.len(), members.len(), "loop interior must be a DAG");

    // Insert FIFOs on slack arcs.
    let mut added = 0u64;
    for &a in &interior {
        let e = &g.arcs[a.idx()];
        let slack = pot[e.dst.idx()] - pot[e.src.idx()] - arc_weight(g, a);
        debug_assert!(slack >= 0);
        if slack > 0 {
            g.insert_fifo_on_arc(a, slack as u32);
            added += slack as u64;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use valpipe_balance::problem::extract;
    use valpipe_ir::opcode::Opcode;
    use valpipe_ir::value::{BinOp, Value};

    #[test]
    fn unbalanced_loop_interior_fixed() {
        // Loop: a → b → c → a(init), plus shortcut a → c. Interior paths
        // a→b→c (2) vs a→c (1) disagree; the pass must insert FIFO(1).
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Id, "a");
        let b = g.cell(Opcode::Id, "b", &[a.into()]);
        let c = g.add_node(Opcode::Bin(BinOp::Add), "c");
        g.connect(b, c, 0);
        g.connect(a, c, 1);
        g.connect_init(c, a, 0, Value::Int(0));
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[c.into()]);
        assert!(extract(&g).is_err(), "interior starts inconsistent");
        let added = balance_loop_interiors(&mut g);
        assert_eq!(added, 1);
        assert!(extract(&g).is_ok(), "interior consistent after the pass");
    }

    #[test]
    fn balanced_loop_untouched() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Id, "a");
        let b = g.cell(Opcode::Id, "b", &[a.into()]);
        g.connect_init(b, a, 0, Value::Int(0));
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[b.into()]);
        assert_eq!(balance_loop_interiors(&mut g), 0);
    }

    #[test]
    fn acyclic_graph_untouched() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let b = g.cell(Opcode::Id, "b", &[a.into()]);
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[b.into()]);
        assert_eq!(balance_loop_interiors(&mut g), 0);
    }
}
