//! Minimal JSON: a value type, a recursive-descent parser, and a printer.
//!
//! Object member order is preserved (members are a `Vec` of pairs), so a
//! value printed and re-parsed prints identically — the stability the
//! machine-code on-disk format relies on for its round-trip tests.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(members: I) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member of an object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload (`Float` values with zero fraction also qualify).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            Json::Float(v) if v.fract() == 0.0 && v.abs() < 9e18 => Some(v as i64),
            _ => None,
        }
    }

    /// Numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Compact rendering (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes `.0` for integral
                    // floats — keeping Int and Float distinguishable.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(
                out,
                indent,
                depth,
                '[',
                ']',
                items.iter(),
                |out, item, ind, d| {
                    item.write(out, ind, d);
                },
            ),
            Json::Obj(members) => write_seq(
                out,
                indent,
                depth,
                '{',
                '}',
                members.iter(),
                |out, (k, v), ind, d| {
                    write_escaped(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    v.write(out, ind, d);
                },
            ),
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Maximum nesting depth accepted by the parser. Documents arriving over
/// the wire are untrusted; without a cap, deeply nested `[[[[...` input
/// overflows the stack of the recursive-descent parser.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        let v = match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        };
        self.depth -= 1;
        v
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by any of our
                            // producers; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s_rest = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s_rest.chars().next().unwrap_or('\u{FFFD}');
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            match text.parse::<i64>() {
                Ok(v) => Ok(Json::Int(v)),
                // Integer overflow: fall back to float like other parsers.
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("bad number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_stability() {
        let v = Json::obj([
            ("name", Json::Str("a \"quoted\" string\n".into())),
            (
                "xs",
                Json::Arr(vec![Json::Int(1), Json::Float(2.5), Json::Null]),
            ),
            ("flag", Json::Bool(true)),
            ("nested", Json::obj([("k", Json::Int(-7))])),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, v);
            assert_eq!(Json::parse(&back.to_compact()).unwrap(), v);
        }
    }

    #[test]
    fn parses_standard_forms() {
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(
            Json::parse(r#"{"a": [1, 2], "b": "x"}"#).unwrap().get("a"),
            Some(&Json::Arr(vec![Json::Int(1), Json::Int(2)]))
        );
    }

    #[test]
    fn float_formatting_keeps_type_distinction() {
        assert_eq!(Json::Float(2.0).to_compact(), "2.0");
        assert_eq!(Json::Int(2).to_compact(), "2");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(Json::parse("2").unwrap(), Json::Int(2));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{not json", "[1,", "\"open", "tru", "{\"a\" 1}", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("tab\there".into());
        assert_eq!(v.to_compact(), "\"tab\\there\"");
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
        let u = Json::parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(u, Json::Str("Aé".into()));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "f": 1.5, "s": "x", "b": false}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
    }
}
