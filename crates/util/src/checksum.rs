//! Byte-stream checksums for on-disk formats.
//!
//! The snapshot format of `valpipe-machine` (and any future durable
//! artifact) needs a cheap integrity check that is stable across
//! platforms and releases: a truncated or bit-flipped file must be
//! *detected*, never interpreted. FNV-1a over the raw bytes is enough —
//! this is corruption detection on trusted storage, not an adversarial
//! MAC — and its one-multiply-per-byte inner loop keeps checkpointing
//! off the simulator's critical path.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xCBF29CE484222325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x00000100000001B3;

/// FNV-1a 64-bit checksum of a byte stream.
///
/// Stable by definition (the constants are part of the format): the same
/// bytes yield the same checksum on every platform and in every release,
/// which is what makes committed golden snapshots verifiable.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut acc = FNV_OFFSET;
    for &b in bytes {
        acc ^= b as u64;
        acc = acc.wrapping_mul(FNV_PRIME);
    }
    acc
}

/// Incremental FNV-1a 64-bit checksum, for writers that produce a stream
/// in sections and want the digest without re-walking the whole buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum64 {
    acc: u64,
}

impl Default for Checksum64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Checksum64 {
    /// A fresh digest (equal to `checksum64(&[])` when finished).
    pub fn new() -> Self {
        Checksum64 { acc: FNV_OFFSET }
    }

    /// Fold more bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.acc ^= b as u64;
            self.acc = self.acc.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(checksum64(b""), 0xCBF29CE484222325);
        assert_eq!(checksum64(b"a"), 0xAF63DC4C8601EC8C);
        assert_eq!(checksum64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn detects_single_bit_flips_and_truncation() {
        let data: Vec<u8> = (0u16..512).map(|i| (i % 251) as u8).collect();
        let base = checksum64(&data);
        for i in [0usize, 7, 255, 511] {
            let mut corrupt = data.clone();
            corrupt[i] ^= 0x10;
            assert_ne!(checksum64(&corrupt), base, "flip at byte {i} undetected");
        }
        assert_ne!(checksum64(&data[..511]), base, "truncation undetected");
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut inc = Checksum64::new();
        for chunk in data.chunks(5) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish(), checksum64(data));
    }
}
