//! Deterministic pseudo-random numbers (SplitMix64).
//!
//! SplitMix64 passes BigCrush for the purposes we need (test-case
//! generation, fault sampling, synthetic traffic) and its entire state is
//! one `u64`, which makes seeding and forking trivial. It is **not** a
//! cryptographic generator and is not meant to be.

/// One SplitMix64 mixing round: maps any 64-bit input to a well-scrambled
/// 64-bit output. Also usable as a standalone hash finalizer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Mix an arbitrary sequence of words into one scrambled word. Used to
/// derive *position-keyed* random values (e.g. "should the packet on arc
/// `a` at step `t` be dropped?") that do not depend on event ordering.
pub fn hash_mix(words: &[u64]) -> u64 {
    let mut acc = 0x6A09E667F3BCC909u64; // fractional bits of sqrt(2)
    for &w in words {
        acc = splitmix64(acc ^ w);
    }
    splitmix64(acc)
}

/// A deterministic PRNG with a single `u64` of state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn seed(seed: u64) -> Self {
        // Scramble once so that small consecutive seeds (0, 1, 2, …) do
        // not produce visibly correlated first outputs.
        Rng {
            state: splitmix64(seed ^ 0x5851F42D4C957F2D),
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "Rng::below(0)");
        // Multiply-shift bounded sampling (Lemire); the slight modulo bias
        // of the plain approach is irrelevant here, but this is just as
        // cheap and unbiased enough for bounds far below 2^64.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)` (half-open). Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range({lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `i64` in `[lo, hi)` (half-open). Panics if `lo >= hi`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "Rng::range_i64({lo}, {hi})");
        lo + ((self.next_u64() as u128 * (hi - lo) as u128) >> 64) as i64
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fair coin.
    #[inline]
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fork an independent generator keyed by `salt`. The child stream is
    /// uncorrelated with both the parent stream and forks at other salts.
    pub fn fork(&self, salt: u64) -> Rng {
        Rng {
            state: hash_mix(&[self.state, salt]),
        }
    }

    /// Split off an independent child generator, advancing this stream
    /// by one draw. Unlike [`Rng::fork`] (which derives children *at
    /// rest* by salt), `split` hands out a fresh uncorrelated stream per
    /// call — the natural shape for seeding one generator per worker or
    /// per workload chain from a single root without inventing salts.
    pub fn split(&mut self) -> Rng {
        // Scramble the draw once more so the child's first outputs share
        // no mixing trajectory with the parent's subsequent ones.
        Rng {
            state: splitmix64(self.next_u64()),
        }
    }

    /// Export the raw generator state — the whole generator is one word,
    /// so this is everything a checkpoint needs to resume the stream.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator from an exported [`Rng::state`]. Unlike
    /// [`Rng::seed`], the word is used verbatim (no scrambling), so
    /// `Rng::from_state(r.state())` continues exactly where `r` was.
    pub fn from_state(state: u64) -> Rng {
        Rng { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed(42);
        let mut b = Rng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Rng::seed(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.range(3, 13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..1000 {
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn chance_is_calibrated() {
        let mut r = Rng::seed(99);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.25).abs() < 0.01, "observed {freq}");
    }

    #[test]
    fn hash_mix_is_order_sensitive_and_stable() {
        assert_eq!(hash_mix(&[1, 2, 3]), hash_mix(&[1, 2, 3]));
        assert_ne!(hash_mix(&[1, 2, 3]), hash_mix(&[3, 2, 1]));
        assert_ne!(hash_mix(&[0]), hash_mix(&[0, 0]));
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut r = Rng::seed(42);
        for _ in 0..10 {
            r.next_u64();
        }
        let mut resumed = Rng::from_state(r.state());
        for _ in 0..10 {
            assert_eq!(r.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn splits_are_independent_and_deterministic() {
        let mut a = Rng::seed(5);
        let mut b = Rng::seed(5);
        let mut c1 = a.split();
        assert_eq!(c1, b.split(), "same seed, same split");
        assert_eq!(a, b, "parents advance identically");
        let mut c2 = a.split();
        let s1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        let parent: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_ne!(s1, s2, "sibling splits differ");
        assert_ne!(s1, parent, "child differs from parent");
    }

    #[test]
    fn forks_are_independent() {
        let base = Rng::seed(5);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        let a: Vec<u64> = (0..8).map(|_| f1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| f2.next_u64()).collect();
        assert_ne!(a, b);
    }
}
