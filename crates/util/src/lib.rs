//! # valpipe-util — zero-dependency workspace utilities
//!
//! The build environment for this repository has **no registry access**, so
//! the workspace carries no external crates at all. This crate supplies the
//! two pieces of infrastructure the rest of the workspace would otherwise
//! pull from crates.io:
//!
//! * [`rng`] — a small, fast, deterministic PRNG (SplitMix64) used by the
//!   fault-injection engine, the randomized property tests, and the
//!   random-DAG experiment generators. Determinism is load-bearing: a
//!   `FaultPlan` seeded with the same value must perturb exactly the same
//!   packets on every run.
//! * [`json`] — a minimal JSON value type with a parser and printer, used
//!   for the on-disk machine-code format ([`Graph::to_json`]) and the
//!   experiment/trace JSON emitters.
//! * [`checksum`] — FNV-1a integrity checksums for durable binary
//!   artifacts (the machine crate's snapshot format).
//!
//! [`Graph::to_json`]: https://docs.rs/valpipe-ir

#![warn(missing_docs)]

pub mod checksum;
pub mod json;
pub mod rng;

pub use checksum::{checksum64, Checksum64};
pub use json::{Json, JsonError};
pub use rng::{hash_mix, Rng};
