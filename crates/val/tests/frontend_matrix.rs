//! Frontend accept/reject matrix: systematic coverage of the paper's
//! structural definitions — what is and is not a primitive expression,
//! primitive forall, primitive for-iter, simple for-iter.

use valpipe_ir::Value;
use valpipe_val::classify::{
    check_primitive_expr, check_primitive_foriter, is_scalar_primitive, NameEnv, Violation,
};
use valpipe_val::fold::Bindings;
use valpipe_val::parser::{parse_block_body, parse_expr, parse_program};
use valpipe_val::{extract_linear, BlockBody};

fn env() -> NameEnv {
    let mut params = Bindings::new();
    params.insert("m".into(), Value::Int(10));
    NameEnv::new(
        Some("i"),
        ["s".to_string()],
        ["A", "B", "X"].map(str::to_string),
        params,
    )
}

#[test]
fn primitive_expression_matrix() {
    // (source, accepted?)
    let cases: &[(&str, bool)] = &[
        // rule 1: literals
        ("1", true),
        ("2.5", true),
        ("true", true),
        // rule 2: scalar identifiers (incl. index var, params)
        ("i", true),
        ("m", true),
        ("s", true),
        ("nosuch", false),
        ("A", false), // array as scalar
        // rule 3: operators
        ("i + m * 2", true),
        ("(i < m) & (i > 0)", true),
        // rule 4: array selection
        ("A[i]", true),
        ("A[i+1]", true),
        ("A[i-m]", true),
        ("A[m+i]", true),
        ("A[2*i]", false),
        ("A[i+i]", false),
        ("A[B[i]]", false),
        ("Z[i]", false), // unknown array
        // rule 5: let-in
        ("let p := A[i] in p * p endlet", true),
        ("let p := A[2*i] in p endlet", false),
        // rule 6: conditional
        ("if i = 0 then A[i] else B[i-1] endif", true),
        ("if A[i] > 0. then 1. else 2. endif", true),
        // not PEs: constructors
        ("[0: 1.]", false),
        ("X[i: 1.]", false),
    ];
    for (src, want) in cases {
        let e = parse_expr(src).unwrap();
        let got = check_primitive_expr(&e, &env()).is_ok();
        assert_eq!(got, *want, "PE({src})");
    }
}

#[test]
fn scalar_primitive_matrix() {
    assert!(is_scalar_primitive(&parse_expr("i + m").unwrap(), &env()));
    assert!(is_scalar_primitive(
        &parse_expr("if i < m then 1. else 2. endif").unwrap(),
        &env()
    ));
    assert!(!is_scalar_primitive(&parse_expr("A[i]").unwrap(), &env()));
}

#[test]
fn foriter_shape_matrix() {
    // Each (body, acceptable) — shells around a canonical loop skeleton.
    let shell = |inits: &str, body: &str| format!("for {inits} do {body} endfor");
    let canon_inits = "i : integer := 1; T : array[real] := [0: 0.]";
    let ok_body = "if i < m then iter T := T[i: T[i-1] + A[i]]; i := i + 1 enditer else T endif";
    let cases: Vec<(String, bool, &str)> = vec![
        (shell(canon_inits, ok_body), true, "canonical"),
        (
            shell("i : integer := 1", ok_body),
            false,
            "missing accumulator init",
        ),
        (
            shell(canon_inits, "if i < m then iter T := T[i: 0.]; i := i + 2 enditer else T endif"),
            false,
            "index must advance by one",
        ),
        (
            shell(canon_inits, "if i < m then iter T := T[i: 0.]; i := i + 1 enditer else A endif"),
            false,
            "terminating arm must be the accumulator",
        ),
        (
            shell(canon_inits, "if i < A[0] then iter T := T[i: 0.]; i := i + 1 enditer else T endif"),
            false,
            "bound must be manifest",
        ),
        (
            shell(
                "i : integer := 1; T : array[real] := [0: A[0]]",
                ok_body,
            ),
            false,
            "initial element must be a scalar PE (no arrays)",
        ),
        (
            // let-wrapped body is fine.
            shell(
                canon_inits,
                "let p : real := A[i] in if i < m then iter T := T[i: p]; i := i + 1 enditer else T endif endlet",
            ),
            true,
            "hoisted lets",
        ),
    ];
    for (src, want, what) in cases {
        let BlockBody::ForIter(fi) = parse_block_body(&src).unwrap() else {
            panic!("parse {what}")
        };
        let got = check_primitive_foriter(&fi, &env()).is_ok();
        assert_eq!(got, want, "{what}: {src}");
    }
}

#[test]
fn simple_foriter_requires_linearity() {
    let linear = "for i : integer := 1; T : array[real] := [0: 0.]
do if i < m then iter T := T[i: 2.*T[i-1] - A[i]]; i := i + 1 enditer else T endif endfor";
    let nonlinear = "for i : integer := 1; T : array[real] := [0: 0.]
do if i < m then iter T := T[i: T[i-1]*A[i] + T[i-1]*T[i-1]]; i := i + 1 enditer else T endif endfor";
    for (src, want) in [(linear, true), (nonlinear, false)] {
        let BlockBody::ForIter(fi) = parse_block_body(src).unwrap() else {
            panic!()
        };
        let pfi = check_primitive_foriter(&fi, &env()).unwrap();
        assert_eq!(
            extract_linear(&pfi.step_inlined(), &pfi.acc).is_some(),
            want,
            "{src}"
        );
    }
}

#[test]
fn parse_error_positions() {
    for (src, line) in [
        ("param m = ;", 1),
        ("param m = 3;\ninput B array[real] [0, m];", 2),
        (
            "param m = 3;\n\nA : array[real] := forall i in [0 m] construct 1. endall;",
            3,
        ),
    ] {
        let err = parse_program(src).unwrap_err();
        assert_eq!(err.line, line, "{src}");
    }
}

#[test]
fn violation_messages_are_informative() {
    let e = parse_expr("A[2*i]").unwrap();
    let v = check_primitive_expr(&e, &env()).unwrap_err();
    assert!(matches!(v, Violation::BadIndexForm { .. }));
    assert!(v.to_string().contains("A"));
    let e = parse_expr("Z[i]").unwrap();
    let v = check_primitive_expr(&e, &env()).unwrap_err();
    assert!(v.to_string().contains("Z"));
}

#[test]
fn lexer_keywords_and_adjacent_tokens() {
    // `forall` vs identifier prefix, `in` inside `construct`, etc.
    let src = "forall inx in [0, 1] construct inx endall";
    let BlockBody::Forall(f) = parse_block_body(src).unwrap() else {
        panic!()
    };
    assert_eq!(f.index_var, "inx");
}

#[test]
fn trailing_garbage_rejected() {
    assert!(parse_expr("1 + 2 :=").is_err());
    assert!(parse_block_body("forall i in [0, 1] construct 1. endall extra").is_err());
}

#[test]
fn typecheck_error_paths() {
    use valpipe_val::typeck::check_program;
    // Loop result type must match the block's declared type.
    let bad_result = "
param m = 4;
X : array[integer] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do if i < m then iter T := T[i: 1.]; i := i + 1 enditer else T endif
  endfor;
output X;
";
    let p = parse_program(bad_result).unwrap();
    assert!(check_program(&p).is_err());

    // Boolean condition required.
    let bad_cond = "
param m = 4;
input B : array[real] [0, m];
A : array[real] := forall i in [0, m] construct if B[i] then 1. else 2. endif endall;
output A;
";
    let p = parse_program(bad_cond).unwrap();
    assert!(check_program(&p).is_err());

    // Accumulation type must match the declared element type.
    let bad_elem = "
param m = 4;
input B : array[real] [0, m];
A : array[boolean] := forall i in [0, m] construct B[i] endall;
output A;
";
    let p = parse_program(bad_elem).unwrap();
    assert!(check_program(&p).is_err());
}

#[test]
fn eval_static_handles_lets_and_conditionals() {
    use valpipe_ir::Value;
    use valpipe_val::fold::eval_static;
    let mut env = Bindings::new();
    env.insert("m".into(), Value::Int(7));
    let e =
        parse_expr("let a := m * 2; b := a - 3 in if b > 10 then b else a endif endlet").unwrap();
    assert_eq!(eval_static(&e, &env), Some(Value::Int(11)));
    // Unknown name → None, not a panic.
    let e = parse_expr("let a := q in a endlet").unwrap();
    assert_eq!(eval_static(&e, &env), None);
}

#[test]
fn interp_conditional_arm_promotion() {
    use std::collections::HashMap;
    use valpipe_val::interp::{run_program, ArrayVal};
    // Int arm + real arm: runtime values may be Int or Real per element;
    // comparisons by numeric value.
    let src = "
param m = 3;
input B : array[real] [0, m];
A : array[real] := forall i in [0, m] construct if i < 2 then 1 else B[i] endif endall;
output A;
";
    let p = parse_program(src).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert("B".into(), ArrayVal::from_reals(0, &[0.5, 1.5, 2.5, 3.5]));
    let out = run_program(&p, &inputs).unwrap();
    assert_eq!(out["A"].to_reals(), vec![1.0, 1.0, 2.5, 3.5]);
}
