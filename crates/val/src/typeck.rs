//! Type checking for the Val subset.
//!
//! Besides catching errors, the checker performs one rewrite: the paper
//! (and Val) spell both boolean negation and an idiomatic arithmetic
//! negation with `~`, so `~` parses as `NOT` and is rewritten to `NEG`
//! when its operand is numeric.
//!
//! Numeric promotion follows Val: mixing `integer` and `real` yields
//! `real`; comparisons accept mixed numerics; `&`, `|`, `~` (boolean) need
//! booleans.

use crate::ast::*;
use crate::srcmap::{SourceMap, StmtKey};
use std::collections::HashMap;
use std::fmt;

/// Type error with context.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    /// Description.
    pub message: String,
    /// Enclosing block name, if known.
    pub block: Option<String>,
    /// Enclosing definition (or loop-init) name within the block, if known.
    pub def: Option<String>,
    /// Rendered source location (`file:line:col`), filled by
    /// [`check_program_mapped`] when a [`SourceMap`] is available.
    pub loc: Option<String>,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(loc) = &self.loc {
            write!(f, "{loc}: ")?;
        }
        write!(f, "type error")?;
        if let Some(b) = &self.block {
            write!(f, " in block '{b}'")?;
            if let Some(d) = &self.def {
                write!(f, ", definition '{d}'")?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for TypeError {}

fn terr(msg: impl Into<String>) -> TypeError {
    TypeError {
        message: msg.into(),
        block: None,
        def: None,
        loc: None,
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, TypeError> {
    Err(terr(msg))
}

/// Scalar/array typing environment.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    vars: HashMap<String, Type>,
}

impl TypeEnv {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a name.
    pub fn bind(&mut self, name: impl Into<String>, ty: Type) {
        self.vars.insert(name.into(), ty);
    }

    /// Look up a name.
    pub fn get(&self, name: &str) -> Option<&Type> {
        self.vars.get(name)
    }

    /// Deterministic rendering of the whole environment — bindings sorted
    /// by name — for content fingerprinting. Two environments with equal
    /// canonical forms type any expression identically, so this is a
    /// sound cache key for per-block checking.
    pub fn canonical(&self) -> String {
        let mut items: Vec<_> = self.vars.iter().collect();
        items.sort_by(|a, b| a.0.cmp(b.0));
        let mut out = String::new();
        for (name, ty) in items {
            out.push_str(name);
            out.push(':');
            out.push_str(&ty.to_string());
            out.push(';');
        }
        out
    }
}

/// Least upper bound of two numeric types (int ⊔ real = real).
fn join_numeric(a: &Type, b: &Type) -> Option<Type> {
    match (a, b) {
        (Type::Int, Type::Int) => Some(Type::Int),
        (Type::Int, Type::Real) | (Type::Real, Type::Int) | (Type::Real, Type::Real) => {
            Some(Type::Real)
        }
        _ => None,
    }
}

/// Type-check an expression, returning its type and the (possibly
/// rewritten) expression. `Iter` is rejected here; for-iter bodies use
/// [`check_foriter_body`].
pub fn check_expr(expr: &Expr, env: &TypeEnv) -> Result<(Type, Expr), TypeError> {
    match expr {
        Expr::IntLit(v) => Ok((Type::Int, Expr::IntLit(*v))),
        Expr::RealLit(v) => Ok((Type::Real, Expr::RealLit(*v))),
        Expr::BoolLit(v) => Ok((Type::Bool, Expr::BoolLit(*v))),
        Expr::Var(name) => match env.get(name) {
            Some(t) => Ok((t.clone(), Expr::Var(name.clone()))),
            None => err(format!("unbound name '{name}'")),
        },
        Expr::Bin(op, a, b) => {
            let (ta, ea) = check_expr(a, env)?;
            let (tb, eb) = check_expr(b, env)?;
            let ty = bin_type(*op, &ta, &tb).ok_or_else(|| {
                terr(format!(
                    "operator {} applied to {ta} and {tb}",
                    op.mnemonic()
                ))
            })?;
            Ok((ty, Expr::bin(*op, ea, eb)))
        }
        Expr::Un(op, a) => {
            let (ta, ea) = check_expr(a, env)?;
            match (op, &ta) {
                (UnOp::Neg, t) if t.is_numeric() => Ok((ta, Expr::un(UnOp::Neg, ea))),
                (UnOp::Not, Type::Bool) => Ok((Type::Bool, Expr::un(UnOp::Not, ea))),
                // `~` on a numeric operand means arithmetic negation.
                (UnOp::Not, t) if t.is_numeric() => Ok((ta, Expr::un(UnOp::Neg, ea))),
                (UnOp::Neg, Type::Bool) => Ok((Type::Bool, Expr::un(UnOp::Not, ea))),
                (UnOp::Abs, t) if t.is_numeric() => Ok((ta, Expr::un(UnOp::Abs, ea))),
                _ => err(format!("operator {} applied to {ta}", op.mnemonic())),
            }
        }
        Expr::Index(name, idx) => {
            let Some(arr_ty) = env.get(name).cloned() else {
                return err(format!("unbound array '{name}'"));
            };
            let Some(elem) = arr_ty.elem().cloned() else {
                return err(format!("'{name}' indexed but has type {arr_ty}"));
            };
            let (ti, ei) = check_expr(idx, env)?;
            if ti != Type::Int {
                return err(format!("index of '{name}' has type {ti}, expected integer"));
            }
            Ok((elem, Expr::Index(name.clone(), Box::new(ei))))
        }
        Expr::If(c, t, e) => {
            let (tc, ec) = check_expr(c, env)?;
            if tc != Type::Bool {
                return err(format!("condition has type {tc}, expected boolean"));
            }
            let (tt, et) = check_expr(t, env)?;
            let (te, ee) = check_expr(e, env)?;
            let ty = if tt == te {
                tt
            } else if let Some(j) = join_numeric(&tt, &te) {
                j
            } else {
                return err(format!("conditional arms have types {tt} and {te}"));
            };
            Ok((ty, Expr::if_(ec, et, ee)))
        }
        Expr::Let(defs, body) => {
            let mut inner = env.clone();
            let mut new_defs = Vec::with_capacity(defs.len());
            for d in defs {
                let (tv, ev) = check_expr(&d.value, &inner)?;
                if let Some(declared) = &d.ty {
                    let ok = declared == &tv || (declared == &Type::Real && tv == Type::Int);
                    if !ok {
                        return err(format!(
                            "definition '{}' declared {declared} but has type {tv}",
                            d.name
                        ));
                    }
                }
                let bound_ty = d.ty.clone().unwrap_or(tv);
                inner.bind(&d.name, bound_ty.clone());
                new_defs.push(Def {
                    name: d.name.clone(),
                    ty: Some(bound_ty),
                    value: ev,
                });
            }
            let (tb, eb) = check_expr(body, &inner)?;
            Ok((tb, Expr::Let(new_defs, Box::new(eb))))
        }
        Expr::Index2(name, ..) => err(format!(
            "two-dimensional access to '{name}' must be flattened before type checking"
        )),
        Expr::Iter(_) => err("'iter' outside a for-iter loop body"),
        Expr::Append(name, idx, val) => {
            let Some(arr_ty) = env.get(name).cloned() else {
                return err(format!("unbound array '{name}'"));
            };
            let Some(elem) = arr_ty.elem().cloned() else {
                return err(format!("'{name}' appended to but has type {arr_ty}"));
            };
            let (ti, ei) = check_expr(idx, env)?;
            if ti != Type::Int {
                return err(format!("append index has type {ti}, expected integer"));
            }
            let (tv, ev) = check_expr(val, env)?;
            if tv != elem && !(elem == Type::Real && tv == Type::Int) {
                return err(format!("appending {tv} to array of {elem}"));
            }
            Ok((
                arr_ty,
                Expr::Append(name.clone(), Box::new(ei), Box::new(ev)),
            ))
        }
        Expr::ArrayInit(idx, val) => {
            let (ti, ei) = check_expr(idx, env)?;
            if ti != Type::Int {
                return err(format!("array-init index has type {ti}, expected integer"));
            }
            let (tv, ev) = check_expr(val, env)?;
            Ok((
                Type::Array(Box::new(tv)),
                Expr::ArrayInit(Box::new(ei), Box::new(ev)),
            ))
        }
    }
}

fn bin_type(op: BinOp, a: &Type, b: &Type) -> Option<Type> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod | Min | Max => join_numeric(a, b),
        Lt | Le | Gt | Ge => join_numeric(a, b).map(|_| Type::Bool),
        Eq | Ne => {
            if a == b || join_numeric(a, b).is_some() {
                Some(Type::Bool)
            } else {
                None
            }
        }
        And | Or => (a == &Type::Bool && b == &Type::Bool).then_some(Type::Bool),
    }
}

/// Check a for-iter body: `Iter` clauses may appear only in tail position
/// (the body itself, a conditional arm, or a let body); every other tail
/// yields the loop result. Returns the result type and rewritten body.
pub fn check_foriter_body(
    body: &Expr,
    env: &TypeEnv,
    loop_vars: &HashMap<String, Type>,
) -> Result<(Type, Expr), TypeError> {
    match body {
        Expr::Iter(binds) => {
            let mut new = Vec::with_capacity(binds.len());
            for (name, e) in binds {
                let Some(expected) = loop_vars.get(name) else {
                    return err(format!("'iter' rebinds '{name}', which is not a loop name"));
                };
                let (tv, ev) = check_expr(e, env)?;
                if &tv != expected && !(expected == &Type::Real && tv == Type::Int) {
                    return err(format!(
                        "'iter' rebinds '{name}' ({expected}) with a {tv} value"
                    ));
                }
                new.push((name.clone(), ev));
            }
            // An iter clause has no value of its own; report as the unit of
            // the iteration. We use the (arbitrary) convention that its
            // "type" is the type of the whole loop, resolved by the caller;
            // internally we mark it with a placeholder.
            Ok((Type::Bool, Expr::Iter(new))) // placeholder type, never joined
        }
        Expr::If(c, t, e) => {
            let (tc, ec) = check_expr(c, env)?;
            if tc != Type::Bool {
                return err(format!("loop condition has type {tc}, expected boolean"));
            }
            let (tt, et) = check_foriter_body(t, env, loop_vars)?;
            let (te, ee) = check_foriter_body(e, env, loop_vars)?;
            // If one arm iterates, the loop's type is the other arm's.
            let ty = match (
                matches!(**t, Expr::Iter(_)) || contains_iter(&et),
                matches!(**e, Expr::Iter(_)) || contains_iter(&ee),
            ) {
                (true, false) => te,
                (false, true) => tt,
                (false, false) => {
                    if tt == te {
                        tt
                    } else if let Some(j) = join_numeric(&tt, &te) {
                        j
                    } else {
                        return err(format!("loop arms have types {tt} and {te}"));
                    }
                }
                (true, true) => tt, // both iterate: loop can only spin; caller rejects
            };
            Ok((ty, Expr::if_(ec, et, ee)))
        }
        Expr::Let(defs, inner) => {
            let mut scoped = env.clone();
            let mut new_defs = Vec::with_capacity(defs.len());
            for d in defs {
                let (tv, ev) = check_expr(&d.value, &scoped)?;
                if let Some(declared) = &d.ty {
                    let ok = declared == &tv || (declared == &Type::Real && tv == Type::Int);
                    if !ok {
                        return err(format!(
                            "definition '{}' declared {declared} but has type {tv}",
                            d.name
                        ));
                    }
                }
                let bound_ty = d.ty.clone().unwrap_or(tv);
                scoped.bind(&d.name, bound_ty.clone());
                new_defs.push(Def {
                    name: d.name.clone(),
                    ty: Some(bound_ty),
                    value: ev,
                });
            }
            let (ty, eb) = check_foriter_body(inner, &scoped, loop_vars)?;
            Ok((ty, Expr::Let(new_defs, Box::new(eb))))
        }
        other => check_expr(other, env),
    }
}

fn contains_iter(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if matches!(x, Expr::Iter(_)) {
            found = true;
        }
    });
    found
}

/// Build the typing environment a program's blocks are checked under:
/// every `param` bound at `integer`, every `input` at its array type.
/// Rejects inputs with non-scalar elements. Block bindings are added by
/// the caller as blocks are checked in declaration order.
pub fn program_prelude_env(prog: &Program) -> Result<TypeEnv, TypeError> {
    let mut env = TypeEnv::new();
    for (name, _) in &prog.params {
        env.bind(name, Type::Int);
    }
    for input in &prog.inputs {
        if !input.elem_ty.is_scalar() {
            return err(format!("input '{}' must have scalar elements", input.name));
        }
        env.bind(&input.name, Type::Array(Box::new(input.elem_ty.clone())));
    }
    Ok(env)
}

/// Type-check one block against an environment holding everything
/// declared before it. Returns the rewritten block (with `~`
/// disambiguated and every definition annotated); errors carry the
/// block/def context but no source location — callers attach one via
/// [`attach_loc`] when they hold a [`SourceMap`].
///
/// The result depends only on `block` and the bindings in `env`, which is
/// what lets the incremental engine cache it keyed by the pair's content.
pub fn check_block(block: &BlockDecl, env: &TypeEnv) -> Result<BlockDecl, TypeError> {
    let in_block = |mut e: TypeError| {
        e.block = Some(block.name.clone());
        e
    };
    let Some(elem) = block.ty.elem().cloned() else {
        return Err(in_block(terr(format!(
            "block type {} is not an array type",
            block.ty
        ))));
    };
    let body = match &block.body {
        BlockBody::Forall(f) => {
            let mut inner = env.clone();
            inner.bind(&f.index_var, Type::Int);
            let mut new_defs = Vec::new();
            for d in &f.defs {
                let in_def = |mut e: TypeError| {
                    e.def = Some(d.name.clone());
                    in_block(e)
                };
                let (tv, ev) = check_expr(&d.value, &inner).map_err(in_def)?;
                if let Some(declared) = &d.ty {
                    let ok = declared == &tv || (declared == &Type::Real && tv == Type::Int);
                    if !ok {
                        return Err(in_def(terr(format!(
                            "declared {declared} but has type {tv}"
                        ))));
                    }
                }
                let bty = d.ty.clone().unwrap_or(tv);
                inner.bind(&d.name, bty.clone());
                new_defs.push(Def {
                    name: d.name.clone(),
                    ty: Some(bty),
                    value: ev,
                });
            }
            let (tb, eb) = check_expr(&f.body, &inner).map_err(in_block)?;
            if tb != elem && !(elem == Type::Real && tb == Type::Int) {
                return Err(in_block(terr(format!(
                    "accumulation has type {tb}, block declares {elem}"
                ))));
            }
            BlockBody::Forall(Forall {
                defs: new_defs,
                body: eb,
                ..f.clone()
            })
        }
        BlockBody::ForIter(fi) => {
            let mut inner = env.clone();
            let mut loop_vars = HashMap::new();
            let mut new_inits = Vec::new();
            for d in &fi.inits {
                let in_def = |mut e: TypeError| {
                    e.def = Some(d.name.clone());
                    in_block(e)
                };
                let (tv, ev) = check_expr(&d.value, &inner).map_err(in_def)?;
                let bty = d.ty.clone().unwrap_or(tv);
                inner.bind(&d.name, bty.clone());
                loop_vars.insert(d.name.clone(), bty.clone());
                new_inits.push(Def {
                    name: d.name.clone(),
                    ty: Some(bty),
                    value: ev,
                });
            }
            let (tb, eb) = check_foriter_body(&fi.body, &inner, &loop_vars).map_err(in_block)?;
            if tb != block.ty {
                return Err(in_block(terr(format!(
                    "loop result has type {tb}, block declares {}",
                    block.ty
                ))));
            }
            BlockBody::ForIter(ForIter {
                inits: new_inits,
                body: eb,
            })
        }
    };
    Ok(BlockDecl {
        name: block.name.clone(),
        ty: block.ty.clone(),
        body,
    })
}

/// Type-check a whole program. Returns the rewritten program (with `~`
/// disambiguated and every definition annotated).
pub fn check_program(prog: &Program) -> Result<Program, TypeError> {
    let mut env = program_prelude_env(prog)?;
    let mut out = prog.clone();
    for (bi, block) in prog.blocks.iter().enumerate() {
        out.blocks[bi] = check_block(block, &env)?;
        env.bind(&block.name, block.ty.clone());
    }
    for o in &prog.outputs {
        if env.get(o).is_none() {
            return err(format!("output '{o}' is not a declared block or input"));
        }
    }
    Ok(out)
}

/// Resolve a [`TypeError`]'s source location (`file:line:col`) through
/// the statement [`SourceMap`] produced by `parse_program_mapped` or
/// `program_to_source_mapped`. Shared by the whole-program checker and
/// the incremental engine, which attaches locations to *cached* errors at
/// use time (locations depend on where a block sits, not on its text, so
/// they must never be baked into a content-keyed cache entry).
pub fn attach_loc(mut e: TypeError, map: &SourceMap) -> TypeError {
    let span = match (&e.block, &e.def) {
        (Some(b), Some(d)) => map
            .span(&StmtKey::BlockDef(b.clone(), d.clone()))
            .or_else(|| map.span(&StmtKey::BlockInit(b.clone(), d.clone()))),
        (Some(b), None) => map
            .span(&StmtKey::BlockBody(b.clone()))
            .or_else(|| map.span(&StmtKey::BlockHeader(b.clone()))),
        (None, _) => None,
    };
    if let Some(span) = span {
        e.loc = Some(format!("{}:{span}", map.file));
    }
    e
}

/// Type-check a program and, on failure, resolve the error's source
/// location through the statement [`SourceMap`].
pub fn check_program_mapped(prog: &Program, map: &SourceMap) -> Result<Program, TypeError> {
    check_program(prog).map_err(|e| attach_loc(e, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program, FIG3_PROGRAM};

    fn env_with(pairs: &[(&str, Type)]) -> TypeEnv {
        let mut e = TypeEnv::new();
        for (n, t) in pairs {
            e.bind(*n, t.clone());
        }
        e
    }

    #[test]
    fn arithmetic_promotion() {
        let env = env_with(&[("i", Type::Int)]);
        let (t, _) = check_expr(&parse_expr("i + 1").unwrap(), &env).unwrap();
        assert_eq!(t, Type::Int);
        let (t, _) = check_expr(&parse_expr("i + 1.5").unwrap(), &env).unwrap();
        assert_eq!(t, Type::Real);
    }

    #[test]
    fn tilde_rewritten_to_neg_on_numeric() {
        let env = env_with(&[("x", Type::Real)]);
        let (t, e) = check_expr(&parse_expr("~(x + 1.)").unwrap(), &env).unwrap();
        assert_eq!(t, Type::Real);
        assert!(matches!(e, Expr::Un(UnOp::Neg, _)));
    }

    #[test]
    fn tilde_stays_not_on_bool() {
        let env = env_with(&[("b", Type::Bool)]);
        let (t, e) = check_expr(&parse_expr("~b").unwrap(), &env).unwrap();
        assert_eq!(t, Type::Bool);
        assert!(matches!(e, Expr::Un(UnOp::Not, _)));
    }

    #[test]
    fn index_requires_array_and_int() {
        let env = env_with(&[
            ("A", Type::Array(Box::new(Type::Real))),
            ("i", Type::Int),
            ("x", Type::Real),
        ]);
        assert!(check_expr(&parse_expr("A[i]").unwrap(), &env).is_ok());
        assert!(check_expr(&parse_expr("A[x]").unwrap(), &env).is_err());
        assert!(check_expr(&parse_expr("x[i]").unwrap(), &env).is_err());
    }

    #[test]
    fn conditional_arm_mismatch_rejected() {
        let env = env_with(&[("b", Type::Bool)]);
        assert!(check_expr(&parse_expr("if b then 1 else true endif").unwrap(), &env).is_err());
        let (t, _) = check_expr(&parse_expr("if b then 1 else 2.5 endif").unwrap(), &env).unwrap();
        assert_eq!(t, Type::Real);
    }

    #[test]
    fn let_binds_and_annotates() {
        let env = env_with(&[("a", Type::Real)]);
        let (t, e) = check_expr(
            &parse_expr("let p := a * a in p + 1. endlet").unwrap(),
            &env,
        )
        .unwrap();
        assert_eq!(t, Type::Real);
        let Expr::Let(defs, _) = e else { panic!() };
        assert_eq!(defs[0].ty, Some(Type::Real));
    }

    #[test]
    fn iter_outside_loop_rejected() {
        let env = TypeEnv::new();
        assert!(check_expr(&parse_expr("iter x := 1 enditer").unwrap(), &env).is_err());
    }

    #[test]
    fn fig3_program_checks() {
        let p = parse_program(FIG3_PROGRAM).unwrap();
        let checked = check_program(&p).unwrap();
        // The forall's P def got annotated.
        let BlockBody::Forall(f) = &checked.blocks[0].body else {
            panic!()
        };
        assert_eq!(f.defs[0].ty, Some(Type::Real));
    }

    #[test]
    fn undeclared_output_rejected() {
        let mut p = parse_program(FIG3_PROGRAM).unwrap();
        p.outputs.push("nosuch".into());
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn mapped_error_carries_location_and_def() {
        let src = "\
param m = 4;
input A : array[real] [0, m];
B : array[real] :=
  forall i in [1, m]
    P : integer := A[i];
  construct
    P
  endall;
output B;
";
        let (p, map) = crate::parser::parse_program_mapped(src, "ex.val").unwrap();
        let e = check_program_mapped(&p, &map).unwrap_err();
        assert_eq!(e.block.as_deref(), Some("B"));
        assert_eq!(e.def.as_deref(), Some("P"));
        // The def `P : integer := A[i]` starts at line 5, column 5.
        assert_eq!(e.loc.as_deref(), Some("ex.val:5:5"));
        let msg = e.to_string();
        assert!(
            msg.starts_with("ex.val:5:5: type error in block 'B', definition 'P':"),
            "unexpected rendering: {msg}"
        );
    }

    #[test]
    fn iter_of_nonloop_name_rejected() {
        let src = "
param m = 4;
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    if i < m then iter Q := 1 enditer else T endif
  endfor;
output X;
";
        let p = parse_program(src).unwrap();
        assert!(check_program(&p).is_err());
    }
}
