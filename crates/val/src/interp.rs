//! Reference interpreter — the correctness oracle.
//!
//! Executes pipe-structured programs directly over materialized arrays
//! (no pipelining, no dataflow). Every compiled program's output stream is
//! checked against this interpreter in the test suites.

use crate::ast::*;
use crate::fold::Bindings;
use std::collections::HashMap;
use std::fmt;
use valpipe_ir::value::{apply_bin, apply_un, Value};

/// A materialized array value with an explicit inclusive index range.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayVal {
    /// Least index.
    pub lo: i64,
    /// Elements for indices `lo ..= lo + data.len() - 1`.
    pub data: Vec<Value>,
}

impl ArrayVal {
    /// Build from reals.
    pub fn from_reals(lo: i64, vals: &[f64]) -> Self {
        ArrayVal {
            lo,
            data: vals.iter().map(|&v| Value::Real(v)).collect(),
        }
    }

    /// Build from integers.
    pub fn from_ints(lo: i64, vals: &[i64]) -> Self {
        ArrayVal {
            lo,
            data: vals.iter().map(|&v| Value::Int(v)).collect(),
        }
    }

    /// Row-major flattening of a 2-D grid (index origin 0).
    pub fn from_grid(rows: &[Vec<f64>]) -> Self {
        let data = rows
            .iter()
            .flat_map(|r| r.iter().map(|&v| Value::Real(v)))
            .collect();
        ArrayVal { lo: 0, data }
    }

    /// Reshape a flattened row-major array into rows of `width`.
    pub fn to_grid(&self, width: usize) -> Vec<Vec<f64>> {
        self.to_reals().chunks(width).map(<[f64]>::to_vec).collect()
    }

    /// Greatest index.
    pub fn hi(&self) -> i64 {
        self.lo + self.data.len() as i64 - 1
    }

    /// Element at absolute index, if in range.
    pub fn get(&self, idx: i64) -> Option<Value> {
        if idx < self.lo {
            return None;
        }
        self.data.get((idx - self.lo) as usize).copied()
    }

    /// View as reals (integers promoted).
    pub fn to_reals(&self) -> Vec<f64> {
        self.data
            .iter()
            .map(|v| v.as_real().expect("non-numeric array element"))
            .collect()
    }
}

/// Runtime value: scalar or array.
#[derive(Debug, Clone, PartialEq)]
pub enum RtVal {
    /// Scalar packet value.
    Scalar(Value),
    /// Materialized array.
    Array(ArrayVal),
}

impl RtVal {
    fn scalar(&self) -> Result<Value, InterpError> {
        match self {
            RtVal::Scalar(v) => Ok(*v),
            RtVal::Array(_) => fail("expected scalar, found array"),
        }
    }
}

/// Interpreter fault (unbound names, out-of-range access, type error…).
#[derive(Debug, Clone, PartialEq)]
pub struct InterpError(pub String);

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpreter error: {}", self.0)
    }
}

impl std::error::Error for InterpError {}

fn fail<T>(msg: impl Into<String>) -> Result<T, InterpError> {
    Err(InterpError(msg.into()))
}

type Env = HashMap<String, RtVal>;

/// Result of evaluating a for-iter loop body once.
enum BodyOutcome {
    /// `iter` chosen: rebind these loop names and go again.
    Iterate(Vec<(String, RtVal)>),
    /// Any other value terminates the loop with this result.
    Done(RtVal),
}

fn eval(expr: &Expr, env: &Env) -> Result<RtVal, InterpError> {
    match expr {
        Expr::IntLit(v) => Ok(RtVal::Scalar(Value::Int(*v))),
        Expr::RealLit(v) => Ok(RtVal::Scalar(Value::Real(*v))),
        Expr::BoolLit(v) => Ok(RtVal::Scalar(Value::Bool(*v))),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| InterpError(format!("unbound name '{name}'"))),
        Expr::Bin(op, a, b) => {
            let a = eval(a, env)?.scalar()?;
            let b = eval(b, env)?.scalar()?;
            apply_bin(*op, a, b)
                .map(RtVal::Scalar)
                .map_err(|e| InterpError(e.0))
        }
        Expr::Un(op, a) => {
            let a = eval(a, env)?.scalar()?;
            // `~` on numerics means negation (see typeck).
            let op = match (op, a) {
                (UnOp::Not, Value::Int(_) | Value::Real(_)) => UnOp::Neg,
                (UnOp::Neg, Value::Bool(_)) => UnOp::Not,
                _ => *op,
            };
            apply_un(op, a)
                .map(RtVal::Scalar)
                .map_err(|e| InterpError(e.0))
        }
        Expr::Index(name, idx) => {
            let idx = eval(idx, env)?.scalar()?;
            let Some(i) = idx.as_int() else {
                return fail(format!("index into '{name}' is not an integer"));
            };
            match env.get(name) {
                Some(RtVal::Array(a)) => a.get(i).map(RtVal::Scalar).ok_or_else(|| {
                    InterpError(format!(
                        "index {i} out of range [{}, {}] of '{name}'",
                        a.lo,
                        a.hi()
                    ))
                }),
                Some(RtVal::Scalar(_)) => fail(format!("'{name}' is not an array")),
                None => fail(format!("unbound array '{name}'")),
            }
        }
        Expr::If(c, t, e) => match eval(c, env)?.scalar()? {
            Value::Bool(true) => eval(t, env),
            Value::Bool(false) => eval(e, env),
            v => fail(format!("condition evaluated to {v}, expected boolean")),
        },
        Expr::Let(defs, body) => {
            let mut inner = env.clone();
            for d in defs {
                let v = eval(&d.value, &inner)?;
                inner.insert(d.name.clone(), v);
            }
            eval(body, &inner)
        }
        Expr::Index2(name, ..) => fail(format!(
            "two-dimensional access to '{name}' must be flattened before interpretation"
        )),
        Expr::Iter(_) => fail("'iter' outside a loop body"),
        Expr::Append(name, idx, val) => {
            let idx = eval(idx, env)?.scalar()?;
            let Some(i) = idx.as_int() else {
                return fail("append index is not an integer");
            };
            let v = eval(val, env)?.scalar()?;
            match env.get(name) {
                Some(RtVal::Array(a)) => {
                    if i != a.hi() + 1 {
                        return fail(format!(
                            "append at index {i} but '{name}' ends at {} (appends must be dense)",
                            a.hi()
                        ));
                    }
                    let mut a = a.clone();
                    a.data.push(v);
                    Ok(RtVal::Array(a))
                }
                _ => fail(format!("'{name}' is not an array")),
            }
        }
        Expr::ArrayInit(idx, val) => {
            let idx = eval(idx, env)?.scalar()?;
            let Some(i) = idx.as_int() else {
                return fail("array-init index is not an integer");
            };
            let v = eval(val, env)?.scalar()?;
            Ok(RtVal::Array(ArrayVal {
                lo: i,
                data: vec![v],
            }))
        }
    }
}

fn eval_loop_body(expr: &Expr, env: &Env) -> Result<BodyOutcome, InterpError> {
    match expr {
        Expr::Iter(binds) => {
            let mut out = Vec::with_capacity(binds.len());
            for (name, e) in binds {
                out.push((name.clone(), eval(e, env)?));
            }
            Ok(BodyOutcome::Iterate(out))
        }
        Expr::If(c, t, e) => match eval(c, env)?.scalar()? {
            Value::Bool(true) => eval_loop_body(t, env),
            Value::Bool(false) => eval_loop_body(e, env),
            v => fail(format!("loop condition evaluated to {v}")),
        },
        Expr::Let(defs, body) => {
            let mut inner = env.clone();
            for d in defs {
                let v = eval(&d.value, &inner)?;
                inner.insert(d.name.clone(), v);
            }
            eval_loop_body(body, &inner)
        }
        other => Ok(BodyOutcome::Done(eval(other, env)?)),
    }
}

/// Iteration-count guard for runaway loops.
pub const MAX_ITERATIONS: u64 = 50_000_000;

/// Evaluate one for-iter construct to its result value.
pub fn eval_foriter(fi: &ForIter, env: &Env) -> Result<RtVal, InterpError> {
    let mut state = env.clone();
    for d in &fi.inits {
        let v = eval(&d.value, &state)?;
        state.insert(d.name.clone(), v);
    }
    let mut iterations = 0u64;
    loop {
        match eval_loop_body(&fi.body, &state)? {
            BodyOutcome::Done(v) => return Ok(v),
            BodyOutcome::Iterate(binds) => {
                for (name, v) in binds {
                    state.insert(name, v);
                }
            }
        }
        iterations += 1;
        if iterations > MAX_ITERATIONS {
            return fail("loop exceeded the iteration guard (non-terminating?)");
        }
    }
}

/// Evaluate one forall construct to its array value, given the manifest
/// range bounds.
pub fn eval_forall(f: &Forall, lo: i64, hi: i64, env: &Env) -> Result<ArrayVal, InterpError> {
    if hi < lo {
        return fail(format!("empty forall range [{lo}, {hi}]"));
    }
    // Guard the element count with the same iteration ceiling as for-iter:
    // a hostile range like [0, i64::MAX] must report, not exhaust memory.
    let count = (hi - lo) as u64 + 1;
    if count > MAX_ITERATIONS {
        return fail(format!(
            "forall range [{lo}, {hi}] exceeds the iteration guard"
        ));
    }
    let mut data = Vec::with_capacity(count as usize);
    for i in lo..=hi {
        let mut inner = env.clone();
        inner.insert(f.index_var.clone(), RtVal::Scalar(Value::Int(i)));
        for d in &f.defs {
            let v = eval(&d.value, &inner)?;
            inner.insert(d.name.clone(), v);
        }
        data.push(eval(&f.body, &inner)?.scalar()?);
    }
    Ok(ArrayVal { lo, data })
}

/// Run a whole pipe-structured program over the given input arrays.
/// Returns the block results for every declared output.
pub fn run_program(
    prog: &Program,
    inputs: &HashMap<String, ArrayVal>,
) -> Result<HashMap<String, ArrayVal>, InterpError> {
    let mut env = Env::new();
    let mut params = Bindings::new();
    for (name, v) in &prog.params {
        env.insert(name.clone(), RtVal::Scalar(Value::Int(*v)));
        params.insert(name.clone(), Value::Int(*v));
    }
    for decl in &prog.inputs {
        let Some(arr) = inputs.get(&decl.name) else {
            return fail(format!("no input bound for '{}'", decl.name));
        };
        let lo = crate::fold::eval_manifest_int(&decl.range.0, &params).map_err(InterpError)?;
        let hi = crate::fold::eval_manifest_int(&decl.range.1, &params).map_err(InterpError)?;
        if arr.lo != lo || arr.hi() != hi {
            return fail(format!(
                "input '{}' declared [{lo}, {hi}] but bound [{}, {}]",
                decl.name,
                arr.lo,
                arr.hi()
            ));
        }
        env.insert(decl.name.clone(), RtVal::Array(arr.clone()));
    }
    for block in &prog.blocks {
        let value = match &block.body {
            BlockBody::Forall(f) => {
                let lo =
                    crate::fold::eval_manifest_int(&f.range.0, &params).map_err(InterpError)?;
                let hi =
                    crate::fold::eval_manifest_int(&f.range.1, &params).map_err(InterpError)?;
                RtVal::Array(eval_forall(f, lo, hi, &env)?)
            }
            BlockBody::ForIter(fi) => eval_foriter(fi, &env)?,
        };
        if !matches!(value, RtVal::Array(_)) {
            return fail(format!("block '{}' did not produce an array", block.name));
        }
        env.insert(block.name.clone(), value);
    }
    let mut out = HashMap::new();
    for name in &prog.outputs {
        match env.get(name) {
            Some(RtVal::Array(a)) => {
                out.insert(name.clone(), a.clone());
            }
            _ => return fail(format!("output '{name}' is not an array value")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, FIG3_PROGRAM};

    /// Direct reimplementation of the paper's two examples in Rust, used to
    /// cross-check the interpreter.
    fn example1_reference(b: &[f64], c: &[f64]) -> Vec<f64> {
        let mp2 = c.len(); // indices 0..=m+1
        (0..mp2)
            .map(|i| {
                let p = if i == 0 || i == mp2 - 1 {
                    c[i]
                } else {
                    0.25 * (c[i - 1] + 2.0 * c[i] + c[i + 1])
                };
                b[i] * p * p
            })
            .collect()
    }

    fn example2_reference(a: &[f64], b: &[f64], m: usize) -> Vec<f64> {
        // x_0 = 0; x_i = A[i]*x_{i-1} + B[i] for i = 1..m-1.
        let mut x = vec![0.0];
        for i in 1..m {
            x.push(a[i] * x[i - 1] + b[i]);
        }
        x
    }

    #[test]
    fn fig3_program_matches_reference() {
        let prog = parse_program(FIG3_PROGRAM).unwrap();
        let prog = crate::typeck::check_program(&prog).unwrap();
        let m = 32usize;
        let b: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.37).sin()).collect();
        let c: Vec<f64> = (0..m + 2).map(|i| (i as f64 * 0.21).cos()).collect();
        let mut inputs = HashMap::new();
        inputs.insert("B".to_string(), ArrayVal::from_reals(0, &b));
        inputs.insert("C".to_string(), ArrayVal::from_reals(0, &c));
        let out = run_program(&prog, &inputs).unwrap();

        let a_ref = example1_reference(&b, &c);
        let a_got = out["A"].to_reals();
        assert_eq!(a_got.len(), a_ref.len());
        for (g, r) in a_got.iter().zip(&a_ref) {
            assert!((g - r).abs() < 1e-12, "{g} vs {r}");
        }

        let x_ref = example2_reference(&a_ref, &b, m);
        let x_got = out["X"].to_reals();
        assert_eq!(out["X"].lo, 0);
        assert_eq!(x_got.len(), x_ref.len());
        for (g, r) in x_got.iter().zip(&x_ref) {
            assert!((g - r).abs() < 1e-9, "{g} vs {r}");
        }
    }

    #[test]
    fn out_of_range_access_reported() {
        let src = "
param m = 4;
input C : array[real] [0, m];
A : array[real] := forall i in [0, m] construct C[i+1] endall;
output A;
";
        let prog = parse_program(src).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("C".into(), ArrayVal::from_reals(0, &[0., 1., 2., 3., 4.]));
        let err = run_program(&prog, &inputs).unwrap_err();
        assert!(err.0.contains("out of range"), "{err}");
    }

    #[test]
    fn input_range_mismatch_reported() {
        let src = "
param m = 4;
input C : array[real] [0, m];
A : array[real] := forall i in [0, m] construct C[i] endall;
output A;
";
        let prog = parse_program(src).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("C".into(), ArrayVal::from_reals(0, &[0., 1., 2.]));
        assert!(run_program(&prog, &inputs).is_err());
    }

    #[test]
    fn sparse_append_rejected() {
        let src = "
param m = 4;
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    if i < m then iter T := T[i+1: 1.]; i := i + 1 enditer else T endif
  endfor;
output X;
";
        let prog = parse_program(src).unwrap();
        let err = run_program(&prog, &HashMap::new()).unwrap_err();
        assert!(err.0.contains("dense"), "{err}");
    }

    #[test]
    fn array_val_accessors() {
        let a = ArrayVal::from_ints(-2, &[5, 6, 7]);
        assert_eq!(a.hi(), 0);
        assert_eq!(a.get(-2), Some(Value::Int(5)));
        assert_eq!(a.get(0), Some(Value::Int(7)));
        assert_eq!(a.get(1), None);
        assert_eq!(a.get(-3), None);
    }
}
