//! Multi-dimensional arrays (§9): *"The extension of this work to array
//! values of multiple dimension is straightforward."*
//!
//! A two-dimensional array over `[a,b] × [c,d]` is represented exactly as
//! the paper treats every array — a sequence of result packets — in
//! row-major order. This pass lowers 2-D programs to the 1-D core:
//!
//! * a 2-D `forall i in [a,b], j in [c,d]` becomes a 1-D forall over the
//!   flattened index `k ∈ [0, N·W−1]` (`N` rows, `W` columns), with
//!   `i ↦ a + k/W` and `j ↦ c + k mod W` substituted into value positions
//!   (both are primitive expressions in `k`, so boundary conditions like
//!   `(j = c) | (j = d)` stay statically analyzable);
//! * an access `A[i+di][j+dj]` becomes the 1-D window tap
//!   `A[k + ((a−a_A+di)·W + (c−c_A+dj))]` — a *constant* offset, so all of
//!   the paper's gating/skew machinery (Fig. 4) applies unchanged. This
//!   requires the consumer's column range to have the same width as the
//!   producer's (row-major strides must agree); other shapes are rejected
//!   with a clear error.
//!
//! Flattening runs before type checking; the rest of the stack never sees
//! a 2-D construct.

use crate::ast::*;
use crate::classify::index_offset;
use crate::fold::{eval_manifest_int, Bindings};
use std::collections::HashMap;
use valpipe_ir::value::Value;

/// Manifest 2-D shape of an array (both ranges inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim2 {
    /// Row range `[a, b]`.
    pub rows: (i64, i64),
    /// Column range `[c, d]`.
    pub cols: (i64, i64),
}

impl Dim2 {
    /// Number of columns (the row-major stride).
    pub fn width(&self) -> i64 {
        self.cols.1 - self.cols.0 + 1
    }

    /// Number of rows.
    pub fn height(&self) -> i64 {
        self.rows.1 - self.rows.0 + 1
    }

    /// Total flattened length.
    pub fn len(&self) -> i64 {
        self.width() * self.height()
    }

    /// Shapes are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Shapes of the program's 2-D arrays, for reshaping flattened results.
#[derive(Debug, Clone, Default)]
pub struct FlattenInfo {
    /// Array name → original shape.
    pub shapes: HashMap<String, Dim2>,
}

fn fail<T>(msg: impl Into<String>) -> Result<T, String> {
    Err(msg.into())
}

struct Ctx<'a> {
    params: &'a Bindings,
    shapes: &'a HashMap<String, Dim2>,
    /// (i, j, k) names plus the iteration origin and width.
    frame: Option<Frame2>,
}

#[derive(Clone)]
struct Frame2 {
    i: String,
    j: String,
    k: String,
    a: i64,
    c: i64,
    w: i64,
}

fn rewrite(e: &Expr, ctx: &Ctx) -> Result<Expr, String> {
    match e {
        Expr::Index2(name, e1, e2) => {
            let Some(shape) = ctx.shapes.get(name) else {
                return fail(format!("'{name}' accessed as two-dimensional but is not"));
            };
            let Some(f) = &ctx.frame else {
                return fail(format!(
                    "two-dimensional access to '{name}' outside a two-dimensional forall"
                ));
            };
            let Some(d1) = index_offset(e1, &f.i, ctx.params) else {
                return fail(format!(
                    "row subscript of '{name}' is not of the form {} + constant",
                    f.i
                ));
            };
            let Some(d2) = index_offset(e2, &f.j, ctx.params) else {
                return fail(format!(
                    "column subscript of '{name}' is not of the form {} + constant",
                    f.j
                ));
            };
            if shape.width() != f.w {
                return fail(format!(
                    "'{name}' has {} columns but the forall iterates over {} — row-major \
                     strides must agree for pipelined access",
                    shape.width(),
                    f.w
                ));
            }
            let offset = (f.a - shape.rows.0 + d1) * f.w + (f.c - shape.cols.0 + d2);
            let idx = match offset.cmp(&0) {
                std::cmp::Ordering::Equal => Expr::var(&f.k),
                std::cmp::Ordering::Greater => {
                    Expr::bin(BinOp::Add, Expr::var(&f.k), Expr::IntLit(offset))
                }
                std::cmp::Ordering::Less => {
                    Expr::bin(BinOp::Sub, Expr::var(&f.k), Expr::IntLit(-offset))
                }
            };
            Ok(Expr::Index(name.clone(), Box::new(idx)))
        }
        Expr::Index(name, idx) => {
            // A single subscript on a two-dimensional array reads its
            // flattened row-major stream directly (a deliberate view:
            // downstream 1-D blocks consume 2-D results element by
            // element, exactly as the machine streams them).
            if let Some(f) = &ctx.frame {
                if idx.mentions(&f.i) || idx.mentions(&f.j) {
                    return fail(format!(
                        "one-dimensional array '{name}' cannot be indexed by the \
                         two-dimensional loop variables (stride would not be constant)"
                    ));
                }
            }
            Ok(Expr::Index(name.clone(), Box::new(rewrite(idx, ctx)?)))
        }
        Expr::Var(n) => {
            if let Some(f) = &ctx.frame {
                // i ↦ a + k/W, j ↦ c + k mod W.
                if n == &f.i {
                    return Ok(Expr::bin(
                        BinOp::Add,
                        Expr::IntLit(f.a),
                        Expr::bin(BinOp::Div, Expr::var(&f.k), Expr::IntLit(f.w)),
                    ));
                }
                if n == &f.j {
                    return Ok(Expr::bin(
                        BinOp::Add,
                        Expr::IntLit(f.c),
                        Expr::bin(BinOp::Mod, Expr::var(&f.k), Expr::IntLit(f.w)),
                    ));
                }
            }
            Ok(e.clone())
        }
        Expr::Bin(op, a, b) => Ok(Expr::bin(*op, rewrite(a, ctx)?, rewrite(b, ctx)?)),
        Expr::Un(op, a) => Ok(Expr::un(*op, rewrite(a, ctx)?)),
        Expr::If(c, t, f) => Ok(Expr::if_(
            rewrite(c, ctx)?,
            rewrite(t, ctx)?,
            rewrite(f, ctx)?,
        )),
        Expr::Let(defs, body) => {
            let defs = defs
                .iter()
                .map(|d| {
                    Ok(Def {
                        name: d.name.clone(),
                        ty: d.ty.clone(),
                        value: rewrite(&d.value, ctx)?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Expr::Let(defs, Box::new(rewrite(body, ctx)?)))
        }
        Expr::Append(n, i, v) => Ok(Expr::Append(
            n.clone(),
            Box::new(rewrite(i, ctx)?),
            Box::new(rewrite(v, ctx)?),
        )),
        Expr::ArrayInit(i, v) => Ok(Expr::ArrayInit(
            Box::new(rewrite(i, ctx)?),
            Box::new(rewrite(v, ctx)?),
        )),
        Expr::Iter(binds) => Ok(Expr::Iter(
            binds
                .iter()
                .map(|(n, e)| Ok((n.clone(), rewrite(e, ctx)?)))
                .collect::<Result<Vec<_>, String>>()?,
        )),
        lit => Ok(lit.clone()),
    }
}

/// Flatten every 2-D construct. Returns the equivalent 1-D program plus
/// the original shapes (for reshaping flattened inputs/outputs).
pub fn flatten_program(prog: &Program) -> Result<(Program, FlattenInfo), String> {
    let mut params = Bindings::new();
    for (n, v) in &prog.params {
        params.insert(n.clone(), Value::Int(*v));
    }
    let mut shapes: HashMap<String, Dim2> = HashMap::new();
    let mut out = prog.clone();

    // Inputs.
    for (decl, orig) in out.inputs.iter_mut().zip(&prog.inputs) {
        if let Some((lo2, hi2)) = &orig.range2 {
            let a = eval_manifest_int(&orig.range.0, &params)?;
            let b = eval_manifest_int(&orig.range.1, &params)?;
            let c = eval_manifest_int(lo2, &params)?;
            let d = eval_manifest_int(hi2, &params)?;
            if b < a || d < c {
                return fail(format!("input '{}' has an empty dimension", orig.name));
            }
            let shape = Dim2 {
                rows: (a, b),
                cols: (c, d),
            };
            // `array[array[T]]` flattens to `array[T]`: the parser stored
            // `array[T]` as the element type, so unwrap one level.
            if let Type::Array(inner) = &decl.elem_ty {
                decl.elem_ty = (**inner).clone();
            }
            decl.range = (Expr::IntLit(0), Expr::IntLit(shape.len() - 1));
            decl.range2 = None;
            shapes.insert(orig.name.clone(), shape);
        }
    }

    // Blocks.
    for (block, orig) in out.blocks.iter_mut().zip(&prog.blocks) {
        match &orig.body {
            BlockBody::Forall(fa) => {
                let frame = if let Some((jvar, (jlo, jhi))) = &fa.second {
                    let a = eval_manifest_int(&fa.range.0, &params)?;
                    let b = eval_manifest_int(&fa.range.1, &params)?;
                    let c = eval_manifest_int(jlo, &params)?;
                    let d = eval_manifest_int(jhi, &params)?;
                    if b < a || d < c {
                        return fail(format!("block '{}' has an empty dimension", orig.name));
                    }
                    let shape = Dim2 {
                        rows: (a, b),
                        cols: (c, d),
                    };
                    shapes.insert(orig.name.clone(), shape);
                    Some((
                        Frame2 {
                            i: fa.index_var.clone(),
                            j: jvar.clone(),
                            k: format!("__k_{}", orig.name),
                            a,
                            c,
                            w: shape.width(),
                        },
                        shape,
                    ))
                } else {
                    None
                };
                let ctx = Ctx {
                    params: &params,
                    shapes: &shapes,
                    frame: frame.as_ref().map(|(f, _)| f.clone()),
                };
                let defs = fa
                    .defs
                    .iter()
                    .map(|dd| {
                        Ok(Def {
                            name: dd.name.clone(),
                            ty: dd.ty.clone(),
                            value: rewrite(&dd.value, &ctx)?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let body = rewrite(&fa.body, &ctx)?;
                let BlockBody::Forall(fo) = &mut block.body else {
                    return Err("internal: block body changed shape during flattening".into());
                };
                fo.defs = defs;
                fo.body = body;
                if let Some((f, shape)) = frame {
                    fo.index_var = f.k.clone();
                    fo.range = (Expr::IntLit(0), Expr::IntLit(shape.len() - 1));
                    fo.second = None;
                    // array[array[T]] → array[T].
                    if let Type::Array(inner) = &block.ty {
                        if matches!(**inner, Type::Array(_)) {
                            block.ty = (**inner).clone();
                        }
                    }
                }
            }
            BlockBody::ForIter(fi) => {
                // For-iter stays one-dimensional; only verify it touches no
                // 2-D array without flattened access.
                let ctx = Ctx {
                    params: &params,
                    shapes: &shapes,
                    frame: None,
                };
                let inits = fi
                    .inits
                    .iter()
                    .map(|dd| {
                        Ok(Def {
                            name: dd.name.clone(),
                            ty: dd.ty.clone(),
                            value: rewrite(&dd.value, &ctx)?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let body = rewrite(&fi.body, &ctx)?;
                let BlockBody::ForIter(fo) = &mut block.body else {
                    return Err("internal: block body changed shape during flattening".into());
                };
                fo.inits = inits;
                fo.body = body;
            }
        }
    }

    Ok((out, FlattenInfo { shapes }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, ArrayVal};
    use crate::parser::parse_program;

    const JACOBI: &str = "
param n = 6;
param m = 8;
input U : array[array[real]] [0, n+1][0, m+1];
V : array[array[real]] :=
  forall i in [0, n+1], j in [0, m+1]
  construct
    if (i = 0)|(i = n+1)|(j = 0)|(j = m+1) then U[i][j]
    else 0.25 * (U[i-1][j] + U[i+1][j] + U[i][j-1] + U[i][j+1])
    endif
  endall;
output V;
";

    fn grid(n: usize, m: usize) -> Vec<f64> {
        let mut v = Vec::new();
        for i in 0..n + 2 {
            for j in 0..m + 2 {
                v.push((i as f64 * 0.31).sin() + (j as f64 * 0.17).cos());
            }
        }
        v
    }

    #[test]
    fn jacobi_flattens_and_interprets() {
        let prog = parse_program(JACOBI).unwrap();
        let (flat, info) = flatten_program(&prog).unwrap();
        let shape = info.shapes["V"];
        assert_eq!(shape.width(), 10);
        assert_eq!(shape.height(), 8);
        // The flattened program is a plain 1-D pipe-structured program.
        assert!(crate::typeck::check_program(&flat).is_ok());
        assert!(crate::deps::analyze(&flat).is_ok());

        let (n, m) = (6usize, 8usize);
        let u = grid(n, m);
        let mut inputs = HashMap::new();
        inputs.insert("U".to_string(), ArrayVal::from_reals(0, &u));
        let out = run_program(&flat, &inputs).unwrap();
        let v = out["V"].to_reals();
        let w = m + 2;
        for i in 0..n + 2 {
            for j in 0..w {
                let k = i * w + j;
                let want = if i == 0 || i == n + 1 || j == 0 || j == w - 1 {
                    u[k]
                } else {
                    0.25 * (u[k - w] + u[k + w] + u[k - 1] + u[k + 1])
                };
                assert!((v[k] - want).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn stride_mismatch_rejected() {
        let src = "
param n = 4;
input U : array[array[real]] [0, n][0, n];
V : array[array[real]] :=
  forall i in [1, n-1], j in [1, n-2]
  construct U[i][j]
  endall;
output V;
";
        let prog = parse_program(src).unwrap();
        let err = flatten_program(&prog).unwrap_err();
        assert!(err.contains("strides"), "{err}");
    }

    #[test]
    fn one_d_array_with_2d_index_rejected() {
        let src = "
param n = 4;
input U : array[real] [0, n];
V : array[array[real]] :=
  forall i in [0, n], j in [0, n]
  construct U[i]
  endall;
output V;
";
        let prog = parse_program(src).unwrap();
        assert!(flatten_program(&prog).is_err());
    }

    #[test]
    fn two_d_access_outside_2d_forall_rejected() {
        let src = "
param n = 4;
input U : array[array[real]] [0, n][0, n];
V : array[real] := forall i in [0, n] construct U[i][0] endall;
output V;
";
        let prog = parse_program(src).unwrap();
        assert!(flatten_program(&prog).is_err());
    }

    #[test]
    fn pure_1d_program_unchanged() {
        let prog = parse_program(crate::parser::FIG3_PROGRAM).unwrap();
        let (flat, info) = flatten_program(&prog).unwrap();
        assert_eq!(flat, prog);
        assert!(info.shapes.is_empty());
    }
}
