//! Program classification — the paper's structural definitions.
//!
//! §5: *primitive expressions* (PE) on an index variable `i` — the only
//! expressions allowed inside pipelinable blocks. §6: *primitive forall*
//! expressions. §7: *primitive for-iter* constructs (the canonical
//! first-order-recurrence loop shape) and *simple for-iter* expressions
//! (those whose recurrence admits a companion function — see
//! [`crate::linear`]).

use crate::ast::*;
use crate::fold::{eval_manifest_int, Bindings};
use std::collections::HashSet;
use std::fmt;

/// Why an expression or block falls outside the pipelinable class.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A nested `forall` / `for-iter` / array constructor inside an
    /// expression (disallowed by the PE definition).
    NestedConstruct(&'static str),
    /// An array subscript not of the form `i + m` with manifest `m`.
    BadIndexForm {
        /// The array being accessed.
        array: String,
    },
    /// A name that is neither the index variable, a parameter, a local
    /// definition, nor a known array.
    UnknownName(String),
    /// An array identifier used where a scalar is required.
    ArrayAsScalar(String),
    /// The index range (or another manifest position) is not a
    /// compile-time constant.
    NotManifest(String),
    /// The for-iter does not match the canonical primitive shape.
    ForIterShape(String),
    /// The accumulating array is accessed at an offset other than `i-1`
    /// (not a first-order recurrence).
    NotFirstOrder {
        /// Offset actually used.
        offset: i64,
    },
    /// The recurrence body is not linear in `X[i-1]`, so no companion
    /// function is known.
    NoCompanion,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NestedConstruct(k) => write!(f, "nested {k} is not a primitive expression"),
            Violation::BadIndexForm { array } => {
                write!(f, "subscript of '{array}' is not of the form i + constant")
            }
            Violation::UnknownName(n) => write!(f, "unknown name '{n}'"),
            Violation::ArrayAsScalar(n) => write!(f, "array '{n}' used as a scalar"),
            Violation::NotManifest(what) => write!(f, "{what} is not a compile-time constant"),
            Violation::ForIterShape(why) => write!(f, "for-iter is not primitive: {why}"),
            Violation::NotFirstOrder { offset } => {
                write!(
                    f,
                    "recurrence accesses the accumulator at offset {offset}, not -1"
                )
            }
            Violation::NoCompanion => {
                write!(
                    f,
                    "recurrence is not linear in X[i-1]; no companion function derived"
                )
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Name environment for classification.
#[derive(Debug, Clone, Default)]
pub struct NameEnv {
    /// The index variable, if classifying "PE on i".
    pub index_var: Option<String>,
    /// Scalar names in scope (parameters, definitions, loop scalars).
    pub scalars: HashSet<String>,
    /// Array names in scope (inputs, earlier blocks, the accumulator).
    pub arrays: HashSet<String>,
    /// Manifest parameter values (for offset extraction).
    pub params: Bindings,
}

impl NameEnv {
    /// Environment with the given index variable, scalars and arrays.
    pub fn new(
        index_var: Option<&str>,
        scalars: impl IntoIterator<Item = String>,
        arrays: impl IntoIterator<Item = String>,
        params: Bindings,
    ) -> Self {
        NameEnv {
            index_var: index_var.map(str::to_string),
            scalars: scalars.into_iter().collect(),
            arrays: arrays.into_iter().collect(),
            params,
        }
    }

    fn is_scalar(&self, n: &str) -> bool {
        self.scalars.contains(n)
            || self.index_var.as_deref() == Some(n)
            || self.params.contains_key(n)
    }
}

/// Extract the manifest offset `m` from a subscript of the form `i + m`,
/// `m + i`, `i - m`, or bare `i` (`m` may be any manifest integer
/// expression over the parameters). Returns `None` for any other form —
/// rule (4) of the PE definition admits only these.
pub fn index_offset(idx: &Expr, index_var: &str, params: &Bindings) -> Option<i64> {
    match idx {
        Expr::Var(v) if v == index_var => Some(0),
        Expr::Bin(BinOp::Add, a, b) => match (&**a, &**b) {
            (Expr::Var(v), m) if v == index_var => eval_manifest_int(m, params).ok(),
            (m, Expr::Var(v)) if v == index_var => eval_manifest_int(m, params).ok(),
            _ => None,
        },
        Expr::Bin(BinOp::Sub, a, b) => match (&**a, &**b) {
            (Expr::Var(v), m) if v == index_var => eval_manifest_int(m, params).ok().map(|x| -x),
            _ => None,
        },
        _ => None,
    }
}

/// Check the PE rules (§5, rules 1–6). `Ok(())` iff `expr` is a primitive
/// expression on the environment's index variable.
pub fn check_primitive_expr(expr: &Expr, env: &NameEnv) -> Result<(), Violation> {
    match expr {
        Expr::IntLit(_) | Expr::RealLit(_) | Expr::BoolLit(_) => Ok(()), // rule 1
        Expr::Var(n) => {
            if env.is_scalar(n) {
                Ok(()) // rule 2
            } else if env.arrays.contains(n) {
                Err(Violation::ArrayAsScalar(n.clone()))
            } else {
                Err(Violation::UnknownName(n.clone()))
            }
        }
        Expr::Bin(_, a, b) => {
            check_primitive_expr(a, env)?;
            check_primitive_expr(b, env) // rule 3
        }
        Expr::Un(_, a) => check_primitive_expr(a, env),
        Expr::Index(name, idx) => {
            // rule 4: A[i + m]
            if !env.arrays.contains(name) {
                return Err(Violation::UnknownName(name.clone()));
            }
            let Some(iv) = env.index_var.as_deref() else {
                return Err(Violation::BadIndexForm {
                    array: name.clone(),
                });
            };
            match index_offset(idx, iv, &env.params) {
                Some(_) => Ok(()),
                None => Err(Violation::BadIndexForm {
                    array: name.clone(),
                }),
            }
        }
        Expr::Let(defs, body) => {
            // rule 5
            let mut inner = env.clone();
            for d in defs {
                check_primitive_expr(&d.value, &inner)?;
                inner.scalars.insert(d.name.clone());
            }
            check_primitive_expr(body, &inner)
        }
        Expr::If(c, t, e) => {
            // rule 6
            check_primitive_expr(c, env)?;
            check_primitive_expr(t, env)?;
            check_primitive_expr(e, env)
        }
        Expr::Index2(name, ..) => Err(Violation::BadIndexForm {
            array: name.clone(),
        }),
        Expr::Iter(_) => Err(Violation::NestedConstruct("iter")),
        Expr::Append(..) => Err(Violation::NestedConstruct("array append")),
        Expr::ArrayInit(..) => Err(Violation::NestedConstruct("array constructor")),
    }
}

/// Whether `expr` is a *scalar* primitive expression (rules 1,2,3,5,6 only
/// — no array access).
pub fn is_scalar_primitive(expr: &Expr, env: &NameEnv) -> bool {
    if check_primitive_expr(expr, env).is_err() {
        return false;
    }
    let mut has_index = false;
    expr.walk(&mut |e| {
        if matches!(e, Expr::Index(..)) {
            has_index = true;
        }
    });
    !has_index
}

/// One array access found in an expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayAccess {
    /// Array name.
    pub array: String,
    /// Manifest offset `m` in `A[i + m]`.
    pub offset: i64,
}

/// Collect every array access with its manifest offset. Call only on
/// expressions that passed [`check_primitive_expr`].
pub fn collect_accesses(expr: &Expr, index_var: &str, params: &Bindings) -> Vec<ArrayAccess> {
    let mut out = Vec::new();
    expr.walk(&mut |e| {
        if let Expr::Index(name, idx) = e {
            if let Some(offset) = index_offset(idx, index_var, params) {
                out.push(ArrayAccess {
                    array: name.clone(),
                    offset,
                });
            }
        }
    });
    out.sort();
    out.dedup();
    out
}

/// A validated primitive forall (§6).
#[derive(Debug, Clone)]
pub struct PrimitiveForall {
    /// Manifest index range.
    pub lo: i64,
    /// Manifest index range.
    pub hi: i64,
}

/// Check the primitive-forall conditions: manifest range, PE definitions
/// and accumulation.
pub fn check_primitive_forall(f: &Forall, env: &NameEnv) -> Result<PrimitiveForall, Violation> {
    let lo = eval_manifest_int(&f.range.0, &env.params)
        .map_err(|_| Violation::NotManifest("forall range low bound".into()))?;
    let hi = eval_manifest_int(&f.range.1, &env.params)
        .map_err(|_| Violation::NotManifest("forall range high bound".into()))?;
    let mut inner = env.clone();
    inner.index_var = Some(f.index_var.clone());
    for d in &f.defs {
        check_primitive_expr(&d.value, &inner)?;
        inner.scalars.insert(d.name.clone());
    }
    check_primitive_expr(&f.body, &inner)?;
    Ok(PrimitiveForall { lo, hi })
}

/// A validated primitive for-iter (§7): the canonical loop
///
/// ```text
/// for i := p; X := [r: E0] do
///   (lets…) if i < bound then iter X := X[i: E]; i := i+1 enditer else X endif
/// endfor
/// ```
///
/// appending elements for `i = p … bound-1`, with `r = p - 1` (dense).
#[derive(Debug, Clone)]
pub struct PrimitiveForIter {
    /// Loop index name.
    pub index_var: String,
    /// First appended index `p`.
    pub start: i64,
    /// Exclusive upper bound: the loop exits when `i = bound`.
    pub bound: i64,
    /// Accumulator array name `X`.
    pub acc: String,
    /// Initial element index `r` (= `start - 1`).
    pub init_index: i64,
    /// Initial element expression `E0` (scalar PE).
    pub init_expr: Expr,
    /// Hoisted `let` definitions from the body, in order.
    pub defs: Vec<Def>,
    /// The appended element expression `E` (PE on `i`, may access
    /// `X[i-1]`), *before* let-inlining.
    pub step_expr: Expr,
}

impl PrimitiveForIter {
    /// The produced array's manifest range `[r, bound-1]`.
    pub fn range(&self) -> (i64, i64) {
        (self.init_index, self.bound - 1)
    }

    /// The step expression with the hoisted lets re-applied then inlined —
    /// a self-contained PE for recurrence analysis.
    pub fn step_inlined(&self) -> Expr {
        let wrapped = if self.defs.is_empty() {
            self.step_expr.clone()
        } else {
            Expr::Let(self.defs.clone(), Box::new(self.step_expr.clone()))
        };
        crate::fold::inline_lets(&wrapped)
    }
}

fn shape_err<T>(why: impl Into<String>) -> Result<T, Violation> {
    Err(Violation::ForIterShape(why.into()))
}

/// Match a for-iter against the canonical primitive shape and validate
/// every PE condition.
pub fn check_primitive_foriter(fi: &ForIter, env: &NameEnv) -> Result<PrimitiveForIter, Violation> {
    // --- loop initializations: exactly i := p and X := [r: E0] ----------
    if fi.inits.len() != 2 {
        return shape_err(format!(
            "expected exactly 2 loop initializations, found {}",
            fi.inits.len()
        ));
    }
    let (idx_def, acc_def) = {
        let a = &fi.inits[0];
        let b = &fi.inits[1];
        if matches!(a.value, Expr::ArrayInit(..)) {
            (b, a)
        } else {
            (a, b)
        }
    };
    let start = eval_manifest_int(&idx_def.value, &env.params)
        .map_err(|_| Violation::NotManifest(format!("loop start '{}'", idx_def.name)))?;
    let Expr::ArrayInit(r_expr, e0) = &acc_def.value else {
        return shape_err(format!(
            "loop name '{}' must be initialized with [r: E]",
            acc_def.name
        ));
    };
    let init_index = eval_manifest_int(r_expr, &env.params)
        .map_err(|_| Violation::NotManifest("initial array index".into()))?;
    if init_index != start - 1 {
        return shape_err(format!(
            "initial index {init_index} must be loop start {start} minus one (dense array)"
        ));
    }
    // E0 must be a *scalar* primitive expression with no index variable.
    let scalar_env = NameEnv {
        index_var: None,
        ..env.clone()
    };
    check_primitive_expr(e0, &scalar_env)?;

    let index_var = idx_def.name.clone();
    let acc = acc_def.name.clone();

    // --- body: (lets…) if i < bound then iter … else X ------------------
    let mut defs = Vec::new();
    let mut body = &fi.body;
    let mut body_env = env.clone();
    body_env.index_var = Some(index_var.clone());
    body_env.arrays.insert(acc.clone());
    while let Expr::Let(ds, inner) = body {
        for d in ds {
            check_primitive_expr(&d.value, &body_env)?;
            body_env.scalars.insert(d.name.clone());
            defs.push(d.clone());
        }
        body = inner;
    }
    let Expr::If(cond, then_arm, else_arm) = body else {
        return shape_err("loop body must be a conditional");
    };
    // Identify which arm iterates.
    let (iter_arm, result_arm, cond_selects_iter_on_true) = match (&**then_arm, &**else_arm) {
        (Expr::Iter(_), other) => (then_arm, other, true),
        (other, Expr::Iter(_)) => (else_arm, other, false),
        _ => return shape_err("exactly one conditional arm must be an iter clause"),
    };
    if result_arm != &Expr::Var(acc.clone()) {
        return shape_err(format!(
            "the terminating arm must be the bare accumulator '{acc}'"
        ));
    }
    // Condition: i < bound (or i <= bound-1), possibly negated orientation.
    let bound = parse_bound(cond, &index_var, &env.params, cond_selects_iter_on_true)?;
    if bound <= start {
        return shape_err(format!("loop bound {bound} does not exceed start {start}"));
    }
    // Iter clause: X := X[i: E]; i := i + 1.
    let Expr::Iter(binds) = &**iter_arm else {
        return shape_err("exactly one conditional arm must be an iter clause");
    };
    if binds.len() != 2 {
        return shape_err("iter must rebind exactly the index and the accumulator");
    }
    let mut step_expr = None;
    let mut bumped = false;
    for (name, e) in binds {
        if name == &index_var {
            let ok = matches!(
                e,
                Expr::Bin(BinOp::Add, a, b)
                    if (**a == Expr::Var(index_var.clone()) && **b == Expr::IntLit(1))
                    || (**b == Expr::Var(index_var.clone()) && **a == Expr::IntLit(1))
            );
            if !ok {
                return shape_err("the index must advance by i := i + 1");
            }
            bumped = true;
        } else if name == &acc {
            let Expr::Append(target, at, val) = e else {
                return shape_err(format!("'{acc}' must be rebound by {acc} := {acc}[i: E]"));
            };
            if target != &acc {
                return shape_err("append target must be the accumulator itself");
            }
            if index_offset(at, &index_var, &env.params) != Some(0) {
                return shape_err("the append position must be exactly i");
            }
            check_primitive_expr(val, &body_env)?;
            step_expr = Some((**val).clone());
        } else {
            return shape_err(format!("iter rebinds unexpected name '{name}'"));
        }
    }
    let Some(step_expr) = step_expr else {
        return shape_err("iter does not rebind the accumulator");
    };
    if !bumped {
        return shape_err("iter does not advance the index");
    }
    // First-order check: the accumulator may only be read at offset -1.
    let pfi = PrimitiveForIter {
        index_var: index_var.clone(),
        start,
        bound,
        acc: acc.clone(),
        init_index,
        init_expr: (**e0).clone(),
        defs,
        step_expr,
    };
    for access in collect_accesses(&pfi.step_inlined(), &index_var, &env.params) {
        if access.array == acc && access.offset != -1 {
            return Err(Violation::NotFirstOrder {
                offset: access.offset,
            });
        }
    }
    Ok(pfi)
}

fn parse_bound(
    cond: &Expr,
    index_var: &str,
    params: &Bindings,
    iter_on_true: bool,
) -> Result<i64, Violation> {
    // Accept i < b, i <= b-1 (continue side), or the negations when the
    // iter clause sits on the false arm (i >= b, i = b).
    let manifest = |e: &Expr| {
        eval_manifest_int(e, params).map_err(|_| Violation::NotManifest("loop bound".into()))
    };
    let is_i = |e: &Expr| matches!(e, Expr::Var(v) if v == index_var);
    if iter_on_true {
        match cond {
            Expr::Bin(BinOp::Lt, a, b) if is_i(a) => manifest(b),
            Expr::Bin(BinOp::Le, a, b) if is_i(a) => Ok(manifest(b)? + 1),
            Expr::Bin(BinOp::Gt, a, b) if is_i(b) => manifest(a),
            Expr::Bin(BinOp::Ge, a, b) if is_i(b) => Ok(manifest(a)? + 1),
            _ => shape_err("continue condition must compare the index to a manifest bound"),
        }
    } else {
        match cond {
            Expr::Bin(BinOp::Ge, a, b) if is_i(a) => manifest(b),
            Expr::Bin(BinOp::Gt, a, b) if is_i(a) => Ok(manifest(b)? + 1),
            Expr::Bin(BinOp::Eq, a, b) if is_i(a) => manifest(b),
            Expr::Bin(BinOp::Eq, a, b) if is_i(b) => manifest(a),
            _ => shape_err("exit condition must compare the index to a manifest bound"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_block_body, parse_expr, EXAMPLE_1, EXAMPLE_2};
    use valpipe_ir::value::Value;

    fn env(arrays: &[&str]) -> NameEnv {
        let mut params = Bindings::new();
        params.insert("m".into(), Value::Int(8));
        NameEnv::new(
            Some("i"),
            std::iter::empty(),
            arrays.iter().map(|s| s.to_string()),
            params,
        )
    }

    #[test]
    fn offsets() {
        let p = env(&[]).params;
        assert_eq!(index_offset(&parse_expr("i").unwrap(), "i", &p), Some(0));
        assert_eq!(index_offset(&parse_expr("i+1").unwrap(), "i", &p), Some(1));
        assert_eq!(index_offset(&parse_expr("1+i").unwrap(), "i", &p), Some(1));
        assert_eq!(index_offset(&parse_expr("i-2").unwrap(), "i", &p), Some(-2));
        assert_eq!(index_offset(&parse_expr("i+m").unwrap(), "i", &p), Some(8));
        assert_eq!(index_offset(&parse_expr("2*i").unwrap(), "i", &p), None);
        assert_eq!(index_offset(&parse_expr("j+1").unwrap(), "i", &p), None);
    }

    #[test]
    fn paper_stencil_is_primitive() {
        let e = parse_expr("0.25 * (C[i-1] + 2.*C[i] + C[i+1])").unwrap();
        assert!(check_primitive_expr(&e, &env(&["C"])).is_ok());
        let acc = collect_accesses(&e, "i", &env(&["C"]).params);
        assert_eq!(
            acc,
            vec![
                ArrayAccess {
                    array: "C".into(),
                    offset: -1
                },
                ArrayAccess {
                    array: "C".into(),
                    offset: 0
                },
                ArrayAccess {
                    array: "C".into(),
                    offset: 1
                },
            ]
        );
    }

    #[test]
    fn bad_subscripts_rejected() {
        for src in ["C[2*i]", "C[i*i]", "C[j]", "C[C[i]]"] {
            let e = parse_expr(src).unwrap();
            assert!(
                check_primitive_expr(&e, &env(&["C"])).is_err(),
                "{src} should not be a PE"
            );
        }
    }

    #[test]
    fn scalar_primitive_excludes_arrays() {
        assert!(is_scalar_primitive(
            &parse_expr("i * 2 + m").unwrap(),
            &env(&["C"])
        ));
        assert!(!is_scalar_primitive(
            &parse_expr("C[i]").unwrap(),
            &env(&["C"])
        ));
    }

    #[test]
    fn example1_is_primitive_forall() {
        let BlockBody::Forall(f) = parse_block_body(EXAMPLE_1).unwrap() else {
            panic!()
        };
        let pf = check_primitive_forall(&f, &env(&["B", "C"])).unwrap();
        assert_eq!((pf.lo, pf.hi), (0, 9)); // m = 8 → [0, m+1]
    }

    #[test]
    fn forall_with_dynamic_range_rejected() {
        let BlockBody::Forall(mut f) = parse_block_body(EXAMPLE_1).unwrap() else {
            panic!()
        };
        f.range.1 = parse_expr("C[0]").unwrap();
        assert!(matches!(
            check_primitive_forall(&f, &env(&["B", "C"])),
            Err(Violation::NotManifest(_))
        ));
    }

    #[test]
    fn example2_is_primitive_foriter() {
        let BlockBody::ForIter(fi) = parse_block_body(EXAMPLE_2).unwrap() else {
            panic!()
        };
        let pfi = check_primitive_foriter(&fi, &env(&["A", "B"])).unwrap();
        assert_eq!(pfi.index_var, "i");
        assert_eq!(pfi.acc, "T");
        assert_eq!(pfi.start, 1);
        assert_eq!(pfi.bound, 8);
        assert_eq!(pfi.init_index, 0);
        assert_eq!(pfi.range(), (0, 7));
        // Lets hoisted: P defined once.
        assert_eq!(pfi.defs.len(), 1);
        assert_eq!(pfi.defs[0].name, "P");
        assert_eq!(pfi.step_expr, Expr::var("P"));
        // Inlined step references T[i-1].
        assert!(pfi.step_inlined().mentions("T"));
    }

    #[test]
    fn foriter_with_skip_append_rejected() {
        let src = "
for i : integer := 1; T : array[real] := [0: 0.]
do
  if i < m then iter T := T[i+1: 1.]; i := i + 1 enditer else T endif
endfor";
        let BlockBody::ForIter(fi) = parse_block_body(src).unwrap() else {
            panic!()
        };
        assert!(matches!(
            check_primitive_foriter(&fi, &env(&[])),
            Err(Violation::ForIterShape(_))
        ));
    }

    #[test]
    fn foriter_second_order_detected() {
        let src = "
for i : integer := 2; T : array[real] := [1: 0.]
do
  if i < m then iter T := T[i: T[i-2] + 1.]; i := i + 1 enditer else T endif
endfor";
        let BlockBody::ForIter(fi) = parse_block_body(src).unwrap() else {
            panic!()
        };
        assert!(matches!(
            check_primitive_foriter(&fi, &env(&[])),
            Err(Violation::NotFirstOrder { offset: -2 })
        ));
    }

    #[test]
    fn foriter_with_swapped_arms_accepted() {
        let src = "
for i : integer := 1; T : array[real] := [0: 0.]
do
  if i >= m then T else iter T := T[i: T[i-1] + 1.]; i := i + 1 enditer endif
endfor";
        let BlockBody::ForIter(fi) = parse_block_body(src).unwrap() else {
            panic!()
        };
        let pfi = check_primitive_foriter(&fi, &env(&[])).unwrap();
        assert_eq!(pfi.bound, 8);
    }

    #[test]
    fn foriter_sparse_init_rejected() {
        let src = "
for i : integer := 2; T : array[real] := [0: 0.]
do
  if i < m then iter T := T[i: 1.]; i := i + 1 enditer else T endif
endfor";
        let BlockBody::ForIter(fi) = parse_block_body(src).unwrap() else {
            panic!()
        };
        assert!(check_primitive_foriter(&fi, &env(&[])).is_err());
    }
}
