//! # valpipe-val — the Val language frontend
//!
//! Frontend for the Val subset of Dennis & Gao, *Maximum Pipelining of
//! Array Operations on Static Data Flow Machine* (ICPP 1983): lexer,
//! parser, type checker, the structural classifiers defining the paper's
//! pipelinable program class, linear-recurrence/companion-function
//! analysis, flow-dependency analysis, and a reference interpreter used as
//! the correctness oracle for the compiler.
//!
//! The paper's two running examples are exported verbatim as
//! [`parser::EXAMPLE_1`], [`parser::EXAMPLE_2`], and the combined
//! [`parser::FIG3_PROGRAM`].

#![warn(missing_docs)]

pub mod ast;
pub mod classify;
pub mod deps;
pub mod dims;
pub mod fold;
pub mod interp;
pub mod lexer;
pub mod linear;
pub mod parser;
pub mod pretty;
pub mod srcmap;
pub mod typeck;

pub use ast::{BlockBody, BlockDecl, Def, Expr, ForIter, Forall, InputDecl, Program, Type};
pub use classify::{
    check_primitive_expr, check_primitive_forall, check_primitive_foriter, ArrayAccess, NameEnv,
    PrimitiveForIter, Violation,
};
pub use deps::{analyze, AnalyzeError, BlockClass, FlowGraph};
pub use dims::{flatten_program, Dim2, FlattenInfo};
pub use interp::{ArrayVal, InterpError};
pub use linear::{companion_g, companion_tree, extract_linear, recurrence_f, LinearForm};
pub use parser::{
    parse_block_body, parse_expr, parse_program, parse_program_mapped,
    parse_program_mapped_limited, parse_stmt_mapped, split_statements, ParseError, ParseErrorKind,
    SplitStmt, StmtId, TopStmt, DEFAULT_MAX_NESTING_DEPTH,
};
pub use srcmap::{SourceMap, StmtKey};
pub use typeck::{
    attach_loc, check_block, check_program, check_program_mapped, program_prelude_env, TypeEnv,
    TypeError,
};
