//! Abstract syntax for the Val subset of Dennis & Gao (ICPP 1983).
//!
//! The subset covers exactly what the paper's pipe-structured programs
//! need: scalar expressions (the *primitive expressions* of §5), the
//! `forall` construct (§4, Example 1), the `for-iter` construct (§4,
//! Example 2) with its `iter` clause and the array-append constructor
//! `X[i: E]`, and a small program wrapper declaring compile-time
//! parameters, input arrays, blocks and outputs.

use std::fmt;
pub use valpipe_ir::value::{BinOp, UnOp};

/// Val types in the subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// `integer`
    Int,
    /// `real`
    Real,
    /// `boolean`
    Bool,
    /// `array[T]`
    Array(Box<Type>),
}

impl Type {
    /// Element type if this is an array type.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Array(t) => Some(t),
            _ => None,
        }
    }

    /// Whether this is a scalar (non-array) type.
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Type::Array(_))
    }

    /// Whether this is a numeric scalar.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Real)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "integer"),
            Type::Real => write!(f, "real"),
            Type::Bool => write!(f, "boolean"),
            Type::Array(t) => write!(f, "array[{t}]"),
        }
    }
}

/// A definition `name : type := value` (type optional inside `iter`).
#[derive(Debug, Clone, PartialEq)]
pub struct Def {
    /// Defined name.
    pub name: String,
    /// Declared type, if given.
    pub ty: Option<Type>,
    /// Defining expression.
    pub value: Expr,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Real literal.
    RealLit(f64),
    /// Boolean literal.
    BoolLit(bool),
    /// Identifier (scalar variable, parameter, or array name in
    /// non-indexing positions such as a `for-iter` result arm).
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Array element selection `A[e]`.
    Index(String, Box<Expr>),
    /// Two-dimensional element selection `A[e1][e2]` (§9's
    /// multi-dimensional extension; lowered to a flattened 1-D access by
    /// [`crate::dims::flatten_program`]).
    Index2(String, Box<Expr>, Box<Expr>),
    /// Conditional `if c then t else f endif`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `let defs in body endlet`.
    Let(Vec<Def>, Box<Expr>),
    /// `iter name := e; … enditer` — rebind loop names and repeat.
    Iter(Vec<(String, Expr)>),
    /// Array append constructor `A[idx: val]` (extends `A` by one element).
    Append(String, Box<Expr>, Box<Expr>),
    /// Array initializer `[idx: val]` — a one-element array at index `idx`.
    ArrayInit(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructors keep the compiler code readable.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }
    /// Unary node.
    pub fn un(op: UnOp, a: Expr) -> Expr {
        Expr::Un(op, Box::new(a))
    }
    /// Variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }
    /// `name[e]`.
    pub fn index(name: impl Into<String>, idx: Expr) -> Expr {
        Expr::Index(name.into(), Box::new(idx))
    }
    /// `if c then t else f endif`.
    pub fn if_(c: Expr, t: Expr, f: Expr) -> Expr {
        Expr::If(Box::new(c), Box::new(t), Box::new(f))
    }

    /// Visit every sub-expression (preorder), including `self`.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Bin(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Un(_, a) => a.walk(f),
            Expr::Index(_, i) => i.walk(f),
            Expr::Index2(_, i, j) => {
                i.walk(f);
                j.walk(f);
            }
            Expr::If(c, t, e) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
            Expr::Let(defs, body) => {
                for d in defs {
                    d.value.walk(f);
                }
                body.walk(f);
            }
            Expr::Iter(binds) => {
                for (_, e) in binds {
                    e.walk(f);
                }
            }
            Expr::Append(_, i, v) => {
                i.walk(f);
                v.walk(f);
            }
            Expr::ArrayInit(i, v) => {
                i.walk(f);
                v.walk(f);
            }
            _ => {}
        }
    }

    /// Whether identifier `name` occurs free anywhere in the expression
    /// (as a variable, indexed array, or append target). Let-bindings of
    /// the same name shadow in bodies, which this check respects.
    pub fn mentions(&self, name: &str) -> bool {
        match self {
            Expr::Var(v) => v == name,
            Expr::Index(a, i) => a == name || i.mentions(name),
            Expr::Index2(a, i, j) => a == name || i.mentions(name) || j.mentions(name),
            Expr::Append(a, i, v) => a == name || i.mentions(name) || v.mentions(name),
            Expr::ArrayInit(i, v) => i.mentions(name) || v.mentions(name),
            Expr::Bin(_, a, b) => a.mentions(name) || b.mentions(name),
            Expr::Un(_, a) => a.mentions(name),
            Expr::If(c, t, e) => c.mentions(name) || t.mentions(name) || e.mentions(name),
            Expr::Let(defs, body) => {
                let mut shadowed = false;
                for d in defs {
                    if d.value.mentions(name) {
                        return true;
                    }
                    if d.name == name {
                        shadowed = true;
                    }
                }
                !shadowed && body.mentions(name)
            }
            Expr::Iter(binds) => binds.iter().any(|(_, e)| e.mentions(name)),
            _ => false,
        }
    }
}

/// A `forall` block (paper §4, Example 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Forall {
    /// The (first) index variable.
    pub index_var: String,
    /// Inclusive index range `[lo, hi]` (expressions over parameters).
    pub range: (Expr, Expr),
    /// Optional second dimension `, j in [lo, hi]` (§9's extension;
    /// removed by flattening before classification).
    pub second: Option<(String, (Expr, Expr))>,
    /// The definition part.
    pub defs: Vec<Def>,
    /// The accumulation part.
    pub body: Expr,
}

/// A `for-iter` block (paper §4, Example 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ForIter {
    /// Loop-name initializations.
    pub inits: Vec<Def>,
    /// The loop body (evaluated each cycle; `iter` repeats, anything else
    /// terminates with that value).
    pub body: Expr,
}

/// The body of a top-level block.
// Forall is larger than ForIter; blocks are few and long-lived, so the
// size skew is irrelevant and boxing would only complicate matching.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum BlockBody {
    /// `forall … endall`
    Forall(Forall),
    /// `for … endfor`
    ForIter(ForIter),
}

/// A top-level block `NAME : type := body`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDecl {
    /// Name of the array value the block produces.
    pub name: String,
    /// Declared type (must be an array type).
    pub ty: Type,
    /// The defining construct.
    pub body: BlockBody,
}

/// An input array declaration `input NAME : array[T] [lo, hi];`.
#[derive(Debug, Clone, PartialEq)]
pub struct InputDecl {
    /// Array name.
    pub name: String,
    /// Element type.
    pub elem_ty: Type,
    /// Inclusive index range (expressions over parameters).
    pub range: (Expr, Expr),
    /// Second dimension's range for two-dimensional inputs.
    pub range2: Option<(Expr, Expr)>,
}

/// A complete pipe-structured program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Compile-time integer parameters (`param m = 100;`), in order.
    pub params: Vec<(String, i64)>,
    /// Input arrays.
    pub inputs: Vec<InputDecl>,
    /// Blocks, in source order.
    pub blocks: Vec<BlockDecl>,
    /// Names exported as outputs.
    pub outputs: Vec<String>,
}

impl Program {
    /// Look up a parameter's value.
    pub fn param(&self, name: &str) -> Option<i64> {
        self.params.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a block by name.
    pub fn block(&self, name: &str) -> Option<&BlockDecl> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Look up an input by name.
    pub fn input(&self, name: &str) -> Option<&InputDecl> {
        self.inputs.iter().find(|i| i.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mentions_respects_let_shadowing() {
        // let x := 1 in x endlet  — outer `x` not mentioned in body.
        let e = Expr::Let(
            vec![Def {
                name: "x".into(),
                ty: None,
                value: Expr::IntLit(1),
            }],
            Box::new(Expr::var("x")),
        );
        assert!(!e.mentions("x") || !e.mentions("x"));
        // but a def that *uses* x is a mention:
        let e2 = Expr::Let(
            vec![Def {
                name: "y".into(),
                ty: None,
                value: Expr::var("x"),
            }],
            Box::new(Expr::IntLit(0)),
        );
        assert!(e2.mentions("x"));
    }

    #[test]
    fn mentions_finds_indexed_arrays() {
        let e = Expr::index("A", Expr::var("i"));
        assert!(e.mentions("A"));
        assert!(e.mentions("i"));
        assert!(!e.mentions("B"));
    }

    #[test]
    fn walk_visits_all() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::index("A", Expr::var("i")),
            Expr::if_(Expr::BoolLit(true), Expr::IntLit(1), Expr::IntLit(2)),
        );
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 7);
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Array(Box::new(Type::Real)).to_string(), "array[real]");
        assert!(Type::Real.is_numeric());
        assert!(!Type::Array(Box::new(Type::Real)).is_scalar());
    }
}
