//! Lexer for the Val subset.
//!
//! Comments run from `%` to end of line (the paper's convention). Numbers
//! follow Val's forms: `2`, `0.25`, `2.` and `.5` are all accepted; a
//! number containing a dot is a `real` literal.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords resolved by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `:=`
    Assign,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `~=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `|`
    Bar,
    /// `&`
    Amp,
    /// `~`
    Tilde,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Real(v) => write!(f, "{v}"),
            Tok::Assign => write!(f, ":="),
            Tok::Colon => write!(f, ":"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "~="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Bar => write!(f, "|"),
            Tok::Amp => write!(f, "&"),
            Tok::Tilde => write!(f, "~"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Source line.
    pub line: u32,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Message.
    pub message: String,
    /// Source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let push = |out: &mut Vec<Spanned>, tok: Tok, line: u32| out.push(Spanned { tok, line });
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push(&mut out, Tok::Ident(src[start..i].to_string()), line);
            }
            c if c.is_ascii_digit() || (c == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit()) => {
                let start = i;
                let mut saw_dot = false;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_digit() {
                        i += 1;
                    } else if ch == '.' && !saw_dot {
                        // A dot is part of the number unless it starts an
                        // index-like construct (digits never precede '[').
                        saw_dot = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                if saw_dot {
                    let v: f64 = text
                        .parse()
                        .or_else(|_| format!("{text}0").parse()) // "2." → "2.0"
                        .map_err(|_| LexError {
                            message: format!("bad real literal '{text}'"),
                            line,
                        })?;
                    push(&mut out, Tok::Real(v), line);
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        message: format!("bad integer literal '{text}'"),
                        line,
                    })?;
                    push(&mut out, Tok::Int(v), line);
                }
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(&mut out, Tok::Assign, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Colon, line);
                    i += 1;
                }
            }
            '~' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(&mut out, Tok::Ne, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Tilde, line);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(&mut out, Tok::Le, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Lt, line);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(&mut out, Tok::Ge, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Gt, line);
                    i += 1;
                }
            }
            ';' => {
                push(&mut out, Tok::Semi, line);
                i += 1;
            }
            ',' => {
                push(&mut out, Tok::Comma, line);
                i += 1;
            }
            '(' => {
                push(&mut out, Tok::LParen, line);
                i += 1;
            }
            ')' => {
                push(&mut out, Tok::RParen, line);
                i += 1;
            }
            '[' => {
                push(&mut out, Tok::LBracket, line);
                i += 1;
            }
            ']' => {
                push(&mut out, Tok::RBracket, line);
                i += 1;
            }
            '+' => {
                push(&mut out, Tok::Plus, line);
                i += 1;
            }
            '-' => {
                push(&mut out, Tok::Minus, line);
                i += 1;
            }
            '*' => {
                push(&mut out, Tok::Star, line);
                i += 1;
            }
            '/' => {
                push(&mut out, Tok::Slash, line);
                i += 1;
            }
            '=' => {
                push(&mut out, Tok::Eq, line);
                i += 1;
            }
            '|' => {
                push(&mut out, Tok::Bar, line);
                i += 1;
            }
            '&' => {
                push(&mut out, Tok::Amp, line);
                i += 1;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character '{other}'"),
                    line,
                })
            }
        }
    }
    push(&mut out, Tok::Eof, line);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("2"), vec![Tok::Int(2), Tok::Eof]);
        assert_eq!(toks("0.25"), vec![Tok::Real(0.25), Tok::Eof]);
        assert_eq!(toks("2."), vec![Tok::Real(2.0), Tok::Eof]);
        assert_eq!(toks(".5"), vec![Tok::Real(0.5), Tok::Eof]);
    }

    #[test]
    fn operators_and_compounds() {
        assert_eq!(
            toks(":= : ~= ~ <= < >= > ="),
            vec![
                Tok::Assign,
                Tok::Colon,
                Tok::Ne,
                Tok::Tilde,
                Tok::Le,
                Tok::Lt,
                Tok::Ge,
                Tok::Gt,
                Tok::Eq,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a % comment here\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn paper_snippet_lexes() {
        let src = "0.25 * (C[i-1] + 2.*C[i] + C[i+1])";
        let t = toks(src);
        assert!(t.contains(&Tok::Real(0.25)));
        assert!(t.contains(&Tok::Real(2.0)));
        assert!(t.contains(&Tok::Ident("C".into())));
        assert_eq!(t.iter().filter(|x| **x == Tok::LBracket).count(), 3);
    }

    #[test]
    fn line_numbers_tracked() {
        let s = lex("a\nb\nc").unwrap();
        assert_eq!(s[0].line, 1);
        assert_eq!(s[1].line, 2);
        assert_eq!(s[2].line, 3);
    }

    #[test]
    fn bad_char_reported() {
        let err = lex("a #").unwrap_err();
        assert!(err.message.contains('#'));
    }
}
