//! Lexer for the Val subset.
//!
//! Comments run from `%` to end of line (the paper's convention). Numbers
//! follow Val's forms: `2`, `0.25`, `2.` and `.5` are all accepted; a
//! number containing a dot is a `real` literal.
//!
//! Every token carries a full [`Span`] — byte range plus 1-based
//! line/column — which the parser threads into the statement source map
//! and the compiler threads into every IR node (see `valpipe_ir::prov`).

use std::fmt;
use valpipe_ir::prov::Span;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords resolved by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `:=`
    Assign,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `~=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `|`
    Bar,
    /// `&`
    Amp,
    /// `~`
    Tilde,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Real(v) => write!(f, "{v}"),
            Tok::Assign => write!(f, ":="),
            Tok::Colon => write!(f, ":"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "~="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Bar => write!(f, "|"),
            Tok::Amp => write!(f, "&"),
            Tok::Tilde => write!(f, "~"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source [`Span`] for diagnostics and provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Byte range and 1-based line/column of the token.
    pub span: Span,
}

impl Spanned {
    /// Source line (1-based) of the token.
    pub fn line(&self) -> u32 {
        self.span.line
    }
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Message.
    pub message: String,
    /// Source line (1-based).
    pub line: u32,
    /// Source column (1-based).
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    // Byte offset where the current line begins; columns count from it.
    let mut line_start = 0usize;
    macro_rules! span_from {
        ($start:expr) => {
            Span::new(
                $start as u32,
                i as u32,
                line,
                ($start - line_start + 1) as u32,
            )
        };
    }
    macro_rules! push1 {
        ($tok:expr) => {{
            let start = i;
            i += 1;
            out.push(Spanned {
                tok: $tok,
                span: span_from!(start),
            });
        }};
    }
    macro_rules! push2 {
        ($tok:expr) => {{
            let start = i;
            i += 2;
            out.push(Spanned {
                tok: $tok,
                span: span_from!(start),
            });
        }};
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            c if c.is_whitespace() => i += 1,
            '%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(src[start..i].to_string()),
                    span: span_from!(start),
                });
            }
            c if c.is_ascii_digit()
                || (c == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit()) =>
            {
                let start = i;
                let mut saw_dot = false;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_digit() {
                        i += 1;
                    } else if ch == '.' && !saw_dot {
                        // A dot is part of the number unless it starts an
                        // index-like construct (digits never precede '[').
                        saw_dot = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                let col = (start - line_start + 1) as u32;
                if saw_dot {
                    let v: f64 = text
                        .parse()
                        .or_else(|_| format!("{text}0").parse()) // "2." → "2.0"
                        .map_err(|_| LexError {
                            message: format!("bad real literal '{text}'"),
                            line,
                            col,
                        })?;
                    out.push(Spanned {
                        tok: Tok::Real(v),
                        span: span_from!(start),
                    });
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        message: format!("bad integer literal '{text}'"),
                        line,
                        col,
                    })?;
                    out.push(Spanned {
                        tok: Tok::Int(v),
                        span: span_from!(start),
                    });
                }
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push2!(Tok::Assign);
                } else {
                    push1!(Tok::Colon);
                }
            }
            '~' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push2!(Tok::Ne);
                } else {
                    push1!(Tok::Tilde);
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push2!(Tok::Le);
                } else {
                    push1!(Tok::Lt);
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push2!(Tok::Ge);
                } else {
                    push1!(Tok::Gt);
                }
            }
            ';' => push1!(Tok::Semi),
            ',' => push1!(Tok::Comma),
            '(' => push1!(Tok::LParen),
            ')' => push1!(Tok::RParen),
            '[' => push1!(Tok::LBracket),
            ']' => push1!(Tok::RBracket),
            '+' => push1!(Tok::Plus),
            '-' => push1!(Tok::Minus),
            '*' => push1!(Tok::Star),
            '/' => push1!(Tok::Slash),
            '=' => push1!(Tok::Eq),
            '|' => push1!(Tok::Bar),
            '&' => push1!(Tok::Amp),
            other => {
                return Err(LexError {
                    message: format!("unexpected character '{other}'"),
                    line,
                    col: (i - line_start + 1) as u32,
                })
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        span: Span::new(i as u32, i as u32, line, (i - line_start + 1) as u32),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("2"), vec![Tok::Int(2), Tok::Eof]);
        assert_eq!(toks("0.25"), vec![Tok::Real(0.25), Tok::Eof]);
        assert_eq!(toks("2."), vec![Tok::Real(2.0), Tok::Eof]);
        assert_eq!(toks(".5"), vec![Tok::Real(0.5), Tok::Eof]);
    }

    #[test]
    fn operators_and_compounds() {
        assert_eq!(
            toks(":= : ~= ~ <= < >= > ="),
            vec![
                Tok::Assign,
                Tok::Colon,
                Tok::Ne,
                Tok::Tilde,
                Tok::Le,
                Tok::Lt,
                Tok::Ge,
                Tok::Gt,
                Tok::Eq,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a % comment here\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn paper_snippet_lexes() {
        let src = "0.25 * (C[i-1] + 2.*C[i] + C[i+1])";
        let t = toks(src);
        assert!(t.contains(&Tok::Real(0.25)));
        assert!(t.contains(&Tok::Real(2.0)));
        assert!(t.contains(&Tok::Ident("C".into())));
        assert_eq!(t.iter().filter(|x| **x == Tok::LBracket).count(), 3);
    }

    #[test]
    fn line_numbers_tracked() {
        let s = lex("a\nb\nc").unwrap();
        assert_eq!(s[0].line(), 1);
        assert_eq!(s[1].line(), 2);
        assert_eq!(s[2].line(), 3);
    }

    #[test]
    fn spans_cover_token_bytes_with_columns() {
        let src = "ab := C[i-1];\n  x2 := 0.25";
        let s = lex(src).unwrap();
        // "ab" at 1:1, bytes [0,2).
        assert_eq!(s[0].span, Span::new(0, 2, 1, 1));
        // ":=" at 1:4, bytes [3,5).
        assert_eq!(s[1].span, Span::new(3, 5, 1, 4));
        // "x2" on line 2, column 3.
        let x2 = s.iter().find(|t| t.tok == Tok::Ident("x2".into())).unwrap();
        assert_eq!((x2.span.line, x2.span.col), (2, 3));
        assert_eq!(&src[x2.span.start as usize..x2.span.end as usize], "x2");
        // "0.25" span slices back to its text.
        let r = s.iter().find(|t| t.tok == Tok::Real(0.25)).unwrap();
        assert_eq!(&src[r.span.start as usize..r.span.end as usize], "0.25");
    }

    #[test]
    fn bad_char_reported_with_position() {
        let err = lex("a\n  #").unwrap_err();
        assert!(err.message.contains('#'));
        assert_eq!((err.line, err.col), (2, 3));
        assert_eq!(err.to_string(), "2:3: unexpected character '#'");
    }
}
