//! Statement-level source map: where each program statement lives in the
//! Val source text.
//!
//! Produced by [`crate::parser::parse_program_mapped`] when compiling real
//! source, or synthesized from the AST by
//! [`crate::pretty::program_to_source_mapped`] when a program was built
//! programmatically (the pretty-printer emits canonical source and records
//! every statement's offsets as it goes, so provenance stays total either
//! way). The compiler converts this into the IR-level
//! `valpipe_ir::prov::Provenance` table that machine diagnostics render.

use std::collections::HashMap;
use valpipe_ir::prov::Span;

/// Identity of one statement in a pipe-structured program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StmtKey {
    /// `param n = …;`
    Param(String),
    /// `input A : array[…] […];`
    Input(String),
    /// The `output …;` declaration listing result arrays.
    Output,
    /// A block's header: name, type and range specification (through the
    /// `forall … in […]` range or the `for` keyword).
    BlockHeader(String),
    /// A definition in a `forall` definition part: `(block, def name)`.
    BlockDef(String, String),
    /// A loop initialization in a `for-iter` block: `(block, init name)`.
    BlockInit(String, String),
    /// A block's body: the `forall` accumulation expression or the
    /// `for-iter` loop body.
    BlockBody(String),
}

/// Spans of every statement of one parsed (or pretty-printed) program,
/// together with the text they index into.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SourceMap {
    /// Source file name (`<source>` for in-memory text, `<ast>` for
    /// synthesized text).
    pub file: String,
    /// The full source text the spans index into.
    pub text: String,
    entries: HashMap<StmtKey, Span>,
}

impl SourceMap {
    /// Empty map for the given file name and text.
    pub fn new(file: impl Into<String>, text: impl Into<String>) -> SourceMap {
        SourceMap {
            file: file.into(),
            text: text.into(),
            entries: HashMap::new(),
        }
    }

    /// Record a statement's span (last write wins).
    pub fn record(&mut self, key: StmtKey, span: Span) {
        self.entries.insert(key, span);
    }

    /// The span of a statement, if recorded.
    pub fn span(&self, key: &StmtKey) -> Option<Span> {
        self.entries.get(key).copied()
    }

    /// The source text a span covers (empty if out of range).
    pub fn snippet(&self, span: Span) -> &str {
        self.text
            .get(span.start as usize..span.end as usize)
            .unwrap_or("")
    }

    /// Number of recorded statements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no statements are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All recorded statements (unordered).
    pub fn entries(&self) -> impl Iterator<Item = (&StmtKey, &Span)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_slice() {
        let mut m = SourceMap::new("x.val", "input A;\nB := A;");
        let span = Span::new(0, 8, 1, 1);
        m.record(StmtKey::Input("A".into()), span);
        assert_eq!(m.span(&StmtKey::Input("A".into())), Some(span));
        assert_eq!(m.snippet(span), "input A;");
        assert_eq!(m.span(&StmtKey::Output), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn out_of_range_snippet_is_empty() {
        let m = SourceMap::new("x.val", "ab");
        assert_eq!(m.snippet(Span::new(1, 99, 1, 2)), "");
    }
}
