//! Linear-recurrence analysis and companion-function derivation (§7).
//!
//! The paper's key device for fully pipelining a `for-iter` is the
//! **companion function**: if `F(a, F(b, x)) = F(G(a,b), x)` for all
//! parameter vectors, then `x_i = F(a_i, x_{i-1})` can be rewritten
//! `x_i = F(G(a_i, a_{i-1}), x_{i-2})`, stretching the dependence distance
//! so the feedback cycle holds two tokens and runs at the maximum rate.
//!
//! For first-order **linear** recurrences — `x_i = α_i·x_{i-1} + β_i`, the
//! paper's Example 2 and equation (2) — the companion is
//!
//! ```text
//! G((a1,a2), (b1,b2)) = (a1·b1, a1·b2 + a2)
//! ```
//!
//! which is associative, enabling `log2(p)`-level companion trees for
//! dependence distance `p`.
//!
//! This module extracts `(α, β)` from a recurrence body by structural
//! linearity analysis: sums/differences combine componentwise, products
//! and quotients require an accumulator-free factor, and conditionals with
//! accumulator-free conditions distribute into both coefficients.

use crate::ast::{BinOp, Expr, UnOp};
use crate::fold::simplify;

/// A recurrence body in normal form `α·X[i-1] + β` with accumulator-free
/// coefficient expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearForm {
    /// Coefficient of `X[i-1]` (a PE on `i`).
    pub alpha: Expr,
    /// Additive term (a PE on `i`).
    pub beta: Expr,
}

impl LinearForm {
    /// The recurrence is a pure running reduction `x_i = x_{i-1} + β_i`
    /// when `α ≡ 1`.
    pub fn is_pure_sum(&self) -> bool {
        matches!(self.alpha, Expr::IntLit(1)) || matches!(self.alpha, Expr::RealLit(v) if v == 1.0)
    }

    /// Reconstruct the body expression `α·acc[i-1] + β` (mostly for
    /// debugging and tests).
    pub fn to_expr(&self, acc: &str, index_var: &str) -> Expr {
        let x = Expr::index(
            acc,
            Expr::bin(BinOp::Sub, Expr::var(index_var), Expr::IntLit(1)),
        );
        simplify(&Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, self.alpha.clone(), x),
            self.beta.clone(),
        ))
    }
}

/// Extract the linear form of `expr` with respect to accumulator `acc`
/// (accessed as `acc[i-1]`). `None` if the body is not linear in the
/// accumulator — i.e. no companion function is derived. Inline lets first
/// (see [`crate::fold::inline_lets`]).
pub fn extract_linear(expr: &Expr, acc: &str) -> Option<LinearForm> {
    let raw = go(expr, acc)?;
    Some(LinearForm {
        alpha: simplify(&raw.alpha),
        beta: simplify(&raw.beta),
    })
}

fn go(e: &Expr, acc: &str) -> Option<LinearForm> {
    if !e.mentions(acc) {
        return Some(LinearForm {
            alpha: Expr::IntLit(0),
            beta: e.clone(),
        });
    }
    match e {
        Expr::Index(name, _) if name == acc => Some(LinearForm {
            alpha: Expr::IntLit(1),
            beta: Expr::IntLit(0),
        }),
        Expr::Bin(BinOp::Add, a, b) => {
            let (fa, fb) = (go(a, acc)?, go(b, acc)?);
            Some(LinearForm {
                alpha: Expr::bin(BinOp::Add, fa.alpha, fb.alpha),
                beta: Expr::bin(BinOp::Add, fa.beta, fb.beta),
            })
        }
        Expr::Bin(BinOp::Sub, a, b) => {
            let (fa, fb) = (go(a, acc)?, go(b, acc)?);
            Some(LinearForm {
                alpha: Expr::bin(BinOp::Sub, fa.alpha, fb.alpha),
                beta: Expr::bin(BinOp::Sub, fa.beta, fb.beta),
            })
        }
        Expr::Bin(BinOp::Mul, a, b) => {
            if !a.mentions(acc) {
                let f = go(b, acc)?;
                Some(LinearForm {
                    alpha: Expr::bin(BinOp::Mul, (**a).clone(), f.alpha),
                    beta: Expr::bin(BinOp::Mul, (**a).clone(), f.beta),
                })
            } else if !b.mentions(acc) {
                let f = go(a, acc)?;
                Some(LinearForm {
                    alpha: Expr::bin(BinOp::Mul, f.alpha, (**b).clone()),
                    beta: Expr::bin(BinOp::Mul, f.beta, (**b).clone()),
                })
            } else {
                None // x · x — nonlinear
            }
        }
        Expr::Bin(BinOp::Div, a, b) if !b.mentions(acc) => {
            let f = go(a, acc)?;
            Some(LinearForm {
                alpha: Expr::bin(BinOp::Div, f.alpha, (**b).clone()),
                beta: Expr::bin(BinOp::Div, f.beta, (**b).clone()),
            })
        }
        Expr::Un(UnOp::Neg, a) => {
            let f = go(a, acc)?;
            Some(LinearForm {
                alpha: Expr::un(UnOp::Neg, f.alpha),
                beta: Expr::un(UnOp::Neg, f.beta),
            })
        }
        Expr::If(c, t, f) if !c.mentions(acc) => {
            let (ft, ff) = (go(t, acc)?, go(f, acc)?);
            Some(LinearForm {
                alpha: Expr::if_((**c).clone(), ft.alpha, ff.alpha),
                beta: Expr::if_((**c).clone(), ft.beta, ff.beta),
            })
        }
        Expr::Let(..) => go(&crate::fold::inline_lets(e), acc),
        _ => None,
    }
}

/// The companion function for the linear recurrence, on concrete parameter
/// vectors: `G((a1,a2),(b1,b2)) = (a1·b1, a1·b2 + a2)`.
///
/// `F(a, x) = a.0 * x + a.1`; the defining identity `F(a, F(b, x)) =
/// F(G(a,b), x)` and associativity of `G` are verified by the tests below.
pub fn companion_g(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 * b.0, a.0 * b.1 + a.1)
}

/// The recurrence step `F(a, x) = a.0·x + a.1`.
pub fn recurrence_f(a: (f64, f64), x: f64) -> f64 {
    a.0 * x + a.1
}

/// Combine `p` consecutive parameter vectors with a balanced `G`-tree of
/// depth `⌈log2 p⌉` — the paper's companion-tree observation. `params[0]`
/// is the *oldest* vector: the result `c` satisfies
/// `x = F(c, x_prev)` where applying `F` with `params[0]` first, then
/// `params[1]`, …, yields the same value.
pub fn companion_tree(params: &[(f64, f64)]) -> (f64, f64) {
    match params {
        [] => (1.0, 0.0), // identity of G
        [a] => *a,
        _ => {
            let mid = params.len() / 2;
            // Newer half composes over the older half: G(newer, older).
            companion_g(
                companion_tree(&params[mid..]),
                companion_tree(&params[..mid]),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::inline_lets;
    use crate::parser::parse_expr;

    fn lin(src: &str) -> Option<LinearForm> {
        extract_linear(&inline_lets(&parse_expr(src).unwrap()), "T")
    }

    #[test]
    fn example2_body_is_linear() {
        let f = lin("A[i]*T[i-1] + B[i]").unwrap();
        assert_eq!(f.alpha, parse_expr("A[i]").unwrap());
        assert_eq!(f.beta, parse_expr("B[i]").unwrap());
    }

    #[test]
    fn pure_sum_detected() {
        let f = lin("T[i-1] + B[i]").unwrap();
        assert!(f.is_pure_sum());
        assert_eq!(f.beta, parse_expr("B[i]").unwrap());
    }

    #[test]
    fn subtraction_and_negation() {
        let f = lin("B[i] - T[i-1]").unwrap();
        assert_eq!(f.alpha, Expr::IntLit(-1));
        let f = lin("-(T[i-1]) * 2.").unwrap();
        assert_eq!(f.alpha, Expr::RealLit(-2.0)); // constant-folded -1 · 2.
    }

    #[test]
    fn division_by_free_factor() {
        let f = lin("(T[i-1] + B[i]) / 2.").unwrap();
        assert_eq!(f.alpha, Expr::RealLit(0.5)); // constant-folded 1 / 2.
        assert_eq!(f.beta, parse_expr("B[i] / 2.").unwrap());
    }

    #[test]
    fn conditional_with_free_condition_is_linear() {
        let f = lin("if i < m then 2.*T[i-1] else T[i-1] + B[i] endif").unwrap();
        assert_eq!(
            f.alpha,
            parse_expr("if i < m then 2. else 1 endif").unwrap()
        );
    }

    #[test]
    fn nonlinear_rejected() {
        assert!(lin("T[i-1] * T[i-1]").is_none());
        assert!(lin("B[i] / T[i-1]").is_none());
        assert!(lin("if T[i-1] > 0. then 1. else 2. endif").is_none());
    }

    #[test]
    fn lets_inlined_before_analysis() {
        let f = lin("let P := A[i]*T[i-1] in P + B[i] endlet").unwrap();
        assert_eq!(f.alpha, parse_expr("A[i]").unwrap());
    }

    #[test]
    fn companion_identity_holds() {
        // F(a, F(b, x)) = F(G(a,b), x) over a grid of values.
        for &a in &[(2.0, 1.0), (0.5, -3.0), (-1.5, 0.0)] {
            for &b in &[(1.0, 1.0), (3.0, -2.0), (0.0, 4.0)] {
                for &x in &[0.0, 1.0, -7.5, 100.0] {
                    let lhs = recurrence_f(a, recurrence_f(b, x));
                    let rhs = recurrence_f(companion_g(a, b), x);
                    assert!((lhs - rhs).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn companion_is_associative() {
        let (a, b, c) = ((2.0, 1.0), (0.5, -3.0), (-1.5, 0.25));
        let l = companion_g(companion_g(a, b), c);
        let r = companion_g(a, companion_g(b, c));
        assert!((l.0 - r.0).abs() < 1e-12 && (l.1 - r.1).abs() < 1e-12);
    }

    #[test]
    fn companion_tree_matches_sequential_fold() {
        let params: Vec<(f64, f64)> = (0..8).map(|k| (0.9 + 0.01 * k as f64, k as f64)).collect();
        let x0 = 2.5;
        // Sequential: apply F with params[0], then params[1], …
        let mut x = x0;
        for &p in &params {
            x = recurrence_f(p, x);
        }
        let c = companion_tree(&params);
        assert!((recurrence_f(c, x0) - x).abs() < 1e-9);
    }
}
