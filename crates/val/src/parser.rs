//! Recursive-descent parser for the Val subset.
//!
//! Accepts the paper's two running examples verbatim (Example 1, the
//! boundary-smoothing `forall`, and Example 2, the first-order recurrence
//! `for-iter`), plus a small program wrapper:
//!
//! ```text
//! param m = 100;
//! input B : array[real] [0, m+1];
//! input C : array[real] [0, m+1];
//! A : array[real] := forall i in [0, m+1] … endall;
//! X : array[real] := for … endfor;
//! output A, X;
//! ```

use crate::ast::*;
use crate::lexer::{lex, LexError, Spanned, Tok};
use crate::srcmap::{SourceMap, StmtKey};
use std::fmt;
use valpipe_ir::prov::Span;

/// What kind of failure a [`ParseError`] reports. `DepthLimit` is kept
/// distinct from plain syntax errors so callers enforcing resource limits
/// (the compile pipeline, the service) can classify it as a limit breach
/// rather than malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseErrorKind {
    /// Malformed source: unexpected token, bad literal, etc.
    #[default]
    Syntax,
    /// Expression/type nesting exceeded the parser's recursion budget.
    DepthLimit,
}

/// Parse error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Message.
    pub message: String,
    /// Source line (1-based).
    pub line: u32,
    /// Source column (1-based).
    pub col: u32,
    /// Classification (syntax vs. resource-limit breach).
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
            kind: ParseErrorKind::Syntax,
        }
    }
}

/// Default recursion budget for expression/type nesting. Each level of
/// parenthesisation costs a fixed chain of parser frames, so untrusted
/// source like `((((…` would otherwise overflow the stack long before any
/// semantic check runs. 200 levels is far beyond any legitimate program
/// while staying comfortably inside a 2 MiB thread stack.
pub const DEFAULT_MAX_NESTING_DEPTH: usize = 200;

const KEYWORDS: &[&str] = &[
    "forall",
    "in",
    "construct",
    "endall",
    "for",
    "do",
    "endfor",
    "if",
    "then",
    "else",
    "endif",
    "let",
    "endlet",
    "iter",
    "enditer",
    "param",
    "input",
    "output",
    "true",
    "false",
    "integer",
    "real",
    "boolean",
    "array",
];

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    /// Statement spans recorded while parsing a whole program.
    map: Vec<(StmtKey, Span)>,
    /// Name of the block currently being parsed ("" outside blocks).
    cur_block: String,
    /// Token index where the current block declaration started.
    block_start: usize,
    /// Current expression/type nesting depth.
    depth: usize,
    /// Maximum nesting depth before the parse is rejected.
    max_depth: usize,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn new(toks: Vec<Spanned>) -> Parser {
        Parser {
            toks,
            pos: 0,
            map: Vec::new(),
            cur_block: String::new(),
            block_start: 0,
            depth: 0,
            max_depth: DEFAULT_MAX_NESTING_DEPTH,
        }
    }

    /// Guard one level of recursive descent; call [`Parser::leave`] on the
    /// way back out.
    fn enter(&mut self) -> PResult<()> {
        if self.depth >= self.max_depth {
            return Err(ParseError {
                message: format!("nesting deeper than {} levels", self.max_depth),
                line: self.line(),
                col: self.toks[self.pos].span.col,
                kind: ParseErrorKind::DepthLimit,
            });
        }
        self.depth += 1;
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].span.line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    /// Current token index, used with [`Parser::span_since`] to bracket a
    /// statement.
    fn mark(&self) -> usize {
        self.pos
    }

    /// The span from the token at `mark` through the last consumed token.
    fn span_since(&self, mark: usize) -> Span {
        let last_idx = self.toks.len() - 1;
        let s = self.toks[mark.min(last_idx)].span;
        let end = if self.pos > mark { self.pos - 1 } else { mark };
        let e = self.toks[end.min(last_idx)].span;
        Span::new(s.start, e.end.max(s.end), s.line, s.col)
    }

    fn record(&mut self, key: StmtKey, span: Span) {
        self.map.push((key, span));
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
            col: self.toks[self.pos].span.col,
            kind: ParseErrorKind::Syntax,
        })
    }

    fn expect(&mut self, t: &Tok) -> PResult<()> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected '{t}', found '{}'", self.peek()))
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected '{kw}', found '{}'", self.peek()))
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found '{other}'")),
        }
    }

    // ---- types -----------------------------------------------------------

    fn ty(&mut self) -> PResult<Type> {
        self.enter()?;
        let t = self.ty_inner();
        self.leave();
        t
    }

    fn ty_inner(&mut self) -> PResult<Type> {
        if self.eat_kw("integer") {
            Ok(Type::Int)
        } else if self.eat_kw("real") {
            Ok(Type::Real)
        } else if self.eat_kw("boolean") {
            Ok(Type::Bool)
        } else if self.eat_kw("array") {
            self.expect(&Tok::LBracket)?;
            let inner = self.ty()?;
            self.expect(&Tok::RBracket)?;
            Ok(Type::Array(Box::new(inner)))
        } else {
            self.err(format!("expected type, found '{}'", self.peek()))
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.enter()?;
        // `iter` is a loop-body form, never an operand. `if` and `let`
        // ARE operands (handled at the atom level), so an expression like
        // `if c then 1 else 0 endif + 2` chains into the operator parser.
        let e = if self.is_kw("iter") {
            self.iter_expr()
        } else {
            self.or_expr()
        };
        self.leave();
        e
    }

    fn if_expr(&mut self) -> PResult<Expr> {
        self.expect_kw("if")?;
        let c = self.expr()?;
        self.expect_kw("then")?;
        let t = self.expr()?;
        self.expect_kw("else")?;
        let e = self.expr()?;
        self.expect_kw("endif")?;
        Ok(Expr::if_(c, t, e))
    }

    fn let_expr(&mut self) -> PResult<Expr> {
        self.expect_kw("let")?;
        let mut defs = vec![self.def()?];
        while self.peek() == &Tok::Semi {
            self.bump();
            if self.is_kw("in") {
                break;
            }
            defs.push(self.def()?);
        }
        self.expect_kw("in")?;
        let body = self.expr()?;
        self.expect_kw("endlet")?;
        Ok(Expr::Let(defs, Box::new(body)))
    }

    fn iter_expr(&mut self) -> PResult<Expr> {
        self.expect_kw("iter")?;
        let mut binds = Vec::new();
        loop {
            if self.eat_kw("enditer") {
                break;
            }
            let name = self.ident()?;
            self.expect(&Tok::Assign)?;
            let value = self.expr()?;
            binds.push((name, value));
            if self.peek() == &Tok::Semi {
                self.bump();
            }
        }
        if binds.is_empty() {
            return self.err("empty iter clause");
        }
        Ok(Expr::Iter(binds))
    }

    /// A definition `name [: type] := expr`.
    fn def(&mut self) -> PResult<Def> {
        let name = self.ident()?;
        let ty = if self.peek() == &Tok::Colon {
            self.bump();
            Some(self.ty()?)
        } else {
            None
        };
        self.expect(&Tok::Assign)?;
        let value = self.expr()?;
        Ok(Def { name, ty, value })
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut e = self.and_expr()?;
        while self.peek() == &Tok::Bar {
            self.bump();
            let rhs = self.and_expr()?;
            e = Expr::bin(BinOp::Or, e, rhs);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut e = self.rel_expr()?;
        while self.peek() == &Tok::Amp {
            self.bump();
            let rhs = self.rel_expr()?;
            e = Expr::bin(BinOp::And, e, rhs);
        }
        Ok(e)
    }

    fn rel_expr(&mut self) -> PResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        self.enter()?;
        let e = match self.peek() {
            Tok::Minus => {
                self.bump();
                self.unary_expr().map(|e| Expr::un(UnOp::Neg, e))
            }
            // `~` is parsed as NOT; the type checker rewrites it to NEG on
            // numeric operands (the paper uses `~` for both).
            Tok::Tilde => {
                self.bump();
                self.unary_expr().map(|e| Expr::un(UnOp::Not, e))
            }
            _ => self.postfix_expr(),
        };
        self.leave();
        e
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            Tok::Real(v) => {
                self.bump();
                Ok(Expr::RealLit(v))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => {
                // Array initializer `[idx : val]`.
                self.bump();
                let idx = self.expr()?;
                self.expect(&Tok::Colon)?;
                let val = self.expr()?;
                self.expect(&Tok::RBracket)?;
                Ok(Expr::ArrayInit(Box::new(idx), Box::new(val)))
            }
            Tok::Ident(s) if s == "true" => {
                self.bump();
                Ok(Expr::BoolLit(true))
            }
            Tok::Ident(s) if s == "false" => {
                self.bump();
                Ok(Expr::BoolLit(false))
            }
            Tok::Ident(s) if s == "if" => self.if_expr(),
            Tok::Ident(s) if s == "let" => self.let_expr(),
            Tok::Ident(_) => {
                let name = self.ident()?;
                if self.peek() == &Tok::LBracket {
                    self.bump();
                    let idx = self.expr()?;
                    if self.peek() == &Tok::Colon {
                        // Append constructor `A[i : e]`.
                        self.bump();
                        let val = self.expr()?;
                        self.expect(&Tok::RBracket)?;
                        Ok(Expr::Append(name, Box::new(idx), Box::new(val)))
                    } else {
                        self.expect(&Tok::RBracket)?;
                        if self.peek() == &Tok::LBracket {
                            // Two-dimensional selection `A[i][j]`.
                            self.bump();
                            let j = self.expr()?;
                            self.expect(&Tok::RBracket)?;
                            Ok(Expr::Index2(name, Box::new(idx), Box::new(j)))
                        } else {
                            Ok(Expr::Index(name, Box::new(idx)))
                        }
                    }
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("expected expression, found '{other}'")),
        }
    }

    // ---- blocks ----------------------------------------------------------

    fn forall(&mut self) -> PResult<Forall> {
        self.expect_kw("forall")?;
        let index_var = self.ident()?;
        self.expect_kw("in")?;
        self.expect(&Tok::LBracket)?;
        let lo = self.expr()?;
        self.expect(&Tok::Comma)?;
        let hi = self.expr()?;
        self.expect(&Tok::RBracket)?;
        // Optional second dimension: `, j in [lo, hi]`.
        let second = if self.peek() == &Tok::Comma {
            self.bump();
            let jvar = self.ident()?;
            self.expect_kw("in")?;
            self.expect(&Tok::LBracket)?;
            let jlo = self.expr()?;
            self.expect(&Tok::Comma)?;
            let jhi = self.expr()?;
            self.expect(&Tok::RBracket)?;
            Some((jvar, (jlo, jhi)))
        } else {
            None
        };
        let header_span = self.span_since(self.block_start);
        self.record(StmtKey::BlockHeader(self.cur_block.clone()), header_span);
        let mut defs = Vec::new();
        while !self.is_kw("construct") {
            let dm = self.mark();
            let d = self.def()?;
            let span = self.span_since(dm);
            self.record(
                StmtKey::BlockDef(self.cur_block.clone(), d.name.clone()),
                span,
            );
            defs.push(d);
            if self.peek() == &Tok::Semi {
                self.bump();
            }
        }
        self.expect_kw("construct")?;
        let bm = self.mark();
        let body = self.expr()?;
        let body_span = self.span_since(bm);
        self.record(StmtKey::BlockBody(self.cur_block.clone()), body_span);
        self.expect_kw("endall")?;
        Ok(Forall {
            index_var,
            range: (lo, hi),
            second,
            defs,
            body,
        })
    }

    fn foriter(&mut self) -> PResult<ForIter> {
        self.expect_kw("for")?;
        let header_span = self.span_since(self.block_start);
        self.record(StmtKey::BlockHeader(self.cur_block.clone()), header_span);
        let mut inits = Vec::new();
        while !self.is_kw("do") {
            let dm = self.mark();
            let d = self.def()?;
            let span = self.span_since(dm);
            self.record(
                StmtKey::BlockInit(self.cur_block.clone(), d.name.clone()),
                span,
            );
            inits.push(d);
            if self.peek() == &Tok::Semi {
                self.bump();
            }
        }
        self.expect_kw("do")?;
        let bm = self.mark();
        let body = self.expr()?;
        let body_span = self.span_since(bm);
        self.record(StmtKey::BlockBody(self.cur_block.clone()), body_span);
        self.expect_kw("endfor")?;
        Ok(ForIter { inits, body })
    }

    fn block_body(&mut self) -> PResult<BlockBody> {
        if self.is_kw("forall") {
            Ok(BlockBody::Forall(self.forall()?))
        } else if self.is_kw("for") {
            Ok(BlockBody::ForIter(self.foriter()?))
        } else {
            self.err(format!(
                "expected 'forall' or 'for' block body, found '{}'",
                self.peek()
            ))
        }
    }

    // ---- program ---------------------------------------------------------

    fn program(&mut self) -> PResult<Program> {
        let mut prog = Program::default();
        while self.peek() != &Tok::Eof {
            match self.statement()? {
                TopStmt::Param(name, v) => prog.params.push((name, v)),
                TopStmt::Input(decl) => prog.inputs.push(decl),
                TopStmt::Output(names) => prog.outputs.extend(names),
                TopStmt::Block(decl) => prog.blocks.push(decl),
            }
        }
        Ok(prog)
    }

    /// Parse exactly one top-level statement. This is the unit the whole-
    /// program loop iterates and the incremental engine re-parses in
    /// isolation, so it must consume precisely the statement's tokens
    /// (including the terminating/trailing semicolon).
    fn statement(&mut self) -> PResult<TopStmt> {
        let stmt_mark = self.mark();
        if self.eat_kw("param") {
            let name = self.ident()?;
            self.expect(&Tok::Eq)?;
            let neg = self.peek() == &Tok::Minus;
            if neg {
                self.bump();
            }
            let v = match self.bump() {
                Tok::Int(v) => v,
                other => return self.err(format!("expected integer, found '{other}'")),
            };
            self.expect(&Tok::Semi)?;
            let span = self.span_since(stmt_mark);
            self.record(StmtKey::Param(name.clone()), span);
            Ok(TopStmt::Param(name, if neg { -v } else { v }))
        } else if self.eat_kw("input") {
            let name = self.ident()?;
            self.expect(&Tok::Colon)?;
            let ty = self.ty()?;
            let elem_ty = match ty {
                Type::Array(t) => *t,
                other => return self.err(format!("input must be array-typed, got {other}")),
            };
            self.expect(&Tok::LBracket)?;
            let lo = self.expr()?;
            self.expect(&Tok::Comma)?;
            let hi = self.expr()?;
            self.expect(&Tok::RBracket)?;
            let range2 = if self.peek() == &Tok::LBracket {
                self.bump();
                let lo2 = self.expr()?;
                self.expect(&Tok::Comma)?;
                let hi2 = self.expr()?;
                self.expect(&Tok::RBracket)?;
                Some((lo2, hi2))
            } else {
                None
            };
            self.expect(&Tok::Semi)?;
            let span = self.span_since(stmt_mark);
            self.record(StmtKey::Input(name.clone()), span);
            Ok(TopStmt::Input(InputDecl {
                name,
                elem_ty,
                range: (lo, hi),
                range2,
            }))
        } else if self.eat_kw("output") {
            let mut names = vec![self.ident()?];
            while self.peek() == &Tok::Comma {
                self.bump();
                names.push(self.ident()?);
            }
            self.expect(&Tok::Semi)?;
            let span = self.span_since(stmt_mark);
            self.record(StmtKey::Output, span);
            Ok(TopStmt::Output(names))
        } else {
            let name = self.ident()?;
            self.expect(&Tok::Colon)?;
            let ty = self.ty()?;
            self.expect(&Tok::Assign)?;
            self.cur_block = name.clone();
            self.block_start = stmt_mark;
            let body = self.block_body()?;
            self.cur_block.clear();
            if self.peek() == &Tok::Semi {
                self.bump();
            }
            Ok(TopStmt::Block(BlockDecl { name, ty, body }))
        }
    }
}

/// A single top-level statement of a pipe-structured program, the
/// granularity at which the incremental engine parses and caches.
// A block declaration dominates the size; statements are few and
// short-lived, so boxing would only complicate matching.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum TopStmt {
    /// `param NAME = N;`
    Param(String, i64),
    /// `input NAME : array[T] [lo, hi];`
    Input(InputDecl),
    /// `output A, B;`
    Output(Vec<String>),
    /// `NAME : type := forall … endall;` / `… for … endfor;`
    Block(BlockDecl),
}

/// Stable identity of a top-level statement, independent of its byte
/// position: named declarations identify by name, output statements by
/// ordinal. Incremental recompilation tracks statements by this identity
/// so unrelated edits never disturb a statement's cached artifacts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StmtId {
    /// A `param` declaration, by parameter name.
    Param(String),
    /// An `input` declaration, by array name.
    Input(String),
    /// An `output` statement, by ordinal among output statements.
    Output(usize),
    /// A block declaration, by block name.
    Block(String),
}

/// One statement located by [`split_statements`]: its identity plus the
/// byte range and start position of its text in the enclosing source.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitStmt {
    /// Stable statement identity.
    pub id: StmtId,
    /// Byte offset of the statement's first token.
    pub start: usize,
    /// Byte offset just past the statement's last token.
    pub end: usize,
    /// 1-based line of the first token.
    pub line: u32,
    /// 1-based column of the first token.
    pub col: u32,
}

/// Keywords that open a nested construct while scanning for statement
/// boundaries, and the matching closers.
const OPENERS: &[&str] = &["forall", "for", "if", "let", "iter"];
const CLOSERS: &[&str] = &["endall", "endfor", "endif", "endlet", "enditer"];

/// Split a program into its top-level statements **without parsing them**:
/// a single lex, then a linear scan that tracks construct nesting depth
/// (`forall`/`for`/`if`/`let`/`iter` vs. their `end…` closers). Block
/// statements end at the closer returning the depth to zero (plus an
/// optional trailing `;`); `param`/`input`/`output` statements end at the
/// first depth-zero `;`.
///
/// On any irregularity (unbalanced closers, an unterminated statement, a
/// statement that starts with a non-identifier) the split fails; callers
/// fall back to the whole-program parser, whose diagnostics stay
/// authoritative. A successful split of a *valid* program always carves
/// exactly the statement texts the whole-program parser would consume.
pub fn split_statements(src: &str) -> Result<Vec<SplitStmt>, ParseError> {
    let toks = lex(src)?;
    let split_err = |sp: &Spanned, msg: String| ParseError {
        message: msg,
        line: sp.span.line,
        col: sp.span.col,
        kind: ParseErrorKind::Syntax,
    };
    let ident_at = |i: usize| match &toks[i].tok {
        Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => Some(s.clone()),
        _ => None,
    };
    let mut out = Vec::new();
    let mut output_ord = 0usize;
    let mut i = 0usize;
    while toks[i].tok != Tok::Eof {
        let first = i;
        let (id, is_block) = match &toks[i].tok {
            Tok::Ident(s) if s == "param" => match ident_at(i + 1) {
                Some(n) => (StmtId::Param(n), false),
                None => return Err(split_err(&toks[i + 1], "expected parameter name".into())),
            },
            Tok::Ident(s) if s == "input" => match ident_at(i + 1) {
                Some(n) => (StmtId::Input(n), false),
                None => return Err(split_err(&toks[i + 1], "expected input name".into())),
            },
            Tok::Ident(s) if s == "output" => {
                output_ord += 1;
                (StmtId::Output(output_ord - 1), false)
            }
            _ => match ident_at(i) {
                Some(n) => (StmtId::Block(n), true),
                None => {
                    return Err(split_err(
                        &toks[i],
                        format!("expected statement, found '{}'", toks[i].tok),
                    ))
                }
            },
        };
        let mut depth = 0i64;
        let mut last = None;
        while last.is_none() {
            match &toks[i].tok {
                Tok::Eof => {
                    return Err(split_err(&toks[first], "unterminated statement".into()));
                }
                Tok::Ident(s) if OPENERS.contains(&s.as_str()) => depth += 1,
                Tok::Ident(s) if CLOSERS.contains(&s.as_str()) => {
                    depth -= 1;
                    if depth < 0 {
                        return Err(split_err(&toks[i], format!("unmatched '{s}'")));
                    }
                    if depth == 0 && is_block {
                        // The block construct just closed; an optional
                        // trailing semicolon belongs to this statement.
                        last = Some(if toks[i + 1].tok == Tok::Semi {
                            i + 1
                        } else {
                            i
                        });
                    }
                }
                Tok::Semi if depth == 0 && !is_block => last = Some(i),
                _ => {}
            }
            i += 1;
        }
        let last = last.expect("loop exits only with an end token");
        i = last + 1;
        out.push(SplitStmt {
            id,
            start: toks[first].span.start as usize,
            end: toks[last].span.end as usize,
            line: toks[first].span.line,
            col: toks[first].span.col,
        });
    }
    Ok(out)
}

/// Parse one top-level statement given as standalone source text (as
/// carved out by [`split_statements`]). The returned statement spans are
/// *relative* to `text` — line 1, column 1, byte 0 at the first token —
/// so the parse of a statement is position-independent and can be cached
/// by content and rebased to wherever the statement sits in a file.
pub fn parse_stmt_mapped(
    text: &str,
    max_depth: usize,
) -> Result<(TopStmt, Vec<(StmtKey, Span)>), ParseError> {
    let toks = lex(text)?;
    let mut p = Parser::new(toks);
    p.max_depth = max_depth.min(DEFAULT_MAX_NESTING_DEPTH);
    let stmt = p.statement()?;
    if p.peek() != &Tok::Eof {
        return p.err(format!("trailing input at '{}'", p.peek()));
    }
    Ok((stmt, p.map))
}

/// Parse a complete pipe-structured program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_program_mapped(src, "<source>").map(|(p, _)| p)
}

/// Parse a complete pipe-structured program together with its statement
/// [`SourceMap`] (spans of every declaration, definition and block body),
/// which the compiler threads into IR provenance. `file` names the source
/// in diagnostics.
pub fn parse_program_mapped(src: &str, file: &str) -> Result<(Program, SourceMap), ParseError> {
    parse_program_mapped_limited(src, file, DEFAULT_MAX_NESTING_DEPTH)
}

/// [`parse_program_mapped`] with an explicit nesting-depth budget, used by
/// callers compiling untrusted source under [`ParseErrorKind::DepthLimit`]
/// resource limits. The effective budget is clamped to the parser's own
/// stack-safety ceiling ([`DEFAULT_MAX_NESTING_DEPTH`]).
pub fn parse_program_mapped_limited(
    src: &str,
    file: &str,
    max_depth: usize,
) -> Result<(Program, SourceMap), ParseError> {
    let toks = lex(src)?;
    let mut p = Parser::new(toks);
    p.max_depth = max_depth.min(DEFAULT_MAX_NESTING_DEPTH);
    let prog = p.program()?;
    let mut map = SourceMap::new(file, src);
    for (key, span) in p.map.drain(..) {
        map.record(key, span);
    }
    Ok((prog, map))
}

/// Parse a single expression (used heavily in tests and by the REPL-style
/// examples).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser::new(toks);
    let e = p.expr()?;
    if p.peek() != &Tok::Eof {
        return p.err(format!("trailing input at '{}'", p.peek()));
    }
    Ok(e)
}

/// Parse a single block body (`forall … endall` / `for … endfor`).
pub fn parse_block_body(src: &str) -> Result<BlockBody, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser::new(toks);
    let b = p.block_body()?;
    if p.peek() != &Tok::Eof {
        return p.err(format!("trailing input at '{}'", p.peek()));
    }
    Ok(b)
}

/// The paper's Example 1 (§4), verbatim modulo typography.
pub const EXAMPLE_1: &str = "
forall i in [0, m+1]            % range specification
  P : real :=                   % definition part
    if (i = 0)|(i = m+1) then C[i]
    else
      0.25 * (C[i-1] + 2.*C[i] + C[i+1])
    endif;
construct
  B[i]*(P*P)                    % accumulation
endall
";

/// The paper's Example 2 (§4), verbatim modulo typography (the memo's
/// `T := D[1:P]` is an OCR artifact for `T := T[i: P]`).
pub const EXAMPLE_2: &str = "
for
  i : integer := 1;             % loop initialization
  T : array[real] := [0: 0.]
do
  let P : real := A[i]*T[i-1] + B[i]   % definition part
  in
    if i < m then               % loop body
      iter
        T := T[i: P];
        i := i + 1
      enditer
    else T
    endif
  endlet
endfor
";

/// The two examples combined into the paper's Fig. 3 pipe-structured
/// program (C, B feed the forall; its result A and B feed the for-iter).
pub const FIG3_PROGRAM: &str = "
param m = 32;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];

A : array[real] :=
  forall i in [0, m+1]
    P : real :=
      if (i = 0)|(i = m+1) then C[i]
      else
        0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct
    B[i]*(P*P)
  endall;

X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0.]
  do
    let P : real := A[i]*T[i-1] + B[i]
    in
      if i < m then
        iter
          T := T[i: P];
          i := i + 1
        enditer
      else T
      endif
    endlet
  endfor;

output A, X;
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Add,
                Expr::IntLit(1),
                Expr::bin(BinOp::Mul, Expr::IntLit(2), Expr::IntLit(3))
            )
        );
    }

    #[test]
    fn parses_relational_and_boolean() {
        let e = parse_expr("(i = 0)|(i = m+1)").unwrap();
        match e {
            Expr::Bin(BinOp::Or, a, b) => {
                assert!(matches!(*a, Expr::Bin(BinOp::Eq, _, _)));
                assert!(matches!(*b, Expr::Bin(BinOp::Eq, _, _)));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn parses_array_index_and_append() {
        assert_eq!(
            parse_expr("C[i-1]").unwrap(),
            Expr::index("C", Expr::bin(BinOp::Sub, Expr::var("i"), Expr::IntLit(1)))
        );
        assert!(matches!(parse_expr("T[i: P]").unwrap(), Expr::Append(..)));
        assert!(matches!(
            parse_expr("[0: 0.]").unwrap(),
            Expr::ArrayInit(..)
        ));
    }

    #[test]
    fn unary_forms() {
        assert_eq!(
            parse_expr("-x").unwrap(),
            Expr::un(UnOp::Neg, Expr::var("x"))
        );
        assert_eq!(
            parse_expr("~(a + b)").unwrap(),
            Expr::un(
                UnOp::Not,
                Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b"))
            )
        );
    }

    #[test]
    fn parses_example_1() {
        let b = parse_block_body(EXAMPLE_1).unwrap();
        let BlockBody::Forall(f) = b else {
            panic!("not forall")
        };
        assert_eq!(f.index_var, "i");
        assert_eq!(f.defs.len(), 1);
        assert_eq!(f.defs[0].name, "P");
        assert!(matches!(f.defs[0].value, Expr::If(..)));
        assert!(f.body.mentions("B"));
        assert!(f.body.mentions("P"));
    }

    #[test]
    fn parses_example_2() {
        let b = parse_block_body(EXAMPLE_2).unwrap();
        let BlockBody::ForIter(fi) = b else {
            panic!("not for-iter")
        };
        assert_eq!(fi.inits.len(), 2);
        assert_eq!(fi.inits[0].name, "i");
        assert_eq!(fi.inits[1].name, "T");
        assert!(matches!(fi.inits[1].value, Expr::ArrayInit(..)));
        assert!(matches!(fi.body, Expr::Let(..)));
    }

    #[test]
    fn parses_fig3_program() {
        let p = parse_program(FIG3_PROGRAM).unwrap();
        assert_eq!(p.param("m"), Some(32));
        assert_eq!(p.inputs.len(), 2);
        assert_eq!(p.blocks.len(), 2);
        assert_eq!(p.outputs, vec!["A".to_string(), "X".to_string()]);
        assert!(matches!(p.blocks[0].body, BlockBody::Forall(_)));
        assert!(matches!(p.blocks[1].body, BlockBody::ForIter(_)));
    }

    #[test]
    fn error_has_line_number() {
        let err = parse_program("param m = ;").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn keywords_not_identifiers() {
        assert!(parse_expr("endif + 1").is_err());
    }

    #[test]
    fn if_inside_arithmetic() {
        let e = parse_expr("2 * if c then 1 else 0 endif").unwrap();
        assert!(matches!(e, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn split_carves_fig3_statements() {
        let stmts = split_statements(FIG3_PROGRAM).unwrap();
        let ids: Vec<_> = stmts.iter().map(|s| s.id.clone()).collect();
        assert_eq!(
            ids,
            vec![
                StmtId::Param("m".into()),
                StmtId::Input("B".into()),
                StmtId::Input("C".into()),
                StmtId::Block("A".into()),
                StmtId::Block("X".into()),
                StmtId::Output(0),
            ]
        );
        // Each carved text ends at a semicolon and the slices tile the
        // non-whitespace source in order.
        for s in &stmts {
            let text = &FIG3_PROGRAM[s.start..s.end];
            assert!(text.trim_end().ends_with(';'), "slice: {text}");
        }
        for w in stmts.windows(2) {
            assert!(w[0].end <= w[1].start);
            assert!(FIG3_PROGRAM[w[0].end..w[1].start].trim().is_empty());
        }
    }

    #[test]
    fn split_statement_texts_reparse_to_the_whole_program() {
        for src in [EXAMPLE_1, EXAMPLE_2, FIG3_PROGRAM] {
            // EXAMPLE_1/2 are block bodies, not programs; wrap them.
            let full = if src.contains("param") {
                src.to_string()
            } else {
                format!(
                    "param m = 8;\ninput B : array[real] [0, m+1];\n\
                     A : array[real] := {src};\noutput A;\n"
                )
            };
            let whole = parse_program(&full).unwrap();
            let stmts = split_statements(&full).unwrap();
            let mut rebuilt = Program::default();
            for s in &stmts {
                let (stmt, _) =
                    parse_stmt_mapped(&full[s.start..s.end], DEFAULT_MAX_NESTING_DEPTH).unwrap();
                match stmt {
                    TopStmt::Param(n, v) => rebuilt.params.push((n, v)),
                    TopStmt::Input(d) => rebuilt.inputs.push(d),
                    TopStmt::Output(ns) => rebuilt.outputs.extend(ns),
                    TopStmt::Block(b) => rebuilt.blocks.push(b),
                }
            }
            assert_eq!(rebuilt, whole);
        }
    }

    #[test]
    fn split_spans_rebase_to_whole_program_map() {
        let (_, whole_map) = parse_program_mapped(FIG3_PROGRAM, "f.val").unwrap();
        let stmts = split_statements(FIG3_PROGRAM).unwrap();
        let mut rebased: Vec<(StmtKey, Span)> = Vec::new();
        for s in &stmts {
            let (_, rel) =
                parse_stmt_mapped(&FIG3_PROGRAM[s.start..s.end], DEFAULT_MAX_NESTING_DEPTH)
                    .unwrap();
            for (key, sp) in rel {
                let col = if sp.line == 1 {
                    sp.col + s.col - 1
                } else {
                    sp.col
                };
                rebased.push((
                    key,
                    Span::new(
                        sp.start + s.start as u32,
                        sp.end + s.start as u32,
                        sp.line + s.line - 1,
                        col,
                    ),
                ));
            }
        }
        assert_eq!(rebased.len(), whole_map.len());
        for (key, sp) in &rebased {
            assert_eq!(whole_map.span(key), Some(*sp), "key {key:?}");
        }
    }

    #[test]
    fn split_fails_cleanly_on_malformed_source() {
        // Unterminated statement, unmatched closer, non-identifier start:
        // every anomaly is an error, never a panic or a bogus carve.
        assert!(split_statements("param m = 3").is_err());
        assert!(split_statements("endall;").is_err());
        assert!(split_statements("[ 3 ];").is_err());
        assert!(split_statements("A : array[real] := forall i in [0, 1] construct 1").is_err());
    }

    #[test]
    fn parse_stmt_rejects_trailing_input() {
        assert!(parse_stmt_mapped("param m = 3; param k = 4;", 200).is_err());
    }
}
