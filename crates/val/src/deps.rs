//! Flow-dependency analysis of pipe-structured programs (§4, §8).
//!
//! Builds the paper's *flow dependency graph*: one node per `forall` /
//! `for-iter` block, one edge per producer→consumer array link. The graph
//! is acyclic by the applicative nature of Val (a block may only reference
//! inputs and earlier blocks). Analysis also performs the compile-time
//! range checking that pipelined gating relies on: every array access must
//! stay within the producer's manifest range *for every index at which the
//! access is actually evaluated* — accesses guarded by index-static
//! conditions (like Example 1's boundary test) are checked only where the
//! guard holds.

use crate::ast::*;
use crate::classify::{
    check_primitive_forall, check_primitive_foriter, index_offset, NameEnv, PrimitiveForIter,
    Violation,
};
use crate::fold::{eval_manifest_int, eval_static, is_static_in, Bindings};
use std::collections::{HashMap, HashSet};
use std::fmt;
use valpipe_ir::value::Value;

/// An array access together with the conjunction of the `if` conditions
/// guarding it.
#[derive(Debug, Clone)]
pub struct GuardedAccess {
    /// Array name.
    pub array: String,
    /// Manifest offset in `A[i + m]`.
    pub offset: i64,
    /// Conditions on the path to the access (empty = unconditional). A
    /// `(cond, taken)` pair means the access sits in the `taken` arm.
    pub guards: Vec<(Expr, bool)>,
}

impl GuardedAccess {
    /// Evaluate whether this access executes at index `i`, when every
    /// guard is static in the index variable. `None` if some guard is
    /// dynamic (depends on data).
    pub fn active_at(&self, index_var: &str, i: i64, params: &Bindings) -> Option<bool> {
        let mut env = params.clone();
        env.insert(index_var.to_string(), Value::Int(i));
        for (cond, taken) in &self.guards {
            match eval_static(cond, &env) {
                Some(Value::Bool(b)) => {
                    if b != *taken {
                        return Some(false);
                    }
                }
                _ => return None,
            }
        }
        Some(true)
    }
}

/// Collect array accesses with their guard paths from a (primitive)
/// expression.
pub fn collect_guarded(expr: &Expr, index_var: &str, params: &Bindings) -> Vec<GuardedAccess> {
    let mut out = Vec::new();
    let mut guards = Vec::new();
    walk(expr, index_var, params, &mut guards, &mut out);
    out
}

fn walk(
    e: &Expr,
    iv: &str,
    params: &Bindings,
    guards: &mut Vec<(Expr, bool)>,
    out: &mut Vec<GuardedAccess>,
) {
    match e {
        Expr::Index(name, idx) => {
            if let Some(offset) = index_offset(idx, iv, params) {
                out.push(GuardedAccess {
                    array: name.clone(),
                    offset,
                    guards: guards.clone(),
                });
            }
        }
        Expr::Bin(_, a, b) => {
            walk(a, iv, params, guards, out);
            walk(b, iv, params, guards, out);
        }
        Expr::Un(_, a) => walk(a, iv, params, guards, out),
        Expr::If(c, t, f) => {
            walk(c, iv, params, guards, out);
            guards.push(((**c).clone(), true));
            walk(t, iv, params, guards, out);
            guards.pop();
            guards.push(((**c).clone(), false));
            walk(f, iv, params, guards, out);
            guards.pop();
        }
        Expr::Let(defs, body) => {
            for d in defs {
                walk(&d.value, iv, params, guards, out);
            }
            walk(body, iv, params, guards, out);
        }
        Expr::Append(_, i, v) => {
            walk(i, iv, params, guards, out);
            walk(v, iv, params, guards, out);
        }
        Expr::ArrayInit(i, v) => {
            walk(i, iv, params, guards, out);
            walk(v, iv, params, guards, out);
        }
        Expr::Iter(binds) => {
            for (_, e) in binds {
                walk(e, iv, params, guards, out);
            }
        }
        _ => {}
    }
}

/// Classification of one block within a program.
#[derive(Debug, Clone)]
pub enum BlockClass {
    /// A primitive forall with manifest range.
    Forall {
        /// Manifest index range.
        lo: i64,
        /// Manifest index range.
        hi: i64,
    },
    /// A primitive for-iter (canonical first-order recurrence loop).
    ForIter(PrimitiveForIter),
}

/// Analyzed block.
#[derive(Debug, Clone)]
pub struct BlockNode {
    /// Block name.
    pub name: String,
    /// Classification.
    pub class: BlockClass,
    /// Manifest range of the produced array.
    pub range: (i64, i64),
    /// External arrays consumed, with offsets (deduplicated).
    pub consumes: Vec<(String, i64)>,
}

/// The flow dependency graph of a pipe-structured program.
#[derive(Debug, Clone)]
pub struct FlowGraph {
    /// Declared inputs with manifest ranges.
    pub inputs: Vec<(String, (i64, i64))>,
    /// Blocks in (topological = source) order.
    pub blocks: Vec<BlockNode>,
    /// Producer → consumer edges (producer may be an input).
    pub edges: Vec<(String, String)>,
}

impl FlowGraph {
    /// Range of a named array (input or block).
    pub fn range_of(&self, name: &str) -> Option<(i64, i64)> {
        self.inputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, r)| r)
            .or_else(|| self.blocks.iter().find(|b| b.name == name).map(|b| b.range))
    }
}

/// Analysis failure.
#[derive(Debug, Clone)]
pub enum AnalyzeError {
    /// A block fails the structural classification.
    NotPipelinable {
        /// Block name.
        block: String,
        /// The specific violation.
        violation: Violation,
    },
    /// A reference to an array that is neither an input nor an earlier
    /// block (includes forward references, which would make the flow
    /// dependency graph cyclic).
    Unresolved {
        /// Block name.
        block: String,
        /// Referenced array.
        array: String,
    },
    /// An access that can fall outside the producer's range.
    OutOfRange {
        /// Consumer block.
        block: String,
        /// Accessed array.
        array: String,
        /// Access offset.
        offset: i64,
        /// First violating index.
        at_index: i64,
    },
    /// Other structural errors (range arithmetic, empty ranges…).
    Other(String),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::NotPipelinable { block, violation } => {
                write!(f, "block '{block}' is not pipelinable: {violation}")
            }
            AnalyzeError::Unresolved { block, array } => {
                write!(f, "block '{block}' references undefined array '{array}'")
            }
            AnalyzeError::OutOfRange {
                block,
                array,
                offset,
                at_index,
            } => write!(
                f,
                "block '{block}': access {array}[i{offset:+}] leaves the producer's range at i = {at_index}"
            ),
            AnalyzeError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Analyze a (type-checked) program into its flow dependency graph,
/// classifying every block and range-checking every access.
pub fn analyze(prog: &Program) -> Result<FlowGraph, AnalyzeError> {
    let mut params = Bindings::new();
    for (n, v) in &prog.params {
        params.insert(n.clone(), Value::Int(*v));
    }
    let mut inputs = Vec::new();
    let mut known: HashMap<String, (i64, i64)> = HashMap::new();
    for d in &prog.inputs {
        let lo = eval_manifest_int(&d.range.0, &params).map_err(AnalyzeError::Other)?;
        let hi = eval_manifest_int(&d.range.1, &params).map_err(AnalyzeError::Other)?;
        if hi < lo {
            return Err(AnalyzeError::Other(format!(
                "input '{}' has empty range [{lo}, {hi}]",
                d.name
            )));
        }
        inputs.push((d.name.clone(), (lo, hi)));
        known.insert(d.name.clone(), (lo, hi));
    }

    let mut blocks = Vec::new();
    let mut edges = Vec::new();
    for block in &prog.blocks {
        let arrays: HashSet<String> = known.keys().cloned().collect();
        let scalars: HashSet<String> = HashSet::new();
        let env = NameEnv::new(None, scalars, arrays, params.clone());
        let fail = |violation| AnalyzeError::NotPipelinable {
            block: block.name.clone(),
            violation,
        };

        let (class, range, index_var, index_span, exprs): (_, _, String, (i64, i64), Vec<Expr>) =
            match &block.body {
                BlockBody::Forall(fa) => {
                    let pf = check_primitive_forall(fa, &env).map_err(fail)?;
                    if pf.hi < pf.lo {
                        return Err(AnalyzeError::Other(format!(
                            "block '{}' has empty range [{}, {}]",
                            block.name, pf.lo, pf.hi
                        )));
                    }
                    // Defs then body, in evaluation order, wrapped so the
                    // guard analysis sees the def conditions.
                    let mut exprs: Vec<Expr> = fa.defs.iter().map(|d| d.value.clone()).collect();
                    exprs.push(fa.body.clone());
                    (
                        BlockClass::Forall {
                            lo: pf.lo,
                            hi: pf.hi,
                        },
                        (pf.lo, pf.hi),
                        fa.index_var.clone(),
                        (pf.lo, pf.hi),
                        exprs,
                    )
                }
                BlockBody::ForIter(fi) => {
                    let pfi = check_primitive_foriter(fi, &env).map_err(fail)?;
                    let range = pfi.range();
                    let step = pfi.step_inlined();
                    let init = pfi.init_expr.clone();
                    let iv = pfi.index_var.clone();
                    let span = (pfi.start, pfi.bound - 1);
                    (BlockClass::ForIter(pfi), range, iv, span, vec![init, step])
                }
            };

        // Range-check every guarded access of every constituent expression.
        let acc_name = match &class {
            BlockClass::ForIter(p) => Some(p.acc.clone()),
            _ => None,
        };
        let mut consumes: Vec<(String, i64)> = Vec::new();
        for e in &exprs {
            for ga in collect_guarded(e, &index_var, &params) {
                let producer_range = if Some(&ga.array) == acc_name.as_ref() {
                    // Self-access of the accumulator: guaranteed by the
                    // first-order check; skip.
                    continue;
                } else {
                    match known.get(&ga.array) {
                        Some(&r) => r,
                        None => {
                            return Err(AnalyzeError::Unresolved {
                                block: block.name.clone(),
                                array: ga.array.clone(),
                            })
                        }
                    }
                };
                // Check bounds for every index at which the access runs.
                for i in index_span.0..=index_span.1 {
                    let active = ga.active_at(&index_var, i, &params).unwrap_or(true);
                    if active {
                        let at = i + ga.offset;
                        if at < producer_range.0 || at > producer_range.1 {
                            return Err(AnalyzeError::OutOfRange {
                                block: block.name.clone(),
                                array: ga.array.clone(),
                                offset: ga.offset,
                                at_index: i,
                            });
                        }
                    }
                }
                if !consumes.contains(&(ga.array.clone(), ga.offset)) {
                    consumes.push((ga.array.clone(), ga.offset));
                }
            }
        }
        consumes.sort();
        for (a, _) in &consumes {
            let edge = (a.clone(), block.name.clone());
            if !edges.contains(&edge) {
                edges.push(edge);
            }
        }

        known.insert(block.name.clone(), range);
        blocks.push(BlockNode {
            name: block.name.clone(),
            class,
            range,
            consumes,
        });
    }

    // Outputs must resolve.
    for o in &prog.outputs {
        if !known.contains_key(o) {
            return Err(AnalyzeError::Other(format!("output '{o}' is undefined")));
        }
    }
    Ok(FlowGraph {
        inputs,
        blocks,
        edges,
    })
}

/// Convenience: does any guard of any access in `expr` depend on data
/// (i.e. is not static in the index variable and parameters)?
pub fn has_dynamic_guards(expr: &Expr, index_var: &str, params: &Bindings) -> bool {
    let allowed = |n: &str| n == index_var || params.contains_key(n);
    let mut dynamic = false;
    expr.walk(&mut |e| {
        if let Expr::If(c, _, _) = e {
            if !is_static_in(c, &allowed) {
                dynamic = true;
            }
        }
    });
    dynamic
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program, FIG3_PROGRAM};

    #[test]
    fn fig3_analyzes() {
        let prog = parse_program(FIG3_PROGRAM).unwrap();
        let fg = analyze(&prog).unwrap();
        assert_eq!(fg.blocks.len(), 2);
        assert_eq!(fg.blocks[0].range, (0, 33)); // [0, m+1], m = 32
        assert_eq!(fg.blocks[1].range, (0, 31)); // [0, m-1]
                                                 // Edges: B→A, C→A, A→X, B→X.
        let mut edges = fg.edges.clone();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                ("A".to_string(), "X".to_string()),
                ("B".to_string(), "A".to_string()),
                ("B".to_string(), "X".to_string()),
                ("C".to_string(), "A".to_string()),
            ]
        );
        assert_eq!(fg.range_of("B"), Some((0, 33)));
    }

    #[test]
    fn guarded_boundary_access_passes_range_check() {
        // Example 1's C[i-1] at i=0 would be out of range, but the guard
        // `(i=0)|(i=m+1)` keeps it in the interior arm only.
        let prog = parse_program(FIG3_PROGRAM).unwrap();
        assert!(analyze(&prog).is_ok());
    }

    #[test]
    fn unguarded_out_of_range_detected() {
        let src = "
param m = 8;
input C : array[real] [0, m];
A : array[real] := forall i in [0, m] construct C[i+1] endall;
output A;
";
        let prog = parse_program(src).unwrap();
        match analyze(&prog) {
            Err(AnalyzeError::OutOfRange {
                array,
                offset,
                at_index,
                ..
            }) => {
                assert_eq!(array, "C");
                assert_eq!(offset, 1);
                assert_eq!(at_index, 8);
            }
            other => panic!("expected OutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn forward_reference_rejected() {
        let src = "
param m = 4;
A : array[real] := forall i in [0, m] construct Z[i] endall;
Z : array[real] := forall i in [0, m] construct 1. endall;
output A;
";
        let prog = parse_program(src).unwrap();
        // The classifier reports the unknown name before range analysis
        // would; either error identifies the forward reference.
        assert!(matches!(
            analyze(&prog),
            Err(AnalyzeError::Unresolved { .. } | AnalyzeError::NotPipelinable { .. })
        ));
    }

    #[test]
    fn guards_collected_with_polarity() {
        let e = parse_expr("if i = 0 then C[i] else C[i-1] endif").unwrap();
        let params = Bindings::new();
        let gs = collect_guarded(&e, "i", &params);
        assert_eq!(gs.len(), 2);
        assert!(gs[0].guards[0].1);
        assert!(!gs[1].guards[0].1);
        assert_eq!(gs[1].offset, -1);
        // At i=0 the else-arm access is inactive.
        assert_eq!(gs[1].active_at("i", 0, &params), Some(false));
        assert_eq!(gs[1].active_at("i", 3, &params), Some(true));
    }

    #[test]
    fn dynamic_guard_detection() {
        let params = Bindings::new();
        let stat = parse_expr("if i < 3 then C[i] else C[i-1] endif").unwrap();
        assert!(!has_dynamic_guards(&stat, "i", &params));
        let dyn_ = parse_expr("if C[i] > 0. then A[i] else B[i] endif").unwrap();
        assert!(has_dynamic_guards(&dyn_, "i", &params));
    }
}
