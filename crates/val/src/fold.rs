//! Constant folding, static evaluation and algebraic simplification.
//!
//! Three jobs:
//! * evaluate *manifest* expressions (index ranges, which the paper's
//!   pipe-structured programs require to be fixed) over the compile-time
//!   parameter environment;
//! * decide whether an expression is *static in the index variable* — the
//!   condition under which the compiler can precompute boolean control
//!   streams instead of gating dynamically;
//! * simplify the symbolic `α`/`β` coefficient expressions produced by the
//!   linear-recurrence analysis (dropping `0·x`, `x+0`, `1·x`, …), which
//!   directly shrinks the companion pipeline.

use crate::ast::{Def, Expr};
use std::collections::HashMap;
use valpipe_ir::value::{apply_bin, apply_un, BinOp, UnOp, Value};

/// A scalar binding environment for static evaluation.
pub type Bindings = HashMap<String, Value>;

/// Evaluate an expression that may reference only the given scalar
/// bindings (parameters, and possibly the index variable). Returns `None`
/// if the expression references anything else (arrays, unknown names) or
/// faults (division by zero, type error).
pub fn eval_static(expr: &Expr, env: &Bindings) -> Option<Value> {
    match expr {
        Expr::IntLit(v) => Some(Value::Int(*v)),
        Expr::RealLit(v) => Some(Value::Real(*v)),
        Expr::BoolLit(v) => Some(Value::Bool(*v)),
        Expr::Var(name) => env.get(name).copied(),
        Expr::Bin(op, a, b) => {
            let a = eval_static(a, env)?;
            let b = eval_static(b, env)?;
            apply_bin(*op, a, b).ok()
        }
        Expr::Un(op, a) => {
            let a = eval_static(a, env)?;
            // `~` lexes as NOT; on numerics it means negation.
            let op = match (op, a) {
                (UnOp::Not, Value::Int(_) | Value::Real(_)) => UnOp::Neg,
                (UnOp::Neg, Value::Bool(_)) => UnOp::Not,
                _ => *op,
            };
            apply_un(op, a).ok()
        }
        Expr::If(c, t, e) => match eval_static(c, env)? {
            Value::Bool(true) => eval_static(t, env),
            Value::Bool(false) => eval_static(e, env),
            _ => None,
        },
        Expr::Let(defs, body) => {
            let mut inner = env.clone();
            for d in defs {
                let v = eval_static(&d.value, &inner)?;
                inner.insert(d.name.clone(), v);
            }
            eval_static(body, &inner)
        }
        _ => None,
    }
}

/// Evaluate a manifest integer expression over the parameters — the form
/// required for index ranges. `Err` carries a description of why the
/// expression is not manifest.
pub fn eval_manifest_int(expr: &Expr, params: &Bindings) -> Result<i64, String> {
    match eval_static(expr, params) {
        Some(Value::Int(v)) => Ok(v),
        Some(other) => Err(format!(
            "manifest expression has type {}",
            other.type_name()
        )),
        None => Err("expression is not manifest (references non-parameter names)".into()),
    }
}

/// Whether the expression references only names in `allowed` and contains
/// no array operations — i.e. it can be evaluated statically once the
/// allowed names are known.
pub fn is_static_in(expr: &Expr, allowed: &dyn Fn(&str) -> bool) -> bool {
    match expr {
        Expr::IntLit(_) | Expr::RealLit(_) | Expr::BoolLit(_) => true,
        Expr::Var(n) => allowed(n),
        Expr::Bin(_, a, b) => is_static_in(a, allowed) && is_static_in(b, allowed),
        Expr::Un(_, a) => is_static_in(a, allowed),
        Expr::If(c, t, e) => {
            is_static_in(c, allowed) && is_static_in(t, allowed) && is_static_in(e, allowed)
        }
        Expr::Let(defs, body) => {
            // Conservative: require defs themselves static; bound names
            // become allowed in the body.
            let mut names: Vec<&str> = Vec::new();
            for d in defs {
                let ok = {
                    let names = names.clone();
                    is_static_in(&d.value, &|n| allowed(n) || names.contains(&n))
                };
                if !ok {
                    return false;
                }
                names.push(&d.name);
            }
            is_static_in(body, &|n| allowed(n) || names.contains(&n))
        }
        Expr::Index(..)
        | Expr::Index2(..)
        | Expr::Append(..)
        | Expr::ArrayInit(..)
        | Expr::Iter(..) => false,
    }
}

/// Substitute every let-bound name by its definition, bottom-up, yielding a
/// let-free expression. Sound because primitive expressions are pure; used
/// before linearity analysis.
pub fn inline_lets(expr: &Expr) -> Expr {
    fn subst(e: &Expr, env: &HashMap<String, Expr>) -> Expr {
        match e {
            Expr::Var(n) => env.get(n).cloned().unwrap_or_else(|| e.clone()),
            Expr::Bin(op, a, b) => Expr::bin(*op, subst(a, env), subst(b, env)),
            Expr::Un(op, a) => Expr::un(*op, subst(a, env)),
            Expr::Index(a, i) => Expr::Index(a.clone(), Box::new(subst(i, env))),
            Expr::Index2(a, i, j) => {
                Expr::Index2(a.clone(), Box::new(subst(i, env)), Box::new(subst(j, env)))
            }
            Expr::If(c, t, f) => Expr::if_(subst(c, env), subst(t, env), subst(f, env)),
            Expr::Let(defs, body) => {
                let mut inner = env.clone();
                for d in defs {
                    let v = subst(&d.value, &inner);
                    inner.insert(d.name.clone(), v);
                }
                subst(body, &inner)
            }
            Expr::Append(a, i, v) => {
                Expr::Append(a.clone(), Box::new(subst(i, env)), Box::new(subst(v, env)))
            }
            Expr::ArrayInit(i, v) => {
                Expr::ArrayInit(Box::new(subst(i, env)), Box::new(subst(v, env)))
            }
            Expr::Iter(binds) => Expr::Iter(
                binds
                    .iter()
                    .map(|(n, e)| (n.clone(), subst(e, env)))
                    .collect(),
            ),
            lit => lit.clone(),
        }
    }
    subst(expr, &HashMap::new())
}

fn lit_of(v: Value) -> Expr {
    match v {
        Value::Int(i) => Expr::IntLit(i),
        Value::Real(r) => Expr::RealLit(r),
        Value::Bool(b) => Expr::BoolLit(b),
    }
}

fn as_num(e: &Expr) -> Option<f64> {
    match e {
        Expr::IntLit(v) => Some(*v as f64),
        Expr::RealLit(v) => Some(*v),
        _ => None,
    }
}

fn is_zero(e: &Expr) -> bool {
    as_num(e) == Some(0.0)
}

fn is_one(e: &Expr) -> bool {
    as_num(e) == Some(1.0)
}

/// Algebraic simplification with constant folding. Preserves semantics for
/// well-typed primitive expressions (and never reassociates floating-point
/// arithmetic — only identity elements are dropped).
pub fn simplify(expr: &Expr) -> Expr {
    match expr {
        Expr::Bin(op, a, b) => {
            let a = simplify(a);
            let b = simplify(b);
            // Constant folding.
            if let (Some(va), Some(vb)) = (lit_value(&a), lit_value(&b)) {
                if let Ok(v) = apply_bin(*op, va, vb) {
                    return lit_of(v);
                }
            }
            match op {
                BinOp::Add => {
                    if is_zero(&a) {
                        return b;
                    }
                    if is_zero(&b) {
                        return a;
                    }
                }
                BinOp::Sub => {
                    if is_zero(&b) {
                        return a;
                    }
                    if is_zero(&a) {
                        return simplify(&Expr::un(UnOp::Neg, b));
                    }
                }
                BinOp::Mul => {
                    // 0·e → 0 is safe here: primitive expressions are total
                    // (no side effects; array reads are handled upstream).
                    if is_zero(&a) || is_zero(&b) {
                        return if matches!(a, Expr::RealLit(_)) || matches!(b, Expr::RealLit(_)) {
                            Expr::RealLit(0.0)
                        } else {
                            Expr::IntLit(0)
                        };
                    }
                    if is_one(&a) {
                        return b;
                    }
                    if is_one(&b) {
                        return a;
                    }
                }
                BinOp::Div if is_one(&b) => {
                    return a;
                }
                BinOp::And => {
                    if a == Expr::BoolLit(true) {
                        return b;
                    }
                    if b == Expr::BoolLit(true) {
                        return a;
                    }
                    if a == Expr::BoolLit(false) || b == Expr::BoolLit(false) {
                        return Expr::BoolLit(false);
                    }
                }
                BinOp::Or => {
                    if a == Expr::BoolLit(false) {
                        return b;
                    }
                    if b == Expr::BoolLit(false) {
                        return a;
                    }
                    if a == Expr::BoolLit(true) || b == Expr::BoolLit(true) {
                        return Expr::BoolLit(true);
                    }
                }
                _ => {}
            }
            Expr::bin(*op, a, b)
        }
        Expr::Un(op, a) => {
            let a = simplify(a);
            if let Some(v) = lit_value(&a) {
                let op_fixed = match (op, v) {
                    (UnOp::Not, Value::Int(_) | Value::Real(_)) => UnOp::Neg,
                    _ => *op,
                };
                if let Ok(r) = apply_un(op_fixed, v) {
                    return lit_of(r);
                }
            }
            // ¬¬e / −−e
            if let Expr::Un(inner, e) = &a {
                if inner == op {
                    return (**e).clone();
                }
            }
            Expr::un(*op, a)
        }
        Expr::If(c, t, e) => {
            let c = simplify(c);
            let t = simplify(t);
            let e = simplify(e);
            match c {
                Expr::BoolLit(true) => t,
                Expr::BoolLit(false) => e,
                // Conditions in this subset are total, so dropping one of
                // two identical arms is sound.
                _ if t == e => t,
                c => Expr::if_(c, t, e),
            }
        }
        Expr::Let(defs, body) => {
            let defs: Vec<Def> = defs
                .iter()
                .map(|d| Def {
                    name: d.name.clone(),
                    ty: d.ty.clone(),
                    value: simplify(&d.value),
                })
                .collect();
            Expr::Let(defs, Box::new(simplify(body)))
        }
        Expr::Index(a, i) => Expr::Index(a.clone(), Box::new(simplify(i))),
        Expr::Index2(a, i, j) => {
            Expr::Index2(a.clone(), Box::new(simplify(i)), Box::new(simplify(j)))
        }
        Expr::Append(a, i, v) => {
            Expr::Append(a.clone(), Box::new(simplify(i)), Box::new(simplify(v)))
        }
        Expr::ArrayInit(i, v) => Expr::ArrayInit(Box::new(simplify(i)), Box::new(simplify(v))),
        Expr::Iter(binds) => Expr::Iter(
            binds
                .iter()
                .map(|(n, e)| (n.clone(), simplify(e)))
                .collect(),
        ),
        lit => lit.clone(),
    }
}

fn lit_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::IntLit(v) => Some(Value::Int(*v)),
        Expr::RealLit(v) => Some(Value::Real(*v)),
        Expr::BoolLit(v) => Some(Value::Bool(*v)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn env(pairs: &[(&str, i64)]) -> Bindings {
        pairs
            .iter()
            .map(|&(n, v)| (n.to_string(), Value::Int(v)))
            .collect()
    }

    #[test]
    fn manifest_ranges() {
        let e = parse_expr("m + 1").unwrap();
        assert_eq!(eval_manifest_int(&e, &env(&[("m", 10)])).unwrap(), 11);
        assert!(eval_manifest_int(&e, &env(&[])).is_err());
    }

    #[test]
    fn static_condition_evaluates_per_index() {
        let c = parse_expr("(i = 0)|(i = m+1)").unwrap();
        let mut b = env(&[("m", 4)]);
        b.insert("i".into(), Value::Int(0));
        assert_eq!(eval_static(&c, &b), Some(Value::Bool(true)));
        b.insert("i".into(), Value::Int(3));
        assert_eq!(eval_static(&c, &b), Some(Value::Bool(false)));
        b.insert("i".into(), Value::Int(5));
        assert_eq!(eval_static(&c, &b), Some(Value::Bool(true)));
    }

    #[test]
    fn is_static_detects_array_access() {
        let allowed = |n: &str| n == "i" || n == "m";
        assert!(is_static_in(&parse_expr("i < m").unwrap(), &allowed));
        assert!(!is_static_in(&parse_expr("C[i] < m").unwrap(), &allowed));
        assert!(!is_static_in(&parse_expr("i < k").unwrap(), &allowed));
    }

    #[test]
    fn inline_lets_substitutes() {
        let e = parse_expr("let p := a + 1 in p * p endlet").unwrap();
        let inlined = inline_lets(&e);
        assert_eq!(inlined, parse_expr("(a+1) * (a+1)").unwrap());
    }

    #[test]
    fn inline_lets_sequential_defs() {
        let e = parse_expr("let p := a; q := p + 1 in q endlet").unwrap();
        assert_eq!(inline_lets(&e), parse_expr("a + 1").unwrap());
    }

    #[test]
    fn simplify_identities() {
        for (src, want) in [
            ("x + 0", "x"),
            ("0 + x", "x"),
            ("x * 1", "x"),
            ("1 * x", "x"),
            ("x * 0", "0"),
            ("x - 0", "x"),
            ("x / 1", "x"),
            ("2 + 3", "5"),
            ("if true then a else b endif", "a"),
            ("if c then a else a endif", "a"),
        ] {
            assert_eq!(
                simplify(&parse_expr(src).unwrap()),
                parse_expr(want).unwrap(),
                "simplify({src})"
            );
        }
    }

    #[test]
    fn simplify_preserves_dynamic_parts() {
        let e = parse_expr("(a + 0) * (b + c)").unwrap();
        assert_eq!(simplify(&e), parse_expr("a * (b + c)").unwrap());
    }

    #[test]
    fn double_negation_cancels() {
        assert_eq!(
            simplify(&parse_expr("--x").unwrap()),
            parse_expr("x").unwrap()
        );
    }

    #[test]
    fn tilde_on_numeric_constant_negates() {
        assert_eq!(simplify(&parse_expr("~(3)").unwrap()), Expr::IntLit(-3));
    }
}
