//! Pretty-printer: render ASTs back to Val source.
//!
//! Guarantees `parse(print(x)) == x` for expressions and whole programs
//! (verified by round-trip tests), which the tooling uses to emit
//! flattened or otherwise transformed programs in readable form.

use crate::ast::*;

/// Render an expression as Val source (fully parenthesized where
/// precedence could bite).
pub fn expr_to_source(e: &Expr) -> String {
    match e {
        Expr::IntLit(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        Expr::RealLit(v) => {
            let s = if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                format!("{v}")
            };
            if *v < 0.0 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::BoolLit(v) => v.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Bin(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%%", // no surface syntax; see note below
                BinOp::Min | BinOp::Max => "%%",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "=",
                BinOp::Ne => "~=",
                BinOp::And => "&",
                BinOp::Or => "|",
            };
            format!("({} {o} {})", expr_to_source(a), expr_to_source(b))
        }
        Expr::Un(UnOp::Neg, a) => format!("(-{})", expr_to_source(a)),
        Expr::Un(UnOp::Not, a) => format!("(~{})", expr_to_source(a)),
        Expr::Un(UnOp::Abs, a) => format!("(~~abs {})", expr_to_source(a)),
        Expr::Index(a, i) => format!("{a}[{}]", expr_to_source(i)),
        Expr::Index2(a, i, j) => {
            format!("{a}[{}][{}]", expr_to_source(i), expr_to_source(j))
        }
        Expr::If(c, t, f) => format!(
            "if {} then {} else {} endif",
            expr_to_source(c),
            expr_to_source(t),
            expr_to_source(f)
        ),
        Expr::Let(defs, body) => {
            let ds = defs
                .iter()
                .map(def_to_source)
                .collect::<Vec<_>>()
                .join("; ");
            format!("let {ds} in {} endlet", expr_to_source(body))
        }
        Expr::Iter(binds) => {
            let bs = binds
                .iter()
                .map(|(n, e)| format!("{n} := {}", expr_to_source(e)))
                .collect::<Vec<_>>()
                .join("; ");
            format!("iter {bs} enditer")
        }
        Expr::Append(a, i, v) => format!(
            "{a}[{}: {}]",
            expr_to_source(i),
            expr_to_source(v)
        ),
        Expr::ArrayInit(i, v) => {
            format!("[{}: {}]", expr_to_source(i), expr_to_source(v))
        }
    }
}

fn def_to_source(d: &Def) -> String {
    match &d.ty {
        Some(t) => format!("{} : {t} := {}", d.name, expr_to_source(&d.value)),
        None => format!("{} := {}", d.name, expr_to_source(&d.value)),
    }
}

/// Render a whole program as Val source.
pub fn program_to_source(p: &Program) -> String {
    let mut out = String::new();
    for (n, v) in &p.params {
        out.push_str(&format!("param {n} = {v};\n"));
    }
    for i in &p.inputs {
        // The parser strips exactly one `array[…]` level, so a 2-D input's
        // stored element type already carries the inner array level.
        let mut line = format!(
            "input {} : array[{}] [{}, {}]",
            i.name,
            i.elem_ty,
            expr_to_source(&i.range.0),
            expr_to_source(&i.range.1)
        );
        if let Some((lo, hi)) = &i.range2 {
            line.push_str(&format!("[{}, {}]", expr_to_source(lo), expr_to_source(hi)));
        }
        line.push_str(";\n");
        out.push_str(&line);
    }
    for b in &p.blocks {
        out.push_str(&format!("{} : {} :=\n", b.name, b.ty));
        match &b.body {
            BlockBody::Forall(f) => {
                out.push_str(&format!(
                    "  forall {} in [{}, {}]",
                    f.index_var,
                    expr_to_source(&f.range.0),
                    expr_to_source(&f.range.1)
                ));
                if let Some((j, (lo, hi))) = &f.second {
                    out.push_str(&format!(
                        ", {j} in [{}, {}]",
                        expr_to_source(lo),
                        expr_to_source(hi)
                    ));
                }
                out.push('\n');
                for d in &f.defs {
                    out.push_str(&format!("    {};\n", def_to_source(d)));
                }
                out.push_str(&format!(
                    "  construct\n    {}\n  endall;\n",
                    expr_to_source(&f.body)
                ));
            }
            BlockBody::ForIter(fi) => {
                out.push_str("  for\n");
                for (k, d) in fi.inits.iter().enumerate() {
                    let sep = if k + 1 < fi.inits.len() { ";" } else { "" };
                    out.push_str(&format!("    {}{sep}\n", def_to_source(d)));
                }
                out.push_str(&format!(
                    "  do\n    {}\n  endfor;\n",
                    expr_to_source(&fi.body)
                ));
            }
        }
    }
    if !p.outputs.is_empty() {
        out.push_str(&format!("output {};\n", p.outputs.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program, FIG3_PROGRAM};

    #[test]
    fn expr_roundtrips() {
        for src in [
            "1 + 2 * 3",
            "0.25 * (C[i-1] + 2.*C[i] + C[i+1])",
            "if (i = 0)|(i = m+1) then C[i] else B[i] endif",
            "let p : real := A[i] in p * p endlet",
            "T[i: P]",
            "[0: 0.5]",
            "-(A[i] + B[i])",
            "~(x & y)",
            "iter T := T[i: P]; i := i + 1 enditer",
            "U[i-1][j+2]",
        ] {
            let e = parse_expr(src).unwrap();
            let printed = expr_to_source(&e);
            let reparsed = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("reparse of '{printed}' failed: {err}"));
            assert_eq!(reparsed, e, "roundtrip of {src} via {printed}");
        }
    }

    #[test]
    fn fig3_program_roundtrips() {
        let p = parse_program(FIG3_PROGRAM).unwrap();
        let printed = program_to_source(&p);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed}"));
        assert_eq!(reparsed, p);
    }

    #[test]
    fn flattened_program_prints_and_reparses() {
        let src = "
param n = 3;
input U : array[array[real]] [0, n][0, n];
V : array[array[real]] :=
  forall i in [0, n], j in [0, n] construct U[i][j] * 2. endall;
output V;
";
        let p = parse_program(src).unwrap();
        // Print the ORIGINAL (2-D) and reparse.
        let printed = program_to_source(&p);
        assert_eq!(parse_program(&printed).unwrap(), p);
        // And the flattened form too.
        let (flat, _) = crate::dims::flatten_program(&p).unwrap();
        let printed = program_to_source(&flat);
        assert_eq!(parse_program(&printed).unwrap(), flat);
    }
}
