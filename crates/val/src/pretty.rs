//! Pretty-printer: render ASTs back to Val source.
//!
//! Guarantees `parse(print(x)) == x` for expressions and whole programs
//! (verified by round-trip tests), which the tooling uses to emit
//! flattened or otherwise transformed programs in readable form.

use crate::ast::*;
use crate::srcmap::{SourceMap, StmtKey};
use valpipe_ir::prov::Span;

/// Render an expression as Val source (fully parenthesized where
/// precedence could bite).
pub fn expr_to_source(e: &Expr) -> String {
    match e {
        Expr::IntLit(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        Expr::RealLit(v) => {
            let s = if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                format!("{v}")
            };
            if *v < 0.0 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::BoolLit(v) => v.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Bin(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%%", // no surface syntax; see note below
                BinOp::Min | BinOp::Max => "%%",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "=",
                BinOp::Ne => "~=",
                BinOp::And => "&",
                BinOp::Or => "|",
            };
            format!("({} {o} {})", expr_to_source(a), expr_to_source(b))
        }
        Expr::Un(UnOp::Neg, a) => format!("(-{})", expr_to_source(a)),
        Expr::Un(UnOp::Not, a) => format!("(~{})", expr_to_source(a)),
        Expr::Un(UnOp::Abs, a) => format!("(~~abs {})", expr_to_source(a)),
        Expr::Index(a, i) => format!("{a}[{}]", expr_to_source(i)),
        Expr::Index2(a, i, j) => {
            format!("{a}[{}][{}]", expr_to_source(i), expr_to_source(j))
        }
        Expr::If(c, t, f) => format!(
            "if {} then {} else {} endif",
            expr_to_source(c),
            expr_to_source(t),
            expr_to_source(f)
        ),
        Expr::Let(defs, body) => {
            let ds = defs
                .iter()
                .map(def_to_source)
                .collect::<Vec<_>>()
                .join("; ");
            format!("let {ds} in {} endlet", expr_to_source(body))
        }
        Expr::Iter(binds) => {
            let bs = binds
                .iter()
                .map(|(n, e)| format!("{n} := {}", expr_to_source(e)))
                .collect::<Vec<_>>()
                .join("; ");
            format!("iter {bs} enditer")
        }
        Expr::Append(a, i, v) => format!("{a}[{}: {}]", expr_to_source(i), expr_to_source(v)),
        Expr::ArrayInit(i, v) => {
            format!("[{}: {}]", expr_to_source(i), expr_to_source(v))
        }
    }
}

fn def_to_source(d: &Def) -> String {
    match &d.ty {
        Some(t) => format!("{} : {t} := {}", d.name, expr_to_source(&d.value)),
        None => format!("{} := {}", d.name, expr_to_source(&d.value)),
    }
}

/// Render a whole program as Val source.
pub fn program_to_source(p: &Program) -> String {
    program_to_source_mapped(p, "<ast>").text
}

/// Emission-side statement recorder: tracks byte offsets and line/column
/// while the printer appends, so the synthesized [`SourceMap`] points at
/// the exact statements of the printed text.
struct Emitter {
    out: String,
    line: u32,
    line_start: usize,
    marks: Vec<(StmtKey, usize, u32, u32)>, // key, start offset, line, col
    map: Vec<(StmtKey, Span)>,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter {
            out: String::new(),
            line: 1,
            line_start: 0,
            marks: Vec::new(),
            map: Vec::new(),
        }
    }

    fn push(&mut self, s: &str) {
        for (k, b) in s.bytes().enumerate() {
            if b == b'\n' {
                self.line += 1;
                self.line_start = self.out.len() + k + 1;
            }
        }
        self.out.push_str(s);
    }

    fn open(&mut self, key: StmtKey) {
        let col = (self.out.len() - self.line_start + 1) as u32;
        self.marks.push((key, self.out.len(), self.line, col));
    }

    fn close(&mut self) {
        let (key, start, line, col) = self.marks.pop().expect("unbalanced statement mark");
        self.map.push((
            key,
            Span::new(start as u32, self.out.len() as u32, line, col),
        ));
    }
}

/// Render a whole program as Val source **and** record every statement's
/// span in the printed text — the provenance fallback for programs built
/// programmatically rather than parsed. `file` names the synthetic source
/// in diagnostics.
pub fn program_to_source_mapped(p: &Program, file: &str) -> SourceMap {
    let mut em = Emitter::new();
    for (n, v) in &p.params {
        em.open(StmtKey::Param(n.clone()));
        em.push(&format!("param {n} = {v};"));
        em.close();
        em.push("\n");
    }
    for i in &p.inputs {
        // The parser strips exactly one `array[…]` level, so a 2-D input's
        // stored element type already carries the inner array level.
        em.open(StmtKey::Input(i.name.clone()));
        let mut line = format!(
            "input {} : array[{}] [{}, {}]",
            i.name,
            i.elem_ty,
            expr_to_source(&i.range.0),
            expr_to_source(&i.range.1)
        );
        if let Some((lo, hi)) = &i.range2 {
            line.push_str(&format!("[{}, {}]", expr_to_source(lo), expr_to_source(hi)));
        }
        line.push(';');
        em.push(&line);
        em.close();
        em.push("\n");
    }
    for b in &p.blocks {
        match &b.body {
            BlockBody::Forall(f) => {
                em.open(StmtKey::BlockHeader(b.name.clone()));
                em.push(&format!("{} : {} :=\n", b.name, b.ty));
                em.push(&format!(
                    "  forall {} in [{}, {}]",
                    f.index_var,
                    expr_to_source(&f.range.0),
                    expr_to_source(&f.range.1)
                ));
                if let Some((j, (lo, hi))) = &f.second {
                    em.push(&format!(
                        ", {j} in [{}, {}]",
                        expr_to_source(lo),
                        expr_to_source(hi)
                    ));
                }
                em.close();
                em.push("\n");
                for d in &f.defs {
                    em.push("    ");
                    em.open(StmtKey::BlockDef(b.name.clone(), d.name.clone()));
                    em.push(&def_to_source(d));
                    em.close();
                    em.push(";\n");
                }
                em.push("  construct\n    ");
                em.open(StmtKey::BlockBody(b.name.clone()));
                em.push(&expr_to_source(&f.body));
                em.close();
                em.push("\n  endall;\n");
            }
            BlockBody::ForIter(fi) => {
                em.open(StmtKey::BlockHeader(b.name.clone()));
                em.push(&format!("{} : {} :=\n", b.name, b.ty));
                em.push("  for");
                em.close();
                em.push("\n");
                for (k, d) in fi.inits.iter().enumerate() {
                    let sep = if k + 1 < fi.inits.len() { ";" } else { "" };
                    em.push("    ");
                    em.open(StmtKey::BlockInit(b.name.clone(), d.name.clone()));
                    em.push(&def_to_source(d));
                    em.close();
                    em.push(&format!("{sep}\n"));
                }
                em.push("  do\n    ");
                em.open(StmtKey::BlockBody(b.name.clone()));
                em.push(&expr_to_source(&fi.body));
                em.close();
                em.push("\n  endfor;\n");
            }
        }
    }
    if !p.outputs.is_empty() {
        em.open(StmtKey::Output);
        em.push(&format!("output {};", p.outputs.join(", ")));
        em.close();
        em.push("\n");
    }
    let mut map = SourceMap::new(file, em.out);
    for (key, span) in em.map {
        map.record(key, span);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program, FIG3_PROGRAM};

    #[test]
    fn expr_roundtrips() {
        for src in [
            "1 + 2 * 3",
            "0.25 * (C[i-1] + 2.*C[i] + C[i+1])",
            "if (i = 0)|(i = m+1) then C[i] else B[i] endif",
            "let p : real := A[i] in p * p endlet",
            "T[i: P]",
            "[0: 0.5]",
            "-(A[i] + B[i])",
            "~(x & y)",
            "iter T := T[i: P]; i := i + 1 enditer",
            "U[i-1][j+2]",
        ] {
            let e = parse_expr(src).unwrap();
            let printed = expr_to_source(&e);
            let reparsed = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("reparse of '{printed}' failed: {err}"));
            assert_eq!(reparsed, e, "roundtrip of {src} via {printed}");
        }
    }

    #[test]
    fn fig3_program_roundtrips() {
        let p = parse_program(FIG3_PROGRAM).unwrap();
        let printed = program_to_source(&p);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed}"));
        assert_eq!(reparsed, p);
    }

    #[test]
    fn flattened_program_prints_and_reparses() {
        let src = "
param n = 3;
input U : array[array[real]] [0, n][0, n];
V : array[array[real]] :=
  forall i in [0, n], j in [0, n] construct U[i][j] * 2. endall;
output V;
";
        let p = parse_program(src).unwrap();
        // Print the ORIGINAL (2-D) and reparse.
        let printed = program_to_source(&p);
        assert_eq!(parse_program(&printed).unwrap(), p);
        // And the flattened form too.
        let (flat, _) = crate::dims::flatten_program(&p).unwrap();
        let printed = program_to_source(&flat);
        assert_eq!(parse_program(&printed).unwrap(), flat);
    }
}
