//! Property test (satellite 3): hibernate → evict → resume at *every*
//! idle boundary of a random job sequence yields a final result
//! bit-identical to an uninterrupted session — across all three kernels.
//!
//! The hibernation cycle is exercised through the real container codec
//! (`hibernate::encode`/`decode`), i.e. exactly the bytes that land on
//! disk, so this also property-checks the container format round trip.

use valpipe_machine::Kernel;
use valpipe_serve::hibernate;
use valpipe_serve::{Advance, JobLimits, SessionCore, SessionSpec};
use valpipe_util::{Json, Rng};

const KERNELS: [Kernel; 3] = [Kernel::Scan, Kernel::EventDriven, Kernel::ParallelEvent(2)];

fn kernel_tag(k: Kernel) -> String {
    match k {
        Kernel::Scan => "scan".into(),
        Kernel::EventDriven => "event".into(),
        Kernel::ParallelEvent(w) => format!("parallel{w}"),
    }
}

/// The paper's Fig. 6 stencil (conditional + window selection), small
/// enough to run many randomized trials in a test.
fn spec(name: &str, kernel: Kernel, waves: usize) -> SessionSpec {
    SessionSpec {
        name: name.to_string(),
        source: "param m = 4;\n\
                 input B : array[real] [0, m+1];\n\
                 input C : array[real] [0, m+1];\n\
                 A : array[real] :=\n\
                 forall i in [0, m+1]\n\
                 P : real :=\n\
                 if (i = 0)|(i = m+1) then C[i]\n\
                 else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])\n\
                 endif;\n\
                 construct B[i]*(P*P)\n\
                 endall;\n\
                 output A;"
            .to_string(),
        arrays: Json::parse(r#"{"B":[0.5,1.5,2.5,3.5,4.5,5.5],"C":[1.0,2.0,3.0,2.0,1.0,0.5]}"#)
            .unwrap(),
        waves,
        kernel,
        max_steps: 200_000,
    }
}

/// Drive a core to completion in one uninterrupted job.
fn oracle_result(kernel: Kernel, waves: usize) -> String {
    let mut core = SessionCore::open(spec("oracle", kernel, waves)).unwrap();
    match core.advance(&JobLimits::default(), 1 << 40).unwrap() {
        Advance::Done { .. } => {}
        _ => panic!("oracle run must complete"),
    }
    core.final_result.unwrap()
}

#[test]
fn hibernation_at_every_idle_boundary_is_bit_identical_across_kernels() {
    let waves = 6;
    let event_oracle = oracle_result(Kernel::EventDriven, waves);
    for kernel in KERNELS {
        let oracle = oracle_result(kernel, waves);
        // All kernels agree before any hibernation enters the picture.
        assert_eq!(
            oracle,
            event_oracle,
            "kernel {} diverges from event kernel",
            kernel_tag(kernel)
        );

        let mut rng = Rng::seed(0xB0DA + waves as u64);
        for trial in 0..8 {
            let name = format!("p-{}-{trial}", kernel_tag(kernel));
            let mut core = SessionCore::open(spec(&name, kernel, waves)).unwrap();
            let mut boundaries = 0u32;
            loop {
                // A random job: advance by a random absolute increment.
                let hop = 1 + rng.below(40) as u64;
                let limits = JobLimits {
                    until: Some(core.now() + hop),
                    ..JobLimits::default()
                };
                let advance = core.advance(&limits, 1 + rng.below(16) as u64).unwrap();
                // Idle boundary: hibernate through the real container
                // codec and resume from the decoded bytes.
                let bytes = hibernate::encode(&core);
                core = hibernate::decode(&bytes).unwrap_or_else(|e| {
                    panic!("container round-trip failed at boundary {boundaries}: {e}")
                });
                boundaries += 1;
                match advance {
                    Advance::Done { .. } => break,
                    Advance::Paused { .. } => {}
                    _ => panic!("no budget or deadline was set"),
                }
            }
            assert!(boundaries >= 2, "trial must cross several boundaries");
            assert_eq!(
                core.final_result.as_deref().unwrap(),
                oracle.as_str(),
                "kernel {} trial {trial}: hibernated run diverged after {boundaries} boundaries",
                kernel_tag(kernel)
            );
        }
    }
}

/// Arbitrary-bytes fuzz of the container decoder: random garbage, a
/// valid magic glued onto garbage, and heavily mutated real containers
/// must all come back as typed `HibernateError`s — never a panic, never
/// an accepted corruption.
#[test]
fn container_decode_survives_arbitrary_bytes() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let core = SessionCore::open(spec("arb", Kernel::EventDriven, 2)).unwrap();
    let good = hibernate::encode(&core);
    let mut rng = Rng::seed(0xA5B1);
    for trial in 0..300 {
        let bytes: Vec<u8> = match trial % 3 {
            // Pure garbage, arbitrary length (including empty).
            0 => (0..rng.below(512)).map(|_| rng.below(256) as u8).collect(),
            // Correct magic, garbage body.
            1 => {
                let mut b = hibernate::HIBERNATE_MAGIC.to_vec();
                b.extend((0..rng.below(256)).map(|_| rng.below(256) as u8));
                b
            }
            // Real container with a corrupted span.
            _ => {
                let mut b = good.clone();
                let at = rng.below(b.len());
                let len = (1 + rng.below(32)).min(b.len() - at);
                for x in &mut b[at..at + len] {
                    *x = rng.below(256) as u8;
                }
                b
            }
        };
        let changed = bytes != good;
        match catch_unwind(AssertUnwindSafe(|| hibernate::decode(&bytes).map(|_| ()))) {
            Ok(result) => {
                if changed {
                    assert!(result.is_err(), "trial {trial}: corruption decoded cleanly");
                }
            }
            Err(_) => panic!("trial {trial}: decode panicked on {} bytes", bytes.len()),
        }
    }
}

#[test]
fn container_decode_rejects_every_truncation_point_with_typed_errors() {
    let core = SessionCore::open(spec("trunc", Kernel::EventDriven, 2)).unwrap();
    let bytes = hibernate::encode(&core);
    // Sample truncation points across the whole container (every length
    // would be ~100k decodes); each must fail cleanly, never panic.
    let mut at = 0;
    while at < bytes.len() {
        let r = hibernate::decode(&bytes[..at]);
        assert!(r.is_err(), "decode accepted a {at}-byte prefix");
        at += 1 + at / 8;
    }
    // Single-bit corruption anywhere must be caught by the checksum.
    let mut rng = Rng::seed(42);
    for _ in 0..32 {
        let mut bad = bytes.clone();
        let i = rng.below(bad.len());
        bad[i] ^= 1 << rng.below(8);
        assert!(
            hibernate::decode(&bad).is_err(),
            "flipped bit at byte {i} went undetected"
        );
    }
}
