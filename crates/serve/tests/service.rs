//! In-process integration tests for the service: admission control,
//! hibernation, graceful shutdown, and crash-recovery hygiene.

use std::path::PathBuf;
use std::time::Duration;

use valpipe_machine::Kernel;
use valpipe_serve::{Client, ServeConfig, Server, SessionCore, SessionSpec};
use valpipe_util::Json;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("valpipe_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec_json(name: &str, waves: i64) -> Json {
    Json::parse(&format!(
        r#"{{"op":"open","session":"{name}","source":"param m = 3;\ninput A : array[real] [0, m];\nY : array[real] := forall i in [0, m] construct A[i] + 1. endall;\noutput Y;","arrays":{{"A":[1.0,2.0,3.0,4.0]}},"waves":{waves},"kernel":"event","max_steps":100000}}"#
    ))
    .unwrap()
}

fn core_spec(name: &str, waves: usize, kernel: Kernel) -> SessionSpec {
    SessionSpec {
        name: name.to_string(),
        source: "param m = 3;\ninput A : array[real] [0, m];\nY : array[real] := forall i in [0, m] construct A[i] + 1. endall;\noutput Y;".to_string(),
        arrays: Json::parse(r#"{"A":[1.0,2.0,3.0,4.0]}"#).unwrap(),
        waves,
        kernel,
        max_steps: 100_000,
    }
}

struct Running {
    addr: String,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(cfg: ServeConfig) -> Running {
    let (server, _recovery) = Server::bind(cfg).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let thread = std::thread::spawn(move || server.run());
    Running { addr, thread }
}

fn connect(addr: &str) -> Client {
    Client::connect(addr, Duration::from_secs(30)).unwrap()
}

fn shut_down(r: Running) {
    let mut c = connect(&r.addr);
    let resp = c
        .request(&Json::parse(r#"{"op":"shutdown"}"#).unwrap())
        .unwrap();
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        resp.get("drained").and_then(|v| v.as_bool()),
        Some(true),
        "shutdown must acknowledge a completed drain"
    );
    r.thread.join().unwrap().unwrap();
}

fn cfg_with(dir: PathBuf) -> ServeConfig {
    ServeConfig {
        hibernate_dir: dir,
        ..ServeConfig::default()
    }
}

#[test]
fn smoke_open_run_status_close() {
    let dir = temp_dir("smoke");
    let r = start(cfg_with(dir.clone()));
    let mut c = connect(&r.addr);

    let resp = c.request(&spec_json("s1", 3)).unwrap();
    assert_eq!(
        resp.get("ok").and_then(|v| v.as_bool()),
        Some(true),
        "{resp:?}"
    );
    assert_eq!(resp.get("resumed").and_then(|v| v.as_bool()), Some(false));

    // Re-open with the identical spec is idempotent.
    let resp = c.request(&spec_json("s1", 3)).unwrap();
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(resp.get("resumed").and_then(|v| v.as_bool()), Some(true));

    // A conflicting spec is refused permanently.
    let resp = c.request(&spec_json("s1", 4)).unwrap();
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(false));
    let err = resp.get("error").unwrap();
    assert_eq!(
        err.get("kind").and_then(|v| v.as_str()),
        Some("session_exists")
    );
    assert_eq!(err.get("retryable").and_then(|v| v.as_bool()), Some(false));

    let resp = c
        .request(&Json::parse(r#"{"op":"run","session":"s1"}"#).unwrap())
        .unwrap();
    assert_eq!(
        resp.get("ok").and_then(|v| v.as_bool()),
        Some(true),
        "{resp:?}"
    );
    assert_eq!(resp.get("done").and_then(|v| v.as_bool()), Some(true));
    let result = resp.get("result").unwrap();
    // 3 waves of 4 elements, each A[i] + 1.
    let y = result
        .get("outputs")
        .unwrap()
        .get("Y")
        .unwrap()
        .as_arr()
        .unwrap();
    assert_eq!(y.len(), 12);

    let resp = c
        .request(&Json::parse(r#"{"op":"status","session":"s1"}"#).unwrap())
        .unwrap();
    assert_eq!(resp.get("done").and_then(|v| v.as_bool()), Some(true));

    let resp = c
        .request(&Json::parse(r#"{"op":"close","session":"s1"}"#).unwrap())
        .unwrap();
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    let resp = c
        .request(&Json::parse(r#"{"op":"status","session":"s1"}"#).unwrap())
        .unwrap();
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(|v| v.as_str()),
        Some("no_such_session")
    );

    shut_down(r);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_is_rejected_with_structured_retry_hint() {
    let dir = temp_dir("overload");
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..cfg_with(dir.clone())
    };
    let r = start(cfg);
    let mut c = connect(&r.addr);
    let resp = c.request(&spec_json("hot", 2000)).unwrap();
    assert_eq!(
        resp.get("ok").and_then(|v| v.as_bool()),
        Some(true),
        "{resp:?}"
    );

    // One worker, queue depth one: pipeline a burst of six runs in a
    // single write. The reader admits them far faster than the worker
    // can execute (each run simulates thousands of steps), so the
    // bounded queue must overflow and reject the tail of the burst.
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(&r.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut burst = String::new();
    for i in 0..6 {
        burst.push_str(&format!(
            "{{\"op\":\"run\",\"session\":\"hot\",\"until\":100000,\"id\":{i}}}\n"
        ));
    }
    stream.write_all(burst.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::new();
    for _ in 0..6 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        responses.push(Json::parse(&line).unwrap());
    }
    let rejected: Vec<&Json> = responses
        .iter()
        .filter(|resp| {
            resp.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(|v| v.as_str())
                == Some("overloaded")
        })
        .collect();
    assert!(
        !rejected.is_empty(),
        "6 concurrent jobs on a 1-worker/1-slot queue must reject some: {responses:?}"
    );
    for resp in &rejected {
        let err = resp.get("error").unwrap();
        assert_eq!(err.get("retryable").and_then(|v| v.as_bool()), Some(true));
        let after = err.get("retry_after_ms").and_then(|v| v.as_i64()).unwrap();
        assert!((25..75).contains(&after), "jittered hint, got {after}");
    }
    // The stats op must account for every rejection.
    let stats = c
        .request(&Json::parse(r#"{"op":"stats"}"#).unwrap())
        .unwrap();
    assert!(
        stats
            .get("rejected_overload")
            .and_then(|v| v.as_i64())
            .unwrap()
            >= rejected.len() as i64
    );

    shut_down(r);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hibernate_resume_is_bit_identical() {
    let dir = temp_dir("hib");
    let r = start(cfg_with(dir.clone()));
    let mut c = connect(&r.addr);
    c.request(&spec_json("h1", 5)).unwrap();

    // Advance partway, hibernate explicitly, then finish: the final
    // result must be byte-identical to an uninterrupted in-process run.
    let resp = c
        .request(&Json::parse(r#"{"op":"run","session":"h1","until":37}"#).unwrap())
        .unwrap();
    assert_eq!(resp.get("done").and_then(|v| v.as_bool()), Some(false));
    assert_eq!(resp.get("now").and_then(|v| v.as_i64()), Some(37));
    let resp = c
        .request(&Json::parse(r#"{"op":"hibernate","session":"h1"}"#).unwrap())
        .unwrap();
    assert_eq!(resp.get("hibernated").and_then(|v| v.as_bool()), Some(true));

    let resp = c
        .request(&Json::parse(r#"{"op":"run","session":"h1"}"#).unwrap())
        .unwrap();
    assert_eq!(resp.get("done").and_then(|v| v.as_bool()), Some(true));
    let served = resp.get("result").unwrap().to_compact();

    let mut oracle = SessionCore::open(core_spec("oracle", 5, Kernel::EventDriven)).unwrap();
    oracle
        .advance(&valpipe_serve::JobLimits::default(), 1 << 40)
        .unwrap();
    assert_eq!(
        served,
        Json::parse(&oracle.final_result.unwrap())
            .unwrap()
            .to_compact()
    );

    // The resume was counted.
    let stats = c
        .request(&Json::parse(r#"{"op":"stats"}"#).unwrap())
        .unwrap();
    assert!(stats.get("resumes").and_then(|v| v.as_i64()).unwrap() >= 1);
    assert!(stats.get("hibernations").and_then(|v| v.as_i64()).unwrap() >= 1);

    shut_down(r);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn session_cap_evicts_lru_to_hibernation() {
    let dir = temp_dir("cap");
    let cfg = ServeConfig {
        max_live: 2,
        ..cfg_with(dir.clone())
    };
    let r = start(cfg);
    let mut c = connect(&r.addr);
    for name in ["a", "b", "c", "d"] {
        let resp = c.request(&spec_json(name, 2)).unwrap();
        assert_eq!(
            resp.get("ok").and_then(|v| v.as_bool()),
            Some(true),
            "{resp:?}"
        );
    }
    let stats = c
        .request(&Json::parse(r#"{"op":"stats"}"#).unwrap())
        .unwrap();
    assert_eq!(stats.get("sessions").and_then(|v| v.as_i64()), Some(4));
    assert!(
        stats.get("live").and_then(|v| v.as_i64()).unwrap() <= 2,
        "cap of 2 must hold: {stats:?}"
    );
    assert!(stats.get("hibernations").and_then(|v| v.as_i64()).unwrap() >= 2);
    // Evicted sessions still serve jobs (lazy resume).
    let resp = c
        .request(&Json::parse(r#"{"op":"run","session":"a"}"#).unwrap())
        .unwrap();
    assert_eq!(
        resp.get("done").and_then(|v| v.as_bool()),
        Some(true),
        "{resp:?}"
    );

    shut_down(r);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_hibernates_and_restart_recovers() {
    let dir = temp_dir("graceful");
    let r = start(cfg_with(dir.clone()));
    let mut c = connect(&r.addr);
    c.request(&spec_json("g1", 5)).unwrap();
    let resp = c
        .request(&Json::parse(r#"{"op":"run","session":"g1","until":23}"#).unwrap())
        .unwrap();
    assert_eq!(resp.get("now").and_then(|v| v.as_i64()), Some(23));
    shut_down(r);

    // New process generation: same directory, fresh server.
    let r2 = start(cfg_with(dir.clone()));
    let mut c = connect(&r2.addr);
    // The spec is re-openable (idempotent) and the state survived.
    let resp = c.request(&spec_json("g1", 5)).unwrap();
    assert_eq!(
        resp.get("resumed").and_then(|v| v.as_bool()),
        Some(true),
        "{resp:?}"
    );
    assert_eq!(resp.get("now").and_then(|v| v.as_i64()), Some(23));
    let resp = c
        .request(&Json::parse(r#"{"op":"run","session":"g1"}"#).unwrap())
        .unwrap();
    assert_eq!(resp.get("done").and_then(|v| v.as_bool()), Some(true));
    let served = resp.get("result").unwrap().to_compact();

    let mut oracle = SessionCore::open(core_spec("oracle", 5, Kernel::EventDriven)).unwrap();
    oracle
        .advance(&valpipe_serve::JobLimits::default(), 1 << 40)
        .unwrap();
    assert_eq!(
        served,
        Json::parse(&oracle.final_result.unwrap())
            .unwrap()
            .to_compact()
    );

    shut_down(r2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_sweeps_torn_tmp_and_skips_corrupt_containers_without_panicking() {
    let dir = temp_dir("hygiene");

    // A valid container, written through the real path.
    let core = SessionCore::open(core_spec("good", 2, Kernel::Scan)).unwrap();
    let mut rng = valpipe_util::Rng::seed(7);
    valpipe_serve::hibernate::save(&dir, &core, &mut rng).unwrap();

    // A torn temporary from a crashed write.
    std::fs::write(dir.join("torn.vph.tmp"), b"VALPHIB1 half-writ").unwrap();
    // Garbage that was never a container.
    std::fs::write(dir.join("noise.vph"), b"not a container at all").unwrap();
    // A truncated copy of the valid container (checksum cannot match).
    let good = std::fs::read(dir.join("good.vph")).unwrap();
    std::fs::write(dir.join("trunc.vph"), &good[..good.len() / 2]).unwrap();

    let (server, recovery) = Server::bind(cfg_with(dir.clone())).unwrap();
    assert_eq!(recovery.recovered, vec!["good".to_string()]);
    assert_eq!(recovery.swept_tmp, vec!["torn.vph.tmp".to_string()]);
    assert!(!dir.join("torn.vph.tmp").exists());
    let skipped: Vec<&str> = recovery.skipped.iter().map(|(f, _)| f.as_str()).collect();
    assert_eq!(skipped, vec!["noise.vph", "trunc.vph"]);
    for (_, why) in &recovery.skipped {
        assert!(
            why.contains("magic") || why.contains("checksum") || why.contains("truncat"),
            "typed reason expected, got: {why}"
        );
    }
    // Invalid containers are left on disk for post-mortem.
    assert!(dir.join("noise.vph").exists());
    assert!(dir.join("trunc.vph").exists());

    // The recovered session is actually usable.
    let addr = server.local_addr().unwrap().to_string();
    let thread = std::thread::spawn(move || server.run());
    let mut c = connect(&addr);
    let resp = c
        .request(&Json::parse(r#"{"op":"run","session":"good"}"#).unwrap())
        .unwrap();
    assert_eq!(
        resp.get("done").and_then(|v| v.as_bool()),
        Some(true),
        "{resp:?}"
    );
    shut_down(Running { addr, thread });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_and_deadline_surface_as_retryable_stalls_with_reports() {
    let dir = temp_dir("budget");
    let r = start(cfg_with(dir.clone()));
    let mut c = connect(&r.addr);
    c.request(&spec_json("b1", 50)).unwrap();

    let resp = c
        .request(&Json::parse(r#"{"op":"run","session":"b1","step_budget":5}"#).unwrap())
        .unwrap();
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(false));
    let err = resp.get("error").unwrap();
    assert_eq!(err.get("kind").and_then(|v| v.as_str()), Some("stalled"));
    assert_eq!(err.get("retryable").and_then(|v| v.as_bool()), Some(true));
    let stall = err.get("stall").unwrap();
    assert_eq!(
        stall.get("kind").and_then(|v| v.as_str()),
        Some("budget_exhausted")
    );

    // Progress was preserved: the session sits at t=5 and a retry with
    // no budget completes the run.
    let resp = c
        .request(&Json::parse(r#"{"op":"status","session":"b1"}"#).unwrap())
        .unwrap();
    assert_eq!(resp.get("now").and_then(|v| v.as_i64()), Some(5));
    let resp = c
        .request(&Json::parse(r#"{"op":"run","session":"b1"}"#).unwrap())
        .unwrap();
    assert_eq!(resp.get("done").and_then(|v| v.as_bool()), Some(true));

    shut_down(r);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn default_config_binds_ephemeral_port_and_reads_it_back() {
    // Regression guard: the default bind address must request an
    // ephemeral port so parallel test servers never collide, and the
    // kernel-assigned port must be readable back before clients connect.
    assert!(
        ServeConfig::default().addr.ends_with(":0"),
        "default addr must not hardcode a port: {}",
        ServeConfig::default().addr
    );
    let (dir_a, dir_b) = (temp_dir("port_a"), temp_dir("port_b"));
    let a = start(cfg_with(dir_a.clone()));
    let b = start(cfg_with(dir_b.clone()));
    let pa: std::net::SocketAddr = a.addr.parse().unwrap();
    let pb: std::net::SocketAddr = b.addr.parse().unwrap();
    assert_ne!(pa.port(), 0);
    assert_ne!(pb.port(), 0);
    assert_ne!(pa.port(), pb.port(), "two servers must not share a port");
    shut_down(a);
    shut_down(b);
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn run_jobs_accept_fastforward_mode_on_the_wire() {
    let dir = temp_dir("ffwire");
    let r = start(cfg_with(dir.clone()));
    let mut c = connect(&r.addr);

    // A long periodic stream: the steady-state shape fast-forward skips.
    c.request(&spec_json("ex", 400)).unwrap();
    let exact = c
        .request(&Json::parse(r#"{"op":"run","session":"ex"}"#).unwrap())
        .unwrap();
    assert_eq!(exact.get("done").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(exact.get("mode").and_then(|v| v.as_str()), Some("exact"));
    assert_eq!(exact.get("skipped_steps").and_then(|v| v.as_i64()), Some(0));

    c.request(&spec_json("ff", 400)).unwrap();
    let ff = c
        .request(
            &Json::parse(r#"{"op":"run","session":"ff","mode":"fastforward","verify_window":1}"#)
                .unwrap(),
        )
        .unwrap();
    assert_eq!(
        ff.get("done").and_then(|v| v.as_bool()),
        Some(true),
        "{ff:?}"
    );
    assert_eq!(ff.get("mode").and_then(|v| v.as_str()), Some("fastforward"));
    let skipped = ff.get("skipped_steps").and_then(|v| v.as_i64()).unwrap();
    assert!(skipped > 0, "fast-forward job must skip steps: {ff:?}");
    assert_eq!(
        ff.get("result").unwrap().get("outputs"),
        exact.get("result").unwrap().get("outputs"),
        "fast-forwarded job must produce identical outputs"
    );

    // Unknown modes are rejected up front, not silently run exactly.
    let bad = c
        .request(&Json::parse(r#"{"op":"run","session":"ff","mode":"warp"}"#).unwrap())
        .unwrap();
    assert_eq!(bad.get("ok").and_then(|v| v.as_bool()), Some(false));
    assert_eq!(
        bad.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(|v| v.as_str()),
        Some("bad_request")
    );

    // The cumulative savings counter surfaces in server stats.
    let stats = c
        .request(&Json::parse(r#"{"op":"stats"}"#).unwrap())
        .unwrap();
    let total = stats
        .get("ff_skipped_steps")
        .and_then(|v| v.as_i64())
        .unwrap();
    assert!(total >= skipped, "stats must accumulate skips: {stats:?}");

    shut_down(r);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn over_limit_source_is_a_structured_resource_limit_error() {
    let dir = temp_dir("limits");
    let r = start(cfg_with(dir.clone()));
    let mut c = connect(&r.addr);

    // Service compile limits cap nesting at 48; 60 levels must come back
    // as a structured, non-retryable resource_limit error — not a panic,
    // not a generic compile_error.
    let deep = format!(
        "param m = 3;\\ninput A : array[real] [0, m];\\nY : array[real] := forall i in [0, m] construct {}A[i]{} endall;\\noutput Y;",
        "(".repeat(60),
        ")".repeat(60)
    );
    let resp = c
        .request(
            &Json::parse(&format!(
                r#"{{"op":"open","session":"deep","source":"{deep}","arrays":{{"A":[1.0,2.0,3.0,4.0]}},"waves":2,"kernel":"event","max_steps":100000}}"#
            ))
            .unwrap(),
        )
        .unwrap();
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(false));
    let err = resp.get("error").unwrap();
    assert_eq!(
        err.get("kind").and_then(|v| v.as_str()),
        Some("resource_limit"),
        "{resp:?}"
    );
    assert_eq!(err.get("retryable").and_then(|v| v.as_bool()), Some(false));
    let msg = err.get("message").and_then(|v| v.as_str()).unwrap();
    assert!(msg.contains("nesting deeper than 48 levels"), "{msg}");

    // The connection stays healthy for a well-formed session afterwards.
    let resp = c.request(&spec_json("ok-after-limit", 2)).unwrap();
    assert_eq!(
        resp.get("ok").and_then(|v| v.as_bool()),
        Some(true),
        "{resp:?}"
    );

    shut_down(r);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_request_line_is_rejected_and_drained() {
    use std::io::{BufRead, BufReader, Write};

    let dir = temp_dir("hugeline");
    let r = start(cfg_with(dir.clone()));

    // A request line past the 4 MiB cap must be answered with a
    // resource_limit error and the connection must survive: the reader
    // drains the oversized line and parses the next one normally.
    let mut stream = std::net::TcpStream::connect(&r.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut huge = String::with_capacity(5 << 20);
    huge.push_str(r#"{"op":"open","session":"big","source":""#);
    huge.push_str(&"x".repeat(5 << 20));
    huge.push_str("\"}\n");
    huge.push_str(r#"{"op":"stats"}"#);
    huge.push('\n');
    stream.write_all(huge.as_bytes()).unwrap();
    stream.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let resp = Json::parse(&line).unwrap();
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(|v| v.as_str()),
        Some("resource_limit"),
        "{resp:?}"
    );

    line.clear();
    reader.read_line(&mut line).unwrap();
    let resp = Json::parse(&line).unwrap();
    assert!(
        resp.get("sessions").is_some() || resp.get("ok").is_some(),
        "connection must survive the oversized line: {resp:?}"
    );

    shut_down(r);
    let _ = std::fs::remove_dir_all(&dir);
}
