//! The session registry: named sessions shared by the worker pool, a
//! live-session cap with LRU hibernation, and write-through persistence.
//!
//! Concurrency structure: a short-lived map lock hands out `Arc<Slot>`s;
//! each slot serializes its own jobs behind a per-slot state mutex, so
//! jobs for *different* sessions run fully in parallel while two jobs
//! for the *same* session never interleave. The registry persists the
//! session container after every job (write-through), so a `kill -9` at
//! any instant loses at most the jobs in flight — and those are safe to
//! retry, because jobs address absolute instruction-time targets on a
//! deterministic machine.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use valpipe_core::QueryEngine;
use valpipe_util::{Json, Rng};

use crate::hibernate;
use crate::proto::{ErrorBody, ErrorKind};
use crate::session::{SessionCore, SessionSpec};

/// A session's residency state.
enum SlotState {
    /// In memory, ready for jobs.
    Hot(Box<SessionCore>),
    /// Evicted to its container file; reloaded lazily on next use.
    Hibernated,
    /// Closed; the slot only remains so late requests get a clean error.
    Closed,
}

/// One named session: residency state plus an LRU timestamp.
struct Slot {
    name: String,
    /// Logical clock value of the last job (for LRU eviction).
    last_used: AtomicU64,
    state: Mutex<SlotState>,
}

/// Counters exposed through the `stats` op.
#[derive(Debug, Default)]
pub struct RegistryStats {
    /// Sessions written to their container (cap eviction + shutdown).
    pub hibernations: AtomicU64,
    /// Sessions reloaded from their container.
    pub resumes: AtomicU64,
}

/// The shared session registry.
pub struct Registry {
    dir: PathBuf,
    /// Maximum sessions held in memory; beyond this, LRU slots hibernate.
    max_live: usize,
    clock: AtomicU64,
    rng: Mutex<Rng>,
    /// Counters for the `stats` op and the CI gate.
    pub stats: RegistryStats,
    slots: Mutex<HashMap<String, Arc<Slot>>>,
    /// Shared incremental compile cache: sessions submitting overlapping
    /// programs recompile only the blocks that differ. Sharing across
    /// tenants is safe because the engine's memos verify by full key
    /// (exact-match, collision-proof) and are capped (bounded memory).
    /// The engine is *swapped out* of the mutex for the duration of a
    /// compile — the lock is only ever held for the swap itself, so one
    /// slow compile never serializes other tenants' opens; a contended
    /// open falls back to a private cold engine (bit-identical output,
    /// just no warm hits).
    compile_cache: Mutex<Option<QueryEngine>>,
}

impl Registry {
    /// Create a registry persisting into `dir`, holding at most
    /// `max_live` sessions in memory.
    pub fn new(dir: PathBuf, max_live: usize, seed: u64) -> Registry {
        Registry {
            dir,
            max_live: max_live.max(1),
            clock: AtomicU64::new(1),
            rng: Mutex::new(Rng::seed(seed ^ 0x005e_5510_4e61)),
            stats: RegistryStats::default(),
            slots: Mutex::new(HashMap::new()),
            compile_cache: Mutex::new(Some(QueryEngine::new())),
        }
    }

    /// Crash recovery: scan the hibernation directory, register every
    /// valid container as a hibernated slot, and report what was swept
    /// or skipped. Run before accepting connections.
    pub fn recover(&self) -> Result<hibernate::ScanReport, hibernate::HibernateError> {
        let report = hibernate::scan(&self.dir)?;
        let mut slots = self.slots.lock().unwrap();
        for name in &report.recovered {
            slots.insert(
                name.clone(),
                Arc::new(Slot {
                    name: name.clone(),
                    last_used: AtomicU64::new(0),
                    state: Mutex::new(SlotState::Hibernated),
                }),
            );
        }
        Ok(report)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of sessions currently hot in memory.
    pub fn live_count(&self) -> usize {
        let slots = self.slots.lock().unwrap();
        slots
            .values()
            .filter(|s| {
                s.state
                    .try_lock()
                    .map(|g| matches!(*g, SlotState::Hot(_)))
                    .unwrap_or(true) // busy slot is hot by definition
            })
            .count()
    }

    /// Total registered sessions (hot + hibernated).
    pub fn session_count(&self) -> usize {
        self.slots
            .lock()
            .unwrap()
            .values()
            .filter(|s| {
                s.state
                    .try_lock()
                    .map(|g| !matches!(*g, SlotState::Closed))
                    .unwrap_or(true)
            })
            .count()
    }

    /// Open a session, idempotently: re-opening with an identical spec
    /// succeeds (reporting `resumed: true`), a conflicting spec is
    /// `session_exists`, a new name compiles and registers a fresh core.
    pub fn open(&self, spec: SessionSpec) -> Result<Json, ErrorBody> {
        let name = spec.name.clone();
        let slot = {
            let slots = self.slots.lock().unwrap();
            slots.get(&name).cloned()
        };
        if let Some(slot) = slot {
            // Existing slot: compare identities under the slot lock.
            let identity = spec.identity();
            return self.with_core(&slot, |core| {
                if core.spec.identity() != identity {
                    return Err(ErrorBody::new(
                        ErrorKind::SessionExists,
                        format!("session '{name}' exists with a different program or inputs"),
                    ));
                }
                Ok(Json::obj([
                    ("session", Json::Str(name.clone())),
                    ("resumed", Json::Bool(true)),
                    ("now", Json::Int(core.now() as i64)),
                    ("done", Json::Bool(core.final_result.is_some())),
                ]))
            });
        }
        // Fresh name: compile outside every lock (compiles can be slow),
        // then race to insert; losing the race re-checks identity. The
        // shared warm engine is taken out of its mutex for the compile;
        // if another open holds it, compile on a private cold engine —
        // the output is bit-identical either way.
        let taken = self.compile_cache.lock().unwrap().take();
        let mut engine = taken.unwrap_or_default();
        let compiled = SessionCore::open_with_engine(spec.clone(), &mut engine);
        {
            // Restore the engine (first finisher wins; a later finisher's
            // engine is simply dropped — warm state is an optimization,
            // never a correctness dependency).
            let mut slot = self.compile_cache.lock().unwrap();
            if slot.is_none() {
                *slot = Some(engine);
            }
        }
        let core = compiled?;
        let now = core.now();
        let slot = Arc::new(Slot {
            name: name.clone(),
            last_used: AtomicU64::new(self.tick()),
            state: Mutex::new(SlotState::Hot(Box::new(core))),
        });
        {
            let mut slots = self.slots.lock().unwrap();
            if slots.contains_key(&name) {
                drop(slots);
                return self.open(spec); // lost the race; retry as existing
            }
            slots.insert(name.clone(), slot.clone());
        }
        // Persist immediately so the session survives a crash that lands
        // before its first job.
        {
            let guard = slot.state.lock().unwrap();
            if let SlotState::Hot(core) = &*guard {
                let mut rng = self.rng.lock().unwrap();
                hibernate::save(&self.dir, core, &mut rng)
                    .map_err(|e| hibernate::to_error_body(&e))?;
            }
        }
        self.enforce_cap(&name);
        Ok(Json::obj([
            ("session", Json::Str(name)),
            ("resumed", Json::Bool(false)),
            ("now", Json::Int(now as i64)),
            ("done", Json::Bool(false)),
        ]))
    }

    /// Look up a slot by name.
    fn slot(&self, name: &str) -> Result<Arc<Slot>, ErrorBody> {
        self.slots
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| {
                ErrorBody::new(
                    ErrorKind::NoSuchSession,
                    format!("no session named '{name}'"),
                )
            })
    }

    /// Run `f` against a session's core with the slot lock held,
    /// reloading from the container if the slot is hibernated, and
    /// persisting write-through afterwards. The write-through happens
    /// even when `f` fails: a failed job may still have advanced the
    /// machine (e.g. a deadline hit mid-run), and that progress must
    /// survive a crash. `f`'s error takes precedence over a save error.
    fn with_core<T>(
        &self,
        slot: &Slot,
        f: impl FnOnce(&mut SessionCore) -> Result<T, ErrorBody>,
    ) -> Result<T, ErrorBody> {
        let mut guard = slot.state.lock().unwrap();
        slot.last_used.store(self.tick(), Ordering::Relaxed);
        if matches!(*guard, SlotState::Hibernated) {
            let core =
                hibernate::load(&self.dir, &slot.name).map_err(|e| hibernate::to_error_body(&e))?;
            self.stats.resumes.fetch_add(1, Ordering::Relaxed);
            *guard = SlotState::Hot(Box::new(core));
        }
        let core = match &mut *guard {
            SlotState::Hot(core) => core,
            SlotState::Closed => {
                return Err(ErrorBody::new(
                    ErrorKind::NoSuchSession,
                    format!("session '{}' is closed", slot.name),
                ))
            }
            SlotState::Hibernated => unreachable!("reloaded above"),
        };
        let result = f(core);
        let save = {
            let mut rng = self.rng.lock().unwrap();
            hibernate::save(&self.dir, core, &mut rng)
        };
        drop(guard);
        self.enforce_cap(&slot.name);
        match (result, save) {
            (Ok(v), Ok(())) => Ok(v),
            (Err(e), _) => Err(e),
            (Ok(_), Err(e)) => Err(hibernate::to_error_body(&e)),
        }
    }

    /// Run a job against a named session (the server's `run`/`status`
    /// paths). See [`Registry::with_core`] for the residency protocol.
    pub fn with_session<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut SessionCore) -> Result<T, ErrorBody>,
    ) -> Result<T, ErrorBody> {
        let slot = self.slot(name)?;
        self.with_core(&slot, f)
    }

    /// Hibernate LRU sessions until at most `max_live` are hot. Slots
    /// whose state lock is held (a job mid-flight) are skipped — they
    /// are the opposite of least-recently-used. `except` (the slot that
    /// triggered enforcement) is demoted only as a last resort, by being
    /// ranked most-recently-used.
    fn enforce_cap(&self, except: &str) {
        loop {
            let candidates: Vec<Arc<Slot>> = {
                let slots = self.slots.lock().unwrap();
                let mut hot: Vec<&Arc<Slot>> = slots
                    .values()
                    .filter(|s| {
                        s.state
                            .try_lock()
                            .map(|g| matches!(*g, SlotState::Hot(_)))
                            .unwrap_or(false)
                    })
                    .collect();
                if hot.len() <= self.max_live {
                    return;
                }
                hot.sort_by_key(|s| {
                    let lru = s.last_used.load(Ordering::Relaxed);
                    (s.name == except, lru)
                });
                hot.iter()
                    .take(hot.len() - self.max_live)
                    .map(|s| Arc::clone(s))
                    .collect()
            };
            if candidates.is_empty() {
                return;
            }
            let mut demoted_any = false;
            for slot in candidates {
                let Ok(mut guard) = slot.state.try_lock() else {
                    continue; // became busy; skip this round
                };
                if let SlotState::Hot(core) = &*guard {
                    // State is already persisted write-through; demotion
                    // just re-saves (cheap, and correct even if a crash
                    // interleaved) and drops the in-memory core.
                    let saved = {
                        let mut rng = self.rng.lock().unwrap();
                        hibernate::save(&self.dir, core, &mut rng)
                    };
                    if saved.is_ok() {
                        *guard = SlotState::Hibernated;
                        self.stats.hibernations.fetch_add(1, Ordering::Relaxed);
                        demoted_any = true;
                    }
                }
            }
            if !demoted_any {
                return; // everything eligible is busy; try again next job
            }
        }
    }

    /// Explicitly hibernate one session now (the `hibernate` op).
    pub fn hibernate(&self, name: &str) -> Result<Json, ErrorBody> {
        let slot = self.slot(name)?;
        let mut guard = slot.state.lock().unwrap();
        match &*guard {
            SlotState::Hot(core) => {
                let saved = {
                    let mut rng = self.rng.lock().unwrap();
                    hibernate::save(&self.dir, core, &mut rng)
                };
                saved.map_err(|e| hibernate::to_error_body(&e))?;
                *guard = SlotState::Hibernated;
                self.stats.hibernations.fetch_add(1, Ordering::Relaxed);
                Ok(Json::obj([("hibernated", Json::Bool(true))]))
            }
            SlotState::Hibernated => Ok(Json::obj([("hibernated", Json::Bool(true))])),
            SlotState::Closed => Err(ErrorBody::new(
                ErrorKind::NoSuchSession,
                format!("session '{name}' is closed"),
            )),
        }
    }

    /// Hibernate every hot session (graceful shutdown). Blocks on each
    /// slot lock, so it naturally waits for in-flight jobs to finish.
    pub fn hibernate_all(&self) -> usize {
        let all: Vec<Arc<Slot>> = self.slots.lock().unwrap().values().cloned().collect();
        let mut n = 0;
        for slot in all {
            let mut guard = slot.state.lock().unwrap();
            if let SlotState::Hot(core) = &*guard {
                let saved = {
                    let mut rng = self.rng.lock().unwrap();
                    hibernate::save(&self.dir, core, &mut rng)
                };
                if saved.is_ok() {
                    *guard = SlotState::Hibernated;
                    self.stats.hibernations.fetch_add(1, Ordering::Relaxed);
                    n += 1;
                }
            }
        }
        n
    }

    /// Close a session: drop its state and delete its container.
    pub fn close(&self, name: &str) -> Result<Json, ErrorBody> {
        let slot = self.slot(name)?;
        {
            let mut guard = slot.state.lock().unwrap();
            if matches!(*guard, SlotState::Closed) {
                return Err(ErrorBody::new(
                    ErrorKind::NoSuchSession,
                    format!("session '{name}' is closed"),
                ));
            }
            *guard = SlotState::Closed;
            hibernate::remove(&self.dir, name).map_err(|e| hibernate::to_error_body(&e))?;
        }
        self.slots.lock().unwrap().remove(name);
        Ok(Json::obj([("closed", Json::Bool(true))]))
    }

    /// Sorted session names (the `stats` op).
    pub fn session_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.slots.lock().unwrap().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valpipe_machine::Kernel;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("valpipe-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec(name: &str) -> SessionSpec {
        SessionSpec {
            name: name.to_string(),
            source: "param m = 3;\ninput A : array[real] [0, m];\nY : array[real] := forall i in [0, m] construct A[i] + 1. endall;\noutput Y;".to_string(),
            arrays: Json::parse(r#"{"A":[1.0,2.0,3.0,4.0]}"#).unwrap(),
            waves: 1,
            kernel: Kernel::EventDriven,
            max_steps: 100_000,
        }
    }

    #[test]
    fn sequential_opens_restore_and_reuse_the_shared_engine() {
        let dir = temp_dir("warm");
        let reg = Registry::new(dir.clone(), 8, 1);
        reg.open(spec("a")).unwrap();
        reg.open(spec("b")).unwrap();
        let slot = reg.compile_cache.lock().unwrap();
        let engine = slot.as_ref().expect("engine restored after compiles");
        assert_eq!(
            engine.stats().executed(),
            0,
            "the second identical program must compile fully warm: {}",
            engine.stats().render()
        );
        drop(slot);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_opens_do_not_serialize_on_the_compile_cache() {
        let dir = temp_dir("concurrent");
        let reg = Arc::new(Registry::new(dir.clone(), 16, 1));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || reg.open(spec(&format!("s{i}"))))
            })
            .collect();
        for h in handles {
            h.join().unwrap().unwrap();
        }
        // Whichever open finished first put an engine back; contended
        // opens compiled on private cold engines and still succeeded.
        assert!(reg.compile_cache.lock().unwrap().is_some());
        assert_eq!(reg.session_count(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
