//! Durable session containers: the hibernation format and crash-safe
//! directory scan.
//!
//! A hibernated session is one file, `<name>.vph`, framing the session's
//! defining spec (JSON metadata) and its machine state (a PR 3 snapshot)
//! behind a whole-file checksum:
//!
//! ```text
//! offset  size      field
//! 0       8         magic "VALPHIB1"
//! 8       8         meta_len   (u64 LE)
//! 16      meta_len  meta JSON  (name, source, arrays, waves, kernel,
//!                               max_steps, final)
//! ...     8         snap_len   (u64 LE)
//! ...     snap_len  snapshot bytes (self-validating: own magic,
//!                               version, checksums)
//! ...     8         checksum64 of everything above (u64 LE)
//! ```
//!
//! Writes are atomic (temporary file + rename), so a crash mid-write
//! leaves either the previous container or a stale `*.tmp` — never a
//! half-written `.vph`. [`scan`] runs at server startup: it sweeps stale
//! temporaries, validates every container (framing, checksum, snapshot
//! self-checks, recompile fingerprint), and returns both the recoverable
//! sessions and a typed reason for every file it skipped. A torn or
//! truncated container is a *skip*, never a panic.

use std::path::{Path, PathBuf};

use valpipe_machine::{Snapshot, SnapshotError};
use valpipe_util::{checksum64, Json, Rng};

use crate::proto::{kernel_from_str, kernel_to_str};
use crate::session::{SessionCore, SessionSpec};

/// Container magic (distinct from the snapshot magic so a raw snapshot
/// dropped in the directory is diagnosed, not misparsed).
pub const HIBERNATE_MAGIC: [u8; 8] = *b"VALPHIB1";

/// Why a container could not be saved or loaded.
#[derive(Debug, Clone)]
pub enum HibernateError {
    /// Filesystem failure (transient: retried with backoff on save).
    Io(String),
    /// The container file exists but its framing or checksum is invalid.
    Corrupt(String),
    /// The embedded snapshot failed its own validation.
    Snapshot(SnapshotError),
    /// The stored source no longer compiles or no longer matches the
    /// snapshot's program fingerprint.
    Stale(String),
}

impl std::fmt::Display for HibernateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HibernateError::Io(m) => write!(f, "i/o: {m}"),
            HibernateError::Corrupt(m) => write!(f, "corrupt container: {m}"),
            HibernateError::Snapshot(e) => write!(f, "snapshot: {e}"),
            HibernateError::Stale(m) => write!(f, "stale container: {m}"),
        }
    }
}

impl std::error::Error for HibernateError {}

/// Path of a session's container inside the hibernation directory.
pub fn container_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.vph"))
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    bytes
        .get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
}

/// Serialize a session core into container bytes.
pub fn encode(core: &SessionCore) -> Vec<u8> {
    let spec = &core.spec;
    let meta = Json::obj([
        ("name", Json::Str(spec.name.clone())),
        ("source", Json::Str(spec.source.clone())),
        ("arrays", spec.arrays.clone()),
        ("waves", Json::Int(spec.waves as i64)),
        ("kernel", Json::Str(kernel_to_str(spec.kernel))),
        ("max_steps", Json::Int(spec.max_steps as i64)),
        (
            "final",
            core.final_result
                .as_ref()
                .map_or(Json::Null, |s| Json::Str(s.clone())),
        ),
    ])
    .to_compact();
    let snap = core.snapshot.as_bytes();
    let mut out = Vec::with_capacity(32 + meta.len() + snap.len() + 8);
    out.extend_from_slice(&HIBERNATE_MAGIC);
    push_u64(&mut out, meta.len() as u64);
    out.extend_from_slice(meta.as_bytes());
    push_u64(&mut out, snap.len() as u64);
    out.extend_from_slice(snap);
    let sum = checksum64(&out);
    push_u64(&mut out, sum);
    out
}

/// Rebuild a session core from container bytes. Validates framing and
/// checksum, then recompiles the stored source and checks the snapshot's
/// program fingerprint against it — so a container whose source and
/// machine state have drifted apart is refused, not resumed wrongly.
pub fn decode(bytes: &[u8]) -> Result<SessionCore, HibernateError> {
    let corrupt = |m: &str| HibernateError::Corrupt(m.to_string());
    if bytes.len() < 8 || bytes[..8] != HIBERNATE_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let sum_at = bytes
        .len()
        .checked_sub(8)
        .ok_or_else(|| corrupt("too short"))?;
    let want = read_u64(bytes, sum_at).unwrap();
    if checksum64(&bytes[..sum_at]) != want {
        return Err(corrupt("checksum mismatch (torn or bit-rotted write)"));
    }
    let meta_len = read_u64(bytes, 8).ok_or_else(|| corrupt("truncated meta length"))? as usize;
    let meta_end = 16usize
        .checked_add(meta_len)
        .filter(|&e| e <= sum_at)
        .ok_or_else(|| corrupt("meta length out of range"))?;
    let meta = std::str::from_utf8(&bytes[16..meta_end])
        .map_err(|_| corrupt("meta is not UTF-8"))
        .and_then(|s| Json::parse(s).map_err(|e| corrupt(&format!("meta JSON: {e}"))))?;
    let snap_len =
        read_u64(bytes, meta_end).ok_or_else(|| corrupt("truncated snapshot length"))? as usize;
    let snap_end = meta_end
        .checked_add(8 + snap_len)
        .filter(|&e| e == sum_at)
        .ok_or(HibernateError::Snapshot(SnapshotError::Truncated))?;
    let snap_bytes = bytes[meta_end + 8..snap_end].to_vec();
    let snapshot = Snapshot::from_bytes(snap_bytes).map_err(HibernateError::Snapshot)?;

    let str_field = |k: &str| -> Result<String, HibernateError> {
        meta.get(k)
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .ok_or_else(|| corrupt(&format!("meta missing '{k}'")))
    };
    let int_field = |k: &str| -> Result<i64, HibernateError> {
        meta.get(k)
            .and_then(|v| v.as_i64())
            .ok_or_else(|| corrupt(&format!("meta missing '{k}'")))
    };
    let kernel_str = str_field("kernel")?;
    let spec = SessionSpec {
        name: str_field("name")?,
        source: str_field("source")?,
        arrays: meta
            .get("arrays")
            .cloned()
            .ok_or_else(|| corrupt("meta missing 'arrays'"))?,
        waves: int_field("waves")? as usize,
        kernel: kernel_from_str(&kernel_str)
            .ok_or_else(|| corrupt(&format!("unknown kernel '{kernel_str}'")))?,
        max_steps: int_field("max_steps")? as u64,
    };
    let final_result = match meta.get("final") {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    };

    // Recompile and stage at step 0, then swap in the hibernated state.
    let mut core = SessionCore::open(spec).map_err(|e| {
        HibernateError::Stale(format!("stored spec no longer opens: {}", e.message))
    })?;
    // Fingerprint check: the snapshot must belong to this program. A
    // restore would catch the mismatch too, but checking here keeps the
    // staged snapshot consistent even for finished sessions (which never
    // restore again).
    if snapshot.fingerprint() != core.snapshot.fingerprint() {
        return Err(HibernateError::Snapshot(SnapshotError::ProgramMismatch {
            expected: core.snapshot.fingerprint(),
            found: snapshot.fingerprint(),
        }));
    }
    core.snapshot = snapshot;
    core.final_result = final_result;
    Ok(core)
}

/// Atomically persist `core` into `dir`, retrying transient I/O failures
/// with jittered exponential backoff (checkpoint contention — e.g. a
/// concurrent scan holding the file open on some platforms — is
/// transient; a full disk eventually is not).
pub fn save(dir: &Path, core: &SessionCore, rng: &mut Rng) -> Result<(), HibernateError> {
    let bytes = encode(core);
    let path = container_path(dir, &core.spec.name);
    let tmp = path.with_extension("vph.tmp");
    let mut delay_ms = 2u64;
    let mut last = String::new();
    for _ in 0..4 {
        let attempt = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&tmp, &bytes))
            .and_then(|()| std::fs::rename(&tmp, &path));
        match attempt {
            Ok(()) => return Ok(()),
            Err(e) => {
                last = e.to_string();
                let jitter = rng.below(delay_ms.max(1) as usize) as u64;
                std::thread::sleep(std::time::Duration::from_millis(delay_ms + jitter));
                delay_ms *= 2;
            }
        }
    }
    let _ = std::fs::remove_file(&tmp);
    Err(HibernateError::Io(format!(
        "persisting '{}' failed after retries: {last}",
        core.spec.name
    )))
}

/// Load one named container from `dir`.
pub fn load(dir: &Path, name: &str) -> Result<SessionCore, HibernateError> {
    let bytes =
        std::fs::read(container_path(dir, name)).map_err(|e| HibernateError::Io(e.to_string()))?;
    decode(&bytes)
}

/// Delete a session's container (used by explicit `close`).
pub fn remove(dir: &Path, name: &str) -> Result<(), HibernateError> {
    match std::fs::remove_file(container_path(dir, name)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(HibernateError::Io(e.to_string())),
    }
}

/// What a startup scan of the hibernation directory found.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Names of sessions with valid containers, sorted.
    pub recovered: Vec<String>,
    /// Stale temporary files swept (torn writes from a crash).
    pub swept_tmp: Vec<String>,
    /// Containers skipped, with the typed reason.
    pub skipped: Vec<(String, HibernateError)>,
}

/// Crash-recovery scan: sweep stale `*.tmp` files, then validate every
/// `*.vph` container without fully rebuilding it (full decode happens
/// lazily on first use). Invalid containers are reported and left on
/// disk for post-mortem — recovery never deletes data it cannot read.
pub fn scan(dir: &Path) -> Result<ScanReport, HibernateError> {
    let mut report = ScanReport::default();
    report.swept_tmp = Snapshot::sweep_stale_tmp(dir).map_err(HibernateError::Snapshot)?;
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(HibernateError::Io(e.to_string())),
    };
    for entry in entries {
        let entry = entry.map_err(|e| HibernateError::Io(e.to_string()))?;
        let path = entry.path();
        let Some(fname) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(name) = fname.strip_suffix(".vph") else {
            continue;
        };
        match std::fs::read(&path)
            .map_err(|e| HibernateError::Io(e.to_string()))
            .and_then(|bytes| decode(&bytes).map(|_| ()))
        {
            Ok(()) => report.recovered.push(name.to_string()),
            Err(e) => report.skipped.push((fname.to_string(), e)),
        }
    }
    report.recovered.sort();
    report.skipped.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(report)
}

/// Map a hibernate failure onto the wire error taxonomy.
pub fn to_error_body(e: &HibernateError) -> crate::proto::ErrorBody {
    use crate::proto::{ErrorBody, ErrorKind};
    match e {
        HibernateError::Io(m) => ErrorBody::new(ErrorKind::Io, m.clone()).retry_after(50),
        HibernateError::Corrupt(m) => ErrorBody::new(ErrorKind::SnapshotCorrupt, m.clone()),
        HibernateError::Snapshot(se) => ErrorBody::new(ErrorKind::SnapshotCorrupt, se.to_string()),
        HibernateError::Stale(m) => ErrorBody::new(ErrorKind::SnapshotCorrupt, m.clone()),
    }
}
