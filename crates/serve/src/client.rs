//! A minimal blocking client for the service, used by the CLI, the
//! integration tests, and the chaos soak harness.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use valpipe_util::Json;

/// One connection to the service: send a request object, read the
/// response line. Requests on one client are strictly sequential.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect with a read timeout (a hung or killed server surfaces as
    /// an I/O error the caller classifies as transient).
    pub fn connect(addr: &str, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Send one request, wait for its response line.
    pub fn request(&mut self, req: &Json) -> std::io::Result<Json> {
        let mut line = req.to_compact();
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        self.stream.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(&response).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response JSON: {e}"),
            )
        })
    }
}
