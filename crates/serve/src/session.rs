//! A tenant session: one compiled program plus its machine state,
//! advanced in budgeted increments and serialized for hibernation.
//!
//! The machine's [`valpipe_machine::Session`] borrows its graph, so it
//! cannot be stored across jobs. A [`SessionCore`] instead owns the
//! compiled program, the executable graph, and the latest [`Snapshot`];
//! each job restores a live session from the snapshot, advances it, and
//! re-captures. PR 3's restore-at-any-step guarantee makes this exactly
//! equivalent to keeping the machine live — and it is what makes
//! hibernation and crash recovery free: the in-memory representation
//! *is* the durable representation.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use valpipe_core::verify::stream_inputs;
use valpipe_core::{CompileError, CompileLimits, CompileOptions, Compiled, QueryEngine};
use valpipe_ir::graph::Graph;
use valpipe_machine::{
    render_error, ExecMode, Kernel, RunOutcome, RunSpec, Session, SimConfig, Simulator, Snapshot,
    StallKind,
};
use valpipe_util::Json;
use valpipe_val::interp::ArrayVal;

use crate::proto::{
    run_result_to_json, stall_report_to_json, valid_session_name, ErrorBody, ErrorKind,
};

/// Everything needed to (re)create a session: the client-supplied
/// definition. Two `open` requests conflict only if these differ.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Session name (`[A-Za-z0-9_-]{1,64}`).
    pub name: String,
    /// Val source text.
    pub source: String,
    /// Input arrays: object mapping each declared input to its values.
    pub arrays: Json,
    /// How many waves of each input to stream.
    pub waves: usize,
    /// Simulation kernel.
    pub kernel: Kernel,
    /// Hard step limit for the whole run.
    pub max_steps: u64,
}

impl SessionSpec {
    /// Canonical identity string: two specs with the same identity open
    /// the same deterministic run, so re-opening is idempotent.
    pub fn identity(&self) -> String {
        // Sort the array object so member order on the wire is irrelevant.
        let arrays = match &self.arrays {
            Json::Obj(m) => {
                let mut m = m.clone();
                m.sort_by(|a, b| a.0.cmp(&b.0));
                Json::Obj(m)
            }
            other => other.clone(),
        };
        format!(
            "{}|{}|{}|{}|{}",
            self.source,
            arrays.to_compact(),
            self.waves,
            crate::proto::kernel_to_str(self.kernel),
            self.max_steps
        )
    }
}

/// Per-job execution limits. `until` is an *absolute* instruction-time
/// target, which is what makes retried jobs idempotent: the machine is
/// deterministic, so re-running "advance to t=5000" after a crash
/// converges to the same state no matter how far the first attempt got.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobLimits {
    /// Absolute instruction time to pause at (`None` = run to completion).
    pub until: Option<u64>,
    /// Step budget for *this job* (relative); exhaustion is transient.
    pub step_budget: Option<u64>,
    /// Wall-clock deadline for this job; exceeding it is transient.
    pub deadline: Option<Duration>,
    /// Execution mode for this job. Fast-forward is bit-identical to
    /// exact, so the mode is a per-job tuning knob, not part of the
    /// session's identity — two jobs against one session may differ.
    pub mode: ExecMode,
}

/// What a job did to the session. Every variant carries `skipped`: the
/// instruction times fast-forward advanced analytically during this job
/// (0 under [`ExecMode::Exact`]).
pub enum Advance {
    /// The run reached one of the machine's own stopping conditions;
    /// the canonical result JSON is now cached on the core.
    Done {
        /// Steps skipped by fast-forward in this job.
        skipped: u64,
    },
    /// Paused at the requested instruction time.
    Paused {
        /// Instruction time after the job.
        now: u64,
        /// Steps skipped by fast-forward in this job.
        skipped: u64,
    },
    /// The per-job step budget ran out first. Progress is preserved; the
    /// stall report diagnoses what the machine was doing.
    Budget {
        /// Instruction time after the job.
        now: u64,
        /// Encoded [`valpipe_machine::StallReport`].
        stall: Json,
        /// Steps skipped by fast-forward in this job.
        skipped: u64,
    },
    /// The wall-clock deadline passed between work chunks.
    Deadline {
        /// Instruction time after the job.
        now: u64,
        /// Encoded [`valpipe_machine::StallReport`].
        stall: Json,
        /// Steps skipped by fast-forward in this job.
        skipped: u64,
    },
}

/// One tenant's compiled program and machine state.
pub struct SessionCore {
    /// The defining spec (kept verbatim for idempotent re-open and for
    /// hibernation metadata).
    pub spec: SessionSpec,
    /// The compiled program (provenance used to annotate faults).
    pub compiled: Compiled,
    /// FIFO-expanded executable graph.
    pub exe: Graph,
    /// Latest machine state. Always consistent: jobs capture-after-advance.
    pub snapshot: Snapshot,
    /// Canonical compact-JSON run result, once the run has finished.
    pub final_result: Option<String>,
}

fn bad_request(msg: impl Into<String>) -> ErrorBody {
    ErrorBody::new(ErrorKind::BadRequest, msg)
}

/// Parse the `arrays` object of a spec against the program's declared
/// inputs: every declared input must be present with exactly the
/// manifest number of numeric elements, and no extra keys are allowed.
fn bind_arrays(compiled: &Compiled, arrays: &Json) -> Result<HashMap<String, ArrayVal>, ErrorBody> {
    let Json::Obj(members) = arrays else {
        return Err(bad_request("\"arrays\" must be an object"));
    };
    let mut out = HashMap::new();
    for (name, (lo, hi)) in &compiled.flow.inputs {
        let want = (hi - lo + 1) as usize;
        let Some(v) = members.iter().find(|(k, _)| k == name).map(|(_, v)| v) else {
            return Err(bad_request(format!(
                "missing input array '{name}' ({want} elements over [{lo},{hi}])"
            )));
        };
        let Some(elems) = v.as_arr() else {
            return Err(bad_request(format!("input '{name}' must be an array")));
        };
        if elems.len() != want {
            return Err(bad_request(format!(
                "input '{name}': {} elements, manifest range [{lo},{hi}] needs {want}",
                elems.len()
            )));
        }
        let mut vals = Vec::with_capacity(want);
        for (i, e) in elems.iter().enumerate() {
            match e.as_f64() {
                Some(x) => vals.push(x),
                None => {
                    return Err(bad_request(format!(
                        "input '{name}' element {i} is not a number"
                    )))
                }
            }
        }
        out.insert(name.clone(), ArrayVal::from_reals(*lo, &vals));
    }
    for (k, _) in members {
        if !compiled.flow.inputs.iter().any(|(n, _)| n == k) {
            return Err(bad_request(format!(
                "unknown input array '{k}' (program declares: {})",
                compiled
                    .flow
                    .inputs
                    .iter()
                    .map(|(n, _)| n.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
    }
    Ok(out)
}

impl SessionCore {
    /// Compile and stage a new session at instruction time 0. Compile
    /// errors and input-binding errors are permanent failures.
    pub fn open(spec: SessionSpec) -> Result<SessionCore, ErrorBody> {
        Self::open_with_engine(spec, &mut QueryEngine::new())
    }

    /// [`SessionCore::open`] through a caller-held [`QueryEngine`]: the
    /// registry shares one engine across sessions, so tenants submitting
    /// overlapping programs (re-opens after eviction, fleets of
    /// near-identical jobs) recompile only the blocks that differ. The
    /// compiled artifact is bit-identical to a cold compile.
    pub fn open_with_engine(
        spec: SessionSpec,
        engine: &mut QueryEngine,
    ) -> Result<SessionCore, ErrorBody> {
        if !valid_session_name(&spec.name) {
            return Err(bad_request(format!(
                "invalid session name '{}': need 1-64 chars of [A-Za-z0-9_-]",
                spec.name
            )));
        }
        if spec.waves == 0 {
            return Err(bad_request("\"waves\" must be at least 1"));
        }
        // Untrusted wire source compiles under the service resource
        // profile: limit breaches are a distinct, non-retryable kind so
        // clients can tell "your program is too big" from "doesn't compile".
        let compiled = engine
            .run_source(
                &CompileOptions::default(),
                &CompileLimits::service(),
                &[],
                &spec.source,
                "<session>",
            )
            .map(|o| o.compiled)
            .map_err(|e| match e {
                CompileError::Limit(b) => ErrorBody::new(ErrorKind::ResourceLimit, b.to_string()),
                other => ErrorBody::new(ErrorKind::CompileError, other.to_string()),
            })?;
        let arrays = bind_arrays(&compiled, &spec.arrays)?;
        let exe = compiled.executable();
        let inputs = stream_inputs(&compiled, &arrays, spec.waves);
        let session = Simulator::builder(&exe)
            .inputs(inputs)
            .config(Self::sim_config(&spec))
            .build()
            .map_err(|e| {
                ErrorBody::new(
                    ErrorKind::MachineError,
                    render_error(&e, &exe, &compiled.prov),
                )
            })?;
        let snapshot = session.checkpoint();
        Ok(SessionCore {
            spec,
            compiled,
            exe,
            snapshot,
            final_result: None,
        })
    }

    fn sim_config(spec: &SessionSpec) -> SimConfig {
        SimConfig::new()
            .max_steps(spec.max_steps)
            .kernel(spec.kernel)
    }

    /// Current instruction time of the staged state.
    pub fn now(&self) -> u64 {
        self.snapshot.step()
    }

    /// Advance the machine under `limits`, restoring from the staged
    /// snapshot and re-capturing afterwards. `chunk` bounds how many
    /// instruction times run between wall-clock deadline checks.
    ///
    /// Machine faults are permanent (`machine_error`, annotated with Val
    /// source provenance). Budget and deadline exhaustion return normally
    /// with the stall diagnosis — the *state advanced*, so the registry
    /// must still persist the core.
    pub fn advance(&mut self, limits: &JobLimits, chunk: u64) -> Result<Advance, ErrorBody> {
        if self.final_result.is_some() {
            // The run already finished; jobs against a finished session
            // are satisfied from the cached result.
            return Ok(Advance::Done { skipped: 0 });
        }
        let chunk = chunk.max(1);
        let started = Instant::now();
        let deadline_hit =
            |started: &Instant| limits.deadline.is_some_and(|d| started.elapsed() >= d);
        let budget_at = limits.step_budget.map(|b| self.now().saturating_add(b));
        let mut session = Session::restore_with_kernel(&self.exe, &self.snapshot, self.spec.kernel)
            .map_err(|e| {
                ErrorBody::new(ErrorKind::SnapshotCorrupt, format!("staged snapshot: {e}"))
            })?;
        let mut skipped = 0u64;
        loop {
            // Next pause boundary: the nearest of chunk end, the job's
            // absolute target, and the budget ceiling.
            let mut pause = session.now().saturating_add(chunk);
            if let Some(u) = limits.until {
                pause = pause.min(u);
            }
            if let Some(b) = budget_at {
                pause = pause.min(b);
            }
            let driven = session
                .drive(RunSpec::new().mode(limits.mode).pause_at(pause))
                .map_err(|e| {
                    ErrorBody::new(
                        ErrorKind::MachineError,
                        render_error(&e, &self.exe, &self.compiled.prov),
                    )
                })?;
            skipped += driven.fast_forward.skipped_steps;
            session = match driven.outcome {
                RunOutcome::Done(result) => {
                    self.snapshot_from_result(&result);
                    return Ok(Advance::Done { skipped });
                }
                RunOutcome::Paused(s) => *s,
            };
            let now = session.now();
            if budget_at.is_some_and(|b| now >= b) {
                let stall = stall_report_to_json(&session.stall_report(StallKind::BudgetExhausted));
                self.snapshot = session.checkpoint();
                return Ok(Advance::Budget {
                    now,
                    stall,
                    skipped,
                });
            }
            if limits.until.is_some_and(|u| now >= u) {
                self.snapshot = session.checkpoint();
                return Ok(Advance::Paused { now, skipped });
            }
            if deadline_hit(&started) {
                let stall = stall_report_to_json(&session.stall_report(StallKind::BudgetExhausted));
                self.snapshot = session.checkpoint();
                return Ok(Advance::Deadline {
                    now,
                    stall,
                    skipped,
                });
            }
        }
    }

    fn snapshot_from_result(&mut self, result: &valpipe_machine::RunResult) {
        // A finished run cannot be resumed (the Session was consumed), so
        // the staged snapshot stays at the last pause point; the cached
        // result is the durable artifact clients read.
        self.final_result = Some(run_result_to_json(result).to_compact());
    }

    /// The cached final result, if the run has completed.
    pub fn final_result_json(&self) -> Option<Json> {
        self.final_result
            .as_ref()
            .map(|s| Json::parse(s).expect("cached result round-trips"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, kernel: Kernel) -> SessionSpec {
        SessionSpec {
            name: name.to_string(),
            source: "param m = 3;\ninput A : array[real] [0, m];\nY : array[real] := forall i in [0, m] construct A[i] + 1. endall;\noutput Y;"
                .to_string(),
            arrays: Json::parse(r#"{"A": [1.0, 2.0, 3.0, 4.0]}"#).unwrap(),
            waves: 2,
            kernel,
            max_steps: 100_000,
        }
    }

    #[test]
    fn open_compiles_and_stages_at_step_zero() {
        let core = SessionCore::open(spec("t1", Kernel::EventDriven)).unwrap();
        assert_eq!(core.now(), 0);
        assert!(core.final_result.is_none());
    }

    #[test]
    fn open_rejects_bad_inputs_permanently() {
        let mut s = spec("t2", Kernel::EventDriven);
        s.arrays = Json::parse(r#"{"A": [1.0]}"#).unwrap();
        let err = SessionCore::open(s).map(|_| ()).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(!err.kind.retryable());

        let mut s = spec("t3", Kernel::EventDriven);
        s.source = "output Nope;".to_string();
        let err = SessionCore::open(s).map(|_| ()).unwrap_err();
        assert_eq!(err.kind, ErrorKind::CompileError);
        assert!(!err.kind.retryable());
    }

    #[test]
    fn chunked_advance_matches_single_shot() {
        // Whole run in one job.
        let mut one = SessionCore::open(spec("a", Kernel::EventDriven)).unwrap();
        assert!(matches!(
            one.advance(&JobLimits::default(), 1 << 40).unwrap(),
            Advance::Done { .. }
        ));
        let oracle = one.final_result.clone().unwrap();

        // Same run advanced in tiny chunks with absolute pause targets.
        let mut many = SessionCore::open(spec("a", Kernel::EventDriven)).unwrap();
        let mut target = 3;
        loop {
            let limits = JobLimits {
                until: Some(target),
                ..JobLimits::default()
            };
            match many.advance(&limits, 2).unwrap() {
                Advance::Done { .. } => break,
                Advance::Paused { now, .. } => assert_eq!(now, target),
                _ => panic!("no budget/deadline set"),
            }
            target += 3;
        }
        assert_eq!(many.final_result.unwrap(), oracle);
    }

    #[test]
    fn fastforward_jobs_match_exact_jobs() {
        // The mode is a per-job knob: a fast-forwarded run caches the
        // same canonical result bytes as an exact run of the same spec.
        let mut exact = SessionCore::open(spec("ff-a", Kernel::EventDriven)).unwrap();
        assert!(matches!(
            exact.advance(&JobLimits::default(), 1 << 40).unwrap(),
            Advance::Done { .. }
        ));
        let mut ff = SessionCore::open(spec("ff-b", Kernel::EventDriven)).unwrap();
        let limits = JobLimits {
            mode: ExecMode::FastForward { verify_window: 1 },
            ..JobLimits::default()
        };
        assert!(matches!(
            ff.advance(&limits, 1 << 40).unwrap(),
            Advance::Done { .. }
        ));
        assert_eq!(ff.final_result, exact.final_result);
    }

    #[test]
    fn budget_exhaustion_is_resumable_and_diagnosed() {
        let mut core = SessionCore::open(spec("b", Kernel::Scan)).unwrap();
        let limits = JobLimits {
            step_budget: Some(2),
            ..JobLimits::default()
        };
        match core.advance(&limits, 1).unwrap() {
            Advance::Budget { now, stall, .. } => {
                assert_eq!(now, 2);
                assert!(stall.get("kind").is_some());
            }
            _ => panic!("expected budget exhaustion"),
        }
        // Retrying with no budget finishes the run from where it paused.
        assert!(matches!(
            core.advance(&JobLimits::default(), 1 << 40).unwrap(),
            Advance::Done { .. }
        ));
    }
}
