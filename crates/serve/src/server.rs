//! The service: a threaded TCP server with explicit admission control,
//! a bounded worker pool, and graceful drain-and-hibernate shutdown.
//!
//! Thread structure:
//!
//! ```text
//! acceptor (main)   one reader thread per connection   worker pool (N)
//!     │                     │                              │
//!     │ accept ───────────▶ │ parse line                   │
//!     │                     │ try_send ── bounded queue ──▶│ execute job
//!     │                     │    │ (full → overloaded)     │ reply on conn
//! ```
//!
//! Admission control is the queue itself: `sync_channel(queue_cap)` plus
//! `try_send`. A full queue is answered *immediately* with a structured
//! `overloaded` error carrying a jittered `retry_after_ms` — the server
//! never blocks a client on someone else's work and never buffers
//! unboundedly. Shutdown reverses the flow: stop accepting, poison the
//! queue with one `Quit` marker per worker (blocking sends, so every
//! already-admitted job drains first), join the workers, hibernate every
//! session, then acknowledge the requester.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use valpipe_util::{Json, Rng};

use crate::proto::{
    err_response, kernel_from_str, mode_from_str, mode_to_str, ok_response, valid_session_name,
    ErrorBody, ErrorKind,
};
use crate::registry::Registry;
use crate::session::{Advance, JobLimits, SessionSpec};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded job-queue depth; beyond this, requests are rejected with
    /// `overloaded` instead of queueing.
    pub queue_cap: usize,
    /// Maximum sessions held hot in memory (LRU hibernation beyond).
    pub max_live: usize,
    /// Directory for hibernation containers.
    pub hibernate_dir: PathBuf,
    /// Seed for retry jitter (deterministic tests).
    pub seed: u64,
    /// Instruction times between wall-clock deadline checks in a job.
    pub step_chunk: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 16,
            max_live: 8,
            hibernate_dir: PathBuf::from("hibernate"),
            seed: 0x7a1_d0e5,
            step_chunk: 512,
        }
    }
}

/// Serialized writer half of a connection; one response line at a time.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    fn send(&self, response: &Json) {
        let mut line = response.to_compact();
        line.push('\n');
        let mut s = self.stream.lock().unwrap();
        // A client that hung up mid-job is not an error worth surfacing.
        let _ = s.write_all(line.as_bytes());
        let _ = s.flush();
    }
}

enum WorkItem {
    Job { req: Json, conn: Arc<ConnWriter> },
    Quit,
}

/// The shutdown requester's parked connection and request, filled by the
/// first `shutdown` and consumed once the drain completes.
type ShutdownReply = Arc<Mutex<Option<(Arc<ConnWriter>, Json)>>>;

/// Service counters, exposed via the `stats` op.
#[derive(Default)]
pub struct Stats {
    /// Jobs admitted to the queue.
    pub accepted: AtomicU64,
    /// Jobs rejected with `overloaded`.
    pub rejected_overload: AtomicU64,
    /// Jobs fully executed (success or structured failure).
    pub completed: AtomicU64,
    /// Instruction times skipped analytically by fast-forward jobs,
    /// summed across the whole service lifetime.
    pub ff_skipped_steps: AtomicU64,
}

/// A bound, not-yet-running server.
pub struct Server {
    cfg: ServeConfig,
    listener: TcpListener,
    registry: Arc<Registry>,
    stats: Arc<Stats>,
    shutting_down: Arc<AtomicBool>,
}

/// Outcome of startup recovery, for logging.
pub struct Recovery {
    /// Sessions recovered from hibernation containers.
    pub recovered: Vec<String>,
    /// Stale temporary files swept.
    pub swept_tmp: Vec<String>,
    /// Containers skipped as invalid (file name, reason).
    pub skipped: Vec<(String, String)>,
}

impl Server {
    /// Bind the listener, run crash recovery on the hibernation
    /// directory, and return the ready-to-run server plus the recovery
    /// report.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<(Server, Recovery)> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let registry = Arc::new(Registry::new(
            cfg.hibernate_dir.clone(),
            cfg.max_live,
            cfg.seed,
        ));
        let report = registry
            .recover()
            .map_err(|e| std::io::Error::other(format!("hibernation directory unusable: {e}")))?;
        let recovery = Recovery {
            recovered: report.recovered,
            swept_tmp: report.swept_tmp,
            skipped: report
                .skipped
                .into_iter()
                .map(|(f, e)| (f, e.to_string()))
                .collect(),
        };
        Ok((
            Server {
                cfg,
                listener,
                registry,
                stats: Arc::new(Stats::default()),
                shutting_down: Arc::new(AtomicBool::new(false)),
            },
            recovery,
        ))
    }

    /// The bound address (for ephemeral-port tests and the soak harness).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run until a `shutdown` request completes its drain. Blocks.
    pub fn run(self) -> std::io::Result<()> {
        let (tx, rx) = std::sync::mpsc::sync_channel::<WorkItem>(self.cfg.queue_cap);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::new();
        for _ in 0..self.cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let registry = Arc::clone(&self.registry);
            let stats = Arc::clone(&self.stats);
            let chunk = self.cfg.step_chunk;
            workers.push(std::thread::spawn(move || {
                worker_loop(&rx, &registry, &stats, chunk)
            }));
        }

        // The shutdown requester's connection, parked until the drain
        // completes so the acknowledgement is truthful.
        let shutdown_reply: ShutdownReply = Arc::new(Mutex::new(None));
        let jitter = Arc::new(Mutex::new(Rng::seed(self.cfg.seed ^ 0x000b_5e55)));

        for stream in self.listener.incoming() {
            if self.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let tx = tx.clone();
            let registry = Arc::clone(&self.registry);
            let stats = Arc::clone(&self.stats);
            let shutting_down = Arc::clone(&self.shutting_down);
            let shutdown_reply = Arc::clone(&shutdown_reply);
            let jitter = Arc::clone(&jitter);
            let my_addr = self.listener.local_addr();
            std::thread::spawn(move || {
                reader_loop(
                    stream,
                    &tx,
                    &registry,
                    &stats,
                    &shutting_down,
                    &shutdown_reply,
                    &jitter,
                    my_addr.ok(),
                );
            });
        }

        // Drain: one Quit per worker, pushed through the same bounded
        // queue. Blocking sends guarantee every admitted job runs first.
        for _ in 0..workers.len() {
            let _ = tx.send(WorkItem::Quit);
        }
        for w in workers {
            let _ = w.join();
        }
        let hibernated = self.registry.hibernate_all();
        if let Some((conn, req)) = shutdown_reply.lock().unwrap().take() {
            conn.send(&ok_response(
                "shutdown",
                req.get("id"),
                vec![
                    ("drained".to_string(), Json::Bool(true)),
                    ("hibernated".to_string(), Json::Int(hibernated as i64)),
                ],
            ));
        }
        Ok(())
    }
}

/// Largest request line the reader will buffer. A hostile client that
/// never sends a newline must not grow server memory without bound; past
/// this point the line is rejected with `resource_limit` and discarded.
const MAX_REQUEST_LINE_BYTES: u64 = 4 << 20;

/// Discard input up to and including the next newline, in bounded chunks.
/// Returns false when the client hangs up first.
fn drain_to_newline(reader: &mut impl BufRead) -> bool {
    loop {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(_) => return false,
        };
        if buf.is_empty() {
            return false;
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            reader.consume(pos + 1);
            return true;
        }
        let n = buf.len();
        reader.consume(n);
    }
}

/// Per-connection reader: parse one request per line, admit or reject.
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    stream: TcpStream,
    tx: &SyncSender<WorkItem>,
    registry: &Arc<Registry>,
    stats: &Arc<Stats>,
    shutting_down: &Arc<AtomicBool>,
    shutdown_reply: &ShutdownReply,
    jitter: &Arc<Mutex<Rng>>,
    my_addr: Option<SocketAddr>,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(ConnWriter {
        stream: Mutex::new(stream),
    });
    let mut reader = BufReader::new(read_half);
    let mut bytes = Vec::new();
    loop {
        bytes.clear();
        match (&mut reader)
            .take(MAX_REQUEST_LINE_BYTES)
            .read_until(b'\n', &mut bytes)
        {
            Ok(0) | Err(_) => return, // client hung up
            Ok(_) => {}
        }
        if !bytes.ends_with(b"\n") && bytes.len() as u64 >= MAX_REQUEST_LINE_BYTES {
            // Oversized request line: reject, then skip the rest of it so
            // the connection stays usable for the next request.
            conn.send(&err_response(
                "?",
                None,
                &ErrorBody::new(
                    ErrorKind::ResourceLimit,
                    format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
                ),
            ));
            if !drain_to_newline(&mut reader) {
                return;
            }
            continue;
        }
        let line = match std::str::from_utf8(&bytes) {
            Ok(s) => s,
            Err(_) => {
                conn.send(&err_response(
                    "?",
                    None,
                    &ErrorBody::new(ErrorKind::BadRequest, "request line is not UTF-8"),
                ));
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let req = match Json::parse(line) {
            Ok(j) => j,
            Err(e) => {
                conn.send(&err_response(
                    "?",
                    None,
                    &ErrorBody::new(ErrorKind::BadRequest, format!("bad JSON: {e}")),
                ));
                continue;
            }
        };
        let op = req
            .get("op")
            .and_then(|o| o.as_str())
            .unwrap_or("?")
            .to_string();
        let id = req.get("id").cloned();

        if op == "shutdown" {
            // Handled inline: flag, park the reply, poke the acceptor.
            let first = !shutting_down.swap(true, Ordering::SeqCst);
            if first {
                *shutdown_reply.lock().unwrap() = Some((Arc::clone(&conn), req));
                if let Some(addr) = my_addr {
                    // Unblock the blocking accept so the drain can start.
                    let _ = TcpStream::connect(addr);
                }
            } else {
                conn.send(&err_response(
                    "shutdown",
                    id.as_ref(),
                    &ErrorBody::new(ErrorKind::ShuttingDown, "shutdown already in progress")
                        .retry_after(100),
                ));
            }
            continue;
        }
        if shutting_down.load(Ordering::SeqCst) {
            conn.send(&err_response(
                &op,
                id.as_ref(),
                &ErrorBody::new(ErrorKind::ShuttingDown, "server is draining").retry_after(200),
            ));
            continue;
        }
        // Cheap introspection ops skip the queue: they never touch a
        // session lock, so answering them inline keeps them responsive
        // under load (and lets the soak harness observe an overloaded
        // server's counters).
        if op == "ping" || op == "stats" {
            conn.send(&answer_light(&op, id.as_ref(), registry, stats));
            continue;
        }
        match tx.try_send(WorkItem::Job {
            req,
            conn: Arc::clone(&conn),
        }) {
            Ok(()) => {
                stats.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) => {
                stats.rejected_overload.fetch_add(1, Ordering::Relaxed);
                let after = 25 + jitter.lock().unwrap().below(50) as u64;
                conn.send(&err_response(
                    &op,
                    id.as_ref(),
                    &ErrorBody::new(
                        ErrorKind::Overloaded,
                        "job queue is full; retry after the suggested delay",
                    )
                    .retry_after(after),
                ));
            }
            Err(TrySendError::Disconnected(_)) => {
                conn.send(&err_response(
                    &op,
                    id.as_ref(),
                    &ErrorBody::new(ErrorKind::ShuttingDown, "server is draining").retry_after(200),
                ));
            }
        }
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<WorkItem>>>,
    registry: &Arc<Registry>,
    stats: &Arc<Stats>,
    step_chunk: u64,
) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let item = { rx.lock().unwrap().recv() };
        match item {
            Ok(WorkItem::Job { req, conn }) => {
                let op = req
                    .get("op")
                    .and_then(|o| o.as_str())
                    .unwrap_or("?")
                    .to_string();
                let id = req.get("id").cloned();
                let response = match execute(&op, &req, registry, stats, step_chunk) {
                    Ok(members) => ok_response(&op, id.as_ref(), members),
                    Err(e) => err_response(&op, id.as_ref(), &e),
                };
                stats.completed.fetch_add(1, Ordering::Relaxed);
                conn.send(&response);
            }
            Ok(WorkItem::Quit) | Err(_) => return,
        }
    }
}

fn answer_light(op: &str, id: Option<&Json>, registry: &Registry, stats: &Stats) -> Json {
    match op {
        "ping" => ok_response("ping", id, vec![]),
        _ => ok_response(
            "stats",
            id,
            vec![
                (
                    "accepted".to_string(),
                    Json::Int(stats.accepted.load(Ordering::Relaxed) as i64),
                ),
                (
                    "rejected_overload".to_string(),
                    Json::Int(stats.rejected_overload.load(Ordering::Relaxed) as i64),
                ),
                (
                    "completed".to_string(),
                    Json::Int(stats.completed.load(Ordering::Relaxed) as i64),
                ),
                (
                    "ff_skipped_steps".to_string(),
                    Json::Int(stats.ff_skipped_steps.load(Ordering::Relaxed) as i64),
                ),
                (
                    "hibernations".to_string(),
                    Json::Int(registry.stats.hibernations.load(Ordering::Relaxed) as i64),
                ),
                (
                    "resumes".to_string(),
                    Json::Int(registry.stats.resumes.load(Ordering::Relaxed) as i64),
                ),
                (
                    "sessions".to_string(),
                    Json::Int(registry.session_count() as i64),
                ),
                ("live".to_string(), Json::Int(registry.live_count() as i64)),
                (
                    "session_names".to_string(),
                    Json::Arr(
                        registry
                            .session_names()
                            .into_iter()
                            .map(Json::Str)
                            .collect(),
                    ),
                ),
            ],
        ),
    }
}

fn req_str(req: &Json, key: &str) -> Result<String, ErrorBody> {
    req.get(key)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| ErrorBody::new(ErrorKind::BadRequest, format!("missing string '{key}'")))
}

fn req_session(req: &Json) -> Result<String, ErrorBody> {
    let name = req_str(req, "session")?;
    if !valid_session_name(&name) {
        return Err(ErrorBody::new(
            ErrorKind::BadRequest,
            format!("invalid session name '{name}'"),
        ));
    }
    Ok(name)
}

/// Execute one queued job. Returns the success members or a structured
/// failure for the worker to wrap.
fn execute(
    op: &str,
    req: &Json,
    registry: &Registry,
    stats: &Stats,
    step_chunk: u64,
) -> Result<Vec<(String, Json)>, ErrorBody> {
    match op {
        "open" => {
            let spec = SessionSpec {
                name: req_session(req)?,
                source: req_str(req, "source")?,
                arrays: req
                    .get("arrays")
                    .cloned()
                    .ok_or_else(|| ErrorBody::new(ErrorKind::BadRequest, "missing 'arrays'"))?,
                waves: req
                    .get("waves")
                    .and_then(|v| v.as_i64())
                    .unwrap_or(1)
                    .max(0) as usize,
                kernel: match req.get("kernel").and_then(|v| v.as_str()) {
                    None => valpipe_machine::Kernel::default(),
                    Some(s) => kernel_from_str(s).ok_or_else(|| {
                        ErrorBody::new(
                            ErrorKind::BadRequest,
                            format!("unknown kernel '{s}' (scan | event | parallel:N)"),
                        )
                    })?,
                },
                max_steps: req
                    .get("max_steps")
                    .and_then(|v| v.as_i64())
                    .unwrap_or(10_000_000)
                    .max(1) as u64,
            };
            let info = registry.open(spec)?;
            Ok(match info {
                Json::Obj(m) => m,
                other => vec![("session".to_string(), other)],
            })
        }
        "run" => {
            let name = req_session(req)?;
            let limits = JobLimits {
                until: req
                    .get("until")
                    .and_then(|v| v.as_i64())
                    .map(|v| v.max(0) as u64),
                step_budget: req
                    .get("step_budget")
                    .and_then(|v| v.as_i64())
                    .map(|v| v.max(0) as u64),
                deadline: req
                    .get("deadline_ms")
                    .and_then(|v| v.as_i64())
                    .map(|ms| Duration::from_millis(ms.max(0) as u64)),
                // Absent means exact: existing clients see unchanged
                // replies modulo the two new echoed members.
                mode: match req.get("mode").and_then(|v| v.as_str()) {
                    None => valpipe_machine::ExecMode::Exact,
                    Some(m) => {
                        let verify = req
                            .get("verify_window")
                            .and_then(|v| v.as_i64())
                            .unwrap_or(0)
                            .max(0) as u64;
                        mode_from_str(m, verify).ok_or_else(|| {
                            ErrorBody::new(
                                ErrorKind::BadRequest,
                                format!("unknown mode '{m}' (exact | fastforward)"),
                            )
                        })?
                    }
                },
            };
            let mode_echo = (
                "mode".to_string(),
                Json::Str(mode_to_str(limits.mode).to_string()),
            );
            let record_skip = |skipped: u64| {
                stats.ff_skipped_steps.fetch_add(skipped, Ordering::Relaxed);
                ("skipped_steps".to_string(), Json::Int(skipped as i64))
            };
            registry.with_session(&name, |core| match core.advance(&limits, step_chunk)? {
                Advance::Done { skipped } => Ok(vec![
                    ("done".to_string(), Json::Bool(true)),
                    ("now".to_string(), Json::Int(core.now() as i64)),
                    mode_echo.clone(),
                    record_skip(skipped),
                    (
                        "result".to_string(),
                        core.final_result_json().unwrap_or(Json::Null),
                    ),
                ]),
                Advance::Paused { now, skipped } => Ok(vec![
                    ("done".to_string(), Json::Bool(false)),
                    ("now".to_string(), Json::Int(now as i64)),
                    mode_echo.clone(),
                    record_skip(skipped),
                ]),
                Advance::Budget {
                    now,
                    stall,
                    skipped,
                } => {
                    record_skip(skipped);
                    Err(ErrorBody::new(
                        ErrorKind::Stalled,
                        format!(
                            "step budget exhausted at t={now}; progress preserved, retry continues"
                        ),
                    )
                    .retry_after(10)
                    .with_stall(stall))
                }
                Advance::Deadline {
                    now,
                    stall,
                    skipped,
                } => {
                    record_skip(skipped);
                    Err(ErrorBody::new(
                        ErrorKind::DeadlineExceeded,
                        format!(
                            "deadline exceeded at t={now}; progress preserved, retry continues"
                        ),
                    )
                    .retry_after(10)
                    .with_stall(stall))
                }
            })
        }
        "status" => {
            let name = req_session(req)?;
            registry.with_session(&name, |core| {
                Ok(vec![
                    ("now".to_string(), Json::Int(core.now() as i64)),
                    ("done".to_string(), Json::Bool(core.final_result.is_some())),
                    (
                        "kernel".to_string(),
                        Json::Str(crate::proto::kernel_to_str(core.spec.kernel)),
                    ),
                    (
                        "result".to_string(),
                        core.final_result_json().unwrap_or(Json::Null),
                    ),
                ])
            })
        }
        "hibernate" => {
            let name = req_session(req)?;
            let info = registry.hibernate(&name)?;
            Ok(match info {
                Json::Obj(m) => m,
                other => vec![("hibernated".to_string(), other)],
            })
        }
        "close" => {
            let name = req_session(req)?;
            let info = registry.close(&name)?;
            Ok(match info {
                Json::Obj(m) => m,
                other => vec![("closed".to_string(), other)],
            })
        }
        other => Err(ErrorBody::new(
            ErrorKind::BadRequest,
            format!("unknown op '{other}'"),
        )),
    }
}
