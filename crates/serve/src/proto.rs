//! Wire protocol: line-delimited JSON requests/responses, deterministic
//! result encoding, and the retry-classified error taxonomy.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Successful responses carry `"ok": true`;
//! failures carry `"ok": false` and an `"error"` object whose `kind`,
//! `retryable`, and (for transient failures) `retry_after_ms` members
//! let a client implement retry-with-backoff without pattern-matching
//! message strings:
//!
//! * **transient** (`retryable: true`) — overload, shutdown in progress,
//!   snapshot I/O contention, an exhausted per-job wall-clock deadline
//!   or step budget (progress is preserved; retrying continues the run);
//! * **permanent** (`retryable: false`) — malformed requests, compile
//!   errors, deterministic machine errors, unknown sessions, corrupt
//!   snapshots. Retrying reproduces the same failure.
//!
//! [`run_result_to_json`] is the canonical [`RunResult`] encoding: map
//! keys are emitted in sorted order and floats print in shortest
//! round-trip form, so two bit-identical results always encode to the
//! same bytes — the soak harness compares the encoded strings directly.

use valpipe_ir::value::Value;
use valpipe_machine::{ExecMode, Kernel, RunResult, StallKind, StallReport, StopReason};
use valpipe_util::Json;

/// Render a kernel selection for the wire and hibernation metadata.
pub fn kernel_to_str(k: Kernel) -> String {
    match k {
        Kernel::Scan => "scan".to_string(),
        Kernel::EventDriven => "event".to_string(),
        Kernel::ParallelEvent(w) => format!("parallel:{w}"),
    }
}

/// Parse a kernel selection (`"scan"`, `"event"`, `"parallel:N"`).
pub fn kernel_from_str(s: &str) -> Option<Kernel> {
    match s {
        "scan" => Some(Kernel::Scan),
        "event" => Some(Kernel::EventDriven),
        _ => {
            let w = s.strip_prefix("parallel:")?.parse::<usize>().ok()?;
            Some(Kernel::ParallelEvent(w))
        }
    }
}

/// Render an execution mode for run-job replies (`"exact"` /
/// `"fastforward"`; the verification budget is a tuning knob, not part
/// of the mode's identity on the wire).
pub fn mode_to_str(m: ExecMode) -> &'static str {
    match m {
        ExecMode::Exact => "exact",
        ExecMode::FastForward { .. } => "fastforward",
    }
}

/// Parse a run job's optional execution mode. Absent means `exact`,
/// preserving wire compatibility for existing clients; `verify_window`
/// is the fast-forward verification budget from the request (default 0).
pub fn mode_from_str(s: &str, verify_window: u64) -> Option<ExecMode> {
    match s {
        "exact" => Some(ExecMode::Exact),
        "fastforward" => Some(ExecMode::FastForward { verify_window }),
        _ => None,
    }
}

/// Encode one packet value. Integers, reals, and booleans map onto the
/// corresponding JSON types; `Json`'s printer keeps `2` and `2.0`
/// distinct, so the encoding is lossless.
pub fn value_to_json(v: Value) -> Json {
    match v {
        Value::Int(i) => Json::Int(i),
        Value::Real(r) => Json::Float(r),
        Value::Bool(b) => Json::Bool(b),
    }
}

fn stop_to_str(s: StopReason) -> &'static str {
    match s {
        StopReason::Quiescent => "quiescent",
        StopReason::MaxSteps => "max_steps",
        StopReason::OutputsReached => "outputs_reached",
        StopReason::Stalled => "stalled",
    }
}

/// Canonical JSON encoding of a completed run: sorted port maps, every
/// counter, and the stall report if the run stalled. Two equal
/// [`RunResult`]s encode to byte-identical compact JSON.
pub fn run_result_to_json(r: &RunResult) -> Json {
    let mut outputs: Vec<(&String, &Vec<(u64, Value)>)> = r.outputs.iter().collect();
    outputs.sort_by(|a, b| a.0.cmp(b.0));
    let outputs = Json::Obj(
        outputs
            .into_iter()
            .map(|(port, packets)| {
                (
                    port.clone(),
                    Json::Arr(
                        packets
                            .iter()
                            .map(|&(t, v)| Json::Arr(vec![Json::Int(t as i64), value_to_json(v)]))
                            .collect(),
                    ),
                )
            })
            .collect(),
    );
    let mut sources: Vec<(&String, &Vec<u64>)> = r.source_emit_times.iter().collect();
    sources.sort_by(|a, b| a.0.cmp(b.0));
    let sources = Json::Obj(
        sources
            .into_iter()
            .map(|(name, times)| {
                (
                    name.clone(),
                    Json::Arr(times.iter().map(|&t| Json::Int(t as i64)).collect()),
                )
            })
            .collect(),
    );
    Json::obj([
        ("steps", Json::Int(r.steps as i64)),
        ("stop", Json::Str(stop_to_str(r.stop).to_string())),
        ("sources_exhausted", Json::Bool(r.sources_exhausted)),
        ("total_fires", Json::Int(r.total_fires as i64)),
        ("am_fires", Json::Int(r.am_fires as i64)),
        ("fu_fires", Json::Int(r.fu_fires as i64)),
        (
            "fires",
            Json::Arr(r.fires.iter().map(|&f| Json::Int(f as i64)).collect()),
        ),
        ("outputs", outputs),
        ("source_emit_times", sources),
        (
            "stall",
            r.stall_report
                .as_ref()
                .map_or(Json::Null, stall_report_to_json),
        ),
    ])
}

fn stall_kind_to_str(k: StallKind) -> &'static str {
    match k {
        StallKind::Deadlock => "deadlock",
        StallKind::Livelock => "livelock",
        StallKind::BudgetExhausted => "budget_exhausted",
    }
}

/// Encode a structured stall report (the PR 1 taxonomy) for the wire.
pub fn stall_report_to_json(s: &StallReport) -> Json {
    Json::obj([
        ("kind", Json::Str(stall_kind_to_str(s.kind).to_string())),
        ("step", Json::Int(s.step as i64)),
        ("fires_in_window", Json::Int(s.fires_in_window as i64)),
        (
            "blocked_cells",
            Json::Arr(
                s.blocked_cells
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("node", Json::Int(c.node as i64)),
                            ("label", Json::Str(c.label.clone())),
                            ("opcode", Json::Str(c.opcode.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "held_arcs",
            Json::Arr(
                s.held_arcs
                    .iter()
                    .map(|a| {
                        Json::obj([
                            ("arc", Json::Int(a.arc as i64)),
                            ("src", Json::Int(a.src as i64)),
                            ("dst", Json::Int(a.dst as i64)),
                            ("tokens", Json::Int(a.tokens as i64)),
                            ("unacked", Json::Int(a.unacked as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "cycle",
            s.cycle.as_ref().map_or(Json::Null, |c| {
                Json::Arr(c.iter().map(|&n| Json::Int(n as i64)).collect())
            }),
        ),
    ])
}

/// Failure classification for the wire. Every variant maps to a stable
/// `kind` string plus a retryability verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The bounded job queue is full; retry after the suggested delay.
    Overloaded,
    /// The server is draining for a graceful shutdown.
    ShuttingDown,
    /// The request is malformed (bad JSON, missing fields, bad name).
    BadRequest,
    /// The submitted Val program does not compile.
    CompileError,
    /// The job exceeded a worker resource budget (source size, nesting
    /// depth, graph size, FIFO depth, or compile wall-clock). Permanent:
    /// the same program breaches the same budget on every worker.
    ResourceLimit,
    /// No session with the given name exists.
    NoSuchSession,
    /// A session with this name exists with different source or inputs.
    SessionExists,
    /// The simulated machine hit a deterministic error (reproducible).
    MachineError,
    /// The per-job step budget ran out; progress is preserved.
    Stalled,
    /// The per-job wall-clock deadline passed; progress is preserved.
    DeadlineExceeded,
    /// A snapshot or hibernation container failed validation.
    SnapshotCorrupt,
    /// A disk or socket operation failed (possibly transiently).
    Io,
}

impl ErrorKind {
    /// Stable wire identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::CompileError => "compile_error",
            ErrorKind::ResourceLimit => "resource_limit",
            ErrorKind::NoSuchSession => "no_such_session",
            ErrorKind::SessionExists => "session_exists",
            ErrorKind::MachineError => "machine_error",
            ErrorKind::Stalled => "stalled",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::SnapshotCorrupt => "snapshot_corrupt",
            ErrorKind::Io => "io",
        }
    }

    /// Whether a client retry can succeed. Transient failures carry a
    /// `retry_after_ms` hint; permanent ones reproduce deterministically.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorKind::Overloaded
                | ErrorKind::ShuttingDown
                | ErrorKind::Stalled
                | ErrorKind::DeadlineExceeded
                | ErrorKind::Io
        )
    }
}

/// A structured failure: classification, message, optional retry hint,
/// and (for stalls) the structured stall report.
#[derive(Debug, Clone)]
pub struct ErrorBody {
    /// Failure classification.
    pub kind: ErrorKind,
    /// Human-readable detail (provenance-annotated for machine errors).
    pub message: String,
    /// Suggested retry delay for transient failures.
    pub retry_after_ms: Option<u64>,
    /// Structured stall report for budget/deadline/stall failures.
    pub stall: Option<Json>,
}

impl ErrorBody {
    /// A failure with no retry hint or stall payload.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            kind,
            message: message.into(),
            retry_after_ms: None,
            stall: None,
        }
    }

    /// Attach a retry-delay hint (transient failures).
    pub fn retry_after(mut self, ms: u64) -> ErrorBody {
        self.retry_after_ms = Some(ms);
        self
    }

    /// Attach a structured stall report.
    pub fn with_stall(mut self, stall: Json) -> ErrorBody {
        self.stall = Some(stall);
        self
    }

    /// The `"error"` member of a failure response.
    pub fn to_json(&self) -> Json {
        let mut m = vec![
            (
                "kind".to_string(),
                Json::Str(self.kind.as_str().to_string()),
            ),
            ("retryable".to_string(), Json::Bool(self.kind.retryable())),
            ("message".to_string(), Json::Str(self.message.clone())),
        ];
        if let Some(ms) = self.retry_after_ms {
            m.push(("retry_after_ms".to_string(), Json::Int(ms as i64)));
        }
        if let Some(stall) = &self.stall {
            m.push(("stall".to_string(), stall.clone()));
        }
        Json::Obj(m)
    }
}

/// Build a success response: `{"ok":true,"op":op,...members}` plus the
/// request's `id`, echoed when present.
pub fn ok_response(op: &str, id: Option<&Json>, members: Vec<(String, Json)>) -> Json {
    let mut m = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::Str(op.to_string())),
    ];
    if let Some(id) = id {
        m.push(("id".to_string(), id.clone()));
    }
    m.extend(members);
    Json::Obj(m)
}

/// Build a failure response: `{"ok":false,"op":op,"error":{...}}` plus
/// the request's `id`, echoed when present.
pub fn err_response(op: &str, id: Option<&Json>, err: &ErrorBody) -> Json {
    let mut m = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("op".to_string(), Json::Str(op.to_string())),
    ];
    if let Some(id) = id {
        m.push(("id".to_string(), id.clone()));
    }
    m.push(("error".to_string(), err.to_json()));
    Json::Obj(m)
}

/// Whether `name` is an acceptable session name: 1–64 characters drawn
/// from `[A-Za-z0-9_-]`. Constrained so a session name can never escape
/// the hibernation directory or collide with temporary-file suffixes.
pub fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_strings_round_trip() {
        for k in [Kernel::Scan, Kernel::EventDriven, Kernel::ParallelEvent(3)] {
            assert_eq!(kernel_from_str(&kernel_to_str(k)), Some(k));
        }
        assert_eq!(kernel_from_str("parallel:x"), None);
        assert_eq!(kernel_from_str("turbo"), None);
    }

    #[test]
    fn mode_strings_parse_and_default_to_exact() {
        assert_eq!(mode_from_str("exact", 7), Some(ExecMode::Exact));
        assert_eq!(
            mode_from_str("fastforward", 2),
            Some(ExecMode::FastForward { verify_window: 2 })
        );
        assert_eq!(mode_from_str("warp", 0), None);
        assert_eq!(mode_to_str(ExecMode::Exact), "exact");
        assert_eq!(
            mode_to_str(ExecMode::FastForward { verify_window: 9 }),
            "fastforward"
        );
    }

    #[test]
    fn session_names_are_validated() {
        assert!(valid_session_name("user-42_a"));
        assert!(!valid_session_name(""));
        assert!(!valid_session_name("../escape"));
        assert!(!valid_session_name("a.b"));
        assert!(!valid_session_name(&"x".repeat(65)));
    }

    #[test]
    fn error_kinds_classify_retryability() {
        assert!(ErrorKind::Overloaded.retryable());
        assert!(ErrorKind::DeadlineExceeded.retryable());
        assert!(!ErrorKind::CompileError.retryable());
        assert!(!ErrorKind::MachineError.retryable());
        assert!(!ErrorKind::SnapshotCorrupt.retryable());
    }
}
