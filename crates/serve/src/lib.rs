//! # valpipe-serve — fault-tolerant multi-tenant simulation service
//!
//! A std-only threaded server exposing the compile-and-simulate pipeline
//! over line-delimited JSON on TCP: persistent named sessions, a bounded
//! worker pool behind explicit admission control, budgeted jobs that
//! surface through the stall taxonomy, snapshot-based hibernation of
//! idle sessions, and crash-safe recovery — a `kill -9` of the whole
//! process loses only in-flight jobs, which clients retry against a
//! registry rebuilt from the hibernation directory.
//!
//! The load-bearing idea: the machine is deterministic and its
//! snapshots restore bit-identically at any step (PR 3), so the service
//! never needs write-ahead logs or job journals. Durable state *is* the
//! snapshot; idempotency falls out of addressing jobs to absolute
//! instruction times. See DESIGN.md §13 for the full architecture.

#![warn(missing_docs)]

pub mod client;
pub mod hibernate;
pub mod proto;
pub mod registry;
pub mod server;
pub mod session;

pub use client::Client;
pub use hibernate::{HibernateError, ScanReport, HIBERNATE_MAGIC};
pub use proto::{ErrorBody, ErrorKind};
pub use registry::Registry;
pub use server::{Recovery, ServeConfig, Server, Stats};
pub use session::{Advance, JobLimits, SessionCore, SessionSpec};
