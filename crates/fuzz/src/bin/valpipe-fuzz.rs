//! Command-line front-end for the fuzzer.
//!
//! ```text
//! valpipe-fuzz gen --seed 7                 print one generated program
//! valpipe-fuzz run --trials 500 --seed 0xD1FF [--mutants 2] [--shrink] [--corpus DIR]
//! valpipe-fuzz shrink FILE                  reduce a failing program to a minimal repro
//! valpipe-fuzz replay PATH [PATH...]        replay corpus repros byte-exactly
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use valpipe_fuzz::{
    generate, replay_dir, replay_file, run_campaign, run_case, shrink, with_quiet_panics,
    CampaignConfig, CaseSpec, Outcome,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: valpipe-fuzz gen [--seed N]\n\
         \x20      valpipe-fuzz run [--trials N] [--seed N] [--mutants N] [--shrink] [--corpus DIR]\n\
         \x20      valpipe-fuzz shrink FILE\n\
         \x20      valpipe-fuzz replay PATH [PATH...]"
    );
    ExitCode::from(2)
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "gen" => cmd_gen(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "shrink" => cmd_shrink(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        _ => usage(),
    }
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let mut seed = 0u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|v| parse_u64(v)) {
                Some(v) => seed = v,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let case = generate(seed);
    println!(
        "% seed {seed}: scheme {:?}, synth {}, {} waves, {} max steps",
        case.opts.scheme, case.opts.synthesize_generators, case.waves, case.max_steps
    );
    print!("{}", case.src);
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut cfg = CampaignConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trials" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.trials = v,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| parse_u64(v)) {
                Some(v) => cfg.seed = v,
                None => return usage(),
            },
            "--mutants" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.mutants_per_trial = v,
                None => return usage(),
            },
            "--shrink" => cfg.shrink = true,
            "--corpus" => match it.next() {
                Some(v) => cfg.corpus_dir = Some(PathBuf::from(v)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    println!(
        "campaign: {} trials from seed {:#x}, {} mutants/trial",
        cfg.trials, cfg.seed, cfg.mutants_per_trial
    );
    let report = with_quiet_panics(|| run_campaign(&cfg, |line| println!("{line}")));
    println!(
        "generated: {}/{} pass ({} packets compared), {} rejected",
        report.passes, report.trials, report.packets, report.generated_rejections
    );
    println!(
        "mutants:   {} run, {} rejected, {} benign passes, {} budget blowups",
        report.mutant_runs, report.mutant_rejections, report.mutant_passes, report.mutant_stalls
    );
    println!("findings:  {}", report.findings.len());
    // Findings always fail; typed rejections of generated programs are
    // tolerated only inside the known gating-limitation footprint.
    if report.findings.is_empty() && report.acceptable_rejection_rate() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_shrink(args: &[String]) -> ExitCode {
    let [file] = args else { return usage() };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    with_quiet_panics(|| {
        let outcome = run_case(&CaseSpec::replay(src.clone()));
        // Failures shrink on "same failure kind" (details like packet
        // numbers legitimately change as the program shrinks); rejections
        // shrink on the exact outcome line, so a syntax error can't morph
        // into a different syntax error and call itself minimal.
        let keep: Box<dyn Fn(&str) -> bool> = match &outcome {
            Outcome::Pass { .. } => {
                eprintln!("passes under the replay profile; nothing to shrink");
                return ExitCode::from(2);
            }
            Outcome::Failure { kind, .. } => {
                let kind = *kind;
                Box::new(move |s: &str| {
                    matches!(run_case(&CaseSpec::replay(s)),
                             Outcome::Failure { kind: k, .. } if k == kind)
                })
            }
            Outcome::Rejected { .. } => {
                let want = outcome.line();
                Box::new(move |s: &str| run_case(&CaseSpec::replay(s)).line() == want)
            }
        };
        eprintln!("shrinking {} bytes of: {}", src.len(), outcome.line());
        let small = shrink(&src, |s| keep(s));
        let line = run_case(&CaseSpec::replay(small.clone())).line();
        eprintln!("reduced to {} bytes: {line}", small.len());
        println!("% valpipe-fuzz repro\n% seed: manual\n% expect: {line}");
        print!("{small}");
        ExitCode::SUCCESS
    })
}

fn cmd_replay(args: &[String]) -> ExitCode {
    if args.is_empty() {
        return usage();
    }
    let results = with_quiet_panics(|| {
        let mut results = Vec::new();
        for a in args {
            let path = Path::new(a);
            let batch = if path.is_dir() {
                replay_dir(path)
            } else {
                replay_file(path).map(|r| vec![r])
            };
            match batch {
                Ok(rs) => results.extend(rs),
                Err(e) => return Err(e),
            }
        }
        Ok(results)
    });
    let results = match results {
        Ok(rs) => rs,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = 0;
    for r in &results {
        if r.ok {
            println!("ok   {} ({})", r.path.display(), r.expect);
        } else {
            failed += 1;
            println!("FAIL {}", r.path.display());
            println!("  expect: {}", r.expect);
            println!("  actual: {}", r.actual);
        }
    }
    if failed == 0 {
        println!("replayed {} repro(s), all byte-exact", results.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
