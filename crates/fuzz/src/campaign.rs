//! Campaign driver: generate → differentiate → (optionally) shrink →
//! record, shared by the `valpipe-fuzz` binary and the `exp_fuzz`
//! reporter.
//!
//! Each trial runs one *valid* generated program through the full
//! differential matrix, then a handful of corrupted mutants of the same
//! program through the never-panic check. Valid-program trials must pass;
//! any rejection of a generated program is counted separately because the
//! generator promises validity by construction, so a rejection there is a
//! generator or compiler defect worth eyes. Mutants may be rejected (the
//! expected answer) or even pass (the damage was benign), but must never
//! panic or break bit-identity.

use std::path::PathBuf;

use valpipe_util::Rng;

use crate::corpus::{write_repro, Repro};
use crate::diff::{run_case, CaseSpec, FailureKind, Outcome};
use crate::gen::generate;
use crate::mutate::mutate;
use crate::shrink::shrink;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of generated programs to differentiate.
    pub trials: usize,
    /// Base seed; trial `t` derives its case from `seed + t`.
    pub seed: u64,
    /// Corrupted mutants per trial for the never-panic check.
    pub mutants_per_trial: usize,
    /// Shrink findings to minimal repros.
    pub shrink: bool,
    /// Directory to write shrunk repros into (only findings that
    /// reproduce under the pinned replay profile are recorded).
    pub corpus_dir: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 100,
            seed: 0xD1FF,
            mutants_per_trial: 2,
            shrink: false,
            corpus_dir: None,
        }
    }
}

/// One failure the campaign uncovered.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Seed of the trial that produced it.
    pub seed: u64,
    /// `"generated"` or `"mutant"`.
    pub origin: &'static str,
    /// The stable outcome line (see [`Outcome::line`]).
    pub line: String,
    /// The offending source.
    pub src: String,
    /// Minimal reproduction, if shrinking ran.
    pub shrunk: Option<String>,
    /// Where the repro was written, if it reproduces under the pinned
    /// replay profile and a corpus directory was given.
    pub repro: Option<PathBuf>,
}

/// Aggregate campaign results.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Generated-program trials run.
    pub trials: usize,
    /// Trials whose full matrix agreed.
    pub passes: usize,
    /// Output packets compared across all passing trials.
    pub packets: usize,
    /// Generated programs rejected before the matrix. The generator
    /// promises validity by construction, so any rejection is compiler
    /// behavior worth eyes. The one historical class (a phantom gating
    /// deadlock under reconvergent fanout, fixed in the gate-fusion pass
    /// and anchored by `tests/corpus/fixed-*.val`) is gone; the count is
    /// expected to be zero and
    /// [`CampaignReport::acceptable_rejection_rate`] trips on any drift.
    pub generated_rejections: usize,
    /// Mutants run through the never-panic check.
    pub mutant_runs: usize,
    /// Mutants answered with a typed rejection.
    pub mutant_rejections: usize,
    /// Mutants that still passed the full matrix (benign damage).
    pub mutant_passes: usize,
    /// Mutants that blew a run budget — not a defect (corruption can
    /// legitimately inflate the workload past the harness budget).
    pub mutant_stalls: usize,
    /// Real findings: panics, divergences, stalls on valid programs.
    pub findings: Vec<Finding>,
}

impl CampaignReport {
    /// Findings of a given kind prefix, for reporting.
    pub fn count_lines_starting(&self, prefix: &str) -> usize {
        self.findings
            .iter()
            .filter(|f| f.line.starts_with(prefix))
            .count()
    }

    /// Whether the compiler rejected no generated program at all. The
    /// generator emits only valid programs and the compiler accepts the
    /// whole class since the reconvergent-fanout fusion fix, so a single
    /// typed rejection is a regression even though it is not a panic.
    pub fn acceptable_rejection_rate(&self) -> bool {
        self.generated_rejections == 0
    }
}

/// Is this failure kind a finding when it appears on a *mutant*? Panics
/// and bit-identity breaks always are; stalls are not (damage can inflate
/// the workload past any fixed budget on a program that is still valid).
fn mutant_failure_counts(kind: FailureKind) -> bool {
    !matches!(kind, FailureKind::Stall)
}

/// A failure as it comes off the executor, before shrinking/recording.
struct Found<'a> {
    seed: u64,
    origin: &'static str,
    src: &'a str,
    kind: FailureKind,
    line: String,
}

fn record(
    cfg: &CampaignConfig,
    report: &mut CampaignReport,
    found: Found<'_>,
    log: &mut impl FnMut(&str),
) {
    let Found {
        seed,
        origin,
        src,
        kind,
        line,
    } = found;
    log(&format!("  finding ({origin}, seed {seed}): {line}"));
    let mut finding = Finding {
        seed,
        origin,
        line,
        src: src.to_string(),
        shrunk: None,
        repro: None,
    };
    if cfg.shrink {
        // Shrink under the pinned replay profile so the minimal repro is
        // committable; the predicate is "same failure kind".
        let same_kind = |s: &str| match run_case(&CaseSpec::replay(s)) {
            Outcome::Failure { kind: k, .. } => k == kind,
            _ => false,
        };
        if same_kind(src) {
            let small = shrink(src, same_kind);
            let outcome = run_case(&CaseSpec::replay(small.clone()));
            log(&format!(
                "  shrunk {} -> {} bytes: {}",
                src.len(),
                small.len(),
                outcome.line()
            ));
            if let Some(dir) = &cfg.corpus_dir {
                let repro = Repro {
                    seed: format!("{:#x}/{seed}", cfg.seed),
                    expect: outcome.line(),
                    src: small.clone(),
                };
                match write_repro(dir, &repro) {
                    Ok(p) => {
                        log(&format!("  wrote {}", p.display()));
                        finding.repro = Some(p);
                    }
                    Err(e) => log(&format!("  corpus write failed: {e}")),
                }
            }
            finding.shrunk = Some(small);
        } else {
            log("  (not reproducible under the pinned replay profile; kept unshrunk)");
        }
    }
    report.findings.push(finding);
}

/// Run a campaign. `log` receives human-oriented progress lines; the
/// returned report carries everything machine-checkable.
pub fn run_campaign(cfg: &CampaignConfig, mut log: impl FnMut(&str)) -> CampaignReport {
    let mut report = CampaignReport::default();
    for t in 0..cfg.trials {
        let case_seed = cfg.seed.wrapping_add(t as u64);
        let case = generate(case_seed);
        let spec = CaseSpec::from_gen(&case);
        report.trials += 1;
        match run_case(&spec) {
            Outcome::Pass { packets } => {
                report.passes += 1;
                report.packets += packets;
            }
            Outcome::Rejected { stage, error } => {
                report.generated_rejections += 1;
                log(&format!(
                    "  suspicious: generated seed {case_seed} rejected[{stage}]: {error}"
                ));
            }
            Outcome::Failure { kind, detail } => {
                let line = Outcome::Failure { kind, detail }.line();
                let found = Found {
                    seed: case_seed,
                    origin: "generated",
                    src: &case.src,
                    kind,
                    line,
                };
                record(cfg, &mut report, found, &mut log);
            }
        }

        // Never-panic check on corrupted variants of the same program.
        let mut mr = Rng::seed(0x0BAD).fork(case_seed);
        for _ in 0..cfg.mutants_per_trial {
            let mutant = mutate(&case.src, &mut mr);
            report.mutant_runs += 1;
            match run_case(&CaseSpec::replay(mutant.clone())) {
                Outcome::Pass { .. } => report.mutant_passes += 1,
                Outcome::Rejected { .. } => report.mutant_rejections += 1,
                Outcome::Failure { kind, detail } => {
                    if mutant_failure_counts(kind) {
                        let line = Outcome::Failure { kind, detail }.line();
                        let found = Found {
                            seed: case_seed,
                            origin: "mutant",
                            src: &mutant,
                            kind,
                            line,
                        };
                        record(cfg, &mut report, found, &mut log);
                    } else {
                        report.mutant_stalls += 1;
                    }
                }
            }
        }
        if (t + 1) % 100 == 0 {
            log(&format!(
                "  {} trials: {} pass, {} mutants rejected, {} findings",
                t + 1,
                report.passes,
                report.mutant_rejections,
                report.findings.len()
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let cfg = CampaignConfig {
            trials: 4,
            seed: 0xD1FF,
            mutants_per_trial: 1,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&cfg, |_| {});
        let b = run_campaign(&cfg, |_| {});
        assert_eq!(a.trials, 4);
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
        assert_eq!(a.passes, b.passes);
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.mutant_rejections, b.mutant_rejections);
    }
}
