//! Delta-debugging shrinker: reduce a failing program to a minimal repro
//! that still fails *the same way*.
//!
//! Three passes, coarse to fine, each rerun until it stops helping:
//!
//! 1. **line ddmin** — classic delta debugging over source lines with
//!    doubling granularity;
//! 2. **balanced-span simplification** — replace parenthesized subtrees
//!    with the leaf `(1.0)` (the AST-aware step, done textually so it
//!    also works on programs that no longer parse);
//! 3. **char ddmin** — delete shrinking character windows.
//!
//! The predicate is "same [`FailureKind`]" (or same outcome line prefix),
//! supplied by the caller; the shrinker itself is pure text surgery with
//! a bounded predicate-call budget, so shrinking always terminates.

/// Budget on predicate evaluations (each one is a full differential run).
const MAX_CHECKS: usize = 1500;

/// Shrink `src` while `still_fails` holds. Returns the smallest variant
/// found; `src` itself if nothing smaller reproduces.
pub fn shrink(src: &str, mut still_fails: impl FnMut(&str) -> bool) -> String {
    let mut checks = 0usize;
    let mut check = move |s: &str| -> bool {
        if checks >= MAX_CHECKS {
            return false;
        }
        checks += 1;
        still_fails(s)
    };

    let mut cur = src.to_string();
    loop {
        let before = cur.len();
        cur = ddmin_lines(&cur, &mut check);
        cur = simplify_spans(&cur, &mut check);
        cur = ddmin_chars(&cur, &mut check);
        if cur.len() >= before {
            return cur;
        }
    }
}

/// Delta-debugging over lines: try dropping complements of ever-finer
/// chunkings.
fn ddmin_lines(src: &str, check: &mut impl FnMut(&str) -> bool) -> String {
    let mut lines: Vec<&str> = src.lines().collect();
    if lines.len() < 2 {
        return src.to_string();
    }
    let mut n = 2usize;
    while lines.len() >= 2 {
        let chunk = lines.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < lines.len() {
            let end = (start + chunk).min(lines.len());
            let candidate: Vec<&str> = lines[..start]
                .iter()
                .chain(&lines[end..])
                .copied()
                .collect();
            if !candidate.is_empty() && check(&join(&candidate)) {
                lines = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                // Restart the sweep on the reduced input.
                start = 0;
                continue;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(lines.len());
        }
    }
    join(&lines)
}

fn join(lines: &[&str]) -> String {
    let mut s = lines.join("\n");
    s.push('\n');
    s
}

/// Replace balanced `(...)` spans with the leaf `(1.0)` wherever the
/// failure survives — textual subtree-to-leaf simplification.
fn simplify_spans(src: &str, check: &mut impl FnMut(&str) -> bool) -> String {
    let mut cur = src.to_string();
    let mut from = 0usize;
    while let Some((open, close)) = next_balanced_span(&cur, from) {
        // Skip spans that are already the leaf.
        if &cur[open..=close] != "(1.0)" {
            let candidate = format!("{}(1.0){}", &cur[..open], &cur[close + 1..]);
            if check(&candidate) {
                cur = candidate;
                from = open + 1;
                continue;
            }
        }
        from = open + 1;
    }
    cur
}

/// Find the next balanced parenthesized span starting at or after `from`
/// (byte offsets; source is ASCII after generation, and non-ASCII is
/// handled by bounds-checked slicing on char boundaries).
fn next_balanced_span(s: &str, from: usize) -> Option<(usize, usize)> {
    let bytes = s.as_bytes();
    let mut open = None;
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(from) {
        if b == b'(' {
            if open.is_none() {
                // Only consider char-boundary-safe spans.
                if !s.is_char_boundary(k) {
                    continue;
                }
                open = Some(k);
            }
            depth += 1;
        } else if b == b')' && open.is_some() {
            depth -= 1;
            if depth == 0 {
                let o = open.unwrap();
                if s.is_char_boundary(k + 1) {
                    return Some((o, k));
                }
                open = None;
            }
        }
    }
    None
}

/// Character-window deletion, window halving from len/2 down to 1.
fn ddmin_chars(src: &str, check: &mut impl FnMut(&str) -> bool) -> String {
    let mut cur: Vec<char> = src.chars().collect();
    let mut window = (cur.len() / 2).max(1);
    while window >= 1 {
        let mut start = 0usize;
        let mut reduced = false;
        while start < cur.len() && cur.len() > 1 {
            let end = (start + window).min(cur.len());
            let candidate: String = cur[..start].iter().chain(&cur[end..]).collect();
            if !candidate.trim().is_empty() && check(&candidate) {
                cur = candidate.chars().collect();
                reduced = true;
                // Same start: the next window slid into place.
                continue;
            }
            start += window;
        }
        if window == 1 && !reduced {
            break;
        }
        window /= 2;
    }
    cur.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_failing_line() {
        // "Fails" iff the text contains the token BUG.
        let src = "alpha\nbeta\nBUG here\ngamma\ndelta\n";
        let out = shrink(src, |s| s.contains("BUG"));
        assert!(out.contains("BUG"));
        assert!(out.len() < src.len());
        assert!(!out.contains("alpha"));
        assert!(!out.contains("delta"));
    }

    #[test]
    fn span_simplification_replaces_subtrees() {
        let src = "x := ((a + b) * (c - d));\nBUG\n";
        let out = shrink(src, |s| s.contains("BUG"));
        assert!(out.contains("BUG"));
        assert!(!out.contains("a + b"));
    }

    #[test]
    fn never_returns_a_non_failing_variant() {
        let src = "one\ntwo\nthree\n";
        let out = shrink(src, |s| s.contains("two"));
        assert!(out.contains("two"));
    }

    #[test]
    fn shrink_is_deterministic() {
        let src = "p\nq\nBUG\nr\ns\nt\nu\n";
        let a = shrink(src, |s| s.contains("BUG"));
        let b = shrink(src, |s| s.contains("BUG"));
        assert_eq!(a, b);
    }
}
