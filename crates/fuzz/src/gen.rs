//! Seeded generator for random well-typed pipe-structured Val programs.
//!
//! This lifts the AST generators proven out in `tests/property_pipeline.rs`
//! to full multi-block source text: a chain of forall blocks (Theorems
//! 1–2 shapes) and linear for-iter recurrences (Theorem 3 shapes, legal
//! under both Todd's and the companion scheme), over inputs `P` and `Q`.
//!
//! Every generated program is valid by construction — it parses, type
//! checks, stays in the paper's pipelinable class, and every array read
//! is statically in range:
//!
//! * forall blocks range over `[1, m]` and read `P`/`Q` at offsets
//!   −1..=1 (in range over `[0, m+1]`) and earlier *forall* blocks at
//!   offset 0 (same `[1, m]` range);
//! * for-iter blocks run `i` from 1 while `i < m`, so bodies evaluate at
//!   `i ∈ [1, m−1]` and may read `P`/`Q` at offsets −1..=1 and the
//!   accumulator at `i−1` (its freshly appended prefix).
//!
//! A rejection of a generated program is therefore always compiler
//! behavior worth eyes, not generator noise. The generator places
//! conditionals at any expression position — operands, branches, and
//! condition operands alike. (Reconvergent fanout through gated
//! conditionals once tripped a phantom deadlock in the gate-fusion pass
//! and forced a placement restriction here; the fix is anchored by
//! `tests/corpus/fixed-*.val`, and campaigns still count typed
//! rejections separately so any regression is visible immediately.)

use valpipe_core::CompileOptions;
use valpipe_core::ForIterScheme;
use valpipe_util::Rng;
use valpipe_val::ast::{BinOp, Expr, UnOp};

/// One generated fuzz case: the program text plus the compile options and
/// run budgets the differential executor should use.
#[derive(Debug, Clone)]
pub struct GenCase {
    /// The seed this case was derived from (for reporting/repro notes).
    pub seed: u64,
    /// The program source text.
    pub src: String,
    /// Compile options (scheme / synthesis toggles drawn by the seed).
    pub opts: CompileOptions,
    /// Input waves the differential matrix feeds.
    pub waves: usize,
    /// Step budget for each machine run: exceeding it means the pipeline
    /// failed to converge (flagged as a stall).
    pub max_steps: u64,
}

/// Render a generated expression back to Val source. Mirrors the
/// property-suite renderer: fully parenthesized, so operator precedence
/// can never disagree between the generator and the parser.
pub fn to_src(e: &Expr) -> String {
    match e {
        Expr::IntLit(v) => format!("({v})"),
        Expr::RealLit(v) => {
            if v.fract() == 0.0 {
                format!("({v:.1})")
            } else {
                format!("({v})")
            }
        }
        Expr::BoolLit(v) => if *v { "true" } else { "false" }.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Bin(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "=",
                BinOp::Ne => "~=",
                BinOp::And => "&",
                BinOp::Or => "|",
                _ => "+", // not generated
            };
            format!("({} {o} {})", to_src(a), to_src(b))
        }
        Expr::Un(UnOp::Neg, a) => format!("(-{})", to_src(a)),
        Expr::Un(UnOp::Not, a) => format!("(~{})", to_src(a)),
        Expr::Index(a, i) => format!("{a}[{}]", to_src(i)),
        Expr::If(c, t, f) => format!(
            "(if {} then {} else {} endif)",
            to_src(c),
            to_src(t),
            to_src(f)
        ),
        Expr::Let(defs, body) => {
            let ds = defs
                .iter()
                .map(|d| format!("{} := {}", d.name, to_src(&d.value)))
                .collect::<Vec<_>>()
                .join("; ");
            format!("(let {ds} in {} endlet)", to_src(body))
        }
        _ => "(0.0)".to_string(), // not generated
    }
}

fn idx(off: i64) -> Expr {
    match off.cmp(&0) {
        std::cmp::Ordering::Equal => Expr::var("i"),
        std::cmp::Ordering::Greater => Expr::bin(BinOp::Add, Expr::var("i"), Expr::IntLit(off)),
        std::cmp::Ordering::Less => Expr::bin(BinOp::Sub, Expr::var("i"), Expr::IntLit(-off)),
    }
}

/// A leaf over inputs `P`/`Q` (offsets −1..=1), earlier forall blocks
/// (offset 0), the index variable, or a constant.
fn leaf(r: &mut Rng, priors: &[String]) -> Expr {
    match r.below(5) {
        0 => Expr::RealLit(r.range_i64(-15, 16) as f64 / 10.0),
        1 => Expr::index("P", idx(r.range_i64(-1, 2))),
        2 => Expr::index("Q", idx(r.range_i64(-1, 2))),
        3 if !priors.is_empty() => {
            let name = priors[r.below(priors.len())].clone();
            Expr::index(&name, idx(0))
        }
        _ => Expr::var("i"),
    }
}

/// Numeric primitive expression on `i`, recursion bounded by `depth`.
/// Weighted like the property-suite generator: arithmetic (4), negation
/// (1), division by a constant (1), static condition (2), dynamic
/// condition (2), let sharing (1). Conditionals may appear at any
/// position, including inside the condition operand of another
/// conditional (the class reopened by the gate-fusion reconvergence fix).
fn num_expr(r: &mut Rng, depth: usize, m: i64, priors: &[String]) -> Expr {
    if depth == 0 || r.chance(0.25) {
        return leaf(r, priors);
    }
    match r.below(11) {
        0..=3 => {
            let op = [BinOp::Add, BinOp::Sub, BinOp::Mul][r.below(3)];
            Expr::bin(
                op,
                num_expr(r, depth - 1, m, priors),
                num_expr(r, depth - 1, m, priors),
            )
        }
        4 => Expr::un(UnOp::Neg, num_expr(r, depth - 1, m, priors)),
        5 => Expr::bin(
            BinOp::Div,
            num_expr(r, depth - 1, m, priors),
            Expr::RealLit(r.range_i64(2, 9) as f64),
        ),
        6 | 7 => Expr::if_(
            Expr::bin(BinOp::Lt, Expr::var("i"), Expr::IntLit(r.range_i64(1, m))),
            num_expr(r, depth - 1, m, priors),
            num_expr(r, depth - 1, m, priors),
        ),
        8 | 9 => Expr::if_(
            Expr::bin(
                BinOp::Lt,
                num_expr(r, depth - 1, m, priors),
                num_expr(r, depth - 1, m, priors),
            ),
            num_expr(r, depth - 1, m, priors),
            num_expr(r, depth - 1, m, priors),
        ),
        _ => Expr::Let(
            vec![valpipe_val::ast::Def {
                name: "p".into(),
                ty: None,
                value: num_expr(r, depth - 1, m, priors),
            }],
            Box::new(Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::var("p"), Expr::var("p")),
                num_expr(r, depth - 1, m, priors),
            )),
        ),
    }
}

/// A linear recurrence body `α·T[i−1] + β` with coefficient streams drawn
/// from constants and input reads — the Theorem 3 shape both for-iter
/// schemes must agree on.
fn recurrence_body(r: &mut Rng) -> String {
    let alpha = match r.below(4) {
        0 => Expr::RealLit(r.range_i64(50, 99) as f64 / 100.0),
        1 => Expr::bin(BinOp::Mul, Expr::index("P", idx(0)), Expr::RealLit(0.5)),
        2 => Expr::index("P", idx(-1)),
        _ => Expr::IntLit(1),
    };
    let beta = match r.below(3) {
        0 => Expr::RealLit(r.range_i64(-20, 20) as f64 / 10.0),
        1 => Expr::index("Q", idx(0)),
        _ => Expr::bin(BinOp::Add, Expr::index("Q", idx(1)), Expr::RealLit(0.25)),
    };
    if r.flip() {
        format!("{} + (T[i-1] * {})", to_src(&beta), to_src(&alpha))
    } else {
        format!("({} * T[i-1]) + {}", to_src(&alpha), to_src(&beta))
    }
}

/// Generate one valid fuzz case from a seed. The same seed always yields
/// the same case.
pub fn generate(seed: u64) -> GenCase {
    let mut r = Rng::seed(0xF022).fork(seed);
    let m = r.range_i64(8, 17); // param m ∈ [8, 16]
    let mut src = format!(
        "param m = {m};\n\
         input P : array[real] [0, m+1];\n\
         input Q : array[real] [0, m+1];\n"
    );

    // 1–3 blocks; forall blocks chain (later ones may read earlier ones),
    // for-iter blocks read only the raw inputs. The last block is the
    // program output.
    let nblocks = 1 + r.below(3);
    let mut priors: Vec<String> = Vec::new();
    let mut last = String::new();
    for b in 0..nblocks {
        let name = format!("B{b}");
        // For-iter produces a shorter array over [0, m−2]; keep it out of
        // `priors` so downstream forall reads stay statically in range.
        if r.chance(0.3) {
            src.push_str(&format!(
                "{name} : array[real] :=\n  \
                 for i : integer := 1; T : array[real] := [0: 0.25]\n  \
                 do\n    \
                 if i < m then iter T := T[i: {}]; i := i + 1 enditer else T endif\n  \
                 endfor;\n",
                recurrence_body(&mut r)
            ));
        } else {
            let depth = 2 + r.below(3);
            let body = num_expr(&mut r, depth, m, &priors);
            src.push_str(&format!(
                "{name} : array[real] := forall i in [1, m] construct {} endall;\n",
                to_src(&body)
            ));
            priors.push(name.clone());
        }
        last = name;
    }
    src.push_str(&format!("output {last};\n"));

    let mut opts = CompileOptions::paper();
    if r.flip() {
        opts.scheme = ForIterScheme::Companion;
    } else {
        opts.scheme = ForIterScheme::Todd;
    }
    opts.synthesize_generators = r.chance(0.3);

    let waves = 4 + r.below(5); // 4..=8 input waves
    GenCase {
        seed,
        src,
        opts,
        waves,
        // Generous: a fully pipelined run needs ~2·(m+2)·waves instruction
        // times; anything past this bound is a convergence failure.
        max_steps: (2 * (m as u64 + 2) * waves as u64 + 64) * 50,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(7);
        let b = generate(7);
        assert_eq!(a.src, b.src);
        assert_eq!(a.waves, b.waves);
        assert_eq!(a.max_steps, b.max_steps);
    }

    #[test]
    fn distinct_seeds_diverge() {
        assert_ne!(generate(1).src, generate(2).src);
    }

    #[test]
    fn generated_source_parses_and_typechecks() {
        for seed in 0..32 {
            let case = generate(seed);
            let prog = valpipe_val::parse_program(&case.src)
                .unwrap_or_else(|e| panic!("seed {seed} does not parse: {e}\n{}", case.src));
            valpipe_val::check_program(&prog)
                .unwrap_or_else(|e| panic!("seed {seed} does not typecheck: {e}\n{}", case.src));
        }
    }
}
