//! The differential executor: one program, every execution path.
//!
//! A case runs through the interpreter oracle and then across the full
//! machine matrix — all three kernels × {Exact, FastForward} — plus a
//! kill-and-restore leg that pauses mid-run, round-trips the snapshot
//! through bytes, resumes on a *different* kernel, and drives to
//! completion. Every leg must agree with the oracle within tolerance and
//! with every other leg bit-exactly; every phase runs under
//! `catch_unwind`, so a panic anywhere is itself a reportable finding,
//! not a crashed fuzzer.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use valpipe_core::verify::stream_inputs;
use valpipe_core::{compile_source_limited, CompileError, CompileLimits, CompileOptions, Compiled};
use valpipe_ir::value::Value;
use valpipe_machine::{
    ExecMode, Kernel, RunOutcome, RunSpec, Session, SimConfig, Simulator, Snapshot, StopReason,
};
use valpipe_val::interp::{self, ArrayVal};

/// Everything the executor needs to run one case. [`CaseSpec::replay`]
/// builds the fixed profile the committed corpus is recorded under.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// Program source text.
    pub src: String,
    /// Compile options.
    pub opts: CompileOptions,
    /// Resource budgets (breaches are a typed rejection, never a panic).
    pub limits: CompileLimits,
    /// Input waves to feed.
    pub waves: usize,
    /// Relative tolerance against the oracle (the companion scheme
    /// reassociates floating arithmetic).
    pub tol: f64,
    /// Machine step budget; exceeding it is a convergence failure.
    pub max_steps: u64,
}

impl CaseSpec {
    /// The pinned profile corpus repros are recorded and replayed under:
    /// paper options, service limits, 8 waves, 1e-9 tolerance.
    pub fn replay(src: impl Into<String>) -> CaseSpec {
        CaseSpec {
            src: src.into(),
            opts: CompileOptions::paper(),
            limits: CompileLimits::service(),
            waves: 8,
            tol: 1e-9,
            max_steps: 2_000_000,
        }
    }

    /// A spec for a generated case (see [`crate::gen::generate`]).
    pub fn from_gen(case: &crate::gen::GenCase) -> CaseSpec {
        CaseSpec {
            src: case.src.clone(),
            opts: case.opts.clone(),
            limits: CompileLimits::default(),
            waves: case.waves,
            tol: 1e-9,
            max_steps: case.max_steps,
        }
    }
}

/// What a differential run concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Every leg agreed with the oracle and with every other leg.
    Pass {
        /// Output packets compared per leg.
        packets: usize,
    },
    /// The program was rejected with a typed error before any divergence
    /// could be observed — the *correct* answer for corrupt or over-limit
    /// input.
    Rejected {
        /// Which phase rejected: `compile`, `limit`, or `interp`.
        stage: &'static str,
        /// The typed error, rendered.
        error: String,
    },
    /// A real finding: panic, divergence, stall, or machine fault.
    Failure {
        /// Classification.
        kind: FailureKind,
        /// Diagnostic detail (leg name, first mismatching packet, …).
        detail: String,
    },
}

/// Classification of a differential failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The compiler panicked instead of returning a typed error.
    CompilePanic,
    /// A machine leg panicked.
    RunPanic,
    /// A machine leg disagreed with the interpreter oracle.
    OracleDivergence,
    /// Two machine legs disagreed with each other (bit-identity broken).
    KernelDivergence,
    /// The kill-and-restore leg diverged from the uninterrupted run.
    SnapshotDivergence,
    /// A leg failed to converge within the step budget, or stalled.
    Stall,
    /// A leg hit a deterministic machine fault on a valid program.
    MachineError,
}

impl FailureKind {
    /// Stable identifier used in corpus expectation lines.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::CompilePanic => "compile-panic",
            FailureKind::RunPanic => "run-panic",
            FailureKind::OracleDivergence => "oracle-divergence",
            FailureKind::KernelDivergence => "kernel-divergence",
            FailureKind::SnapshotDivergence => "snapshot-divergence",
            FailureKind::Stall => "stall",
            FailureKind::MachineError => "machine-error",
        }
    }
}

impl Outcome {
    /// One stable line classifying the outcome — what corpus repro files
    /// record as their expectation. Only the error's first line is used,
    /// so multi-line diagnostics (stall reports) stay one-line stable.
    pub fn line(&self) -> String {
        match self {
            Outcome::Pass { .. } => "pass".to_string(),
            Outcome::Rejected { stage, error } => {
                format!("rejected[{stage}]: {}", error.lines().next().unwrap_or(""))
            }
            Outcome::Failure { kind, detail } => {
                format!(
                    "failure[{}]: {}",
                    kind.as_str(),
                    detail.lines().next().unwrap_or("")
                )
            }
        }
    }

    /// Whether this outcome is a finding worth shrinking and committing.
    pub fn is_failure(&self) -> bool {
        matches!(self, Outcome::Failure { .. })
    }
}

/// Deterministic input arrays for every declared input of a compiled
/// program — the same fill the CLI uses, so repros are reproducible from
/// source alone.
pub fn standard_arrays(compiled: &Compiled) -> HashMap<String, ArrayVal> {
    let mut arrays = HashMap::new();
    for (name, (lo, hi)) in &compiled.flow.inputs {
        let len = (hi - lo + 1).max(0) as usize;
        let vals: Vec<f64> = (0..len)
            .map(|i| (i as f64 * 0.37).sin() * 0.5 + 0.5)
            .collect();
        arrays.insert(name.clone(), ArrayVal::from_reals(*lo, &vals));
    }
    arrays
}

/// The machine matrix: every kernel × every execution mode.
fn matrix() -> Vec<(&'static str, Kernel, ExecMode)> {
    vec![
        ("scan/exact", Kernel::Scan, ExecMode::Exact),
        ("event/exact", Kernel::EventDriven, ExecMode::Exact),
        ("parallel2/exact", Kernel::ParallelEvent(2), ExecMode::Exact),
        ("parallel4/exact", Kernel::ParallelEvent(4), ExecMode::Exact),
        (
            "scan/ff",
            Kernel::Scan,
            ExecMode::FastForward { verify_window: 1 },
        ),
        (
            "event/ff",
            Kernel::EventDriven,
            ExecMode::FastForward { verify_window: 1 },
        ),
        (
            "parallel2/ff",
            Kernel::ParallelEvent(2),
            ExecMode::FastForward { verify_window: 1 },
        ),
        (
            "parallel4/ff",
            Kernel::ParallelEvent(4),
            ExecMode::FastForward { verify_window: 1 },
        ),
    ]
}

struct LegResult {
    stop: StopReason,
    sources_exhausted: bool,
    steps: u64,
    outputs: Vec<(String, Vec<Value>)>,
}

fn leg_config(spec: &CaseSpec, kernel: Kernel, stop: &[(String, usize)]) -> SimConfig {
    SimConfig::new()
        .kernel(kernel)
        .max_steps(spec.max_steps)
        .stop_outputs(stop.to_vec())
}

/// Run one leg to completion; `pause_and_restore` optionally kills the
/// session mid-run, round-trips the snapshot through bytes, and resumes
/// on `resume_kernel`.
#[allow(clippy::too_many_arguments)]
fn run_leg(
    compiled: &Compiled,
    spec: &CaseSpec,
    outputs: &[String],
    stop: &[(String, usize)],
    kernel: Kernel,
    mode: ExecMode,
    pause_at: Option<u64>,
    resume_kernel: Kernel,
) -> Result<LegResult, String> {
    let g = compiled.executable();
    let inputs = stream_inputs(compiled, &standard_arrays(compiled), spec.waves);
    let session = Simulator::builder(&g)
        .inputs(inputs)
        .config(leg_config(spec, kernel, stop))
        .build()
        .map_err(|e| format!("build: {e}"))?;
    let mut spec_run = RunSpec::new().mode(mode);
    if let Some(at) = pause_at {
        spec_run = spec_run.pause_at(at);
    }
    let driven = session.drive(spec_run).map_err(|e| format!("drive: {e}"))?;
    let result = match driven.outcome {
        RunOutcome::Done(r) => *r,
        RunOutcome::Paused(sess) => {
            // The kill: serialize, drop the live session, round-trip the
            // bytes, resume on a (possibly different) kernel.
            let bytes = sess.checkpoint().as_bytes().to_vec();
            drop(sess);
            let snap = Snapshot::from_bytes(bytes).map_err(|e| format!("snapshot: {e}"))?;
            let resumed = Session::restore_with_kernel(&g, &snap, resume_kernel)
                .map_err(|e| format!("restore: {e}"))?;
            match resumed
                .drive(RunSpec::new().mode(mode))
                .map_err(|e| format!("resume drive: {e}"))?
                .outcome
            {
                RunOutcome::Done(r) => *r,
                RunOutcome::Paused(_) => return Err("paused twice without a boundary".into()),
            }
        }
    };
    Ok(LegResult {
        stop: result.stop,
        sources_exhausted: result.sources_exhausted,
        steps: result.steps,
        outputs: outputs
            .iter()
            .map(|o| (o.clone(), result.values(o)))
            .collect(),
    })
}

fn value_as_real(v: Value) -> f64 {
    match v {
        Value::Int(i) => i as f64,
        Value::Real(r) => r,
        Value::Bool(b) => b as i64 as f64,
    }
}

/// Compare one leg against the oracle expectation (cyclic per wave, with
/// the same legitimate-prefix tolerance as `check_against_oracle`).
fn check_leg_against_oracle(
    leg: &LegResult,
    expected: &HashMap<String, ArrayVal>,
    waves: usize,
    tol: f64,
) -> Result<usize, String> {
    let mut packets = 0;
    for (name, got) in &leg.outputs {
        let want_wave = &expected[name];
        let want_len = want_wave.data.len() * waves;
        if got.len() < want_len || got.len() >= want_len + want_wave.data.len() {
            return Err(format!(
                "output '{name}': {} packets, expected {want_len}",
                got.len()
            ));
        }
        for (k, gv) in got.iter().enumerate() {
            let pos = k % want_wave.data.len();
            let want = value_as_real(want_wave.data[pos]);
            let gotv = value_as_real(*gv);
            let rel = (gotv - want).abs() / want.abs().max(1.0);
            if rel > tol {
                return Err(format!(
                    "output '{name}' packet {k}: got {gotv}, want {want}"
                ));
            }
            packets += 1;
        }
    }
    Ok(packets)
}

/// Run the full differential matrix over one case.
pub fn run_case(spec: &CaseSpec) -> Outcome {
    // Phase 1: compile, under catch_unwind — a panic here is a finding.
    let compiled = match catch_unwind(AssertUnwindSafe(|| {
        compile_source_limited(&spec.src, "<fuzz>", &spec.opts, &spec.limits)
    })) {
        Err(p) => {
            return Outcome::Failure {
                kind: FailureKind::CompilePanic,
                detail: panic_text(p),
            }
        }
        Ok(Err(CompileError::Limit(b))) => {
            return Outcome::Rejected {
                stage: "limit",
                error: b.to_string(),
            }
        }
        Ok(Err(e)) => {
            return Outcome::Rejected {
                stage: "compile",
                error: e.to_string(),
            }
        }
        Ok(Ok(c)) => c,
    };

    // Phase 2: the oracle. Cap total input elements first — a program can
    // declare huge manifest ranges that compile to a small graph but would
    // make the harness itself allocate unboundedly. The interpreter's own
    // iteration guard fires too late for that.
    const MAX_INPUT_ELEMS: i64 = 1 << 20;
    let total_elems: i64 = compiled
        .flow
        .inputs
        .iter()
        .map(|(_, (lo, hi))| (hi.saturating_sub(*lo).saturating_add(1)).max(0))
        .sum();
    if total_elems > MAX_INPUT_ELEMS {
        return Outcome::Rejected {
            stage: "limit",
            error: format!("{total_elems} input elements exceed the fuzz harness cap"),
        };
    }
    let arrays = standard_arrays(&compiled);
    let expected = match catch_unwind(AssertUnwindSafe(|| {
        interp::run_program(&compiled.program, &arrays)
    })) {
        Err(p) => {
            return Outcome::Failure {
                kind: FailureKind::CompilePanic,
                detail: format!("interpreter panic: {}", panic_text(p)),
            }
        }
        Ok(Err(e)) => {
            return Outcome::Rejected {
                stage: "interp",
                error: e.to_string(),
            }
        }
        Ok(Ok(v)) => v,
    };

    let outputs: Vec<String> = compiled.program.outputs.clone();
    let stop: Vec<(String, usize)> = outputs
        .iter()
        .map(|name| (name.clone(), expected[name].data.len() * spec.waves))
        .collect();

    // Phase 3: the matrix. First leg is the baseline every other leg must
    // match bit-exactly.
    let mut baseline: Option<LegResult> = None;
    let mut packets = 0usize;
    for (leg_name, kernel, mode) in matrix() {
        let leg = match catch_unwind(AssertUnwindSafe(|| {
            run_leg(&compiled, spec, &outputs, &stop, kernel, mode, None, kernel)
        })) {
            Err(p) => {
                return Outcome::Failure {
                    kind: FailureKind::RunPanic,
                    detail: format!("{leg_name}: {}", panic_text(p)),
                }
            }
            Ok(Err(e)) => {
                return Outcome::Failure {
                    kind: FailureKind::MachineError,
                    detail: format!("{leg_name}: {e}"),
                }
            }
            Ok(Ok(l)) => l,
        };
        let stalled = (leg.stop == StopReason::Quiescent && !leg.sources_exhausted)
            || leg.stop == StopReason::MaxSteps
            || leg.stop == StopReason::Stalled;
        if stalled {
            return Outcome::Failure {
                kind: FailureKind::Stall,
                detail: format!(
                    "{leg_name}: stopped {:?} after {} steps",
                    leg.stop, leg.steps
                ),
            };
        }
        match check_leg_against_oracle(&leg, &expected, spec.waves, spec.tol) {
            Ok(p) => packets = p,
            Err(e) => {
                return Outcome::Failure {
                    kind: FailureKind::OracleDivergence,
                    detail: format!("{leg_name}: {e}"),
                }
            }
        }
        if let Some(base) = &baseline {
            if let Some(diff) = first_difference(base, &leg) {
                return Outcome::Failure {
                    kind: FailureKind::KernelDivergence,
                    detail: format!("{leg_name} vs scan/exact: {diff}"),
                };
            }
        } else {
            baseline = Some(leg);
        }
    }

    // Phase 4: the kill-and-restore leg. Pause mid-run on the event
    // kernel, serialize to bytes, resume on the scan kernel, and require
    // the completed run to match the uninterrupted baseline bit-exactly.
    let base = baseline.expect("matrix ran at least one leg");
    let half = (base.steps / 2).max(1);
    let leg = match catch_unwind(AssertUnwindSafe(|| {
        run_leg(
            &compiled,
            spec,
            &outputs,
            &stop,
            Kernel::EventDriven,
            ExecMode::Exact,
            Some(half),
            Kernel::Scan,
        )
    })) {
        Err(p) => {
            return Outcome::Failure {
                kind: FailureKind::RunPanic,
                detail: format!("restore leg: {}", panic_text(p)),
            }
        }
        Ok(Err(e)) => {
            return Outcome::Failure {
                kind: FailureKind::SnapshotDivergence,
                detail: format!("restore leg: {e}"),
            }
        }
        Ok(Ok(l)) => l,
    };
    if let Some(diff) = first_difference(&base, &leg) {
        return Outcome::Failure {
            kind: FailureKind::SnapshotDivergence,
            detail: format!("restore leg vs scan/exact: {diff}"),
        };
    }

    Outcome::Pass { packets }
}

/// First bit-level difference between two legs' output streams, if any.
fn first_difference(a: &LegResult, b: &LegResult) -> Option<String> {
    for ((name_a, va), (_, vb)) in a.outputs.iter().zip(&b.outputs) {
        if va.len() != vb.len() {
            return Some(format!(
                "output '{name_a}': {} vs {} packets",
                va.len(),
                vb.len()
            ));
        }
        for (k, (x, y)) in va.iter().zip(vb).enumerate() {
            if x != y {
                return Some(format!("output '{name_a}' packet {k}: {x:?} vs {y:?}"));
            }
        }
    }
    None
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Install a no-op panic hook for the duration of `f`, restoring the old
/// hook afterwards — fuzz campaigns catch panics as findings and must not
/// spray backtraces over the report. (Process-global: callers should be
/// single-purpose binaries, not parallel test threads.)
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let old = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(old);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_program_passes_the_matrix() {
        let spec = CaseSpec::replay(
            "param m = 8;\n\
             input P : array[real] [0, m+1];\n\
             input Q : array[real] [0, m+1];\n\
             Y : array[real] := forall i in [1, m] construct P[i] + Q[i-1] endall;\n\
             output Y;\n",
        );
        let out = run_case(&spec);
        assert!(matches!(out, Outcome::Pass { .. }), "got {}", out.line());
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        let out = run_case(&CaseSpec::replay("forall endfor ((( output;"));
        assert!(
            matches!(
                out,
                Outcome::Rejected {
                    stage: "compile",
                    ..
                }
            ),
            "got {}",
            out.line()
        );
    }

    #[test]
    fn over_limit_program_is_a_limit_rejection() {
        let deep = format!(
            "param m = 8;\ninput P : array[real] [0, m+1];\n\
             Y : array[real] := forall i in [1, m] construct {}P[i]{} endall;\noutput Y;\n",
            "(".repeat(120),
            ")".repeat(120)
        );
        let out = run_case(&CaseSpec::replay(deep));
        assert!(
            matches!(out, Outcome::Rejected { stage: "limit", .. }),
            "got {}",
            out.line()
        );
    }

    #[test]
    fn outcome_lines_are_stable() {
        let out = Outcome::Failure {
            kind: FailureKind::KernelDivergence,
            detail: "event/ff vs scan/exact: output 'Y' packet 3: 1 vs 2\nmore".into(),
        };
        assert_eq!(
            out.line(),
            "failure[kernel-divergence]: event/ff vs scan/exact: output 'Y' packet 3: 1 vs 2"
        );
    }
}
