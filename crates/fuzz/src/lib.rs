//! valpipe-fuzz — randomized robustness testing for the whole toolchain.
//!
//! Four cooperating pieces:
//!
//! * [`gen`] — a seeded generator emitting random *valid* pipe-structured
//!   Val programs (forall chains, for-iter recurrences, both schemes);
//! * [`mutate`] — a corruption mutator injecting syntactic/semantic
//!   damage for never-panic testing;
//! * [`diff`] — the differential executor: interpreter oracle vs. every
//!   kernel × execution mode, plus a kill-and-restore-from-snapshot leg;
//! * [`shrink`] + [`corpus`] — delta-debugging reduction of findings to
//!   minimal `.val` repros, committed under `tests/corpus/` and replayed
//!   byte-exactly by CI.
//!
//! [`campaign`] ties them together; the `valpipe-fuzz` binary and the
//! `exp_fuzz` reporter are thin front-ends over it.

pub mod campaign;
pub mod corpus;
pub mod diff;
pub mod gen;
pub mod mutate;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, Finding};
pub use corpus::{replay_dir, replay_file, write_repro, ReplayResult, Repro};
pub use diff::{run_case, with_quiet_panics, CaseSpec, FailureKind, Outcome};
pub use gen::{generate, GenCase};
pub use mutate::mutate;
pub use shrink::shrink;
