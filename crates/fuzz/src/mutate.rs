//! Corruption mutator: takes valid Val source and injects syntactic or
//! semantic damage. Mutated programs exercise the *never-panic* property:
//! whatever the damage, the compiler must answer with a typed error (or
//! compile successfully), never a panic or a resource blow-up.
//!
//! All operations are `char`-boundary safe, so a mutant is always valid
//! UTF-8 — byte-level damage belongs to the snapshot fuzzers, not the
//! source fuzzer (the lexer only ever sees `&str`).

use valpipe_util::Rng;

/// Tokens worth splicing in: keywords in wrong positions, unbalanced
/// delimiters, operators, and junk identifiers.
const SPLICE: &[&str] = &[
    "forall",
    "endall",
    "for",
    "endfor",
    "iter",
    "enditer",
    "if",
    "then",
    "else",
    "endif",
    "let",
    "endlet",
    "in",
    "construct",
    "do",
    "param",
    "input",
    "output",
    "array",
    "integer",
    "real",
    "boolean",
    "(",
    ")",
    "[",
    "]",
    ":=",
    ":",
    ";",
    ",",
    "+",
    "-",
    "*",
    "/",
    "<",
    "<=",
    "=",
    "~",
    "&",
    "|",
    "..",
    "§",
    "zz9",
    "m",
    "i",
    "T",
    "P",
    "Q",
    "0",
    "1",
    "9999999999",
    "1e308",
    "-1",
    "0.0.0",
];

/// Apply 1..=4 random corruptions to `src`. Deterministic in `r`.
pub fn mutate(src: &str, r: &mut Rng) -> String {
    let mut s: Vec<char> = src.chars().collect();
    let rounds = 1 + r.below(4);
    for _ in 0..rounds {
        if s.is_empty() {
            s = SPLICE[r.below(SPLICE.len())].chars().collect();
            continue;
        }
        match r.below(6) {
            // Replace one char with a random printable.
            0 => {
                let at = r.below(s.len());
                s[at] = (b' ' + r.below(95) as u8) as char;
            }
            // Delete a short span.
            1 => {
                let at = r.below(s.len());
                let len = (1 + r.below(12)).min(s.len() - at);
                s.drain(at..at + len);
            }
            // Duplicate a short span in place.
            2 => {
                let at = r.below(s.len());
                let len = (1 + r.below(12)).min(s.len() - at);
                let dup: Vec<char> = s[at..at + len].to_vec();
                let insert_at = r.below(s.len() + 1);
                for (k, c) in dup.into_iter().enumerate() {
                    s.insert(insert_at + k, c);
                }
            }
            // Splice a token at a random position.
            3 => {
                let tok = SPLICE[r.below(SPLICE.len())];
                let at = r.below(s.len() + 1);
                for (k, c) in tok.chars().enumerate() {
                    s.insert(at + k, c);
                }
            }
            // Swap two spans (reorders statements/operands).
            4 => {
                let a = r.below(s.len());
                let b = r.below(s.len());
                s.swap(a, b);
            }
            // Truncate the tail.
            _ => {
                let at = r.below(s.len());
                s.truncate(at);
            }
        }
    }
    s.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic() {
        let src = "param m = 10;\ninput P : array[real] [0, m+1];\noutput P;\n";
        let a = mutate(src, &mut Rng::seed(42));
        let b = mutate(src, &mut Rng::seed(42));
        assert_eq!(a, b);
    }

    #[test]
    fn mutants_are_valid_utf8_strings() {
        let src = "param m = 10;\ninput P : array[real] [0, m+1];\noutput P;\n";
        let mut r = Rng::seed(7);
        for _ in 0..200 {
            let m = mutate(src, &mut r);
            // Round-trips through chars without loss — i.e. it's a real String.
            assert_eq!(m.chars().collect::<String>(), m);
        }
    }
}
