//! The committed regression corpus: minimal `.val` repros with recorded
//! expectations, replayed byte-exactly by CI.
//!
//! A repro file is plain Val source prefixed by `%`-comment headers (the
//! Val lexer treats `%` as a line comment, so every repro is also a valid
//! compiler input):
//!
//! ```text
//! % valpipe-fuzz repro
//! % seed: 0xD1FF/17 (or "manual")
//! % expect: rejected[limit]: nesting deeper than 48 levels
//! param m = 8;
//! ...
//! ```
//!
//! Replay runs the source through the pinned [`CaseSpec::replay`] profile
//! and compares [`Outcome::line`] byte-for-byte against the `expect:`
//! header. Any drift — a panic where a typed error was recorded, a
//! changed message, a divergence fixed or reintroduced — fails CI.

use crate::diff::{run_case, CaseSpec};
use std::fs;
use std::path::{Path, PathBuf};

/// Header magic on the first line of every repro.
pub const REPRO_MAGIC: &str = "% valpipe-fuzz repro";

/// A parsed corpus repro.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Where it came from (seed notation or "manual").
    pub seed: String,
    /// The recorded outcome line the replay must reproduce exactly.
    pub expect: String,
    /// The program source (everything after the headers).
    pub src: String,
}

impl Repro {
    /// Render to the on-disk format.
    pub fn to_text(&self) -> String {
        format!(
            "{REPRO_MAGIC}\n% seed: {}\n% expect: {}\n{}",
            self.seed, self.expect, self.src
        )
    }

    /// Parse the on-disk format.
    pub fn parse(text: &str) -> Result<Repro, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(REPRO_MAGIC) {
            return Err(format!("missing '{REPRO_MAGIC}' header"));
        }
        let mut seed = None;
        let mut expect = None;
        let mut consumed = 1usize;
        for line in lines {
            if let Some(rest) = line.strip_prefix("% seed:") {
                seed = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("% expect:") {
                expect = Some(rest.trim().to_string());
            } else {
                break;
            }
            consumed += 1;
        }
        let src: String = text
            .lines()
            .skip(consumed)
            .flat_map(|l| [l, "\n"])
            .collect();
        Ok(Repro {
            seed: seed.ok_or("missing '% seed:' header")?,
            expect: expect.ok_or("missing '% expect:' header")?,
            src,
        })
    }
}

/// Result of replaying one repro file.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// The file replayed.
    pub path: PathBuf,
    /// The recorded expectation.
    pub expect: String,
    /// What the replay actually produced.
    pub actual: String,
    /// Byte-exact match?
    pub ok: bool,
}

/// Replay a single repro file against the pinned profile.
pub fn replay_file(path: &Path) -> Result<ReplayResult, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let repro = Repro::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let actual = run_case(&CaseSpec::replay(repro.src.clone())).line();
    Ok(ReplayResult {
        path: path.to_path_buf(),
        ok: actual == repro.expect,
        expect: repro.expect,
        actual,
    })
}

/// Replay every `*.val` repro in a directory, sorted by name for stable
/// report order. Returns an error only on I/O or parse problems; outcome
/// mismatches come back as `ok: false` entries.
pub fn replay_dir(dir: &Path) -> Result<Vec<ReplayResult>, String> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "val"))
        .collect();
    paths.sort();
    paths.iter().map(|p| replay_file(p)).collect()
}

/// Write a shrunk finding into the corpus directory. The file name embeds
/// a content fingerprint, so distinct findings never collide and repeated
/// campaigns are idempotent.
pub fn write_repro(dir: &Path, repro: &Repro) -> Result<PathBuf, String> {
    fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let fp = fingerprint(&repro.src) ^ fingerprint(&repro.expect);
    let path = dir.join(format!("repro-{fp:016x}.val"));
    fs::write(&path, repro.to_text()).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

/// FNV-1a, for stable content-addressed repro names.
fn fingerprint(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_round_trips() {
        let r = Repro {
            seed: "0xD1FF/3".into(),
            expect: "pass".into(),
            src: "param m = 8;\noutput P;\n".into(),
        };
        assert_eq!(Repro::parse(&r.to_text()).unwrap(), r);
    }

    #[test]
    fn parse_rejects_missing_headers() {
        assert!(Repro::parse("nonsense").is_err());
        assert!(Repro::parse(&format!("{REPRO_MAGIC}\nparam m = 8;\n")).is_err());
    }

    #[test]
    fn repro_headers_are_val_comments() {
        // A repro file must itself be compilable input: the headers are
        // `%` comments the lexer skips.
        let r = Repro {
            seed: "manual".into(),
            expect: "pass".into(),
            src: "param m = 8;\n\
                  input P : array[real] [0, m+1];\n\
                  Y : array[real] := forall i in [1, m] construct P[i] endall;\n\
                  output Y;\n"
                .into(),
        };
        assert!(valpipe_val::parse_program(&r.to_text()).is_ok());
    }
}
