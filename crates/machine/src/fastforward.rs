//! Steady-state fast-forward: detect a periodic machine state and skip
//! whole hyperperiods analytically.
//!
//! The paper's central result is that a balanced pipe-structured
//! program reaches a *periodic* steady state — every cell fires once
//! per two instruction times, every token on every arc is re-created
//! two steps later, one period further along its input stream. Event
//! simulation pays for every one of those steps even though each window
//! is a time-shifted copy of the previous one. This module makes that
//! observation executable: it watches the run for a period `P` at which
//! the machine state is a pure time-shift of itself, proves the shift
//! exact, and then advances `K·P` steps in closed form — bumping fire
//! counters, token timestamps, acknowledge clocks, histories, and the
//! progress tracker by per-window deltas — instead of simulating them.
//!
//! # The periodicity proof
//!
//! A window `[t₀, t₀+P)` may be skipped only when replaying it is
//! *provably* identical (as a time-shift) to the window just simulated.
//! The machine's future behavior is a function of exactly four things,
//! and each is pinned by a separate check:
//!
//! 1. **Arc state** (token queues with delivery times, acknowledge
//!    slots with expiry times): captured in a *rebased fingerprint* —
//!    the snapshot subsystem's canonical byte encoding with every
//!    timestamp rewritten relative to `now`. Fingerprint equality at
//!    two consecutive period boundaries means the arc state at `t₀+P`
//!    is byte-for-byte the state at `t₀` shifted by `P`. Tokens older
//!    than one period are encoded as a "deliverable since forever"
//!    sentinel: their exact age can never influence behavior (delivery
//!    only compares `ready ≤ now`), and a jump leaves their absolute
//!    bytes untouched — exactly what exact execution does to a token
//!    nothing consumes.
//! 2. **Source cursors and data**: the fingerprint carries each
//!    source's *enablement* (packets remaining > 0); the per-window
//!    cursor advance `e` is measured, and the jump width is capped by a
//!    horizon scan proving the next `K·e` input values bitwise repeat
//!    the window's values (`data[pos+o] == data[pos+o−e]`). Repeated
//!    waves — the paper's steady-state workloads — satisfy this for the
//!    whole input.
//! 3. **Control generators**: `CtlGen`/`IdxGen` cursors advance
//!    monotonically, so instead of fingerprinting them the engine
//!    checks *shift invariance*: the stream must be unchanged under
//!    rotation by the window's cursor advance (`∀q: at(q) = at(q+Δ)`),
//!    otherwise the very next window would emit different values and
//!    the engagement is refused.
//! 4. **Everything step-indexed**: fault plans key their hazards on
//!    absolute step numbers and are never periodic — fast-forward
//!    refuses to run at all under a fault plan, a resource throttle
//!    (contention reshuffles firing sets per step), or an active
//!    checkpoint cadence (a checkpoint is an observation of a step the
//!    jump would skip).
//!
//! With (1)–(4) established, a `K`-window jump is semantically a
//! *snapshot restore at a future time*: the canonical state is
//! materialized directly and the scheduler wheels are rebuilt with the
//! same `Scheduler::resume` + wakeup-repost sequence the snapshot
//! subsystem uses — so the post-jump machine inherits the proven
//! kernel-neutral resume invariant, and both the final [`RunResult`]
//! and any later snapshot are bit-identical to exact replay.
//!
//! # Stop conditions inside a window
//!
//! The run loop makes every stopping decision at the top of the loop
//! from machine state; a jump must therefore never skip *over* a state
//! in which the exact run would have stopped. The jump width `K` is
//! capped so that the step limit, the pause boundary, and every watched
//! `stop_outputs` target are reached in the exact epilogue, never
//! inside a skipped window; quiescence cannot trigger mid-window unless
//! the window contains a zero-fire run longer than the maximum packet
//! latency (refused); and a watchdog livelock cannot trigger unless the
//! window's largest gap between progress events reaches the progress
//! window (refused).
//!
//! [`RunResult`]: crate::sim::RunResult

use valpipe_ir::opcode::Opcode;
use valpipe_ir::value::Value;
use valpipe_util::checksum64;

use crate::error::SimError;
use crate::scheduler::Scheduler;
use crate::sim::{Simulator, StopSlots};
use crate::snapshot::{Snapshot, Writer};
use crate::watchdog::ProgressTracker;

/// Longest period the detector searches for. The paper's fully
/// pipelined machines run at period 2; conditional programs with
/// control waves cycle at `2 · wave_len`, so 64 covers every workload
/// the compiler emits for wave lengths up to 32.
pub(crate) const PMAX: usize = 64;
/// Per-step history ring: two full maximal periods.
const RING: usize = 2 * PMAX;
/// Consecutive fingerprint mismatches at one candidate period before
/// the detector moves on to the next larger period.
const MISS_LIMIT: u32 = 2;
/// Steps to wait after a refused engagement before fingerprinting again.
const COOLDOWN: u64 = 4 * PMAX as u64;

/// What fast-forward accomplished during one [`Session::drive`] call.
///
/// Deliberately *not* part of [`RunResult`](crate::sim::RunResult):
/// the result of a fast-forwarded run is bit-identical to the exact
/// run, including under `PartialEq`, and these statistics describe how
/// the run was executed, not what it computed.
///
/// [`Session::drive`]: crate::session::Session::drive
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FastForwardStats {
    /// Instruction times advanced analytically instead of simulated.
    pub skipped_steps: u64,
    /// Hyperperiods (windows) skipped across all engagements.
    pub windows: u64,
    /// Windows re-verified by shadow replay on the event kernel (the
    /// `verify_window` budget of [`ExecMode::FastForward`]).
    ///
    /// [`ExecMode::FastForward`]: crate::session::ExecMode::FastForward
    pub verified_windows: u64,
    /// Times fast-forward declined or abandoned an engagement and fell
    /// back to exact stepping (ineligible config, non-periodic input,
    /// or a shadow-verification mismatch).
    pub fallbacks: u64,
    /// The detected hyperperiod, if the machine ever proved periodic.
    pub period: Option<u64>,
}

/// Machine state captured at a candidate period boundary: the rebased
/// fingerprint plus every monotone counter and history length needed to
/// measure per-window deltas when the next boundary matches.
struct Boundary {
    at: u64,
    fp_sum: u64,
    fp_bytes: Vec<u8>,
    fires: Vec<u64>,
    gate_passes: Vec<u64>,
    gate_discards: Vec<u64>,
    ctl_pos: Vec<u64>,
    src_pos: Vec<usize>,
    /// Per arc: `[sent, consumed, acked, lost_result, lost_ack]`.
    arc_counts: Vec<[u64; 5]>,
    out_lens: Vec<usize>,
    emit_lens: Vec<usize>,
    ft_lens: Option<Vec<usize>>,
    am_fires: u64,
    fu_fires: u64,
    progress: u64,
}

/// Measured per-window deltas between two fingerprint-equal boundaries,
/// plus the window's history segments (cloned once, replayed `K` times
/// with shifted timestamps).
struct WindowDelta {
    fires: Vec<u64>,
    gate_passes: Vec<u64>,
    gate_discards: Vec<u64>,
    ctl_pos: Vec<u64>,
    src_pos: Vec<usize>,
    arc_counts: Vec<[u64; 5]>,
    out_segs: Vec<Vec<(u64, Value)>>,
    emit_segs: Vec<Vec<u64>>,
    ft_segs: Option<Vec<Vec<u64>>>,
    am_fires: u64,
    fu_fires: u64,
    progress: u64,
    fires_total: u64,
}

enum Mode {
    /// Scanning the fired-count ring for a candidate period.
    Hunt,
    /// A candidate boundary is held; waiting one period to compare.
    Armed(Box<Boundary>, u64),
}

/// The fast-forward engine threaded through the run loop (one per
/// [`Session::drive`] call in [`ExecMode::FastForward`]).
///
/// [`Session::drive`]: crate::session::Session::drive
/// [`ExecMode::FastForward`]: crate::session::ExecMode::FastForward
pub struct FastForward {
    verify_window: u64,
    /// Per-step fired counts / progress deltas, newest-last ring.
    ring_fired: [u64; RING],
    ring_prog: [u64; RING],
    head: usize,
    filled: usize,
    last_progress: u64,
    /// Periods below this already failed fingerprint comparison.
    min_period: u64,
    misses: u32,
    cooldown_until: u64,
    disabled: bool,
    mode: Mode,
    stats: FastForwardStats,
}

impl FastForward {
    /// Build an engine for `sim` if the configuration admits exact
    /// fast-forward at all. Fault plans key hazards on absolute steps,
    /// resource throttles reshuffle firing sets per step, and an active
    /// checkpoint cadence observes steps a jump would skip — each makes
    /// a window inexact, so the run falls back to exact stepping.
    pub(crate) fn new(
        sim: &Simulator<'_>,
        verify_window: u64,
        sink_present: bool,
    ) -> Option<FastForward> {
        if sim.fault.is_some() || sim.cfg.resources.is_some() {
            return None;
        }
        if sim.cfg.checkpoint_every != 0 && (sim.cfg.checkpoint_path.is_some() || sink_present) {
            return None;
        }
        Some(FastForward {
            verify_window,
            ring_fired: [0; RING],
            ring_prog: [0; RING],
            head: 0,
            filled: 0,
            last_progress: sim.progress,
            min_period: 1,
            misses: 0,
            cooldown_until: 0,
            disabled: false,
            mode: Mode::Hunt,
            stats: FastForwardStats::default(),
        })
    }

    /// Consume the engine into its run statistics.
    pub(crate) fn into_stats(self) -> FastForwardStats {
        self.stats
    }

    /// Ring entry `j` steps ago (`j = 1` is the step just executed):
    /// `(fired, progress delta)`.
    fn entry(&self, j: usize) -> (u64, u64) {
        let i = (self.head + RING - j) % RING;
        (self.ring_fired[i], self.ring_prog[i])
    }

    /// Observe one executed step and, when the state proves periodic,
    /// advance the machine by whole hyperperiods in place. Called by
    /// the run loop after every `step()`.
    pub(crate) fn after_step(
        &mut self,
        sim: &mut Simulator<'_>,
        fired: u64,
        pause_at: Option<u64>,
        step_limit: u64,
    ) -> Result<(), SimError> {
        let prog_delta = sim.progress - self.last_progress;
        self.last_progress = sim.progress;
        self.ring_fired[self.head] = fired;
        self.ring_prog[self.head] = prog_delta;
        self.head = (self.head + 1) % RING;
        self.filled = (self.filled + 1).min(RING);
        if self.disabled {
            return Ok(());
        }
        match std::mem::replace(&mut self.mode, Mode::Hunt) {
            Mode::Hunt => {
                if sim.now >= self.cooldown_until {
                    if let Some(p) = self.find_candidate() {
                        self.mode = Mode::Armed(Box::new(self.boundary(sim, p)), p);
                    }
                }
            }
            Mode::Armed(b0, p) => {
                if sim.now < b0.at + p {
                    self.mode = Mode::Armed(b0, p);
                    return Ok(());
                }
                let b1 = self.boundary(sim, p);
                if b1.fp_sum == b0.fp_sum && b1.fp_bytes == b0.fp_bytes {
                    self.misses = 0;
                    let engaged = self.try_engage(sim, &b0, p, pause_at, step_limit)?;
                    // A jump (or a verification takeover) moved `progress`
                    // without going through the ring bookkeeping above.
                    self.last_progress = sim.progress;
                    if self.disabled {
                        return Ok(());
                    }
                    if engaged {
                        // The jump is an exact time-shift; keep riding the
                        // steady state from the fresh boundary (counters
                        // changed, so recapture — the fingerprint is cheap
                        // next to the window just saved).
                        self.mode = Mode::Armed(Box::new(self.boundary(sim, p)), p);
                    } else {
                        // Periodic but uncappable right now (e.g. a stop
                        // target lands within the next window): back off.
                        self.cooldown_until = sim.now + COOLDOWN;
                    }
                } else {
                    // Periodic fired counts but shifting values — the true
                    // period is longer (or the state is not periodic).
                    self.misses += 1;
                    if self.misses >= MISS_LIMIT {
                        self.misses = 0;
                        self.min_period = p + 1;
                    } else {
                        self.mode = Mode::Armed(Box::new(b1), p);
                    }
                }
            }
        }
        Ok(())
    }

    /// Smallest candidate period `P ∈ [min_period, PMAX]` whose last
    /// `2P` per-step records are pairwise equal with at least one
    /// firing per window. A cheap pre-filter: only candidates that pass
    /// are fingerprinted.
    fn find_candidate(&self) -> Option<u64> {
        let max_p = (self.filled / 2).min(PMAX);
        'periods: for p in (self.min_period as usize)..=max_p {
            let mut any_fire = false;
            for j in 1..=p {
                let a = self.entry(j);
                if a != self.entry(j + p) {
                    continue 'periods;
                }
                if a.0 > 0 {
                    any_fire = true;
                }
            }
            if any_fire {
                return Some(p as u64);
            }
        }
        None
    }

    /// Capture the rebased fingerprint and every monotone counter at
    /// the current step.
    fn boundary(&self, sim: &Simulator<'_>, p: u64) -> Boundary {
        let (fp_bytes, fp_sum) = rebased_fingerprint(sim, p);
        Boundary {
            at: sim.now,
            fp_sum,
            fp_bytes,
            fires: sim.cells.fires.clone(),
            gate_passes: sim.cells.gate_passes.clone(),
            gate_discards: sim.cells.gate_discards.clone(),
            ctl_pos: sim.cells.ctl_pos.clone(),
            src_pos: sim.cells.src_pos.clone(),
            arc_counts: sim
                .arcs
                .iter()
                .map(|st| [st.sent, st.consumed, st.acked, st.lost_result, st.lost_ack])
                .collect(),
            out_lens: sim.cells.outputs.iter().map(|(_, v)| v.len()).collect(),
            emit_lens: sim.cells.emit_times.iter().map(|(_, v)| v.len()).collect(),
            ft_lens: sim
                .cells
                .fire_times
                .as_ref()
                .map(|ft| ft.iter().map(Vec::len).collect()),
            am_fires: sim.am_fires,
            fu_fires: sim.fu_fires,
            progress: sim.progress,
        }
    }

    /// Two consecutive boundaries matched: measure the window, apply
    /// every engagement guard and jump cap, optionally verify by shadow
    /// replay, and advance. Returns whether at least one window was
    /// skipped.
    fn try_engage(
        &mut self,
        sim: &mut Simulator<'_>,
        b0: &Boundary,
        p: u64,
        pause_at: Option<u64>,
        step_limit: u64,
    ) -> Result<bool, SimError> {
        let now = sim.now;
        let pu = p as usize;
        let n = sim.g.nodes.len();

        // The run loop stops at the top of the next iteration if the
        // output target is already met — a jump here would overshoot it.
        if sim.outputs_reached() {
            return Ok(false);
        }

        // The measured window's per-step records, oldest first.
        let win_fired: Vec<u64> = (0..pu).map(|k| self.entry(pu - k).0).collect();
        let win_prog: Vec<u64> = (0..pu).map(|k| self.entry(pu - k).1).collect();
        let fires_total: u64 = win_fired.iter().sum();
        if fires_total == 0 {
            return Ok(false);
        }
        let d_prog = sim.progress - b0.progress;

        // Quiescence guard: the exact run stops after `max_lat + 1`
        // consecutive zero-fire steps; a window containing (circularly,
        // to cover the wrap between adjacent windows) a zero-fire run
        // that long would stop mid-jump.
        let max_lat = sim
            .fwd_delay
            .iter()
            .chain(sim.ack_delay.iter())
            .copied()
            .max()
            .unwrap_or(1);
        if max_circular_run(&win_fired, |&f| f == 0) > max_lat as usize {
            return Ok(false);
        }

        // Livelock guard: with a watchdog installed, the window must
        // make progress, and no (circular) gap between progress events
        // may reach the progress window.
        if let Some(wd) = sim.cfg.watchdog {
            if d_prog == 0 {
                return Ok(false);
            }
            let gap = max_circular_run(&win_prog, |&d| d == 0);
            if gap as u64 + 1 >= wd.progress_window {
                return Ok(false);
            }
        }

        // Generator shift-invariance: the skipped windows read the
        // control streams one cursor-advance further each window; the
        // streams must be unchanged under that rotation.
        for i in 0..n {
            match &sim.g.nodes[i].op {
                Opcode::CtlGen(stream) => {
                    let d = sim.cells.ctl_pos[i] - b0.ctl_pos[i];
                    if d == 0 {
                        continue;
                    }
                    let len = stream.wave_len() as u64;
                    if !d.is_multiple_of(len) && (0..len).any(|q| stream.at(q) != stream.at(q + d))
                    {
                        return Ok(false);
                    }
                }
                Opcode::IdxGen { lo, hi } => {
                    let d = sim.cells.ctl_pos[i] - b0.ctl_pos[i];
                    let len = (hi - lo + 1) as u64;
                    if !d.is_multiple_of(len) {
                        return Ok(false);
                    }
                }
                _ => {}
            }
        }

        // Jump caps: land on a boundary at or before every stop the
        // exact run could reach, so the epilogue reaches it exactly.
        let mut max_k = (step_limit - now) / p;
        if let Some(pa) = pause_at {
            max_k = max_k.min(pa.saturating_sub(now) / p);
        }
        if let StopSlots::Watch(list) = &sim.stop_slots {
            for &(slot, count) in list {
                let len_now = sim.cells.outputs[slot as usize].1.len();
                if len_now >= count {
                    continue; // already met; another slot is the binding one
                }
                let ds = len_now - b0.out_lens[slot as usize];
                if let Some(spare) = (count - 1 - len_now).checked_div(ds) {
                    max_k = max_k.min(spare as u64);
                }
            }
        }
        // Source caps: enough packets must remain, and the next K·e of
        // them must bitwise repeat the measured window's slice.
        for i in 0..n {
            let Some(data) = &sim.cells.src_data[i] else {
                continue;
            };
            let pos = sim.cells.src_pos[i];
            let e = pos - b0.src_pos[i];
            if e == 0 {
                continue;
            }
            max_k = max_k.min(((data.len() - pos) / e) as u64);
            let horizon = (max_k as usize).saturating_mul(e);
            let mut m = 0usize;
            while m < horizon && value_key(data[pos + m]) == value_key(data[pos + m - e]) {
                m += 1;
            }
            max_k = max_k.min((m / e) as u64);
        }
        if max_k == 0 {
            return Ok(false);
        }

        let delta = measure_window(sim, b0);
        let k = max_k;
        if self.verify_window > 0 {
            // Shadow replay: rebuild an exact copy from a snapshot, step
            // it V whole windows, and require the analytically jumped
            // machine to snapshot byte-identically.
            let v = self.verify_window.min(k);
            let snap = Snapshot::capture(sim);
            let Ok(mut shadow) = snap.rebuild(sim.g, sim.cfg.kernel) else {
                self.disabled = true;
                self.stats.fallbacks += 1;
                return Ok(false);
            };
            for _ in 0..v * p {
                shadow.step()?;
            }
            apply_jump(sim, &delta, p, v, 0);
            if Snapshot::capture(sim).as_bytes() == Snapshot::capture(&shadow).as_bytes() {
                self.stats.verified_windows += v;
                if k > v {
                    apply_jump(sim, &delta, p, k - v, v);
                }
                self.stats.skipped_steps += (k - v) * p;
            } else {
                // The proof missed something: discard the jumped state,
                // keep the exactly stepped shadow, and never engage again.
                *sim = shadow;
                self.disabled = true;
                self.stats.fallbacks += 1;
                return Ok(false);
            }
        } else {
            apply_jump(sim, &delta, p, k, 0);
            self.stats.skipped_steps += k * p;
        }
        self.stats.windows += k;
        if self.stats.period.is_none() {
            self.stats.period = Some(p);
        }
        if sim.cfg.check_invariants {
            sim.check_invariants()?;
        }
        Ok(true)
    }
}

/// Canonical bytes of the machine's behavior-relevant state with every
/// timestamp rebased to `now` (and a checksum for cheap pre-compare).
/// Excluded on purpose: monotone counters and histories (measured as
/// per-window deltas), generator cursors (covered by shift-invariance
/// checks), and the scheduler wheels (not canonical state).
fn rebased_fingerprint(sim: &Simulator<'_>, p: u64) -> (Vec<u8>, u64) {
    let mut w = Writer::default();
    w.u64(p);
    let now = sim.now as i128;
    for st in &sim.arcs {
        w.u64(st.queue.len() as u64);
        for &(v, ready) in &st.queue {
            w.value(v);
            let off = ready as i128 - now;
            if off < -(p as i128) {
                // Stale token: deliverable "since forever". Its exact age
                // can never influence behavior, and a jump leaves its
                // absolute time untouched.
                w.u64(u64::MAX);
            } else {
                w.u64(off as i64 as u64);
            }
        }
        // Acknowledge slots always expire in the future at a step
        // boundary (due slots were released during the step), so plain
        // rebasing suffices; sort like the snapshot encoder so equal
        // states give equal bytes.
        let mut freeing: Vec<u64> = st
            .freeing
            .iter()
            .map(|&t| t.wrapping_sub(sim.now))
            .collect();
        freeing.sort_unstable();
        w.u64(freeing.len() as u64);
        for t in freeing {
            w.u64(t);
        }
    }
    for i in 0..sim.g.nodes.len() {
        if let Some(data) = &sim.cells.src_data[i] {
            w.byte((sim.cells.src_pos[i] < data.len()) as u8);
        }
    }
    let sum = checksum64(&w.bytes);
    (w.bytes, sum)
}

/// Bitwise identity key for a packet value — `NaN`s compare equal to
/// themselves, distinct `NaN` payloads stay distinct, exactly like the
/// snapshot byte encoding.
fn value_key(v: Value) -> (u8, u64) {
    match v {
        Value::Int(i) => (0, i as u64),
        Value::Real(x) => (1, x.to_bits()),
        Value::Bool(b) => (2, b as u64),
    }
}

/// Longest run of elements matching `pred` in `win` treated as a circle
/// (adjacent windows wrap: a window's trailing run continues into the
/// next window's leading run).
fn max_circular_run<T>(win: &[T], pred: impl Fn(&T) -> bool) -> usize {
    if win.iter().all(&pred) {
        return win.len();
    }
    let mut best = 0usize;
    let mut run = 0usize;
    // Two passes cover every wrapped run once the all-match case is out.
    for x in win.iter().chain(win.iter()) {
        if pred(x) {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    best.min(win.len())
}

/// Measure the window `[b0.at, sim.now)`: per-cell and per-arc counter
/// deltas plus the history segments appended during the window.
fn measure_window(sim: &Simulator<'_>, b0: &Boundary) -> WindowDelta {
    let n = sim.g.nodes.len();
    WindowDelta {
        fires: (0..n).map(|i| sim.cells.fires[i] - b0.fires[i]).collect(),
        gate_passes: (0..n)
            .map(|i| sim.cells.gate_passes[i] - b0.gate_passes[i])
            .collect(),
        gate_discards: (0..n)
            .map(|i| sim.cells.gate_discards[i] - b0.gate_discards[i])
            .collect(),
        ctl_pos: (0..n)
            .map(|i| sim.cells.ctl_pos[i] - b0.ctl_pos[i])
            .collect(),
        src_pos: (0..n)
            .map(|i| sim.cells.src_pos[i] - b0.src_pos[i])
            .collect(),
        arc_counts: sim
            .arcs
            .iter()
            .enumerate()
            .map(|(i, st)| {
                let b = &b0.arc_counts[i];
                [
                    st.sent - b[0],
                    st.consumed - b[1],
                    st.acked - b[2],
                    st.lost_result - b[3],
                    st.lost_ack - b[4],
                ]
            })
            .collect(),
        out_segs: sim
            .cells
            .outputs
            .iter()
            .enumerate()
            .map(|(s, (_, v))| v[b0.out_lens[s]..].to_vec())
            .collect(),
        emit_segs: sim
            .cells
            .emit_times
            .iter()
            .enumerate()
            .map(|(s, (_, v))| v[b0.emit_lens[s]..].to_vec())
            .collect(),
        ft_segs: sim.cells.fire_times.as_ref().map(|ft| {
            let lens = b0.ft_lens.as_ref().expect("boundary captured fire times");
            ft.iter()
                .enumerate()
                .map(|(i, v)| v[lens[i]..].to_vec())
                .collect()
        }),
        am_fires: sim.am_fires - b0.am_fires,
        fu_fires: sim.fu_fires - b0.fu_fires,
        progress: sim.progress - b0.progress,
        fires_total: delta_sum(&sim.cells.fires, &b0.fires),
    }
}

fn delta_sum(now: &[u64], before: &[u64]) -> u64 {
    now.iter().zip(before).map(|(a, b)| a - b).sum()
}

/// Materialize the state `k` windows ahead: shift every live timestamp
/// by `k·p`, advance every monotone counter by `k` window-deltas,
/// replay the window's history segments `k` times with shifted times,
/// and rebuild the scheduler wheels exactly as a snapshot restore does.
///
/// `base` is how many windows past the measured one the machine already
/// sits at (non-zero when a verified prefix was applied first): the
/// history segments carry the *measured* window's absolute timestamps,
/// so copy `j` lands at `(base + j)·p` past them.
fn apply_jump(sim: &mut Simulator<'_>, d: &WindowDelta, p: u64, k: u64, base: u64) {
    let shift = k * p;
    let now = sim.now as i128;
    for (i, st) in sim.arcs.iter_mut().enumerate() {
        for (_, ready) in st.queue.iter_mut() {
            // Cycling tokens (age ≤ one period) shift with the machine;
            // stale tokens keep their absolute delivery time, exactly as
            // exact execution would leave them.
            if *ready as i128 - now >= -(p as i128) {
                *ready += shift;
            }
        }
        for t in st.freeing.iter_mut() {
            *t += shift;
        }
        let dc = &d.arc_counts[i];
        st.sent += k * dc[0];
        st.consumed += k * dc[1];
        st.acked += k * dc[2];
        st.lost_result += k * dc[3];
        st.lost_ack += k * dc[4];
    }
    let n = sim.g.nodes.len();
    for i in 0..n {
        sim.cells.fires[i] += k * d.fires[i];
        sim.cells.gate_passes[i] += k * d.gate_passes[i];
        sim.cells.gate_discards[i] += k * d.gate_discards[i];
        sim.cells.ctl_pos[i] += k * d.ctl_pos[i];
        sim.cells.src_pos[i] += k as usize * d.src_pos[i];
    }
    for (slot, seg) in d.out_segs.iter().enumerate() {
        let dst = &mut sim.cells.outputs[slot].1;
        dst.reserve(seg.len() * k as usize);
        for j in base + 1..=base + k {
            dst.extend(seg.iter().map(|&(t, v)| (t + j * p, v)));
        }
    }
    for (slot, seg) in d.emit_segs.iter().enumerate() {
        let dst = &mut sim.cells.emit_times[slot].1;
        dst.reserve(seg.len() * k as usize);
        for j in base + 1..=base + k {
            dst.extend(seg.iter().map(|&t| t + j * p));
        }
    }
    if let Some(segs) = &d.ft_segs {
        let ft = sim.cells.fire_times.as_mut().expect("fire times recorded");
        for (i, seg) in segs.iter().enumerate() {
            ft[i].reserve(seg.len() * k as usize);
            for j in base + 1..=base + k {
                ft[i].extend(seg.iter().map(|&t| t + j * p));
            }
        }
    }
    sim.am_fires += k * d.am_fires;
    sim.fu_fires += k * d.fu_fires;
    sim.progress += k * d.progress;
    let (lp, lps, fsp) = sim.tracker.state();
    sim.tracker = ProgressTracker::from_state(if d.progress > 0 {
        // The last progress event recurs at the same offset in the final
        // window; the firings after it are the same tail.
        (lp + k * d.progress, lps + shift, fsp)
    } else {
        (lp, lps, fsp + k * d.fires_total)
    });
    // `idle` is the window's trailing zero-fire run — identical at every
    // boundary of a periodic state, so it carries over unchanged.
    sim.now += shift;

    // Rebuild the wakeup wheels exactly as a snapshot restore does: seed
    // every cell at `now`, then repost the future wakeups implied by
    // canonical state. This is what makes the jump a "restore at a
    // future time" and inherits the kernel-neutral resume invariant.
    sim.sched = Scheduler::resume(sim.cfg.kernel, n, sim.now);
    for (i, st) in sim.arcs.iter().enumerate() {
        let dst = sim.g.arcs[i].dst.idx() as u32;
        let src = sim.g.arcs[i].src.idx() as u32;
        for &(_, ready) in &st.queue {
            if ready > sim.now {
                sim.sched.wake(dst, ready);
            }
        }
        for &t in &st.freeing {
            if t >= sim.now {
                sim.sched.wake_arc(i as u32, t);
                sim.sched.wake(src, t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circular_run_wraps() {
        // 0 0 1 0 — trailing run (1) wraps onto leading run (2) = 3.
        let w = [0u64, 0, 1, 0];
        assert_eq!(max_circular_run(&w, |&x| x == 0), 3);
        assert_eq!(max_circular_run(&w, |&x| x == 1), 1);
        let all = [0u64; 4];
        assert_eq!(max_circular_run(&all, |&x| x == 0), 4);
        let none = [1u64; 4];
        assert_eq!(max_circular_run(&none, |&x| x == 0), 0);
    }

    #[test]
    fn value_keys_are_bitwise() {
        assert_eq!(
            value_key(Value::Real(f64::NAN)),
            value_key(Value::Real(f64::NAN))
        );
        assert_ne!(value_key(Value::Real(0.0)), value_key(Value::Real(-0.0)));
        assert_ne!(value_key(Value::Int(1)), value_key(Value::Bool(true)));
    }
}
