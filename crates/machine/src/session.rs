//! The simulator's session API: one fluent entry point for every run.
//!
//! Historically the crate grew several overlapping ways to start a
//! simulation (a bare constructor with a hand-filled options struct,
//! convenience free functions, per-experiment wrappers in the bench
//! crate). This module replaces all of them with one surface:
//!
//! ```
//! use valpipe_machine::{ProgramInputs, Simulator};
//! # use valpipe_ir::graph::Graph;
//! # use valpipe_ir::opcode::Opcode;
//! # let mut g = Graph::new();
//! # let a = g.add_node(Opcode::Source("a".into()), "a");
//! # let id = g.cell(Opcode::Id, "id", &[a.into()]);
//! # let _ = g.cell(Opcode::Sink("out".into()), "out", &[id.into()]);
//! let result = Simulator::builder(&g)
//!     .inputs(ProgramInputs::new().bind_reals("a", &[1.0, 2.0, 3.0]))
//!     .max_steps(100_000)
//!     .run()
//!     .unwrap();
//! assert_eq!(result.reals("out"), vec![1.0, 2.0, 3.0]);
//! ```
//!
//! * [`SimConfig`] carries every run-shaping knob (step limits, arc
//!   capacity, per-arc delays, contention, fault plan, watchdog,
//!   invariant checking, kernel selection) with fluent setters, and is
//!   reusable across graphs — the verification harness and experiment
//!   reporters thread one through compile-run-compare pipelines.
//! * [`SessionBuilder`] binds a config to a graph and its inputs;
//!   [`SessionBuilder::run`] also transparently expands FIFO
//!   pseudo-cells.
//! * [`Session`] is a prepared machine: [`Session::step`] for manual
//!   single-stepping (traces, closed-loop experiments) and
//!   [`Session::run`] to drive it to completion.

use valpipe_ir::graph::Graph;
use valpipe_ir::opcode::Opcode;

use crate::fastforward::{FastForward, FastForwardStats};
use crate::fault::FaultPlan;
use crate::scheduler::Kernel;
use crate::shard::{EpochStats, ShardPolicy};
use crate::sim::{
    ArcDelays, ProgramInputs, ResourceModel, RunPhase, RunResult, SimError, Simulator,
};
use crate::snapshot::{Snapshot, SnapshotError};
use crate::watchdog::{StallKind, StallReport, WatchdogConfig};

/// Run-shaping configuration, built fluently.
///
/// Every setter consumes and returns the config, so options chain:
///
/// ```
/// use valpipe_machine::{Kernel, SimConfig};
/// let cfg = SimConfig::new()
///     .max_steps(50_000)
///     .arc_capacity(2)
///     .check_invariants(true)
///     .kernel(Kernel::Scan);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hard step limit (guards against livelock in buggy programs).
    pub(crate) max_steps: u64,
    /// Arc capacity (tokens simultaneously buffered per link).
    pub(crate) arc_capacity: usize,
    /// Per-arc latencies; `None` = uniform 1/1.
    pub(crate) delays: Option<ArcDelays>,
    /// Optional contention model.
    pub(crate) resources: Option<ResourceModel>,
    /// Record the firing time of every firing of every cell.
    pub(crate) record_fire_times: bool,
    /// Stop once every listed sink has received this many packets.
    pub(crate) stop_outputs: Option<Vec<(String, usize)>>,
    /// Optional fault-injection plan.
    pub(crate) fault_plan: Option<FaultPlan>,
    /// Optional watchdog (step budget + livelock detection).
    pub(crate) watchdog: Option<WatchdogConfig>,
    /// Verify conservation invariants after every step.
    pub(crate) check_invariants: bool,
    /// Step-loop implementation.
    pub(crate) kernel: Kernel,
    /// Emit a checkpoint every this many instruction times during
    /// [`Session::run`] (0 = never).
    pub(crate) checkpoint_every: u64,
    /// Where `run` writes the latest periodic checkpoint (atomically,
    /// via a temporary file and rename).
    pub(crate) checkpoint_path: Option<String>,
    /// Most steps the parallel kernel batches per epoch barrier (the
    /// proven horizon may be shorter; < 2 disables epoch batching).
    /// Not machine state — never serialized into checkpoints.
    pub(crate) epoch_cap: u64,
    /// How the parallel kernel assigns cells to worker shards.
    pub(crate) shard_policy: ShardPolicy,
}

/// Default [`SimConfig::epoch_cap`]: long enough to amortize the epoch
/// setup over wide phased workloads, short enough that the horizon
/// probe stays a small scan of the pending-wakeup set.
pub const DEFAULT_EPOCH_CAP: u64 = 16;

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_steps: 10_000_000,
            arc_capacity: 1,
            delays: None,
            resources: None,
            record_fire_times: false,
            stop_outputs: None,
            fault_plan: None,
            watchdog: None,
            check_invariants: false,
            kernel: Kernel::default(),
            checkpoint_every: 0,
            checkpoint_path: None,
            epoch_cap: DEFAULT_EPOCH_CAP,
            shard_policy: ShardPolicy::default(),
        }
    }
}

impl SimConfig {
    /// The default configuration: 10M-step limit, capacity-1 arcs,
    /// uniform 1/1 delays, no contention, no faults, event-driven kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hard step limit (guards against livelock in buggy programs).
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }

    /// Arc capacity: tokens simultaneously buffered per link. The static
    /// architecture's base rule is 1; the detailed-machine experiments
    /// raise it to model buffered links.
    pub fn arc_capacity(mut self, capacity: usize) -> Self {
        self.arc_capacity = capacity;
        self
    }

    /// Per-arc result/acknowledge latencies (defaults to uniform 1/1).
    pub fn delays(mut self, delays: ArcDelays) -> Self {
        self.delays = Some(delays);
        self
    }

    /// Per-unit instruction-initiation budgets (contention modeling).
    pub fn resources(mut self, resources: ResourceModel) -> Self {
        self.resources = Some(resources);
        self
    }

    /// Record the firing time of every firing of every cell (costly;
    /// used by the utilization and network-replay experiments).
    pub fn record_fire_times(mut self, record: bool) -> Self {
        self.record_fire_times = record;
        self
    }

    /// Stop once every listed sink has received at least the paired
    /// number of packets — needed for programs whose outputs do not
    /// depend on any input (control generators regenerate forever).
    pub fn stop_outputs(mut self, outputs: Vec<(String, usize)>) -> Self {
        self.stop_outputs = Some(outputs);
        self
    }

    /// Install a fault-injection plan. An empty plan leaves the run
    /// bit-identical to the fault-free machine.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Install a fault plan if one is given (convenience for optional
    /// command-line plans).
    pub fn fault_plan_opt(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Bound the run with a watchdog: a step budget plus livelock
    /// detection producing a structured stall report.
    pub fn watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Verify token/acknowledge/gate conservation invariants after every
    /// step; violations surface as `MachineError::InvariantViolation`.
    pub fn check_invariants(mut self, check: bool) -> Self {
        self.check_invariants = check;
        self
    }

    /// Select the step-loop kernel (defaults to [`Kernel::EventDriven`];
    /// both produce bit-identical results).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Emit a checkpoint every `every` instruction times during
    /// [`Session::run`] (0 disables periodic checkpointing). Checkpoints
    /// are written to [`SimConfig::checkpoint_path`] and/or handed to the
    /// sink of [`Session::run_with_checkpoints`].
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Write the latest periodic checkpoint to this path during
    /// [`Session::run`]. Writes go through a temporary file and an atomic
    /// rename, so a crash mid-write leaves the previous checkpoint
    /// intact. A failed write surfaces as
    /// `MachineError::CheckpointIo`.
    pub fn checkpoint_path(mut self, path: String) -> Self {
        self.checkpoint_path = Some(path);
        self
    }

    /// Most steps the parallel kernel batches per epoch barrier (the
    /// provable horizon may shorten any given epoch; values below 2
    /// disable epoch batching and restore the per-step phased kernel).
    /// Results are bit-identical for every cap. Ignored by the
    /// sequential kernels.
    pub fn epoch_cap(mut self, cap: u64) -> Self {
        self.epoch_cap = cap;
        self
    }

    /// How the parallel kernel assigns cells to worker shards (defaults
    /// to [`ShardPolicy::Topology`]). Results are bit-identical under
    /// every policy; only the provable epoch horizon changes.
    pub fn shard_policy(mut self, policy: ShardPolicy) -> Self {
        self.shard_policy = policy;
        self
    }

    /// The configured kernel.
    pub fn kernel_choice(&self) -> Kernel {
        self.kernel
    }

    /// The configured step limit.
    pub fn max_steps_limit(&self) -> u64 {
        self.max_steps
    }

    /// The configured fault plan, if any.
    pub fn fault_plan_ref(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }
}

/// Fluent builder binding a [`SimConfig`] to a graph and its inputs.
/// Constructed by [`Simulator::builder`]; every [`SimConfig`] setter is
/// mirrored here so simple runs never name the config type.
#[derive(Debug, Clone)]
pub struct SessionBuilder<'g> {
    g: &'g Graph,
    inputs: ProgramInputs,
    cfg: SimConfig,
}

macro_rules! forward_setters {
    ($($(#[$doc:meta])* $name:ident ( $($arg:ident : $ty:ty),* )),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, $($arg: $ty),*) -> Self {
                self.cfg = self.cfg.$name($($arg),*);
                self
            }
        )*
    };
}

impl<'g> SessionBuilder<'g> {
    pub(crate) fn new(g: &'g Graph) -> Self {
        SessionBuilder {
            g,
            inputs: ProgramInputs::new(),
            cfg: SimConfig::default(),
        }
    }

    /// Bind the packet sequences fed to the program's `Source` ports.
    pub fn inputs(mut self, inputs: ProgramInputs) -> Self {
        self.inputs = inputs;
        self
    }

    /// Replace the whole configuration (e.g. one threaded through a
    /// verification harness).
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    forward_setters! {
        /// Hard step limit (guards against livelock in buggy programs).
        max_steps(steps: u64),
        /// Arc capacity: tokens simultaneously buffered per link.
        arc_capacity(capacity: usize),
        /// Per-arc result/acknowledge latencies (defaults to uniform 1/1).
        delays(delays: ArcDelays),
        /// Per-unit instruction-initiation budgets (contention modeling).
        resources(resources: ResourceModel),
        /// Record the firing time of every firing of every cell.
        record_fire_times(record: bool),
        /// Stop once every listed sink has received its packet count.
        stop_outputs(outputs: Vec<(String, usize)>),
        /// Install a fault-injection plan.
        fault_plan(plan: FaultPlan),
        /// Install a fault plan if one is given.
        fault_plan_opt(plan: Option<FaultPlan>),
        /// Bound the run with a watchdog.
        watchdog(watchdog: WatchdogConfig),
        /// Verify conservation invariants after every step.
        check_invariants(check: bool),
        /// Select the step-loop kernel.
        kernel(kernel: Kernel),
        /// Emit a checkpoint every `every` instruction times during `run`.
        checkpoint_every(every: u64),
        /// Write the latest periodic checkpoint to this path during `run`.
        checkpoint_path(path: String),
        /// Most steps the parallel kernel batches per epoch barrier.
        epoch_cap(cap: u64),
        /// How the parallel kernel assigns cells to worker shards.
        shard_policy(policy: ShardPolicy),
    }

    /// Prepare a [`Session`] for manual stepping. The graph must already
    /// be FIFO-expanded (a `Fifo` pseudo-cell is rejected, exactly like
    /// the legacy constructor).
    pub fn build(self) -> Result<Session<'g>, SimError> {
        Ok(Session {
            sim: Simulator::with_config(self.g, &self.inputs, self.cfg)?,
        })
    }

    /// Run to completion. FIFO pseudo-cells are expanded on a private
    /// copy of the graph first, so callers can run a compiled program
    /// directly.
    pub fn run(self) -> Result<RunResult, SimError> {
        if self.g.nodes.iter().any(|n| matches!(n.op, Opcode::Fifo(_))) {
            let mut g = self.g.clone();
            g.expand_fifos();
            Simulator::with_config(&g, &self.inputs, self.cfg)?.run()
        } else {
            Simulator::with_config(self.g, &self.inputs, self.cfg)?.run()
        }
    }
}

/// A prepared simulation: the single run/step surface over both kernels.
///
/// Obtained from [`SessionBuilder::build`]. Step manually for traces and
/// closed-loop experiments, or [`Session::drive`] to completion.
pub struct Session<'g> {
    sim: Simulator<'g>,
}

/// Outcome of a driven run: the run either reached one of its stopping
/// conditions (quiescence, step limit, output target, watchdog stall)
/// and produced its [`RunResult`], or it hit the caller's pause boundary
/// or step budget first and hands the live session back for later
/// resumption.
pub enum RunOutcome<'g> {
    /// The run stopped for one of the machine's own reasons. Boxed,
    /// like [`RunOutcome::Paused`], to keep the enum small.
    Done(Box<RunResult>),
    /// The pause boundary arrived first; the session can keep running,
    /// be checkpointed, or be dropped. Resuming (directly or through a
    /// checkpoint) continues bit-identically to an uninterrupted run.
    /// Boxed: a live session is large next to a [`RunResult`].
    Paused(Box<Session<'g>>),
}

/// How [`Session::drive`] executes the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Simulate every instruction time on the configured kernel.
    #[default]
    Exact,
    /// Detect the periodic steady state and skip whole hyperperiods
    /// analytically (see [`crate::fastforward`]). The result is
    /// bit-identical to [`ExecMode::Exact`]; runs whose configuration
    /// makes a skipped window inexact (fault plans, resource throttles,
    /// active checkpoint cadences) fall back to exact stepping.
    FastForward {
        /// Re-verify this many leading windows of every engagement by
        /// shadow-replaying them on the event kernel and comparing
        /// snapshots byte-for-byte. `0` trusts the periodicity proof;
        /// a mismatch at any verified window abandons fast-forward for
        /// the rest of the run and keeps the exactly-stepped state.
        verify_window: u64,
    },
}

/// Everything that shapes one [`Session::drive`] call, as plain data:
/// stop conditions (pause boundary, step budget), checkpoint cadence,
/// stall policy, and execution mode. Defaults drive the run to
/// completion in [`ExecMode::Exact`] with the session's configuration
/// untouched.
///
/// ```
/// use valpipe_machine::RunSpec;
/// let spec = RunSpec::new().fast_forward(1).pause_at(10_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunSpec {
    mode: ExecMode,
    pause_at: Option<u64>,
    step_budget: Option<u64>,
    checkpoint_every: Option<u64>,
    checkpoint_path: Option<String>,
    watchdog: Option<WatchdogConfig>,
}

impl RunSpec {
    /// The default spec: run to completion, exactly, no checkpoints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the execution mode.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for [`ExecMode::FastForward`] with the given
    /// per-engagement verification budget.
    pub fn fast_forward(self, verify_window: u64) -> Self {
        self.mode(ExecMode::FastForward { verify_window })
    }

    /// Pause (yielding [`RunOutcome::Paused`]) once the instruction time
    /// reaches `at`, unless the run stops for its own reasons first.
    pub fn pause_at(mut self, at: u64) -> Self {
        self.pause_at = Some(at);
        self
    }

    /// Pause after at most this many further instruction times — a
    /// relative [`RunSpec::pause_at`]. The budget is a pause boundary,
    /// not a change to the configured step limit, so it never alters the
    /// machine state a later checkpoint serializes.
    pub fn step_budget(mut self, steps: u64) -> Self {
        self.step_budget = Some(steps);
        self
    }

    /// Override the session's checkpoint cadence for this drive (see
    /// [`SimConfig::checkpoint_every`]).
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Override where periodic checkpoints are written for this drive
    /// (see [`SimConfig::checkpoint_path`]).
    pub fn checkpoint_path(mut self, path: impl Into<String>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Install (or override) the watchdog for this drive (see
    /// [`SimConfig::watchdog`]).
    pub fn watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = Some(watchdog);
        self
    }
}

/// What one [`Session::drive`] call produced: the run outcome plus the
/// fast-forward statistics (all zeros under [`ExecMode::Exact`]).
pub struct Driven<'g> {
    /// Whether the run completed or paused, and the resulting state.
    pub outcome: RunOutcome<'g>,
    /// What fast-forward accomplished (steps skipped, windows verified,
    /// fallbacks taken).
    pub fast_forward: FastForwardStats,
    /// What the parallel kernel's epoch engine accomplished (epochs
    /// run, steps batched, horizon fallbacks, shard map shape) — all
    /// zeros for sequential kernels and for runs whose configuration
    /// forced per-step execution.
    pub epochs: EpochStats,
}

impl<'g> Driven<'g> {
    /// Unwrap a completed run's [`RunResult`].
    ///
    /// # Panics
    ///
    /// Panics if the run paused instead of completing — only call this
    /// on drives without a pause boundary or step budget, or after
    /// matching on [`Driven::outcome`].
    pub fn result(self) -> RunResult {
        match self.outcome {
            RunOutcome::Done(r) => *r,
            RunOutcome::Paused(_) => panic!("drive paused; match on Driven::outcome instead"),
        }
    }
}

impl<'g> Session<'g> {
    /// Advance one instruction time. Returns how many cells fired.
    pub fn step(&mut self) -> Result<usize, SimError> {
        self.sim.step()
    }

    /// Drive the run as described by `spec`: to quiescence, the step
    /// limit, the output-count target, or a watchdog stall — or to the
    /// spec's pause boundary / step budget, whichever comes first.
    /// Stopping wins ties: a pause boundary landing exactly on the final
    /// step still yields [`RunOutcome::Done`]. Because every stopping
    /// decision in the run loop is made from machine state at the top of
    /// the loop, a paused session resumed later (even via
    /// checkpoint/restore on another kernel or host) produces a
    /// [`RunResult`] bit-identical to an uninterrupted run — the
    /// property the multi-tenant service's budgeted jobs and hibernation
    /// are built on. [`ExecMode::FastForward`] preserves the same
    /// bit-identity while skipping provably periodic windows (see
    /// [`crate::fastforward`]).
    pub fn drive(self, spec: RunSpec) -> Result<Driven<'g>, SimError> {
        self.drive_inner(spec, None)
    }

    /// [`Session::drive`], handing every periodic checkpoint (see
    /// [`RunSpec::checkpoint_every`] / [`SimConfig::checkpoint_every`])
    /// to `sink` as it is taken.
    pub fn drive_with(
        self,
        spec: RunSpec,
        mut sink: impl FnMut(Snapshot),
    ) -> Result<Driven<'g>, SimError> {
        self.drive_inner(spec, Some(&mut sink))
    }

    fn drive_inner(
        mut self,
        spec: RunSpec,
        sink: Option<&mut dyn FnMut(Snapshot)>,
    ) -> Result<Driven<'g>, SimError> {
        if let Some(every) = spec.checkpoint_every {
            self.sim.cfg.checkpoint_every = every;
        }
        if let Some(path) = spec.checkpoint_path {
            self.sim.cfg.checkpoint_path = Some(path);
        }
        if let Some(wd) = spec.watchdog {
            self.sim.cfg.watchdog = Some(wd);
        }
        // A step budget is a *pause boundary*, not a config change: the
        // config is serialized into checkpoints (format-pinned), so the
        // budget must never leak into the machine state.
        let pause = match (spec.pause_at, spec.step_budget) {
            (Some(p), Some(b)) => Some(p.min(self.sim.now().saturating_add(b))),
            (Some(p), None) => Some(p),
            (None, Some(b)) => Some(self.sim.now().saturating_add(b)),
            (None, None) => None,
        };
        let mut stats = FastForwardStats::default();
        let mut ff = match spec.mode {
            ExecMode::Exact => None,
            ExecMode::FastForward { verify_window } => {
                let f = FastForward::new(&self.sim, verify_window, sink.is_some());
                if f.is_none() {
                    // Requested but ineligible (faults / throttles /
                    // checkpoint cadence): record the fallback.
                    stats.fallbacks = 1;
                }
                f
            }
        };
        let mut epoch_stats = EpochStats::default();
        let phase = self
            .sim
            .run_inner(pause, sink, ff.as_mut(), Some(&mut epoch_stats))?;
        if let Some(f) = ff {
            stats = f.into_stats();
        }
        Ok(Driven {
            outcome: match phase {
                RunPhase::Done(r) => RunOutcome::Done(r),
                RunPhase::Paused(sim) => RunOutcome::Paused(Box::new(Session { sim: *sim })),
            },
            fast_forward: stats,
            epochs: epoch_stats,
        })
    }

    /// Run to quiescence, the step limit, the output-count target, or a
    /// watchdog stall; consumes the session.
    #[deprecated(note = "use Session::drive(RunSpec::new()) instead")]
    pub fn run(self) -> Result<RunResult, SimError> {
        Ok(self.drive(RunSpec::new())?.result())
    }

    /// Run until a stopping condition *or* until the instruction time
    /// reaches `pause_at`, whichever comes first.
    #[deprecated(note = "use Session::drive(RunSpec::new().pause_at(..)) instead")]
    pub fn run_until(self, pause_at: u64) -> Result<RunOutcome<'g>, SimError> {
        Ok(self.drive(RunSpec::new().pause_at(pause_at))?.outcome)
    }

    /// Diagnose the machine's current wait structure as a structured
    /// [`StallReport`] of the given kind — the same report the watchdog
    /// builds when it declares a run stalled. The service layer uses this
    /// to surface exhausted per-job step budgets and wall-clock deadlines
    /// through the existing stall taxonomy without mutating the run.
    pub fn stall_report(&self, kind: StallKind) -> StallReport {
        self.sim
            .build_stall_report(kind, self.sim.tracker.fires_since_progress())
    }

    /// `run`, handing every periodic checkpoint (see
    /// [`SimConfig::checkpoint_every`]) to `sink` as it is taken. The
    /// checkpoint is also written to [`SimConfig::checkpoint_path`] if
    /// one is configured.
    #[deprecated(note = "use Session::drive_with(RunSpec::new(), sink) instead")]
    pub fn run_with_checkpoints(self, sink: impl FnMut(Snapshot)) -> Result<RunResult, SimError> {
        Ok(self.drive_with(RunSpec::new(), sink)?.result())
    }

    /// Serialize the complete machine state at the current instruction
    /// time. The snapshot is kernel-neutral: restoring it on either
    /// kernel continues the run bit-identically (see [`crate::snapshot`]).
    pub fn checkpoint(&self) -> Snapshot {
        Snapshot::capture(&self.sim)
    }

    /// Rebuild a session from a snapshot of a run over `g`, resuming on
    /// the default kernel. Fails with
    /// [`SnapshotError::ProgramMismatch`] if `g` is not the program the
    /// snapshot was taken from.
    pub fn restore(g: &'g Graph, snap: &Snapshot) -> Result<Session<'g>, SnapshotError> {
        Self::restore_with_kernel(g, snap, Kernel::default())
    }

    /// [`Session::restore`] with an explicit kernel choice — a checkpoint
    /// taken under one kernel resumes on the other bit-identically.
    pub fn restore_with_kernel(
        g: &'g Graph,
        snap: &Snapshot,
        kernel: Kernel,
    ) -> Result<Session<'g>, SnapshotError> {
        Ok(Session {
            sim: snap.rebuild(g, kernel)?,
        })
    }

    /// Resume directly from raw snapshot bytes (e.g. a hibernation file's
    /// payload section or bytes received over the wire): validates the
    /// header and checksums, then restores onto `g` under `kernel`. This
    /// is [`Snapshot::from_bytes`] + [`Session::restore_with_kernel`] in
    /// one step, so callers moving machine state between processes never
    /// handle an unvalidated snapshot.
    pub fn resume_from_bytes(
        g: &'g Graph,
        bytes: Vec<u8>,
        kernel: Kernel,
    ) -> Result<Session<'g>, SnapshotError> {
        let snap = Snapshot::from_bytes(bytes)?;
        Self::restore_with_kernel(g, &snap, kernel)
    }

    /// Current instruction time.
    pub fn now(&self) -> u64 {
        self.sim.now()
    }

    /// Which kernel drives this session.
    pub fn kernel(&self) -> Kernel {
        self.sim.kernel()
    }
}
