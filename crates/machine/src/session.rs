//! The simulator's session API: one fluent entry point for every run.
//!
//! Historically the crate grew several overlapping ways to start a
//! simulation (a bare constructor with a hand-filled options struct,
//! convenience free functions, per-experiment wrappers in the bench
//! crate). This module replaces all of them with one surface:
//!
//! ```
//! use valpipe_machine::{ProgramInputs, Simulator};
//! # use valpipe_ir::graph::Graph;
//! # use valpipe_ir::opcode::Opcode;
//! # let mut g = Graph::new();
//! # let a = g.add_node(Opcode::Source("a".into()), "a");
//! # let id = g.cell(Opcode::Id, "id", &[a.into()]);
//! # let _ = g.cell(Opcode::Sink("out".into()), "out", &[id.into()]);
//! let result = Simulator::builder(&g)
//!     .inputs(ProgramInputs::new().bind_reals("a", &[1.0, 2.0, 3.0]))
//!     .max_steps(100_000)
//!     .run()
//!     .unwrap();
//! assert_eq!(result.reals("out"), vec![1.0, 2.0, 3.0]);
//! ```
//!
//! * [`SimConfig`] carries every run-shaping knob (step limits, arc
//!   capacity, per-arc delays, contention, fault plan, watchdog,
//!   invariant checking, kernel selection) with fluent setters, and is
//!   reusable across graphs — the verification harness and experiment
//!   reporters thread one through compile-run-compare pipelines.
//! * [`SessionBuilder`] binds a config to a graph and its inputs;
//!   [`SessionBuilder::run`] also transparently expands FIFO
//!   pseudo-cells.
//! * [`Session`] is a prepared machine: [`Session::step`] for manual
//!   single-stepping (traces, closed-loop experiments) and
//!   [`Session::run`] to drive it to completion.

use valpipe_ir::graph::Graph;
use valpipe_ir::opcode::Opcode;

use crate::fault::FaultPlan;
use crate::scheduler::Kernel;
use crate::sim::{
    ArcDelays, ProgramInputs, ResourceModel, RunPhase, RunResult, SimError, Simulator,
};
use crate::snapshot::{Snapshot, SnapshotError};
use crate::watchdog::{StallKind, StallReport, WatchdogConfig};

/// Run-shaping configuration, built fluently.
///
/// Every setter consumes and returns the config, so options chain:
///
/// ```
/// use valpipe_machine::{Kernel, SimConfig};
/// let cfg = SimConfig::new()
///     .max_steps(50_000)
///     .arc_capacity(2)
///     .check_invariants(true)
///     .kernel(Kernel::Scan);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hard step limit (guards against livelock in buggy programs).
    pub(crate) max_steps: u64,
    /// Arc capacity (tokens simultaneously buffered per link).
    pub(crate) arc_capacity: usize,
    /// Per-arc latencies; `None` = uniform 1/1.
    pub(crate) delays: Option<ArcDelays>,
    /// Optional contention model.
    pub(crate) resources: Option<ResourceModel>,
    /// Record the firing time of every firing of every cell.
    pub(crate) record_fire_times: bool,
    /// Stop once every listed sink has received this many packets.
    pub(crate) stop_outputs: Option<Vec<(String, usize)>>,
    /// Optional fault-injection plan.
    pub(crate) fault_plan: Option<FaultPlan>,
    /// Optional watchdog (step budget + livelock detection).
    pub(crate) watchdog: Option<WatchdogConfig>,
    /// Verify conservation invariants after every step.
    pub(crate) check_invariants: bool,
    /// Step-loop implementation.
    pub(crate) kernel: Kernel,
    /// Emit a checkpoint every this many instruction times during
    /// [`Session::run`] (0 = never).
    pub(crate) checkpoint_every: u64,
    /// Where `run` writes the latest periodic checkpoint (atomically,
    /// via a temporary file and rename).
    pub(crate) checkpoint_path: Option<String>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_steps: 10_000_000,
            arc_capacity: 1,
            delays: None,
            resources: None,
            record_fire_times: false,
            stop_outputs: None,
            fault_plan: None,
            watchdog: None,
            check_invariants: false,
            kernel: Kernel::default(),
            checkpoint_every: 0,
            checkpoint_path: None,
        }
    }
}

impl SimConfig {
    /// The default configuration: 10M-step limit, capacity-1 arcs,
    /// uniform 1/1 delays, no contention, no faults, event-driven kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hard step limit (guards against livelock in buggy programs).
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }

    /// Arc capacity: tokens simultaneously buffered per link. The static
    /// architecture's base rule is 1; the detailed-machine experiments
    /// raise it to model buffered links.
    pub fn arc_capacity(mut self, capacity: usize) -> Self {
        self.arc_capacity = capacity;
        self
    }

    /// Per-arc result/acknowledge latencies (defaults to uniform 1/1).
    pub fn delays(mut self, delays: ArcDelays) -> Self {
        self.delays = Some(delays);
        self
    }

    /// Per-unit instruction-initiation budgets (contention modeling).
    pub fn resources(mut self, resources: ResourceModel) -> Self {
        self.resources = Some(resources);
        self
    }

    /// Record the firing time of every firing of every cell (costly;
    /// used by the utilization and network-replay experiments).
    pub fn record_fire_times(mut self, record: bool) -> Self {
        self.record_fire_times = record;
        self
    }

    /// Stop once every listed sink has received at least the paired
    /// number of packets — needed for programs whose outputs do not
    /// depend on any input (control generators regenerate forever).
    pub fn stop_outputs(mut self, outputs: Vec<(String, usize)>) -> Self {
        self.stop_outputs = Some(outputs);
        self
    }

    /// Install a fault-injection plan. An empty plan leaves the run
    /// bit-identical to the fault-free machine.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Install a fault plan if one is given (convenience for optional
    /// command-line plans).
    pub fn fault_plan_opt(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Bound the run with a watchdog: a step budget plus livelock
    /// detection producing a structured stall report.
    pub fn watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Verify token/acknowledge/gate conservation invariants after every
    /// step; violations surface as `MachineError::InvariantViolation`.
    pub fn check_invariants(mut self, check: bool) -> Self {
        self.check_invariants = check;
        self
    }

    /// Select the step-loop kernel (defaults to [`Kernel::EventDriven`];
    /// both produce bit-identical results).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Emit a checkpoint every `every` instruction times during
    /// [`Session::run`] (0 disables periodic checkpointing). Checkpoints
    /// are written to [`SimConfig::checkpoint_path`] and/or handed to the
    /// sink of [`Session::run_with_checkpoints`].
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Write the latest periodic checkpoint to this path during
    /// [`Session::run`]. Writes go through a temporary file and an atomic
    /// rename, so a crash mid-write leaves the previous checkpoint
    /// intact. A failed write surfaces as
    /// `MachineError::CheckpointIo`.
    pub fn checkpoint_path(mut self, path: String) -> Self {
        self.checkpoint_path = Some(path);
        self
    }

    /// The configured kernel.
    pub fn kernel_choice(&self) -> Kernel {
        self.kernel
    }

    /// The configured step limit.
    pub fn max_steps_limit(&self) -> u64 {
        self.max_steps
    }

    /// The configured fault plan, if any.
    pub fn fault_plan_ref(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }
}

/// Fluent builder binding a [`SimConfig`] to a graph and its inputs.
/// Constructed by [`Simulator::builder`]; every [`SimConfig`] setter is
/// mirrored here so simple runs never name the config type.
#[derive(Debug, Clone)]
pub struct SessionBuilder<'g> {
    g: &'g Graph,
    inputs: ProgramInputs,
    cfg: SimConfig,
}

macro_rules! forward_setters {
    ($($(#[$doc:meta])* $name:ident ( $($arg:ident : $ty:ty),* )),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, $($arg: $ty),*) -> Self {
                self.cfg = self.cfg.$name($($arg),*);
                self
            }
        )*
    };
}

impl<'g> SessionBuilder<'g> {
    pub(crate) fn new(g: &'g Graph) -> Self {
        SessionBuilder {
            g,
            inputs: ProgramInputs::new(),
            cfg: SimConfig::default(),
        }
    }

    /// Bind the packet sequences fed to the program's `Source` ports.
    pub fn inputs(mut self, inputs: ProgramInputs) -> Self {
        self.inputs = inputs;
        self
    }

    /// Replace the whole configuration (e.g. one threaded through a
    /// verification harness).
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    forward_setters! {
        /// Hard step limit (guards against livelock in buggy programs).
        max_steps(steps: u64),
        /// Arc capacity: tokens simultaneously buffered per link.
        arc_capacity(capacity: usize),
        /// Per-arc result/acknowledge latencies (defaults to uniform 1/1).
        delays(delays: ArcDelays),
        /// Per-unit instruction-initiation budgets (contention modeling).
        resources(resources: ResourceModel),
        /// Record the firing time of every firing of every cell.
        record_fire_times(record: bool),
        /// Stop once every listed sink has received its packet count.
        stop_outputs(outputs: Vec<(String, usize)>),
        /// Install a fault-injection plan.
        fault_plan(plan: FaultPlan),
        /// Install a fault plan if one is given.
        fault_plan_opt(plan: Option<FaultPlan>),
        /// Bound the run with a watchdog.
        watchdog(watchdog: WatchdogConfig),
        /// Verify conservation invariants after every step.
        check_invariants(check: bool),
        /// Select the step-loop kernel.
        kernel(kernel: Kernel),
        /// Emit a checkpoint every `every` instruction times during `run`.
        checkpoint_every(every: u64),
        /// Write the latest periodic checkpoint to this path during `run`.
        checkpoint_path(path: String),
    }

    /// Prepare a [`Session`] for manual stepping. The graph must already
    /// be FIFO-expanded (a `Fifo` pseudo-cell is rejected, exactly like
    /// the legacy constructor).
    pub fn build(self) -> Result<Session<'g>, SimError> {
        Ok(Session {
            sim: Simulator::with_config(self.g, &self.inputs, self.cfg)?,
        })
    }

    /// Run to completion. FIFO pseudo-cells are expanded on a private
    /// copy of the graph first, so callers can run a compiled program
    /// directly.
    pub fn run(self) -> Result<RunResult, SimError> {
        if self.g.nodes.iter().any(|n| matches!(n.op, Opcode::Fifo(_))) {
            let mut g = self.g.clone();
            g.expand_fifos();
            Simulator::with_config(&g, &self.inputs, self.cfg)?.run()
        } else {
            Simulator::with_config(self.g, &self.inputs, self.cfg)?.run()
        }
    }
}

/// A prepared simulation: the single run/step surface over both kernels.
///
/// Obtained from [`SessionBuilder::build`]. Step manually for traces and
/// closed-loop experiments, or [`Session::run`] to completion.
pub struct Session<'g> {
    sim: Simulator<'g>,
}

/// Outcome of [`Session::run_until`]: the run either reached one of its
/// stopping conditions (quiescence, step limit, output target, watchdog
/// stall) and produced its [`RunResult`], or it hit the caller's pause
/// boundary first and hands the live session back for later resumption.
pub enum RunOutcome<'g> {
    /// The run stopped for one of the machine's own reasons. Boxed,
    /// like [`RunOutcome::Paused`], to keep the enum small.
    Done(Box<RunResult>),
    /// The pause boundary arrived first; the session can keep running,
    /// be checkpointed, or be dropped. Resuming (directly or through a
    /// checkpoint) continues bit-identically to an uninterrupted run.
    /// Boxed: a live session is large next to a [`RunResult`].
    Paused(Box<Session<'g>>),
}

impl<'g> Session<'g> {
    /// Advance one instruction time. Returns how many cells fired.
    pub fn step(&mut self) -> Result<usize, SimError> {
        self.sim.step()
    }

    /// Run to quiescence, the step limit, the output-count target, or a
    /// watchdog stall; consumes the session.
    pub fn run(self) -> Result<RunResult, SimError> {
        self.sim.run()
    }

    /// Run until a stopping condition *or* until the instruction time
    /// reaches `pause_at`, whichever comes first. Stopping wins ties: a
    /// pause boundary landing exactly on the final step still yields
    /// [`RunOutcome::Done`]. Because every stopping decision in the run
    /// loop is made from machine state at the top of the loop, a paused
    /// session resumed later (even via checkpoint/restore on another
    /// kernel or host) produces a [`RunResult`] bit-identical to an
    /// uninterrupted run — the property the multi-tenant service's
    /// budgeted jobs and hibernation are built on.
    pub fn run_until(self, pause_at: u64) -> Result<RunOutcome<'g>, SimError> {
        Ok(match self.sim.run_inner(Some(pause_at), None)? {
            RunPhase::Done(r) => RunOutcome::Done(r),
            RunPhase::Paused(sim) => RunOutcome::Paused(Box::new(Session { sim: *sim })),
        })
    }

    /// Diagnose the machine's current wait structure as a structured
    /// [`StallReport`] of the given kind — the same report the watchdog
    /// builds when it declares a run stalled. The service layer uses this
    /// to surface exhausted per-job step budgets and wall-clock deadlines
    /// through the existing stall taxonomy without mutating the run.
    pub fn stall_report(&self, kind: StallKind) -> StallReport {
        self.sim
            .build_stall_report(kind, self.sim.tracker.fires_since_progress())
    }

    /// `run`, handing every periodic checkpoint (see
    /// [`SimConfig::checkpoint_every`]) to `sink` as it is taken. The
    /// checkpoint is also written to [`SimConfig::checkpoint_path`] if
    /// one is configured.
    pub fn run_with_checkpoints(
        self,
        mut sink: impl FnMut(Snapshot),
    ) -> Result<RunResult, SimError> {
        self.sim.run_with(Some(&mut sink))
    }

    /// Serialize the complete machine state at the current instruction
    /// time. The snapshot is kernel-neutral: restoring it on either
    /// kernel continues the run bit-identically (see [`crate::snapshot`]).
    pub fn checkpoint(&self) -> Snapshot {
        Snapshot::capture(&self.sim)
    }

    /// Rebuild a session from a snapshot of a run over `g`, resuming on
    /// the default kernel. Fails with
    /// [`SnapshotError::ProgramMismatch`] if `g` is not the program the
    /// snapshot was taken from.
    pub fn restore(g: &'g Graph, snap: &Snapshot) -> Result<Session<'g>, SnapshotError> {
        Self::restore_with_kernel(g, snap, Kernel::default())
    }

    /// [`Session::restore`] with an explicit kernel choice — a checkpoint
    /// taken under one kernel resumes on the other bit-identically.
    pub fn restore_with_kernel(
        g: &'g Graph,
        snap: &Snapshot,
        kernel: Kernel,
    ) -> Result<Session<'g>, SnapshotError> {
        Ok(Session {
            sim: snap.rebuild(g, kernel)?,
        })
    }

    /// Resume directly from raw snapshot bytes (e.g. a hibernation file's
    /// payload section or bytes received over the wire): validates the
    /// header and checksums, then restores onto `g` under `kernel`. This
    /// is [`Snapshot::from_bytes`] + [`Session::restore_with_kernel`] in
    /// one step, so callers moving machine state between processes never
    /// handle an unvalidated snapshot.
    pub fn resume_from_bytes(
        g: &'g Graph,
        bytes: Vec<u8>,
        kernel: Kernel,
    ) -> Result<Session<'g>, SnapshotError> {
        let snap = Snapshot::from_bytes(bytes)?;
        Self::restore_with_kernel(g, &snap, kernel)
    }

    /// Current instruction time.
    pub fn now(&self) -> u64 {
        self.sim.now()
    }

    /// Which kernel drives this session.
    pub fn kernel(&self) -> Kernel {
        self.sim.kernel()
    }
}
