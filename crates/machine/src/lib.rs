//! # valpipe-machine — static data flow machine simulator
//!
//! Executable model of the machine described in §2–3 of Dennis & Gao
//! (ICPP 1983): instruction cells activated by data, result packets and
//! acknowledge packets, and — in the detailed model — processing elements,
//! function units, array memories and a packet-switched routing network
//! (the paper's Fig. 1).
//!
//! * [`sim`] is the cycle-level token/acknowledge simulator used for every
//!   throughput claim (rate 1/2 fully pipelined, 1/3 for an unbalanced
//!   3-cycle, …).
//! * [`arch`] maps a program onto machine units and derives per-arc packet
//!   latencies and per-unit contention budgets for the detailed model,
//!   plus the operation-packet accounting behind the paper's "one eighth
//!   or less to the array memories" claim.

#![warn(missing_docs)]

pub mod arch;
pub mod closedloop;
pub mod diag;
pub mod error;
pub mod fastforward;
pub mod fault;
pub mod network;
pub(crate) mod par;
pub mod scheduler;
pub mod session;
pub mod shard;
pub mod sim;
pub mod snapshot;
pub mod trace;
pub mod watchdog;

pub use arch::{MachineConfig, Placement};
pub use closedloop::{run_closed_loop, ClosedLoopOptions, ClosedLoopResult};
pub use diag::{render_error, render_stall};
pub use error::{MachineError, SimError};
pub use fastforward::FastForwardStats;
pub use fault::{CellFreeze, FaultPlan, LinkFault};
pub use network::{OmegaNetwork, Packet};
pub use scheduler::Kernel;
pub use session::{
    Driven, ExecMode, RunOutcome, RunSpec, Session, SessionBuilder, SimConfig, DEFAULT_EPOCH_CAP,
};
pub use shard::{EpochStats, ShardPolicy};
pub use sim::{ArcDelays, ProgramInputs, ResourceModel, RunResult, Simulator, StopReason, Timing};
pub use snapshot::{Snapshot, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use trace::{chrome_trace, occupancy_chart};
pub use watchdog::{BlockedCell, HeldArc, ProgressTracker, StallKind, StallReport, WatchdogConfig};
